//! The firmware analyzer end to end: every check class catches its bad
//! fixture, every shipped firmware lints clean (snapshotted under
//! `tests/golden/firmware.lint`), the `LoadPolicy::Deny` gate provably
//! blocks a bad image during a live PR reload, and the static WCET bounds
//! are validated against measured per-PC cycle profiles.
//!
//! Refresh the snapshot after an *intentional* analyzer change with:
//! `UPDATE_GOLDEN=1 cargo test --test firmware_lint`

use std::path::PathBuf;

use rosebud::apps::firewall::{firewall_image, synthetic_blacklist, NoopGen, FIREWALL_ASM};
use rosebud::apps::forwarder::{
    duty_cycle_forwarder_asm, forwarder_image, watchdog_forwarder_asm, FORWARDER_ASM,
    FORWARDER_SINGLE_PORT_ASM,
};
use rosebud::apps::host_dma::host_dma_forwarder_asm;
use rosebud::apps::pigasus_asm::PIGASUS_HW_ASM;
use rosebud::core::{
    machine_spec, Fleet, FleetConfig, Harness, KernelMode, LoadPolicy, Rosebud, RosebudConfig,
    RoundRobinLb, RpuProgram, RpuState, RpuTestbench,
};
use rosebud::net::PacketBuilder;
use rosebud::riscv::{assemble, Analyzer, Check, LintReport, Severity};

fn analyzer() -> Analyzer {
    Analyzer::new(machine_spec(&RosebudConfig::with_rpus(1)))
}

fn check(src: &str) -> LintReport {
    analyzer().check(&assemble(src).expect("fixture must assemble"))
}

fn has(report: &LintReport, severity: Severity, check: Check) -> bool {
    report
        .diagnostics
        .iter()
        .any(|d| d.severity == severity && d.check == check)
}

// ---------------------------------------------------------------------------
// One failing fixture per check class.
// ---------------------------------------------------------------------------

#[test]
fn reading_a_write_only_register_is_an_mmio_error() {
    // SEND_DESC_LO (0x10) is write-only: the bus returns 0 and the firmware
    // silently forwards garbage. The analyzer turns that into an error.
    let report = check(
        "
            li t0, 0x02000000
        spin:
            lw a0, 0x10(t0)
            j spin
        ",
    );
    assert!(
        has(&report, Severity::Error, Check::Mmio),
        "{}",
        report.render("fixture")
    );
}

#[test]
fn writing_a_read_only_register_is_an_mmio_error() {
    // RECV_READY (0x00) is read-only: the store vanishes on real hardware.
    let report = check(
        "
            li t0, 0x02000000
            sw zero, 0x00(t0)
        spin:
            wfi
            j spin
        ",
    );
    assert!(
        has(&report, Severity::Error, Check::Mmio),
        "{}",
        report.render("fixture")
    );
}

#[test]
fn touching_an_unmapped_address_is_a_region_error() {
    // Nothing lives at 0x0500_0000: no RAM, no IO window, no accelerator.
    let report = check(
        "
            li t0, 0x05000000
            lw a0, 0(t0)
        spin:
            wfi
            j spin
        ",
    );
    assert!(
        has(&report, Severity::Error, Check::Region),
        "{}",
        report.render("fixture")
    );
}

#[test]
fn a_loop_that_never_pets_the_watchdog_is_flagged() {
    let report = check(
        "
            li t0, 0x02000000
        poll:
            lw a0, 0x00(t0)
            beqz a0, poll
        spin:
            j spin
        ",
    );
    assert!(
        has(&report, Severity::Warning, Check::Watchdog),
        "{}",
        report.render("fixture")
    );
    // The same loop with a TIMER_CMP pet on every path is clean.
    let petted = check(
        "
            li t0, 0x02000000
            li t1, 4096
        poll:
            sw t1, 0x40(t0)
            lw a0, 0x00(t0)
            beqz a0, poll
            j poll
        ",
    );
    assert!(
        !has(&petted, Severity::Warning, Check::Watchdog),
        "{}",
        petted.render("fixture")
    );
}

#[test]
fn using_an_uninitialized_register_is_an_error() {
    // a1 is never written before it feeds an address computation.
    let report = check(
        "
            add a0, a1, a1
        spin:
            wfi
            j spin
        ",
    );
    assert!(
        has(&report, Severity::Error, Check::Uninit),
        "{}",
        report.render("fixture")
    );
}

#[test]
fn escaping_the_stack_region_is_an_error() {
    // Stack is the top 4 KB of DMEM: [0x0080_7000, 0x0080_8000) for the
    // default 32 KB. A push below the base is an underflow.
    let report = check(
        "
            li sp, 0x00807000
            sw zero, -4(sp)
        spin:
            wfi
            j spin
        ",
    );
    assert!(
        has(&report, Severity::Error, Check::Stack),
        "{}",
        report.render("fixture")
    );
    // The same store inside the region is clean.
    let ok = check(
        "
            li sp, 0x00808000
            sw zero, -4(sp)
        spin:
            wfi
            j spin
        ",
    );
    assert!(
        !has(&ok, Severity::Error, Check::Stack),
        "{}",
        ok.render("fixture")
    );
}

#[test]
fn reachable_garbage_is_an_illegal_instruction_error() {
    // Fall-through into a data word that decodes as nothing.
    let report = check(
        "
            nop
            .word 0xffffffff
        ",
    );
    assert!(
        has(&report, Severity::Error, Check::Illegal),
        "{}",
        report.render("fixture")
    );
}

#[test]
fn unreachable_code_is_a_dead_code_warning() {
    let report = check(
        "
        spin:
            j spin
            nop          # unreachable
            nop
        ",
    );
    assert!(
        has(&report, Severity::Warning, Check::Dead),
        "{}",
        report.render("fixture")
    );
}

// ---------------------------------------------------------------------------
// Protocol and taint fixtures: one bad firmware per new check, each denied
// with a CFG-path witness naming the violating PC.
// ---------------------------------------------------------------------------

/// Asserts the report carries an error of `check` whose message mentions
/// `needle`, anchored at a PC with a non-empty CFG-path witness.
fn assert_denied_with_witness(report: &LintReport, check: Check, needle: &str) {
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.severity == Severity::Error && d.check == check && d.message.contains(needle))
        .unwrap_or_else(|| {
            panic!(
                "expected error[{check}] mentioning {needle:?}:\n{}",
                report.render("fixture")
            )
        });
    assert!(
        !d.path.is_empty(),
        "diagnostic at pc 0x{:08x} has no CFG-path witness",
        d.pc
    );
    assert_eq!(
        *d.path.last().unwrap() % 4,
        0,
        "witness path must end at the violating block"
    );
}

#[test]
fn use_after_release_is_denied_with_witness() {
    let report = check(
        "
            li t0, 0x02000000
        poll:
            lw a0, 0x00(t0)          # RECV_READY
            beqz a0, poll
            lw a1, 0x04(t0)          # take the descriptor
            sw zero, 0x0c(t0)        # release the slot...
            lw a2, 0x08(t0)          # ...then read it again
            sw a1, 0x10(t0)
            sw a2, 0x14(t0)
            j poll
        ",
    );
    assert_denied_with_witness(&report, Check::Protocol, "use-after-release");
}

#[test]
fn double_commit_is_denied_with_witness() {
    let report = check(
        "
            li t0, 0x02000000
        poll:
            lw a0, 0x00(t0)
            beqz a0, poll
            lw a1, 0x04(t0)
            lw a2, 0x08(t0)
            sw zero, 0x0c(t0)
            sw a1, 0x10(t0)          # stage
            sw a2, 0x14(t0)          # commit
            sw a2, 0x14(t0)          # commit again: nothing staged
            j poll
        ",
    );
    assert_denied_with_witness(&report, Check::Protocol, "double commit");
}

#[test]
fn tainted_dma_length_is_denied_with_witness() {
    // The DMA length comes straight from a packet-buffer load — an
    // attacker-sized transfer. The sanitized variant is the shipped
    // host-dma forwarder, which lints clean.
    let report = check(TAINTED_DMA_FIRMWARE);
    assert_denied_with_witness(&report, Check::Taint, "DMA transfer length");
}

#[test]
fn unsanitized_indirect_jump_is_denied_with_witness() {
    let report = check(
        "
            li t0, 0x02000000
        poll:
            lw a0, 0x00(t0)
            beqz a0, poll
            lw a1, 0x08(t0)          # descriptor field: packet-influenced
            jr a1                    # dispatch through it, unmasked
        ",
    );
    assert_denied_with_witness(&report, Check::Taint, "indirect jump");
}

#[test]
fn missed_completion_poll_is_denied_with_witness() {
    let report = check(
        "
            li t0, 0x02000000
            li a0, 0x01000000
            li a1, 64
        kick:
            sw zero, 0x44(t0)        # DMA_HOST_ADDR
            sw a0, 0x48(t0)          # DMA_LOCAL_ADDR
            sw a1, 0x4c(t0)          # DMA_LEN
            li a2, 1
            sw a2, 0x50(t0)          # DMA_CTRL: kick...
            sw a2, 0x50(t0)          # ...and kick again, never polling
        spin:
            wfi
            j spin
        ",
    );
    assert_denied_with_witness(&report, Check::Protocol, "completion poll");
}

// ---------------------------------------------------------------------------
// Shipped firmware: zero errors, snapshotted reports.
// ---------------------------------------------------------------------------

/// Every shipped RV32 firmware, by stable name.
fn shipped() -> Vec<(&'static str, String)> {
    vec![
        ("forwarder", FORWARDER_ASM.to_string()),
        (
            "forwarder-single-port",
            FORWARDER_SINGLE_PORT_ASM.to_string(),
        ),
        ("watchdog-forwarder", watchdog_forwarder_asm(4096)),
        ("duty-cycle-forwarder", duty_cycle_forwarder_asm(2048)),
        ("host-dma-forwarder", host_dma_forwarder_asm(65536)),
        ("firewall", FIREWALL_ASM.to_string()),
        ("pigasus", PIGASUS_HW_ASM.to_string()),
    ]
}

#[test]
fn shipped_firmware_has_zero_lint_errors() {
    let analyzer = analyzer();
    for (name, src) in shipped() {
        let report = analyzer.check(&assemble(&src).unwrap());
        assert!(
            !report.has_errors(),
            "shipped firmware {name} has lint errors:\n{}",
            report.render(name)
        );
    }
}

/// The concatenated lint reports of every shipped firmware, snapshotted —
/// any change to the CFG builder, the abstract domains, the cost model, or
/// the firmware itself shows up here as a readable diff.
#[test]
fn shipped_firmware_lint_reports_match_golden() {
    let analyzer = analyzer();
    let mut text = String::new();
    for (name, src) in shipped() {
        text.push_str(&analyzer.check(&assemble(&src).unwrap()).render(name));
        text.push('\n');
    }

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/firmware.lint");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test --test firmware_lint",
            path.display()
        )
    });
    assert_eq!(
        expected, text,
        "lint reports drifted from tests/golden/firmware.lint (refresh \
         intentional changes with UPDATE_GOLDEN=1)"
    );
}

// ---------------------------------------------------------------------------
// LoadPolicy wiring.
// ---------------------------------------------------------------------------

/// Firmware with a definite lint error: it forwards whatever the write-only
/// SEND_DESC_LO register reads back (always zero).
const BAD_FIRMWARE: &str = "
        li t0, 0x02000000
    spin:
        lw a0, 0x10(t0)
        j spin
";

/// Firmware with a taint error: packet bytes flow into `DMA_LEN` with no
/// mask or bounds guard — an attacker sizes the host-DRAM transfer.
const TAINTED_DMA_FIRMWARE: &str = "
        li t0, 0x02000000
        li t1, 0x01000000
    poll:
        lw a0, 0x00(t0)          # RECV_READY
        beqz a0, poll
        lw a1, 0x04(t0)          # take the descriptor
        lw a2, 0(t1)             # length word from the packet body
        sw zero, 0x44(t0)        # DMA_HOST_ADDR
        sw t1, 0x48(t0)          # DMA_LOCAL_ADDR
        sw a2, 0x4c(t0)          # DMA_LEN: attacker-controlled
        li a3, 1
        sw a3, 0x50(t0)          # kick
    wait:
        lw a3, 0x54(t0)
        bnez a3, wait
        sw zero, 0x0c(t0)
        sw a1, 0x10(t0)
        sw a1, 0x14(t0)
        j poll
";

fn forwarder_system(policy: LoadPolicy) -> Result<Rosebud, String> {
    let image = assemble(FORWARDER_ASM).unwrap();
    Rosebud::builder(RosebudConfig::with_rpus(4))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .load_policy(policy)
        .build()
}

#[test]
fn deny_policy_rejects_bad_firmware_at_boot() {
    let bad = assemble(BAD_FIRMWARE).unwrap();
    let err = Rosebud::builder(RosebudConfig::with_rpus(2))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(bad.clone()))
        .load_policy(LoadPolicy::Deny)
        .build()
        .expect_err("a Deny system must refuse bad firmware at boot");
    assert!(err.contains("LoadPolicy::Deny"), "{err}");

    // The same firmware under Warn boots, with the report on record.
    let bad = assemble(BAD_FIRMWARE).unwrap();
    let sys = Rosebud::builder(RosebudConfig::with_rpus(2))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(bad.clone()))
        .load_policy(LoadPolicy::Warn)
        .build()
        .expect("Warn must load regardless");
    assert_eq!(sys.lint_log().len(), 2);
    assert!(sys.lint_log().iter().all(|r| !r.denied));
    assert!(sys.lint_log().iter().all(|r| r.report.has_errors()));
    assert!(sys.diagnostics().render().contains("lint: RPU 0"));
}

#[test]
fn deny_policy_blocks_a_bad_image_during_pr_reload() {
    let mut h = Harness::new(
        forwarder_system(LoadPolicy::Deny).unwrap(),
        Box::new(NoopGen),
        0.0,
    );
    assert_eq!(h.sys.lint_log().len(), 4, "boot vets all four lanes");

    // A runtime ruleset push gone wrong: reconfigure RPU 1 with a bad image.
    let bad = assemble(BAD_FIRMWARE).unwrap();
    h.sys.reconfigure_rpu(1, Some(RpuProgram::Riscv(bad)), None);
    let pr = h.sys.config().pr_cycles;
    h.run(pr + 10_000);

    // The bitstream write completed, but the boot never did: the region is
    // still inert in `Reconfiguring`, its LB enable bit stays clear, and the
    // denial is on record. Known-bad firmware never ran a single cycle.
    assert!(
        matches!(h.sys.rpus()[1].state(), RpuState::Reconfiguring { .. }),
        "denied region must stay inert, got {:?}",
        h.sys.rpus()[1].state()
    );
    assert_eq!(
        h.sys.enabled_mask() & 0b10,
        0,
        "LB must not route to the denied region"
    );
    let last = h.sys.lint_log().last().unwrap();
    assert!(last.denied && last.rpu == 1 && last.report.has_errors());
    assert!(last.cycle > 0, "PR-reload vet happens at runtime, not boot");

    // The same reload with a good image completes and re-enables the lane.
    let good = assemble(FORWARDER_ASM).unwrap();
    h.sys
        .reconfigure_rpu(2, Some(RpuProgram::Riscv(good)), None);
    h.run(pr + 10_000);
    assert_eq!(h.sys.rpus()[2].state(), RpuState::Running);
    assert_eq!(h.sys.enabled_mask() & 0b100, 0b100);
    assert!(!h.sys.lint_log().last().unwrap().denied);
}

#[test]
fn deny_policy_blocks_a_bad_host_load() {
    let mut h = Harness::new(
        forwarder_system(LoadPolicy::Deny).unwrap(),
        Box::new(NoopGen),
        0.0,
    );
    let bad = assemble(BAD_FIRMWARE).unwrap();
    h.sys
        .load_rpu_firmware(3, &bad)
        .expect_err("host load of bad firmware must be refused");
    // The lane still runs its original (good) firmware.
    assert_eq!(h.sys.rpus()[3].state(), RpuState::Running);
}

#[test]
fn off_policy_records_nothing() {
    let sys = forwarder_system(LoadPolicy::Off).unwrap();
    assert!(sys.lint_log().is_empty());
}

/// The acceptance drill one level up: a tainted-DMA image pushed over the
/// fleet PR-reload path is provably blocked — the box's lane finishes the
/// bitstream write but never boots, staying inert in `Reconfiguring` with
/// its LB enable bit clear, and the denial (a taint error) is on record.
#[test]
fn fleet_pr_reload_denies_tainted_dma_firmware() {
    let mut fleet = Fleet::new(
        FleetConfig {
            boxes: 2,
            ..FleetConfig::default()
        },
        KernelMode::Sequential,
        |_| forwarder_system(LoadPolicy::Deny).expect("good boot firmware"),
    )
    .unwrap();

    let bad = assemble(TAINTED_DMA_FIRMWARE).unwrap();
    fleet
        .sys_mut(0)
        .reconfigure_rpu(1, Some(RpuProgram::Riscv(bad)), None);
    let pr = fleet.sys(0).config().pr_cycles;
    fleet.run(pr + 10_000);

    let sys = fleet.sys(0);
    assert!(
        matches!(sys.rpus()[1].state(), RpuState::Reconfiguring { .. }),
        "denied lane must stay inert, got {:?}",
        sys.rpus()[1].state()
    );
    assert_eq!(
        sys.enabled_mask() & 0b10,
        0,
        "LB must not route to the denied lane"
    );
    let last = sys.lint_log().last().unwrap();
    assert!(last.denied && last.rpu == 1);
    assert!(
        last.report
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error
                && d.check == Check::Taint
                && !d.path.is_empty()),
        "the denial must carry the taint error with its witness path:\n{}",
        last.report.render("tainted-dma")
    );
    // The sibling box was never touched and keeps forwarding state intact.
    assert_eq!(fleet.sys(1).enabled_mask() & 0b1111, 0b1111);
}

// ---------------------------------------------------------------------------
// Static WCET vs measured cycles.
// ---------------------------------------------------------------------------

/// Measured average cycles per loop iteration from a per-PC profile: total
/// cycles attributed to loop-body PCs divided by header executions. Sound to
/// compare against the static per-iteration bound because an *average* over
/// iterations can never exceed the worst case. The loop header is a 2-cycle
/// `lw` in both firmwares, so `profile[header] / 2` counts iterations.
fn measured_loop_average(tb: &RpuTestbench, header: u32) -> f64 {
    let profile = tb.rpu().pc_profile().expect("profiling enabled");
    let header_cycles = *profile.get(&header).expect("loop header executed");
    let iterations = header_cycles / 2;
    let loop_cycles: u64 = profile
        .iter()
        .filter(|(&pc, _)| pc >= header)
        .map(|(_, c)| c)
        .sum();
    loop_cycles as f64 / iterations as f64
}

fn single_loop_bound(report: &LintReport) -> (u32, u64) {
    let entry = &report.wcet[0];
    // Take the outermost (lowest-header) loop bound.
    let lb = entry
        .loops
        .iter()
        .min_by_key(|l| l.header)
        .expect("loop bound");
    (lb.header, lb.cycles_per_iter)
}

#[test]
fn forwarder_wcet_bound_dominates_measured_cycles() {
    let report = analyzer().check(&forwarder_image());
    let (header, bound) = single_loop_bound(&report);
    assert_eq!(bound, 16, "the paper's 16-cycle forwarder loop");

    let mut cfg = RosebudConfig::with_rpus(4);
    cfg.slots_per_rpu = 64;
    let mut tb = RpuTestbench::new(cfg);
    tb.load_riscv(&forwarder_image());
    tb.rpu_mut().enable_profiling();
    tb.step(100);
    let pkt = PacketBuilder::new().tcp(4000, 80).pad_to(256).build();
    for _ in 0..32 {
        tb.deliver(&pkt).unwrap();
    }
    tb.step(4_000);
    assert_eq!(tb.outputs().len(), 32, "burst must drain");

    let measured = measured_loop_average(&tb, header);
    assert!(
        bound as f64 >= measured,
        "static bound {bound} < measured average {measured:.2} cycles/iteration"
    );
    // Busy-path check: under back-to-back load the inter-send spacing is one
    // full processing iteration, which must also fit under the bound.
    let sends: Vec<u64> = tb.outputs().iter().map(|o| o.sent_at).collect();
    let spacing = (sends[31] - sends[1]) as f64 / 30.0;
    assert!(
        bound as f64 >= spacing,
        "static bound {bound} < busy spacing {spacing:.2} cycles/packet"
    );
    println!(
        "forwarder: static {bound} cycles/iter, measured avg {measured:.2}, \
         busy spacing {spacing:.2}"
    );
}

#[test]
fn firewall_wcet_bound_dominates_measured_cycles() {
    let report = analyzer().check(&firewall_image());
    let (header, bound) = single_loop_bound(&report);

    let blacklist = synthetic_blacklist(64, 7);
    let mut cfg = RosebudConfig::with_rpus(4);
    cfg.slots_per_rpu = 64;
    let mut tb = RpuTestbench::new(cfg);
    tb.set_accelerator(Box::new(rosebud::accel::FirewallMatcher::from_prefixes(
        &blacklist,
    )));
    tb.load_riscv(&firewall_image());
    tb.rpu_mut().enable_profiling();
    tb.step(100);
    // Mix safe and blacklisted sources so both loop paths execute.
    let safe = PacketBuilder::new()
        .src_ip([240, 1, 2, 3])
        .tcp(1, 80)
        .pad_to(256)
        .build();
    let bad = {
        let mut ip = blacklist[0];
        ip[3] = 200;
        PacketBuilder::new()
            .src_ip(ip)
            .tcp(1, 80)
            .pad_to(256)
            .build()
    };
    for i in 0..32 {
        tb.deliver(if i % 4 == 0 { &bad } else { &safe }).unwrap();
    }
    tb.step(8_000);
    assert_eq!(tb.outputs().len(), 32, "burst must drain");

    let measured = measured_loop_average(&tb, header);
    assert!(
        bound as f64 >= measured,
        "static bound {bound} < measured average {measured:.2} cycles/iteration"
    );
    let sends: Vec<u64> = tb.outputs().iter().map(|o| o.sent_at).collect();
    let spacing = (sends[31] - sends[1]) as f64 / 30.0;
    assert!(
        bound as f64 >= spacing,
        "static bound {bound} < busy spacing {spacing:.2} cycles/packet"
    );
    println!(
        "firewall: static {bound} cycles/iter, measured avg {measured:.2}, \
         busy spacing {spacing:.2}"
    );
}
