//! Property tests for the packet-port layer: arbitrary cycle-stamped
//! arrival interleavings are kernel-invariant, and any random live ring
//! session replays bit-exactly from its event log.

use proptest::prelude::*;
use rosebud::apps::forwarder::build_forwarding_system;
use rosebud::core::ports::{pump, replay};
use rosebud::core::{KernelMode, Rosebud, TraceConfig};
use rosebud::kernel::StampedIngress;
use rosebud::net::Packet;
use rosebud::shell::{RingBackend, Shell};

fn trace_cfg() -> TraceConfig {
    TraceConfig {
        counter_interval: 4096,
        pc_profile: true,
        max_events: 1 << 21,
    }
}

fn kernels() -> Vec<KernelMode> {
    vec![
        KernelMode::Sequential,
        KernelMode::Parallel {
            workers: 0,
            quantum: 1024,
        },
        KernelMode::Parallel {
            workers: 2,
            quantum: 256,
        },
    ]
}

fn traced_forwarder(kernel: KernelMode) -> Rosebud {
    let mut sys = build_forwarding_system(8).unwrap();
    sys.set_kernel(kernel);
    sys.enable_tracing(trace_cfg());
    sys
}

/// Runs a fixed arrival schedule through one kernel and snapshots every
/// observable output.
fn observe_schedule(kernel: KernelMode, schedule: &[(u64, usize, u8)]) -> (String, String, usize) {
    let mut sys = traced_forwarder(kernel);
    let mut source = StampedIngress::new();
    let mut cycle = 0u64;
    for (id, &(gap, size, port)) in schedule.iter().enumerate() {
        cycle += gap;
        source.push_at(cycle, Packet::new(id as u64, vec![0xA5; size], port, cycle));
    }
    source.finish();
    let horizon = cycle + 6_000;
    let mut delivered = 0;
    while sys.now() < horizon {
        pump(&mut sys, &mut source);
        sys.tick();
    }
    for p in 0..sys.config().num_ports {
        delivered += sys.take_output(p).len();
    }
    sys.assert_conservation();
    (
        sys.take_tracer().unwrap().compact_text(),
        format!("{:?} {:?}", sys.ledger(), sys.diagnostics()),
        delivered,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Any port-order-preserving interleaving of cycle-stamped arrivals
    // produces byte-identical traces, ledgers, and diagnostics under all
    // three kernels: the port layer adds no kernel-visible nondeterminism.
    #[test]
    fn stamped_interleavings_are_kernel_invariant(
        schedule in proptest::collection::vec(
            (0u64..60, 64usize..600, 0u8..2),
            1..24,
        ),
    ) {
        let (oracle_trace, oracle_state, oracle_delivered) =
            observe_schedule(KernelMode::Sequential, &schedule);
        prop_assert!(oracle_delivered > 0, "schedule must deliver something");
        for kernel in kernels().into_iter().skip(1) {
            let (trace, state, delivered) = observe_schedule(kernel, &schedule);
            prop_assert_eq!(&trace, &oracle_trace, "trace diverges under {:?}", kernel);
            prop_assert_eq!(&state, &oracle_state, "state diverges under {:?}", kernel);
            prop_assert_eq!(delivered, oracle_delivered);
        }
    }

    // Any random live ring session replays bit-exactly from its event log:
    // record on a live shell, replay through a fresh sequential oracle, and
    // demand the same trace, ledger, and diagnostics.
    #[test]
    fn random_ring_sessions_replay_bit_exactly(
        session in proptest::collection::vec(
            (1u64..80, 64usize..600, 0u8..2),
            1..24,
        ),
    ) {
        let (backend, peer) = RingBackend::pair();
        let mut shell = Shell::new(traced_forwarder(KernelMode::Sequential), backend);
        for &(gap, size, port) in &session {
            peer.send(port, vec![0x5A; size]);
            shell.pump(gap);
        }
        shell.pump(6_000);
        shell.sys().assert_conservation();
        prop_assert_eq!(shell.log().events.len(), session.len());

        let log = shell.log().clone();
        let live_trace = shell.sys_mut().take_tracer().unwrap().compact_text();
        let live_ledger = shell.sys().ledger();
        let live_diag = format!("{:?}", shell.sys().diagnostics());

        let mut oracle = traced_forwarder(KernelMode::Sequential);
        let delivered = replay(&log, &mut oracle);
        prop_assert_eq!(delivered.len() as u64, shell.forwarded());
        prop_assert_eq!(
            oracle.take_tracer().unwrap().compact_text(),
            live_trace,
            "replay trace diverges from the live run"
        );
        prop_assert_eq!(oracle.ledger(), live_ledger);
        prop_assert_eq!(format!("{:?}", oracle.diagnostics()), live_diag);
    }
}
