//! The paper's headline operational win (§7.1.2): "Rosebud also enabled
//! overcoming a key limitation of the original Pigasus design: there is no
//! way to reconfigure the pattern matcher's ruleset during runtime. The only
//! method to update the ruleset is to reload a new FPGA image."
//!
//! Here the host performs a *rolling* ruleset update: each RPU in turn is
//! drained, partially reconfigured with an accelerator compiled from the new
//! rules, and re-enabled — while traffic keeps flowing through the others
//! and zero packets are lost.

use rosebud::accel::{FirewallMatcher, PigasusMatcher, RuleSet};
use rosebud::apps::firewall::{build_firewall_system, synthetic_blacklist};
use rosebud::apps::pigasus::{build_pigasus_system_with, PigasusFirmware, ReorderMode};
use rosebud::apps::rules::synthetic_rules;
use rosebud::core::{Harness, RpuProgram};
use rosebud::net::{AttackMixGen, FixedSizeGen, FlowTrafficGen};

#[test]
fn rolling_ids_ruleset_update_under_traffic() {
    let old_rules = synthetic_rules(32, 100);
    let new_rules = synthetic_rules(32, 200); // disjoint patterns
    let rpus = 4;
    let sys =
        build_pigasus_system_with(ReorderMode::Hardware, old_rules.clone(), rpus, 16).unwrap();

    // Background: clean traffic mixed with NEW-rule attacks, which the old
    // ruleset cannot see.
    let payloads: Vec<Vec<u8>> = new_rules.iter().map(|r| r.pattern.clone()).collect();
    let base = FlowTrafficGen::new(256, 512, 0.0, 7);
    let gen = AttackMixGen::new(base, 0.05, payloads, 11);
    let mut h = Harness::new(sys, Box::new(gen), 20.0);
    h.run(60_000);
    let flagged_before = h.host_received();
    assert_eq!(
        flagged_before, 0,
        "old ruleset must not match the new-rule attacks"
    );
    let drops_before = h.sys.drop_count();

    // Rolling update: one RPU at a time, like the A.8 procedure.
    for r in 0..rpus {
        let compiled = RuleSet::compile(new_rules.clone());
        let slots = h.sys.config().slots_per_rpu;
        h.sys.reconfigure_rpu(
            r,
            Some(RpuProgram::Native(Box::new(PigasusFirmware::new(
                ReorderMode::Hardware,
                slots,
            )))),
            Some(Box::new(PigasusMatcher::new(compiled, 16))),
        );
        let mut waited = 0;
        while h.sys.reconfigure_pending(r) {
            h.tick();
            waited += 1;
            assert!(waited < 400_000, "PR of RPU {r} never completed");
        }
    }
    assert_eq!(
        h.sys.drop_count(),
        drops_before,
        "rolling update lost packets"
    );

    // The new ruleset is live: new-rule attacks now reach the host.
    h.run(80_000);
    assert!(
        h.host_received() > flagged_before + 10,
        "updated ruleset flagged only {} packets",
        h.host_received()
    );
}

#[test]
fn firewall_blacklist_update_switches_verdicts() {
    let list_a = synthetic_blacklist(64, 1);
    let list_b = synthetic_blacklist(64, 2);
    let sys = build_firewall_system(4, &list_a).unwrap();
    // Attack traffic drawn from list B only: invisible to list A.
    let gen = AttackMixGen::new(FixedSizeGen::new(256, 2), 0.10, Vec::new(), 3)
        .with_attack_ips(list_b.clone());
    let mut h = Harness::new(sys, Box::new(gen), 10.0);
    h.run(40_000);
    let drops_with_a = h.sys.drop_count();
    assert_eq!(drops_with_a, 0, "list A must not drop list-B sources");

    // Swap every RPU's generated matcher for list B (the §7.2 accelerator
    // is LUT logic, so a blacklist change is a PR, not a table write).
    for r in 0..4 {
        h.sys.reconfigure_rpu(
            r,
            None, // keep the same assembled firmware (factory reload)
            Some(Box::new(FirewallMatcher::from_prefixes(&list_b))),
        );
        while h.sys.reconfigure_pending(r) {
            h.tick();
        }
    }
    h.run(60_000);
    assert!(
        h.sys.drop_count() > drops_with_a + 20,
        "updated blacklist dropped only {} packets",
        h.sys.drop_count()
    );
}

#[test]
fn pigasus_tables_can_be_poked_through_host_memory_access() {
    // §7.1.2's other half: the framework can reach accelerator-local tables
    // at runtime through the host paths (here: the accelerator handle).
    let rules = synthetic_rules(8, 5);
    let mut sys = build_pigasus_system_with(ReorderMode::Hardware, rules, 4, 16).unwrap();
    let accel = sys
        .rpu_mut(0)
        .accelerator_mut()
        .expect("accelerator installed");
    accel.load_table(0, &[0u8; 64]); // exercises the URAM write-port hook
    assert_eq!(accel.name(), "pigasus-mpse");
}
