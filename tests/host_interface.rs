//! The host's view of a running system (§3.4, §4.2–4.3, Appendix A):
//! LB register channel, counters, debug channel, poke/breakpoint, memory
//! access, and partial reconfiguration.

use rosebud::apps::forwarder::build_forwarding_system;
use rosebud::core::{lb_regs, Harness, MemRegion, RpuProgram, RpuState};
use rosebud::net::FixedSizeGen;
use rosebud::riscv::assemble;

#[test]
fn lb_channel_reads_enable_mask_and_slot_counts() {
    let mut sys = build_forwarding_system(8).unwrap();
    assert_eq!(sys.lb_host_read(lb_regs::ENABLE_LO), 0xff);
    for r in 0..8 {
        assert_eq!(
            sys.lb_host_read(lb_regs::SLOTS_BASE + r),
            sys.config().slots_per_rpu as u32
        );
    }
    // Disable RPUs 0–3 and check traffic avoids them.
    sys.lb_host_write(lb_regs::ENABLE_LO, 0xf0);
    assert_eq!(sys.enabled_mask(), 0xf0);
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 20.0);
    h.run(30_000);
    for r in 0..4 {
        assert_eq!(
            h.sys.rpu_counters(r).rx_frames,
            0,
            "disabled RPU {r} received traffic"
        );
    }
    for r in 4..8 {
        assert!(h.sys.rpu_counters(r).rx_frames > 0, "enabled RPU {r} idle");
    }
}

#[test]
fn flush_register_restores_slots() {
    let mut sys = build_forwarding_system(4).unwrap();
    // Simulate a stuck RPU by disabling it mid-traffic and flushing.
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 20.0);
    h.run(10_000);
    h.sys.lb_host_write(lb_regs::ENABLE_LO, 0b1110);
    h.run(5_000);
    h.sys.lb_host_write(lb_regs::FLUSH_RPU, 0);
    assert_eq!(
        h.sys.lb_host_read(lb_regs::SLOTS_BASE),
        h.sys.config().slots_per_rpu as u32
    );
    sys = h.sys;
    let _ = &mut sys;
}

#[test]
fn port_counters_track_traffic() {
    let sys = build_forwarding_system(4).unwrap();
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(500, 2)), 10.0);
    h.run(30_000);
    for p in 0..2 {
        let c = h.sys.port_counters(p);
        assert!(c.rx_frames > 0, "port {p} rx");
        assert!(c.tx_frames > 0, "port {p} tx");
        assert_eq!(c.rx_bytes, c.rx_frames * 500);
    }
}

#[test]
fn debug_channel_round_trip() {
    // Firmware that echoes the host debug word plus one.
    let image = assemble(
        "
        .equ IO, 0x02000000
            li t0, IO
        loop:
            lw a0, 0x30(t0)      # HOST_IN_L
            beqz a0, loop
            addi a0, a0, 1
            sw a0, 0x1c(t0)      # DEBUG_OUT_L
            sw zero, 0x20(t0)    # DEBUG_OUT_H commits
            ebreak
        ",
    )
    .unwrap();
    let mut sys = rosebud::core::Rosebud::builder(rosebud::core::RosebudConfig::with_rpus(2))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
        .unwrap();
    sys.write_debug(0, 41);
    sys.run(200);
    assert_eq!(sys.take_debug(0), Some(42));
    assert_eq!(sys.take_debug(0), None, "debug values are take-once");
}

#[test]
fn poke_interrupt_is_maskable() {
    // Firmware with poke masked out: the poke must not disturb it.
    let image = assemble(
        "
        .equ IO, 0x02000000
            li t0, IO
            sw zero, 0x2c(t0)    # masks = 0: everything masked
            li s0, 123
        spin:
            sw s0, 0x18(t0)
            j spin
        ",
    )
    .unwrap();
    let mut sys = rosebud::core::Rosebud::builder(rosebud::core::RosebudConfig::with_rpus(2))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
        .unwrap();
    sys.run(100);
    sys.poke(0);
    sys.run(100);
    assert!(!sys.rpus()[0].is_halted(), "masked poke must be ignored");
    assert_eq!(sys.rpu_status(0), 123);
}

#[test]
fn memory_write_and_read_back() {
    let mut sys = build_forwarding_system(2).unwrap();
    let table = [0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04];
    // Load a lookup table into packet memory before traffic (A.6).
    sys.write_rpu_mem(1, MemRegion::Pmem, 0x100, &table);
    assert_eq!(sys.read_rpu_mem(1, MemRegion::Pmem, 0x100, 8), table);
    // And into dmem.
    sys.write_rpu_mem(1, MemRegion::Dmem, 0x40, &table[..4]);
    assert_eq!(sys.read_rpu_mem(1, MemRegion::Dmem, 0x40, 4), table[..4]);
}

#[test]
fn reconfiguration_lifecycle_states() {
    let sys = build_forwarding_system(4).unwrap();
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 20.0);
    h.run(20_000);
    h.sys.reconfigure_rpu(2, None, None);
    assert!(h.sys.reconfigure_pending(2));
    assert_eq!(h.sys.enabled_mask() & (1 << 2), 0, "LB stops feeding RPU 2");
    // Drain → write → boot.
    let mut saw_writing = false;
    for _ in 0..100_000 {
        h.tick();
        if matches!(h.sys.rpus()[2].state(), RpuState::Reconfiguring { .. }) {
            saw_writing = true;
        }
        if !h.sys.reconfigure_pending(2) {
            break;
        }
    }
    assert!(saw_writing, "never entered the PR-writing phase");
    assert!(!h.sys.reconfigure_pending(2));
    assert_eq!(h.sys.rpus()[2].state(), RpuState::Running);
    assert!(h.sys.enabled_mask() & (1 << 2) != 0, "LB resumed");
    // The rebooted RPU processes traffic again.
    let before = h.sys.rpu_counters(2).rx_frames;
    h.run(20_000);
    assert!(h.sys.rpu_counters(2).rx_frames > before);
}

#[test]
fn no_packets_lost_during_live_reconfiguration() {
    let sys = build_forwarding_system(16).unwrap();
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(512, 2)), 100.0);
    h.run(40_000);
    let drops_before = h.sys.drop_count();
    h.sys.reconfigure_rpu(7, None, None);
    h.run(80_000);
    assert!(!h.sys.reconfigure_pending(7));
    assert_eq!(h.sys.drop_count(), drops_before, "PR dropped packets");
}
