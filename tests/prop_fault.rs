//! Property tests for fault injection and the self-healing supervisor:
//! packet conservation holds under arbitrary fault schedules and traffic,
//! and the supervisor never hands traffic back to a region it has not
//! verified as rebooted.

use proptest::prelude::*;
use rosebud::apps::forwarder::build_watchdog_forwarding_system;
use rosebud::core::{FaultPlan, Harness, RpuState, Supervisor, SupervisorConfig};
use rosebud::net::{FixedSizeGen, FlowTrafficGen};

const RPUS: usize = 4;

proptest! {
    // Each case is a full supervised chaos run; a handful of cases sweeps a
    // wide space of schedules without stretching the suite.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ledger_balances_under_random_faults_and_traffic(
        plan_seed in any::<u64>(),
        traffic_seed in any::<u64>(),
        events in 1usize..8,
        size in 64usize..1200,
        gbps in 5.0f64..200.0,
    ) {
        let mut sys = build_watchdog_forwarding_system(RPUS, 64).unwrap();
        sys.install_fault_plan(FaultPlan::random(plan_seed, 40_000, RPUS, 2, events));
        let gen = FlowTrafficGen::new(32, size, 0.05, traffic_seed);
        let mut h = Harness::new(sys, Box::new(gen), gbps);
        let mut sup = Supervisor::with_config(
            &h.sys,
            SupervisorConfig { drain_timeout: 3_000, ..SupervisorConfig::default() },
        );
        // tick() re-asserts the ledger every 1024 cycles on its own; any
        // imbalance panics the case with the full breakdown.
        for _ in 0..60_000 {
            h.tick();
            sup.poll(&mut h.sys);
        }
        h.sys.assert_conservation();
    }

    #[test]
    fn supervisor_never_reenables_an_unrebooted_region(
        plan_seed in any::<u64>(),
        events in 1usize..10,
    ) {
        let mut sys = build_watchdog_forwarding_system(RPUS, 64).unwrap();
        sys.install_fault_plan(FaultPlan::random(plan_seed, 30_000, RPUS, 2, events));
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(128, 2)), 40.0);
        let mut sup = Supervisor::new(&h.sys);
        let mut prev = h.sys.enabled_mask();
        for _ in 0..80_000 {
            h.tick();
            sup.poll(&mut h.sys);
            let fresh = h.sys.enabled_mask() & !prev;
            for r in 0..RPUS {
                if fresh & (1 << r) != 0 {
                    // An enable-bit 0 -> 1 transition is the supervisor
                    // vouching for the region: it must actually be alive.
                    prop_assert_eq!(
                        h.sys.rpus()[r].state(), RpuState::Running,
                        "re-enabled RPU {} is not running", r
                    );
                    prop_assert!(!h.sys.rpus()[r].is_halted(), "re-enabled RPU {} halted", r);
                    prop_assert!(!h.sys.rpus()[r].is_hung(), "re-enabled RPU {} still wedged", r);
                    prop_assert!(
                        h.sys.rpus()[r].sw_cycles() > 0,
                        "re-enabled RPU {} never retired a cycle", r
                    );
                }
            }
            prev = h.sys.enabled_mask();
        }
    }
}

use rosebud::core::{Fleet, FleetConfig, FleetSupervisor, FleetSupervisorConfig, KernelMode};
use rosebud::core::{FleetHarness, FleetStep};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Fleet-scale analogue of the ledger property: whatever device-scale
    // havoc a random plan schedules (crashes, host-link outages, front-link
    // flaps, brownouts), every frame the front LB ever accepted stays
    // accounted — delivered, dropped, quarantined, purged, or in flight —
    // across ring removals, whole-box purges, and reloads.
    #[test]
    fn fleet_ledger_balances_under_random_device_faults(
        plan_seed in any::<u64>(),
        traffic_seed in any::<u64>(),
        events in 1usize..6,
        gbps in 5.0f64..80.0,
    ) {
        let fleet = Fleet::new(
            FleetConfig { boxes: 2, ..FleetConfig::default() },
            KernelMode::Sequential,
            |_| build_watchdog_forwarding_system(RPUS, 64).unwrap(),
        ).unwrap();
        let gen = FlowTrafficGen::new(64, 256, 0.05, traffic_seed);
        let mut h = FleetHarness::new(fleet, Box::new(gen), gbps);
        h.fleet.install_fault_plan(rosebud::core::FaultPlan::random_fleet(
            plan_seed, 30_000, 2, events,
        ));
        let mut sup = FleetSupervisor::with_config(
            &h.fleet,
            FleetSupervisorConfig {
                drain_timeout: 3_000,
                reload_cycles: 5_000,
                ..FleetSupervisorConfig::default()
            },
        );
        // Fleet::tick() re-asserts the ledger every 1024 cycles on its own.
        for _ in 0..70_000 {
            sup.poll(&mut h.fleet);
            h.tick();
        }
        h.fleet.assert_conservation();
    }

    // The ladder never skips rungs: a box is only ever re-admitted to the
    // ring after a reload and a full probation, and every purge is preceded
    // by a drain.
    #[test]
    fn fleet_ladder_rungs_stay_ordered(
        plan_seed in any::<u64>(),
        events in 1usize..6,
    ) {
        let fleet = Fleet::new(
            FleetConfig { boxes: 2, ..FleetConfig::default() },
            KernelMode::Sequential,
            |_| build_watchdog_forwarding_system(RPUS, 64).unwrap(),
        ).unwrap();
        let mut h = FleetHarness::new(
            fleet,
            Box::new(FixedSizeGen::new(128, 2)),
            30.0,
        );
        h.fleet.install_fault_plan(rosebud::core::FaultPlan::random_fleet(
            plan_seed, 25_000, 2, events,
        ));
        let mut sup = FleetSupervisor::with_config(
            &h.fleet,
            FleetSupervisorConfig {
                drain_timeout: 3_000,
                reload_cycles: 5_000,
                ..FleetSupervisorConfig::default()
            },
        );
        for _ in 0..80_000 {
            sup.poll(&mut h.fleet);
            h.tick();
        }
        for device in 0..h.fleet.num_boxes() {
            let mut draining = false;
            let mut reloaded = false;
            let mut probation = false;
            for e in h.fleet.log().iter().filter(|e| e.device == device) {
                match e.step {
                    FleetStep::DrainStarted => draining = true,
                    FleetStep::DrainedClean => {
                        prop_assert!(draining, "box {device}: drain finished before starting");
                    }
                    FleetStep::Purged { .. } => {
                        prop_assert!(draining, "box {device}: purge without a drain");
                    }
                    FleetStep::Reloading => {
                        prop_assert!(draining, "box {device}: reload without a drain");
                        reloaded = true;
                    }
                    FleetStep::Probation => {
                        prop_assert!(reloaded, "box {device}: probation without a reload");
                        probation = true;
                    }
                    FleetStep::Readmitted => {
                        prop_assert!(
                            probation,
                            "box {device}: re-admitted without serving probation"
                        );
                        draining = false;
                        reloaded = false;
                        probation = false;
                    }
                    _ => {}
                }
            }
        }
    }
}
