//! Property test for the analyzer's WCET model: for generated straight-line
//! and single-loop programs, the static bound must dominate the cycles an
//! actual ISS run takes — across random instruction mixes, operand values,
//! and loop trip counts.

use proptest::prelude::*;
use rosebud::riscv::{assemble, Analyzer, Cpu, MachineSpec, RamBus, StepResult};

const RAM_BYTES: u32 = 65536;

fn analyzer() -> Analyzer {
    Analyzer::new(MachineSpec::bare(4096, RAM_BYTES))
}

/// Runs `src` on the ISS until `ebreak`, returning measured cycles.
fn simulate(src: &str) -> u64 {
    let image = assemble(src).expect("generated program must assemble");
    let mut bus = RamBus::new(RAM_BYTES as usize);
    bus.load_image(0, image.words());
    let mut cpu = Cpu::new(0);
    let mut steps = 0u64;
    loop {
        match cpu.step(&mut bus) {
            StepResult::Break => return cpu.cycles(),
            StepResult::Fault(f) => panic!("generated program faulted: {f:?}\n{src}"),
            _ => {}
        }
        steps += 1;
        assert!(
            steps < 1_000_000,
            "generated program did not terminate:\n{src}"
        );
    }
}

/// One random body instruction. Everything writes registers the program has
/// already initialized (a0..a3 and t0), so the analyzer's uninit check stays
/// quiet and the WCET comparison is the only thing under test. `t0` holds a
/// valid RAM address for the memory ops.
fn body_instr(pick: u8, val: i32) -> String {
    let imm = val.rem_euclid(2048);
    match pick % 8 {
        0 => format!("addi a0, a0, {imm}"),
        1 => "xor a1, a0, a2".to_string(),
        2 => format!("sltiu a2, a1, {imm}"),
        3 => "mul a3, a0, a1".to_string(),
        4 => "divu a2, a1, a0".to_string(),
        5 => "sw a0, 8(t0)".to_string(),
        6 => "lw a1, 8(t0)".to_string(),
        _ => format!("srli a0, a0, {}", val.rem_euclid(31) + 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Straight-line programs: the acyclic path bound is the whole story.
    #[test]
    fn straight_line_bound_dominates_simulation(
        picks in proptest::collection::vec(any::<u8>(), 1..24),
        vals in proptest::collection::vec(any::<i32>(), 24),
        a0 in any::<u16>(),
    ) {
        let mut src = String::from(
            "
                li t0, 1024
                li a0, AA
                li a1, 3
                li a2, 7
                li a3, 1
            ",
        )
        .replace("AA", &a0.to_string());
        for (i, &p) in picks.iter().enumerate() {
            src.push_str(&format!("    {}\n", body_instr(p, vals[i])));
        }
        src.push_str("    ebreak\n");

        let report = analyzer().check(&assemble(&src).unwrap());
        prop_assert!(!report.has_errors(), "{}", report.render("generated"));
        let bound = report.wcet[0].acyclic_cycles;
        let measured = simulate(&src);
        prop_assert!(
            bound >= measured,
            "static bound {bound} < simulated {measured} cycles:\n{src}"
        );
    }

    /// Single counted loops: acyclic path + (iters − 1) × per-iteration
    /// bound must cover the run. The `-1` is because the bound's acyclic
    /// part already walks the loop body once.
    #[test]
    fn counted_loop_bound_dominates_simulation(
        picks in proptest::collection::vec(any::<u8>(), 1..10),
        vals in proptest::collection::vec(any::<i32>(), 10),
        iters in 1u32..200,
    ) {
        let mut src = String::from(
            "
                li t0, 1024
                li a0, 5
                li a1, 3
                li a2, 7
                li a3, 1
                li s0, II
            loop:
            ",
        )
        .replace("II", &iters.to_string());
        for (i, &p) in picks.iter().enumerate() {
            src.push_str(&format!("    {}\n", body_instr(p, vals[i])));
        }
        src.push_str(
            "
                addi s0, s0, -1
                bnez s0, loop
                ebreak
            ",
        );

        let report = analyzer().check(&assemble(&src).unwrap());
        prop_assert!(!report.has_errors(), "{}", report.render("generated"));
        let w = &report.wcet[0];
        prop_assert_eq!(w.loops.len(), 1);
        let bound = w.acyclic_cycles + u64::from(iters - 1) * w.loops[0].cycles_per_iter;
        let measured = simulate(&src);
        prop_assert!(
            bound >= measured,
            "static bound {bound} < simulated {measured} cycles ({iters} iters):\n{src}"
        );
    }
}
