//! Functional correctness of the two case studies: the firewall drops
//! exactly the blacklist (§7.2) and the IDS flags exactly the rule-matching
//! packets (§7.1), verified against recomputed ground truth.

use rosebud::accel::RuleSet;
use rosebud::apps::firewall::{
    build_firewall_system, expected_drops, firewall_trace, synthetic_blacklist, NoopGen,
};
use rosebud::apps::pigasus::{build_pigasus_system_with, ReorderMode};
use rosebud::apps::rules::{attack_trace, synthetic_rules};
use rosebud::core::Harness;
use rosebud::net::{FlowTrafficGen, Trace, TrafficGen};

fn inject_trace(h: &mut Harness, trace: &Trace, gap: u64) {
    for pkt in trace {
        let mut p = pkt.clone();
        loop {
            match h.sys.inject(p) {
                Ok(()) => break,
                Err(back) => {
                    p = back;
                    h.tick();
                }
            }
        }
        h.run(gap);
    }
}

#[test]
fn firewall_verdicts_match_ground_truth_exactly() {
    let blacklist = synthetic_blacklist(1050, 7);
    let sys = build_firewall_system(16, &blacklist).unwrap();
    let trace = firewall_trace(&blacklist, 4, 256);
    let expected = expected_drops(&trace, &blacklist);
    let mut h = Harness::new(sys, Box::new(NoopGen), 0.0);
    inject_trace(&mut h, &trace, 1);
    h.run(40_000);
    assert_eq!(h.sys.drop_count() as usize, expected);
    assert_eq!(h.received() as usize, trace.len() - expected);
}

#[test]
fn firewall_never_drops_clean_traffic() {
    let blacklist = synthetic_blacklist(300, 11);
    let sys = build_firewall_system(8, &blacklist).unwrap();
    // Flow traffic sources from 10.x which the synthetic blacklist may hit;
    // filter the trace to provably-clean packets first.
    let mut gen = FlowTrafficGen::new(64, 300, 0.0, 13);
    let matcher = rosebud::accel::FirewallMatcher::from_prefixes(&blacklist);
    let trace: Trace = (0..500u64)
        .map(|i| gen.generate(i, 0))
        .filter(|p| {
            p.ipv4()
                .map(|ip| !matcher.is_blacklisted(ip.src_u32()))
                .unwrap_or(false)
        })
        .collect();
    let total = trace.len();
    let mut h = Harness::new(sys, Box::new(NoopGen), 0.0);
    inject_trace(&mut h, &trace, 1);
    h.run(40_000);
    assert_eq!(h.sys.drop_count(), 0);
    assert_eq!(h.received() as usize, total);
}

#[test]
fn ids_flags_exactly_the_attack_packets() {
    let rules = synthetic_rules(64, 17);
    let sys = build_pigasus_system_with(ReorderMode::Hardware, rules.clone(), 8, 16).unwrap();
    let attacks = attack_trace(&rules, 512);
    // Ground truth via the compiled rule set itself.
    let compiled = RuleSet::compile(rules);
    let expected_flagged = attacks
        .iter()
        .filter(|p| {
            let tcp = p.tcp().unwrap();
            !compiled
                .matches(p.payload().unwrap(), tcp.src_port, tcp.dst_port)
                .is_empty()
        })
        .count();
    assert_eq!(expected_flagged, attacks.len());

    let mut h = Harness::new(sys, Box::new(NoopGen), 0.0);
    inject_trace(&mut h, &attacks, 4);
    h.run(60_000);
    assert_eq!(
        h.host_received() as usize,
        attacks.len(),
        "every attack packet must reach the host"
    );
    assert_eq!(h.received(), 0, "no attack leaks out a physical port");
}

#[test]
fn ids_passes_clean_traffic_untouched() {
    let rules = synthetic_rules(64, 19);
    let sys = build_pigasus_system_with(ReorderMode::Hardware, rules, 8, 16).unwrap();
    let mut gen = FlowTrafficGen::new(32, 400, 0.0, 21);
    let trace: Trace = (0..400u64).map(|i| gen.generate(i, 0)).collect();
    let total = trace.len();
    let mut h = Harness::new(sys, Box::new(NoopGen), 0.0);
    inject_trace(&mut h, &trace, 2);
    h.run(60_000);
    assert_eq!(h.host_received(), 0, "clean traffic must not be flagged");
    assert_eq!(h.received() as usize, total);
}

#[test]
fn sw_reorder_ids_matches_despite_reordering() {
    // With software reordering enabled and genuinely reordered input, every
    // attack packet is still flagged (the flow table restores order before
    // matching) and clean traffic still flows.
    let rules = synthetic_rules(32, 23);
    let sys = build_pigasus_system_with(ReorderMode::Software, rules.clone(), 8, 16).unwrap();
    let base = FlowTrafficGen::new(64, 600, 0.05, 31);
    let payloads: Vec<Vec<u8>> = rules.iter().map(|r| r.pattern.clone()).collect();
    let gen = rosebud::net::AttackMixGen::new(base, 0.05, payloads, 37);
    let mut h = Harness::new(sys, Box::new(gen), 20.0);
    h.run(200_000);
    assert!(h.received() > 1_000, "clean traffic flows");
    assert!(h.host_received() > 20, "attacks are flagged");
    // Attack fraction sanity: ~5% of traffic should reach the host (matched
    // or punted), not 0% and not half.
    let frac = h.host_received() as f64 / (h.received() + h.host_received()) as f64;
    assert!(
        (0.02..0.15).contains(&frac),
        "host fraction {frac:.3} out of range"
    );
}
