//! Property test for the taint analysis: generated DMA firmware whose
//! packet-derived length passes through a random (taint-preserving) op chain
//! is denied, and the same program with a mask or bounds-guard sanitizer
//! inserted passes clean — across random chains, masks, and guard limits.

use proptest::prelude::*;
use rosebud::core::{machine_spec, RosebudConfig};
use rosebud::riscv::{assemble, Analyzer, Check, LintReport, Severity};

fn check(src: &str) -> LintReport {
    let analyzer = Analyzer::new(machine_spec(&RosebudConfig::with_rpus(1)));
    analyzer.check(&assemble(src).expect("generated program must assemble"))
}

fn taint_errors(report: &LintReport) -> usize {
    report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error && d.check == Check::Taint)
        .count()
}

/// One op in the chain from the packet load to the DMA length register.
/// Every op propagates taint (arithmetic/logic with a clean second operand
/// keeps the attacker's influence alive), so only an explicit sanitizer may
/// clear it.
fn chain_op(pick: u8, val: u32) -> String {
    let imm = val % 2048;
    match pick % 6 {
        0 => format!("addi a2, a2, {imm}"),
        1 => "xor a2, a2, s3".to_string(),
        2 => format!("slli a2, a2, {}", val % 4),
        3 => format!("srli a2, a2, {}", val % 4),
        4 => "or a2, a2, s3".to_string(),
        _ => "add a2, a2, s3".to_string(),
    }
}

/// The protocol-correct DMA skeleton: poll, take the descriptor, run the op
/// chain over the packet-derived length in `a2`, optionally sanitize, then
/// program + kick + completion-poll the engine, release, and forward.
fn dma_program(chain: &[String], sanitizer: &str) -> String {
    format!(
        "
        .equ IO, 0x02000000
            li t0, IO
            li t1, 0x01000000
            li s3, 7                 # clean mixing operand for the chain
        poll:
            sw t1, 0x40(t0)          # pet the watchdog
            lw a0, 0x00(t0)          # RECV_READY
            beqz a0, poll
            lw a1, 0x04(t0)          # RECV_DESC_LO
            lw a2, 0(t1)             # packet word: the attacker's length
            {chain}
            {sanitizer}
            sw zero, 0x44(t0)        # DMA_HOST_ADDR
            sw t1, 0x48(t0)          # DMA_LOCAL_ADDR
            sw a2, 0x4c(t0)          # DMA_LEN
            li a3, 1
            sw a3, 0x50(t0)          # DMA_CTRL: kick
        wait:
            sw t1, 0x40(t0)          # keep petting
            lw a3, 0x54(t0)          # DMA_STATUS completion poll
            bnez a3, wait
            sw zero, 0x0c(t0)        # RECV_RELEASE
            sw a1, 0x10(t0)          # stage
            sw a1, 0x14(t0)          # commit
            j poll
        ",
        chain = chain.join("\n            "),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Mask-sanitized programs pass; their unsanitized twins are denied.
    #[test]
    fn mask_sanitized_passes_and_unsanitized_twin_fails(
        picks in proptest::collection::vec(any::<u8>(), 0..6),
        vals in proptest::collection::vec(any::<u32>(), 6),
        mask_bits in 4u32..16,
    ) {
        let chain: Vec<String> = picks
            .iter()
            .zip(&vals)
            .map(|(&p, &v)| chain_op(p, v))
            .collect();
        let mask = (1u32 << mask_bits) - 1;

        let sanitized = check(&dma_program(
            &chain,
            &format!("andi a2, a2, {}", mask & 0x7ff),
        ));
        prop_assert!(
            !sanitized.has_errors(),
            "mask-sanitized program must pass:\n{}",
            sanitized.render("sanitized")
        );

        let twin = check(&dma_program(&chain, "# no sanitizer"));
        prop_assert!(
            taint_errors(&twin) > 0,
            "unsanitized twin must be denied:\n{}",
            twin.render("twin")
        );
    }

    /// Bounds-guard sanitization (`bltu` against a clean limit) also clears
    /// the taint on the guarded edge.
    #[test]
    fn guard_sanitized_passes_and_unsanitized_twin_fails(
        picks in proptest::collection::vec(any::<u8>(), 0..6),
        vals in proptest::collection::vec(any::<u32>(), 6),
        limit in 64u32..4096,
    ) {
        let chain: Vec<String> = picks
            .iter()
            .zip(&vals)
            .map(|(&p, &v)| chain_op(p, v))
            .collect();
        let guard = format!(
            "li s4, {limit}\n            bgeu a2, s4, poll # oversized: drop back to poll"
        );

        let guarded = check(&dma_program(&chain, &guard));
        prop_assert!(
            taint_errors(&guarded) == 0,
            "guard-sanitized program must have no taint errors:\n{}",
            guarded.render("guarded")
        );

        let twin = check(&dma_program(&chain, "# no sanitizer"));
        prop_assert!(
            taint_errors(&twin) > 0,
            "unsanitized twin must be denied:\n{}",
            twin.render("twin")
        );
    }
}
