//! Golden-trace regression suite: the cycle-stamped event stream of two
//! fixed-seed scenarios — the Fig. 7 forwarder and the §7.2 firewall — is
//! snapshotted under `tests/golden/` and diffed on every run. Any change to
//! LB arbitration, descriptor lifecycle, FIFO behaviour, or counter
//! semantics shows up as a trace diff here before it shows up as a silently
//! different benchmark number.
//!
//! Refresh the snapshots after an *intentional* behaviour change with:
//! `UPDATE_GOLDEN=1 cargo test --test trace_golden`

use std::path::PathBuf;

use rosebud::apps::firewall::{
    build_firewall_system, firewall_trace, synthetic_blacklist, NoopGen,
};
use rosebud::apps::forwarder::{build_forwarding_system, build_watchdog_forwarding_system};
use rosebud::core::{FaultKind, FaultPlan, Harness, Supervisor, SupervisorConfig, TraceConfig};
use rosebud::net::{FixedSizeGen, ImixGen};

/// Every snapshot this suite owns. `assert_golden` refuses names outside
/// this registry, and `golden_dir_has_no_orphans` refuses files under
/// `tests/golden/` that no test reads — an orphaned snapshot silently
/// stops guarding anything, which is worse than a missing one.
const GOLDEN_SNAPSHOTS: &[&str] = &[
    "forwarder.trace",
    "firewall.trace",
    // Owned by tests/firmware_lint.rs (shipped-firmware lint reports).
    "firmware.lint",
];

fn golden_path(name: &str) -> PathBuf {
    assert!(
        GOLDEN_SNAPSHOTS.contains(&name),
        "snapshot {name:?} is not in GOLDEN_SNAPSHOTS; register it there \
         so the orphan check knows it is owned"
    );
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Fails on files under `tests/golden/` that no test owns — in both the
/// normal and the `UPDATE_GOLDEN=1` paths, since a refresh run is exactly
/// when a renamed snapshot leaves its stale predecessor behind.
#[test]
fn golden_dir_has_no_orphans() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut orphans = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("tests/golden must exist") {
        let name = entry.expect("readable dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        if !GOLDEN_SNAPSHOTS.contains(&name.as_str()) {
            orphans.push(name);
        }
    }
    orphans.sort();
    assert!(
        orphans.is_empty(),
        "orphaned files under tests/golden/ (no test reads them — delete \
         them or register them in GOLDEN_SNAPSHOTS): {orphans:?}"
    );
}

/// Compares `actual` against the named snapshot, reporting the first
/// differing line. `UPDATE_GOLDEN=1` rewrites the snapshot instead.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test --test trace_golden",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    for (i, (want, got)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            want,
            got,
            "golden trace {name} diverges at line {} (refresh intentional \
             changes with UPDATE_GOLDEN=1)",
            i + 1
        );
    }
    panic!(
        "golden trace {name} length changed: expected {} lines, got {} \
         (refresh intentional changes with UPDATE_GOLDEN=1)",
        expected.lines().count(),
        actual.lines().count()
    );
}

/// The Fig. 7 forwarder at a fixed seedless load: four RPUs, 256-byte
/// frames, counters sampled every 1024 cycles, per-PC profiling on.
fn forwarder_trace_text() -> String {
    let mut sys = build_forwarding_system(4).unwrap();
    sys.enable_tracing(TraceConfig {
        counter_interval: 1024,
        pc_profile: true,
        max_events: 1 << 20,
    });
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 20.0);
    h.run(4_000);
    h.sys.take_tracer().unwrap().compact_text()
}

/// The §7.2 firewall verification pass: a fixed blacklist trace injected
/// packet by packet — attack frames must show up as zero-length drops.
fn firewall_trace_text() -> String {
    let blacklist = synthetic_blacklist(6, 7);
    let sys = build_firewall_system(4, &blacklist);
    let mut sys = sys.unwrap();
    sys.enable_tracing(TraceConfig {
        counter_interval: 2048,
        pc_profile: false,
        max_events: 1 << 20,
    });
    let trace = firewall_trace(&blacklist, 4, 256);
    let mut h = Harness::new(sys, Box::new(NoopGen), 0.0);
    for pkt in &trace {
        let mut p = pkt.clone();
        loop {
            match h.sys.inject(p) {
                Ok(()) => break,
                Err(back) => {
                    p = back;
                    h.tick();
                }
            }
        }
        h.tick();
    }
    h.run(5_000);
    h.sys.take_tracer().unwrap().compact_text()
}

#[test]
fn forwarder_trace_matches_golden() {
    assert_golden("forwarder.trace", &forwarder_trace_text());
}

#[test]
fn firewall_trace_matches_golden() {
    assert_golden("firewall.trace", &firewall_trace_text());
}

/// The chaos scenario of `tests/fault_recovery.rs`, traced: a firmware hang
/// under live IMIX traffic, walked through the full supervisor ladder.
fn chaos_trace_text(traffic_seed: u64) -> String {
    let mut sys = build_watchdog_forwarding_system(8, 64).unwrap();
    sys.install_fault_plan(FaultPlan::new(7).at(20_000, FaultKind::FirmwareHang { rpu: 3 }));
    sys.enable_tracing(TraceConfig {
        counter_interval: 8192,
        pc_profile: false,
        max_events: 1 << 21,
    });
    let mut h = Harness::new(sys, Box::new(ImixGen::new(2, traffic_seed)), 60.0);
    let mut sup = Supervisor::with_config(
        &h.sys,
        SupervisorConfig {
            drain_timeout: 4_000,
            ..SupervisorConfig::default()
        },
    );
    for _ in 0..70_000 {
        h.tick();
        sup.poll(&mut h.sys);
    }
    h.sys.take_tracer().unwrap().compact_text()
}

#[test]
fn chaos_trace_is_deterministic_per_seed() {
    let a = chaos_trace_text(11);
    let b = chaos_trace_text(11);
    assert_eq!(a, b, "same seed must yield a byte-identical trace");

    // Sanity: the trace actually contains the interesting event classes, so
    // determinism is not vacuous.
    for needle in [
        "sup rpu=3 detected kind=hung",
        "sup rpu=3 drain",
        "sup rpu=3 forced-evict",
        "sup rpu=3 reload",
        "sup rpu=3 verify",
        "sup rpu=3 reenabled",
        "rpu.state rpu=3 state=reconfiguring",
        "lb.mask mask=0xf7",
        "lb.assign",
        "desc.rx",
        "desc.tx",
        "ctr rpu=0",
    ] {
        assert!(a.contains(needle), "trace must contain {needle:?}");
    }
}

#[test]
fn chaos_trace_differs_across_seeds() {
    assert_ne!(
        chaos_trace_text(11),
        chaos_trace_text(12),
        "different traffic seeds must not collapse to the same trace"
    );
}
