//! System-level property tests: packet conservation and slot-accounting
//! invariants hold under randomized traffic shapes, sizes and loads.

use proptest::prelude::*;
use rosebud::apps::forwarder::build_forwarding_system;
use rosebud::core::Harness;
use rosebud::net::{FixedSizeGen, FlowTrafficGen};

proptest! {
    // System runs are comparatively slow; a couple dozen random cases is a
    // meaningful sweep without stretching the suite.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservation_under_random_fixed_size_traffic(
        size in 64usize..2000,
        gbps in 1.0f64..200.0,
        rpus in prop_oneof![Just(4usize), Just(8), Just(16)],
    ) {
        let sys = build_forwarding_system(rpus).unwrap();
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(size, 2)), gbps);
        h.run(30_000);
        h.sys.run(30_000); // drain with no new traffic
        for p in 0..2 {
            let _ = h.sys.take_output(p);
        }
        prop_assert_eq!(h.sys.in_flight(), 0, "failed to drain");
        prop_assert_eq!(h.sys.drop_count(), 0, "forwarder dropped");
        // Every slot returned to the tracker.
        for r in 0..rpus {
            prop_assert!(
                h.sys.tracker().all_free(r),
                "RPU {} leaked slots", r
            );
        }
    }

    #[test]
    fn conservation_under_random_flow_traffic(
        flows in 1usize..128,
        size in 70usize..1500,
        reorder in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        let sys = build_forwarding_system(8).unwrap();
        let gen = FlowTrafficGen::new(flows, size, reorder, seed);
        let mut h = Harness::new(sys, Box::new(gen), 60.0);
        h.run(25_000);
        let injected = h.injected();
        h.sys.run(25_000);
        let mut stragglers = 0u64;
        for p in 0..2 {
            stragglers += h.sys.take_output(p).len() as u64;
        }
        prop_assert_eq!(h.sys.in_flight(), 0);
        prop_assert_eq!(h.received() + stragglers + h.host_received(), injected);
    }

    #[test]
    fn rpu_counters_balance(
        size in 64usize..1000,
        seed in any::<u64>(),
    ) {
        let _ = seed;
        let sys = build_forwarding_system(4).unwrap();
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(size, 2)), 30.0);
        h.run(20_000);
        h.sys.run(20_000);
        for r in 0..4 {
            let c = h.sys.rpu_counters(r);
            prop_assert_eq!(
                c.rx_frames, c.tx_frames,
                "RPU {} rx/tx imbalance after drain", r
            );
        }
    }
}

/// Kernel-partitioning invariance: the parallel kernel's observable output
/// must not depend on its tuning knobs. Whatever the barrier quantum
/// (including the degenerate 1-cycle quantum) and however the lanes are
/// partitioned across worker threads (including zero workers, the fused
/// coordinator loop), the conservation ledger and the full compact trace
/// must match the sequential oracle byte for byte.
mod kernel_partitioning {
    use proptest::prelude::*;
    use rosebud::apps::forwarder::build_duty_cycle_forwarding_system;
    use rosebud::core::{Harness, KernelMode, TraceConfig};
    use rosebud::net::ImixGen;

    fn observe(kernel: KernelMode, rpus: usize, seed: u64) -> (String, String) {
        let mut sys = build_duty_cycle_forwarding_system(rpus, 300).unwrap();
        sys.set_kernel(kernel);
        sys.enable_tracing(TraceConfig {
            counter_interval: 2048,
            pc_profile: false,
            max_events: 1 << 20,
        });
        let mut h = Harness::new(sys, Box::new(ImixGen::new(2, seed)), 20.0);
        h.run(12_000);
        (
            format!("{:?}", h.sys.ledger()),
            h.sys.take_tracer().unwrap().compact_text(),
        )
    }

    proptest! {
        // Each case runs the scenario twice (oracle + candidate); keep the
        // case count modest.
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn any_quantum_and_partitioning_matches_sequential(
            quantum in 1u32..=64,
            workers in 0usize..=5,
            rpus in prop_oneof![Just(4usize), Just(8), Just(16)],
            seed in any::<u64>(),
        ) {
            let (seq_ledger, seq_trace) = observe(KernelMode::Sequential, rpus, seed);
            let (par_ledger, par_trace) =
                observe(KernelMode::Parallel { workers, quantum }, rpus, seed);
            prop_assert_eq!(
                &par_ledger, &seq_ledger,
                "ledger diverged (quantum={}, workers={}, rpus={})",
                quantum, workers, rpus
            );
            prop_assert_eq!(
                par_trace, seq_trace,
                "trace diverged (quantum={}, workers={}, rpus={})",
                quantum, workers, rpus
            );
        }
    }
}
