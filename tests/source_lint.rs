//! Determinism source-lint: the simulation core must stay bit-reproducible,
//! so its sources may not reach for nondeterminism — wall-clock time,
//! unordered hash-map iteration, or OS-seeded randomness. The packet/cycle
//! goldens and the lint golden all depend on this.
//!
//! The scan is deliberately dumb (substring match per line, comments
//! stripped) so a violation is obvious from the failure message; anything
//! intentional goes in [`ALLOWLIST`] with a reason.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Crates whose sources feed deterministic simulation results.
const SCANNED: &[&str] = &["crates/core/src", "crates/kernel/src", "crates/riscv/src"];

/// Patterns that smell like nondeterminism in a simulation core.
const HAZARDS: &[(&str, &str)] = &[
    (
        "std::time::Instant",
        "wall-clock time varies run to run; use simulated cycles",
    ),
    ("Instant::now", "wall-clock time; use simulated cycles"),
    ("SystemTime", "wall-clock time; use simulated cycles"),
    (
        "HashMap",
        "iteration order is seeded per-process; use BTreeMap",
    ),
    (
        "HashSet",
        "iteration order is seeded per-process; use BTreeSet",
    ),
    ("thread_rng", "OS-seeded randomness; use a seeded PRNG"),
    ("rand::random", "OS-seeded randomness; use a seeded PRNG"),
];

/// Known-intentional uses: (path suffix, pattern, reason). The reason is
/// printed when an allowlist entry goes stale so it can be pruned. The
/// async/bench shell (`crates/bench`, the criterion stand-in) is outside
/// [`SCANNED`] entirely — wall-clock timing is its whole job — so entries
/// here should stay rare: currently none.
const ALLOWLIST: &[(&str, &str, &str)] = &[];

fn allowed(path: &str, pattern: &str) -> bool {
    ALLOWLIST
        .iter()
        .any(|(suffix, pat, _)| path.ends_with(suffix) && *pat == pattern)
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("scanned directory exists") {
        let path = entry.expect("readable dir entry").path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
}

#[test]
fn simulation_core_sources_are_deterministic() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut violations = String::new();
    let mut used_allowlist: Vec<(&str, &str)> = Vec::new();

    for dir in SCANNED {
        let mut files = Vec::new();
        rust_files(&root.join(dir), &mut files);
        assert!(!files.is_empty(), "{dir} has sources to scan");
        for file in files {
            let rel = file.strip_prefix(&root).unwrap().display().to_string();
            let text = std::fs::read_to_string(&file).unwrap();
            for (lineno, line) in text.lines().enumerate() {
                // Strip line comments so prose mentioning a hazard is fine.
                let code = line.split("//").next().unwrap_or("");
                for (pattern, why) in HAZARDS {
                    if !code.contains(pattern) {
                        continue;
                    }
                    if allowed(&rel, pattern) {
                        used_allowlist.push((pattern, why));
                        continue;
                    }
                    writeln!(violations, "{rel}:{}: `{pattern}` ({why})", lineno + 1).unwrap();
                }
            }
        }
    }

    assert!(
        violations.is_empty(),
        "nondeterminism hazards in the simulation core:\n{violations}\
         (intentional uses go in ALLOWLIST with a reason)"
    );

    // Stale allowlist entries hide future violations; prune them.
    for (suffix, pattern, reason) in ALLOWLIST {
        assert!(
            used_allowlist.iter().any(|(p, _)| p == pattern) && root.join(suffix).exists(),
            "stale ALLOWLIST entry ({suffix}, {pattern}): {reason}"
        );
    }
}
