//! Live-shell acceptance: a Rosebud system serving *real* frames from real
//! endpoints (in-process ring, Unix-domain sockets) must forward and filter
//! them correctly, keep the conservation ledger balanced, and — the
//! record/replay contract — produce an event log that replays bit-exactly
//! through a fresh sequential-kernel oracle: same compact trace, same
//! ledger, same diagnostics.

use std::io::{Read, Write};
use std::os::unix::net::{UnixDatagram, UnixStream};
use std::path::PathBuf;

use rosebud::apps::firewall::{
    build_firewall_system, expected_drops, firewall_trace, synthetic_blacklist,
};
use rosebud::core::ports::{replay, EventLog};
use rosebud::core::{Rosebud, TraceConfig};
use rosebud::shell::{ControlServer, RingBackend, Shell, UdsBackend};

fn trace_cfg() -> TraceConfig {
    TraceConfig {
        counter_interval: 4096,
        pc_profile: true,
        max_events: 1 << 21,
    }
}

fn traced_firewall(blacklist: &[[u8; 4]]) -> Rosebud {
    let mut sys = build_firewall_system(4, blacklist).unwrap();
    sys.enable_tracing(trace_cfg());
    sys
}

/// Everything a live run observably produced, for comparison with its
/// replay.
struct LiveRun {
    log: EventLog,
    trace: String,
    ledger: String,
    diagnostics: String,
}

/// Replays `run.log` on a fresh oracle and demands bit-exact equality.
fn assert_replays_bit_exactly(run: &LiveRun, blacklist: &[[u8; 4]], expect_delivered: usize) {
    let mut oracle = traced_firewall(blacklist);
    let delivered = replay(&run.log, &mut oracle);
    assert_eq!(delivered.len(), expect_delivered, "replay delivery count");
    assert_eq!(
        oracle.take_tracer().unwrap().compact_text(),
        run.trace,
        "replay trace must be byte-identical to the live run"
    );
    assert_eq!(
        format!("{:?}", oracle.ledger()),
        run.ledger,
        "replay ledger"
    );
    assert_eq!(
        format!("{:?}", oracle.diagnostics()),
        run.diagnostics,
        "replay diagnostics"
    );
    oracle.assert_conservation();
}

#[test]
fn ring_live_firewall_forwards_filters_and_replays() {
    let blacklist = synthetic_blacklist(6, 7);
    let trace = firewall_trace(&blacklist, 16, 256);
    let drops = expected_drops(&trace, &blacklist);
    let allowed = trace.len() - drops;
    assert!(drops > 0 && allowed > 0, "trace must mix verdicts");

    let (backend, peer) = RingBackend::pair();
    let mut shell = Shell::new(traced_firewall(&blacklist), backend);
    for pkt in trace.iter() {
        peer.send(pkt.port, pkt.bytes().to_vec());
        shell.pump(37); // stagger arrivals across cycles
    }
    shell.pump(6_000);

    assert_eq!(shell.log().events.len(), trace.len(), "all frames accepted");
    assert_eq!(shell.forwarded() as usize, allowed, "safe frames forwarded");
    assert_eq!(shell.rejected(), 0);
    shell.sys().assert_conservation();

    let out = peer.recv();
    assert_eq!(out.len(), allowed);
    assert!(out.iter().all(|(_, f)| f.len() == 256));

    let run = LiveRun {
        log: shell.log().clone(),
        trace: shell.sys_mut().take_tracer().unwrap().compact_text(),
        ledger: format!("{:?}", shell.sys().ledger()),
        diagnostics: format!("{:?}", shell.sys().diagnostics()),
    };
    // The on-disk text format is part of the contract: the log must survive
    // serialization before it earns the replay.
    let text = run.log.to_text();
    assert_eq!(EventLog::parse_text(&text).unwrap(), run.log);
    assert_replays_bit_exactly(&run, &blacklist, allowed);
}

#[test]
fn uds_live_firewall_forwards_filters_and_replays() {
    let blacklist = synthetic_blacklist(6, 7);
    let trace = firewall_trace(&blacklist, 16, 256);
    let drops = expected_drops(&trace, &blacklist);
    let allowed = trace.len() - drops;

    let dir = std::env::temp_dir().join(format!("rosebud-uds-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let port_paths: Vec<PathBuf> = (0..2).map(|p| dir.join(format!("port{p}.sock"))).collect();
    let backend = UdsBackend::bind(&port_paths).unwrap();
    let mut shell = Shell::new(traced_firewall(&blacklist), backend);

    // One client endpoint per port, bound so the shell can answer back.
    let clients: Vec<UnixDatagram> = (0..2)
        .map(|p| {
            let path = dir.join(format!("client{p}.sock"));
            let _ = std::fs::remove_file(&path);
            let s = UnixDatagram::bind(&path).unwrap();
            s.set_nonblocking(true).unwrap();
            s
        })
        .collect();
    for pkt in trace.iter() {
        clients[pkt.port as usize]
            .send_to(pkt.bytes(), &port_paths[pkt.port as usize])
            .unwrap();
    }

    // Datagrams are in the socket buffers before send_to returns, but give
    // the shell generous slack anyway: pump until everything is accepted.
    let mut spins = 0;
    while shell.log().events.len() < trace.len() {
        shell.pump(100);
        spins += 1;
        assert!(spins < 1_000, "frames never all arrived over UDS");
    }
    shell.pump(6_000);

    assert_eq!(shell.forwarded() as usize, allowed);
    assert_eq!(shell.rejected(), 0);
    shell.sys().assert_conservation();

    // The safe frames came back over the sockets, byte-for-byte.
    let mut returned: Vec<Vec<u8>> = Vec::new();
    let mut buf = [0u8; 4096];
    for c in &clients {
        while let Ok((n, _)) = c.recv_from(&mut buf) {
            returned.push(buf[..n].to_vec());
        }
    }
    assert_eq!(returned.len(), allowed, "allowed frames return to clients");
    let matcher = rosebud::accel::FirewallMatcher::from_prefixes(&blacklist);
    let mut sent_safe: Vec<Vec<u8>> = trace
        .iter()
        .filter(|p| {
            p.ipv4()
                .map(|ip| !matcher.is_blacklisted(ip.src_u32()))
                .unwrap_or(false)
        })
        .map(|p| p.bytes().to_vec())
        .collect();
    sent_safe.sort();
    returned.sort();
    assert_eq!(returned, sent_safe, "forwarded frames are unmodified");

    let run = LiveRun {
        log: shell.log().clone(),
        trace: shell.sys_mut().take_tracer().unwrap().compact_text(),
        ledger: format!("{:?}", shell.sys().ledger()),
        diagnostics: format!("{:?}", shell.sys().diagnostics()),
    };
    assert_replays_bit_exactly(&run, &blacklist, allowed);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn control_service_exports_a_replayable_event_log() {
    let blacklist = synthetic_blacklist(4, 3);
    let trace = firewall_trace(&blacklist, 8, 128);
    let allowed = trace.len() - expected_drops(&trace, &blacklist);

    let dir = std::env::temp_dir().join(format!("rosebud-ctl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("control.sock");
    let mut server = ControlServer::bind(&sock).unwrap();

    let (backend, peer) = RingBackend::pair();
    let mut shell = Shell::new(traced_firewall(&blacklist), backend);
    for pkt in trace.iter() {
        peer.send(pkt.port, pkt.bytes().to_vec());
        shell.pump(23);
        server.poll(&mut shell); // control plane interleaves with the run
    }
    shell.pump(6_000);

    let fetch = |server: &mut ControlServer, shell: &mut Shell<RingBackend>, path: &str| {
        let mut client = UnixStream::connect(&sock).unwrap();
        client
            .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .unwrap();
        assert_eq!(server.poll(shell), 1);
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.0 200 OK"), "{head}");
        body.to_string()
    };

    let stats = fetch(&mut server, &mut shell, "/stats");
    assert!(stats.contains(&format!("forwarded={allowed}")), "{stats}");

    // The exported log is a complete, replayable record of the live run.
    let events = fetch(&mut server, &mut shell, "/events");
    let log = EventLog::parse_text(&events).unwrap();
    assert_eq!(&log, shell.log());
    let mut oracle = build_firewall_system(4, &blacklist).unwrap();
    let delivered = replay(&log, &mut oracle);
    assert_eq!(delivered.len(), allowed);
    assert_eq!(oracle.ledger(), shell.sys().ledger());

    let _ = std::fs::remove_dir_all(&dir);
}
