//! Chaos integration test: a firmware hang under live traffic must be
//! detected, evicted, reloaded, and reintegrated by the supervisor while
//! the remaining RPUs carry traffic (§3.4, Appendix A.8).
//!
//! The scenario: eight RPUs run the watchdog-petting forwarder at 64-byte
//! saturation. Mid-run, injected fault wedges RPU 3. The supervisor must
//! notice the watchdog expiry, pull the region out of rotation, force-evict
//! it when the graceful drain stalls (a hung region never drains), write
//! the PR bitstream, reboot the firmware, and only then hand traffic back.
//! Throughput while the region is out is the load balancer's graceful
//! degradation: ~7/8 of the healthy baseline. Packet conservation holds
//! throughout, and the whole trace is cycle-exact deterministic.

use rosebud::apps::forwarder::build_watchdog_forwarding_system;
use rosebud::core::{
    FailoverRecord, FaultKind, FaultPlan, Fleet, FleetConfig, FleetHarness, FleetSupervisor,
    FleetSupervisorConfig, Harness, KernelMode, Ledger, RecoveryEvent, RpuFaultKind, RpuState,
    Supervisor, SupervisorConfig,
};
use rosebud::net::{FixedSizeGen, FlowTrafficGen};

const RPUS: usize = 8;
const WEDGED: usize = 3;
const HANG_AT: u64 = 50_000;

/// Ticks the system and the supervising host agent in lockstep.
fn run_supervised(h: &mut Harness, sup: &mut Supervisor, cycles: u64) {
    for _ in 0..cycles {
        h.tick();
        sup.poll(&mut h.sys);
    }
}

struct Trace {
    baseline_mpps: f64,
    degraded_mpps: f64,
    recovered_mpps: f64,
    wedged_frames_after_recovery: u64,
    recoveries: Vec<RecoveryEvent>,
    ledger: Ledger,
    in_flight: u64,
}

fn run_scenario() -> Trace {
    let mut sys = build_watchdog_forwarding_system(RPUS, 64).unwrap();
    sys.install_fault_plan(FaultPlan::new(7).at(HANG_AT, FaultKind::FirmwareHang { rpu: WEDGED }));
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 205.0);
    let mut sup = Supervisor::with_config(
        &h.sys,
        SupervisorConfig {
            drain_timeout: 4_000,
            ..SupervisorConfig::default()
        },
    );

    // Healthy baseline at saturation.
    run_supervised(&mut h, &mut sup, 20_000);
    h.begin_window();
    run_supervised(&mut h, &mut sup, 25_000);
    let baseline_mpps = h.measure().mpps;

    // The hang lands at 50_000; give detection + poke + drain escalation
    // room, then measure squarely inside the PR reload (25_000 cycles).
    run_supervised(&mut h, &mut sup, 12_000); // now at 57_000
    assert!(
        sup.recovering(),
        "supervisor should be mid-recovery shortly after the hang"
    );
    h.begin_window();
    run_supervised(&mut h, &mut sup, 20_000); // 57_000..77_000, inside reload
    let degraded_mpps = h.measure().mpps;

    // Let the reload finish and the supervisor verify + re-enable.
    run_supervised(&mut h, &mut sup, 10_000); // now at 87_000
    let frames_at_recovery = h.sys.rpu_counters(WEDGED).rx_frames;

    // Reintegration window: the recovered region must carry traffic again.
    h.begin_window();
    run_supervised(&mut h, &mut sup, 20_000);
    let recovered_mpps = h.measure().mpps;

    h.sys.assert_conservation();
    Trace {
        baseline_mpps,
        degraded_mpps,
        recovered_mpps,
        wedged_frames_after_recovery: h.sys.rpu_counters(WEDGED).rx_frames - frames_at_recovery,
        recoveries: h.sys.recovery_log().to_vec(),
        ledger: h.sys.ledger(),
        in_flight: h.sys.ledger_in_flight(),
    }
}

#[test]
fn hang_is_detected_evicted_reloaded_and_reintegrated() {
    let t = run_scenario();

    assert_eq!(
        t.recoveries.len(),
        1,
        "exactly one recovery: {:?}",
        t.recoveries
    );
    let ev = t.recoveries[0];
    assert_eq!(ev.rpu, WEDGED);
    assert_eq!(
        ev.kind,
        RpuFaultKind::Hung,
        "a wedge with a petted watchdog must be detected as hung, not halted"
    );
    assert_eq!(ev.fault_at, Some(HANG_AT));
    let latency = ev.detection_latency.expect("fault cycle is known");
    assert!(
        latency <= 1_200,
        "watchdog + one poll interval should catch the hang, took {latency} cycles"
    );
    assert!(ev.forced, "a hung region cannot drain gracefully");
    assert!(
        ev.packets_purged > 0,
        "the wedged region was holding packets at saturation"
    );
    assert!(
        ev.downtime >= 25_000,
        "downtime must cover the PR write, got {}",
        ev.downtime
    );
}

#[test]
fn throughput_degrades_to_seven_eighths_and_returns() {
    let t = run_scenario();

    let degraded_ratio = t.degraded_mpps / t.baseline_mpps;
    assert!(
        (0.82..0.93).contains(&degraded_ratio),
        "one of eight RPUs out should cost ~1/8 of throughput: \
         baseline {:.1} Mpps, degraded {:.1} Mpps (ratio {:.3})",
        t.baseline_mpps,
        t.degraded_mpps,
        degraded_ratio
    );
    let recovered_ratio = t.recovered_mpps / t.baseline_mpps;
    assert!(
        recovered_ratio > 0.97,
        "throughput must return to baseline after reintegration: \
         baseline {:.1} Mpps, recovered {:.1} Mpps",
        t.baseline_mpps,
        t.recovered_mpps
    );
    assert!(
        t.wedged_frames_after_recovery > 100,
        "the recovered RPU must carry real traffic again, saw {} frames",
        t.wedged_frames_after_recovery
    );
}

#[test]
fn recovered_region_is_verified_running() {
    let mut sys = build_watchdog_forwarding_system(RPUS, 64).unwrap();
    sys.install_fault_plan(FaultPlan::new(7).at(HANG_AT, FaultKind::FirmwareHang { rpu: WEDGED }));
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 205.0);
    let mut sup = Supervisor::with_config(
        &h.sys,
        SupervisorConfig {
            drain_timeout: 4_000,
            ..SupervisorConfig::default()
        },
    );
    run_supervised(&mut h, &mut sup, 95_000);
    assert_eq!(
        h.sys.enabled_mask(),
        0xFF,
        "all eight regions back in rotation"
    );
    assert_eq!(h.sys.rpus()[WEDGED].state(), RpuState::Running);
    assert!(!h.sys.rpus()[WEDGED].is_halted());
    assert!(
        !h.sys.rpus()[WEDGED].is_hung(),
        "the reload wiped the wedge"
    );
    assert!(!sup.recovering());
}

#[test]
fn recovery_trace_is_deterministic() {
    let a = run_scenario();
    let b = run_scenario();
    assert_eq!(
        a.recoveries, b.recoveries,
        "same plan + seed must reproduce the cycle-exact recovery trace"
    );
    assert_eq!(
        a.ledger, b.ledger,
        "ledger must be cycle-exact reproducible"
    );
    assert_eq!(a.in_flight, b.in_flight);
    assert!((a.baseline_mpps - b.baseline_mpps).abs() < f64::EPSILON);
    assert!((a.degraded_mpps - b.degraded_mpps).abs() < f64::EPSILON);
}

// ---------------------------------------------------------------------------
// Fleet-level failover: the same drill one level up. Four boxes sit behind a
// consistent-hashing front LB; a whole box crashes mid-run. The fleet
// supervisor must miss its health probes, mark the box unhealthy, pull its
// ring points (re-steering only that box's flows), purge what the dead shell
// was holding, run the whole-box PR reload, and re-admit it after probation —
// with the fleet-wide conservation ledger balanced throughout.

const BOXES: usize = 4;
const KILLED: usize = 2;
const FLEET_LOAD_GBPS: f64 = 60.0;

fn fleet_under_test(kernel: KernelMode) -> FleetHarness {
    let fleet = Fleet::new(
        FleetConfig {
            boxes: BOXES,
            ..FleetConfig::default()
        },
        kernel,
        |_| build_watchdog_forwarding_system(4, 64).unwrap(),
    )
    .unwrap();
    FleetHarness::new(
        fleet,
        Box::new(FlowTrafficGen::new(512, 256, 0.0, 11)),
        FLEET_LOAD_GBPS,
    )
}

fn fleet_supervisor(h: &FleetHarness) -> FleetSupervisor {
    FleetSupervisor::with_config(
        &h.fleet,
        FleetSupervisorConfig {
            drain_timeout: 4_000,
            reload_cycles: 8_000,
            ..FleetSupervisorConfig::default()
        },
    )
}

fn run_fleet(h: &mut FleetHarness, sup: &mut FleetSupervisor, cycles: u64) {
    for _ in 0..cycles {
        sup.poll(&mut h.fleet);
        h.tick();
    }
}

struct FleetTrace {
    baseline_gbps: f64,
    degraded_gbps: f64,
    recovered_gbps: f64,
    failovers: Vec<FailoverRecord>,
    log_text: String,
    flows_seen: u64,
    cross_survivor_resteers: u64,
    ledger: Ledger,
    in_flight: u64,
}

fn run_fleet_scenario(kernel: KernelMode) -> FleetTrace {
    let mut h = fleet_under_test(kernel);
    let mut sup = fleet_supervisor(&h);

    // Healthy baseline.
    run_fleet(&mut h, &mut sup, 20_000);
    h.begin_window();
    run_fleet(&mut h, &mut sup, 20_000);
    let baseline_gbps = h.measure().gbps;

    // Kill a whole box. Detection needs three probe misses (~2k cycles),
    // then drain runs to its 4k deadline (a crashed shell never quiesces).
    h.fleet.inject_fault(FaultKind::BoxCrash { device: KILLED });
    run_fleet(&mut h, &mut sup, 4_000);
    h.begin_window();
    run_fleet(&mut h, &mut sup, 10_000);
    let degraded_gbps = h.measure().gbps;

    // Let the reload and probation complete.
    let mut budget = 40_000u64;
    while h.fleet.failovers().is_empty() && budget > 0 {
        run_fleet(&mut h, &mut sup, 1_000);
        budget -= 1_000;
    }
    assert!(
        !h.fleet.failovers().is_empty(),
        "failover never completed; ladder log:\n{}",
        h.fleet.log_text()
    );

    // Re-admitted: the fleet must carry full load again.
    h.begin_window();
    run_fleet(&mut h, &mut sup, 20_000);
    let recovered_gbps = h.measure().gbps;

    h.fleet.assert_conservation();
    let mut cross_survivor_resteers = 0;
    for prev in 0..BOXES {
        for new in 0..BOXES {
            if prev != KILLED && new != KILLED {
                cross_survivor_resteers += h.fleet.resteered_between(prev, new);
            }
        }
    }
    FleetTrace {
        baseline_gbps,
        degraded_gbps,
        recovered_gbps,
        failovers: h.fleet.failovers().to_vec(),
        log_text: h.fleet.log_text(),
        flows_seen: h.fleet.flows_seen(),
        cross_survivor_resteers,
        ledger: h.fleet.ledger(),
        in_flight: h.fleet.ledger_in_flight(),
    }
}

#[test]
fn box_crash_walks_the_fleet_ladder_and_readmits() {
    let t = run_fleet_scenario(KernelMode::Sequential);

    assert_eq!(t.failovers.len(), 1, "log:\n{}", t.log_text);
    let rec = t.failovers[0];
    assert_eq!(rec.device, KILLED);
    assert!(!rec.graceful, "a crashed shell can never drain cleanly");
    assert!(
        rec.packets_purged > 0,
        "the dead box was holding frames at 60 Gbps"
    );
    assert!(
        rec.downtime >= 8_000,
        "downtime must cover the whole-box reload, got {}",
        rec.downtime
    );
    for step in [
        "marked-unhealthy",
        "drain",
        "purged",
        "reload",
        "probation",
        "readmitted",
    ] {
        assert!(
            t.log_text.contains(step),
            "ladder log is missing the {step} rung:\n{}",
            t.log_text
        );
    }
}

#[test]
fn fleet_throughput_survives_a_box_loss_and_returns() {
    let t = run_fleet_scenario(KernelMode::Sequential);

    // The acceptance bar: with 1 of 4 boxes gone, the survivors must absorb
    // at least 3/4 of the baseline. (Re-steering is immediate once the ring
    // points are pulled, so in practice they absorb nearly all of it.)
    let degraded_ratio = t.degraded_gbps / t.baseline_gbps;
    assert!(
        degraded_ratio >= 0.75,
        "degraded throughput below 3/4 of baseline: {:.1} of {:.1} Gbps (ratio {:.3})",
        t.degraded_gbps,
        t.baseline_gbps,
        degraded_ratio
    );
    let recovered_ratio = t.recovered_gbps / t.baseline_gbps;
    assert!(
        recovered_ratio >= 0.95,
        "throughput must return after re-admission: {:.1} of {:.1} Gbps",
        t.recovered_gbps,
        t.baseline_gbps
    );
}

#[test]
fn only_the_dead_boxs_flows_are_disturbed() {
    let t = run_fleet_scenario(KernelMode::Sequential);

    // Consistent hashing's whole point: flows between two surviving boxes
    // never move. Every re-steer must involve the killed box as source
    // (drain) or destination (re-admission homecoming).
    assert_eq!(
        t.cross_survivor_resteers, 0,
        "flows moved between surviving boxes"
    );
    let rec = t.failovers[0];
    assert!(
        rec.flows_resteered > 0,
        "the dead box owned flows; someone had to inherit them"
    );
    assert!(
        rec.flows_resteered <= t.flows_seen / 2,
        "one box of four should strand roughly a quarter of flows, not {} of {}",
        rec.flows_resteered,
        t.flows_seen
    );
}

#[test]
fn fleet_failover_is_deterministic() {
    let a = run_fleet_scenario(KernelMode::Sequential);
    let b = run_fleet_scenario(KernelMode::Sequential);
    assert_eq!(a.log_text, b.log_text, "ladder log must be cycle-exact");
    assert_eq!(a.failovers, b.failovers);
    assert_eq!(a.ledger, b.ledger);
    assert_eq!(a.in_flight, b.in_flight);
    assert!((a.baseline_gbps - b.baseline_gbps).abs() < f64::EPSILON);
    assert!((a.degraded_gbps - b.degraded_gbps).abs() < f64::EPSILON);
    assert!((a.recovered_gbps - b.recovered_gbps).abs() < f64::EPSILON);
}
