//! Differential kernel-equivalence suite: every scenario here is run under
//! the sequential reference kernel and the parallel kernel (fused
//! single-thread and worker-threaded), and the *complete observable
//! output* — the cycle-stamped compact trace, the conservation ledger, the
//! diagnostics snapshot, and the benchmark measurement — must be
//! byte-identical. The sequential kernel is the oracle; any divergence is
//! a parallel-kernel bug (usually a missed wake in quiescent-lane elision
//! or a mis-ordered barrier replay).
//!
//! The scenarios are chosen to stress exactly the mechanisms that could
//! diverge: busy-poll forwarding (barrier replay ordering), duty-cycled
//! `wfi` firmware (elision wake-on-ingress and the timer alarm), firewall
//! injection (host virtual interface + accelerators), and chaos runs
//! (faults, supervisor-driven eviction/PR/reload against lanes that may be
//! asleep when the host reaches in).

use rosebud::apps::firewall::{
    build_firewall_system, firewall_trace, synthetic_blacklist, NoopGen,
};
use rosebud::apps::forwarder::{
    build_duty_cycle_forwarding_system, build_forwarding_system, build_watchdog_forwarding_system,
};
use rosebud::core::{
    FaultKind, FaultPlan, Harness, KernelMode, Rosebud, Supervisor, SupervisorConfig, TraceConfig,
};
use rosebud::net::{FixedSizeGen, ImixGen};

/// The kernels under test. `workers: 0` exercises the fused coordinator
/// loop (and quiescent-lane elision); `workers: 2` routes lane phases
/// through the worker pool, exercising the quantum rebalancer and the
/// split/reassemble path.
fn kernels() -> Vec<(&'static str, KernelMode)> {
    vec![
        ("sequential", KernelMode::Sequential),
        (
            "parallel-fused",
            KernelMode::Parallel {
                workers: 0,
                quantum: 1024,
            },
        ),
        (
            "parallel-threaded",
            KernelMode::Parallel {
                workers: 2,
                quantum: 256,
            },
        ),
    ]
}

/// Everything a scenario observably produces.
#[derive(PartialEq)]
struct Observed {
    trace: String,
    ledger: String,
    diagnostics: String,
    measurement: String,
    received: u64,
    injected: u64,
    drops: u64,
}

fn trace_cfg() -> TraceConfig {
    TraceConfig {
        counter_interval: 4096,
        pc_profile: true,
        max_events: 1 << 21,
    }
}

/// Runs `sys` under the harness for `cycles`, collecting the full
/// observable output.
fn observe(mut h: Harness, cycles: u64) -> Observed {
    h.begin_window();
    h.run(cycles);
    let m = h.measure();
    Observed {
        trace: h.sys.take_tracer().expect("tracing enabled").compact_text(),
        ledger: format!("{:?}", h.sys.ledger()),
        diagnostics: format!("{:?}", h.sys.diagnostics()),
        measurement: format!("{m:?}"),
        received: h.received(),
        injected: h.injected(),
        drops: h.sys.drop_count(),
    }
}

/// Asserts that every kernel produced the oracle's exact output, pointing
/// at the first diverging trace line when not.
fn assert_equivalent(scenario: &str, runs: &[(&str, Observed)]) {
    let (oracle_name, oracle) = &runs[0];
    assert_eq!(*oracle_name, "sequential", "oracle must run first");
    for (name, got) in &runs[1..] {
        if got.trace != oracle.trace {
            for (i, (want, have)) in oracle.trace.lines().zip(got.trace.lines()).enumerate() {
                assert_eq!(
                    want,
                    have,
                    "{scenario}: {name} trace diverges from sequential at line {}",
                    i + 1
                );
            }
            panic!(
                "{scenario}: {name} trace length differs ({} vs {} lines)",
                oracle.trace.lines().count(),
                got.trace.lines().count()
            );
        }
        assert_eq!(got.ledger, oracle.ledger, "{scenario}: {name} ledger");
        assert_eq!(
            got.diagnostics, oracle.diagnostics,
            "{scenario}: {name} diagnostics"
        );
        assert_eq!(
            got.measurement, oracle.measurement,
            "{scenario}: {name} measurement"
        );
        assert_eq!(got.received, oracle.received, "{scenario}: {name} received");
        assert_eq!(got.injected, oracle.injected, "{scenario}: {name} injected");
        assert_eq!(got.drops, oracle.drops, "{scenario}: {name} drops");
    }
}

/// Runs `scenario` once per kernel and demands identical output.
fn differential(scenario: &str, run: impl Fn(KernelMode) -> Observed) {
    let runs: Vec<(&str, Observed)> = kernels()
        .into_iter()
        .map(|(name, k)| (name, run(k)))
        .collect();
    assert_equivalent(scenario, &runs);
    // Non-vacuity: the scenario must actually have produced events.
    assert!(
        !runs[0].1.trace.is_empty(),
        "{scenario}: empty trace proves nothing"
    );
}

fn with_kernel(mut sys: Rosebud, kernel: KernelMode) -> Rosebud {
    sys.set_kernel(kernel);
    sys.enable_tracing(trace_cfg());
    sys
}

#[test]
fn forwarder_is_kernel_invariant() {
    differential("forwarder", |k| {
        let sys = with_kernel(build_forwarding_system(8).unwrap(), k);
        observe(
            Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 60.0),
            30_000,
        )
    });
}

#[test]
fn forwarder_imix_is_kernel_invariant_across_seeds() {
    for seed in [1u64, 7, 42] {
        differential(&format!("forwarder-imix seed={seed}"), |k| {
            let sys = with_kernel(build_forwarding_system(16).unwrap(), k);
            observe(
                Harness::new(sys, Box::new(ImixGen::new(2, seed)), 120.0),
                25_000,
            )
        });
    }
}

#[test]
fn duty_cycle_forwarder_is_kernel_invariant() {
    // The prime elision differential: lanes park in `wfi` between timer
    // alarms, so every ingress push against a sleeping lane must wake it on
    // exactly the right cycle.
    for seed in [3u64, 19] {
        differential(&format!("duty-cycle seed={seed}"), |k| {
            let sys = with_kernel(build_duty_cycle_forwarding_system(16, 700).unwrap(), k);
            observe(
                Harness::new(sys, Box::new(ImixGen::new(2, seed)), 8.0),
                40_000,
            )
        });
    }
}

#[test]
fn firewall_is_kernel_invariant() {
    differential("firewall", |k| {
        let blacklist = synthetic_blacklist(6, 7);
        let sys = with_kernel(build_firewall_system(4, &blacklist).unwrap(), k);
        let trace = firewall_trace(&blacklist, 16, 256);
        let mut h = Harness::new(sys, Box::new(NoopGen), 0.0);
        for pkt in &trace {
            let mut p = pkt.clone();
            loop {
                match h.sys.inject(p) {
                    Ok(()) => break,
                    Err(back) => {
                        p = back;
                        h.tick();
                    }
                }
            }
            h.tick();
        }
        observe(h, 6_000)
    });
}

#[test]
fn chaos_recovery_is_kernel_invariant_across_seeds() {
    // Faults, supervisor-driven drain/evict/PR/reload, and live IMIX
    // traffic — the host reaches into lanes that may be mid-sleep, so every
    // host-side mutator's wake is on trial here.
    for seed in [11u64, 23] {
        differential(&format!("chaos seed={seed}"), |k| {
            let mut sys = build_watchdog_forwarding_system(8, 64).unwrap();
            sys.install_fault_plan(
                FaultPlan::new(seed)
                    .at(8_000, FaultKind::FirmwareHang { rpu: 3 })
                    .at(22_000, FaultKind::FirmwareCrash { rpu: 5 }),
            );
            let sys = with_kernel(sys, k);
            let mut h = Harness::new(sys, Box::new(ImixGen::new(2, seed)), 60.0);
            let mut sup = Supervisor::with_config(
                &h.sys,
                SupervisorConfig {
                    drain_timeout: 4_000,
                    ..SupervisorConfig::default()
                },
            );
            h.begin_window();
            for _ in 0..60_000 {
                h.tick();
                sup.poll(&mut h.sys);
            }
            let m = h.measure();
            Observed {
                trace: h.sys.take_tracer().unwrap().compact_text(),
                ledger: format!("{:?}", h.sys.ledger()),
                diagnostics: format!("{:?}", h.sys.diagnostics()),
                measurement: format!("{m:?}"),
                received: h.received(),
                injected: h.injected(),
                drops: h.sys.drop_count(),
            }
        });
    }
}

#[test]
fn host_pokes_against_sleeping_lanes_are_kernel_invariant() {
    // Direct missed-wake hunt: park a duty-cycled fleet under light load
    // and fire host-side state changes (pokes, broadcast wakes via the
    // debug register, firmware reload) at fixed cycles. Each one must take
    // effect on the same cycle under every kernel.
    differential("host-pokes", |k| {
        let sys = with_kernel(build_duty_cycle_forwarding_system(8, 900).unwrap(), k);
        let mut h = Harness::new(sys, Box::new(ImixGen::new(2, 5)), 4.0);
        h.begin_window();
        for cycle in 0..50_000u64 {
            match cycle {
                10_000 => h.sys.poke(2),
                17_500 => h.sys.write_debug(6, 0xdead_beef),
                25_000 => {
                    let image = rosebud::riscv::assemble(
                        &rosebud::apps::forwarder::duty_cycle_forwarder_asm(300),
                    )
                    .unwrap();
                    h.sys.load_rpu_firmware(4, &image).unwrap();
                }
                33_000 => h.sys.poke(7),
                _ => {}
            }
            h.tick();
        }
        let m = h.measure();
        Observed {
            trace: h.sys.take_tracer().unwrap().compact_text(),
            ledger: format!("{:?}", h.sys.ledger()),
            diagnostics: format!("{:?}", h.sys.diagnostics()),
            measurement: format!("{m:?}"),
            received: h.received(),
            injected: h.injected(),
            drops: h.sys.drop_count(),
        }
    });
}

#[test]
fn recorded_live_shell_session_replays_kernel_invariant() {
    // Record once: a live ring-backed shell serving real frames on the
    // sequential kernel. Then replay the event log under every kernel — the
    // record/replay contract must hold not just against the sequential
    // oracle but across the whole kernel family.
    use rosebud::core::ports::replay;
    use rosebud::shell::{RingBackend, Shell};

    let (backend, peer) = RingBackend::pair();
    let mut shell = Shell::new(build_forwarding_system(8).unwrap(), backend);
    for i in 0..32u64 {
        peer.send((i % 2) as u8, vec![i as u8; 64 + (i as usize * 13) % 400]);
        shell.pump(29);
    }
    shell.pump(4_000);
    let log = shell.log().clone();
    assert_eq!(log.events.len(), 32, "every live frame must be recorded");

    differential("live-shell-replay", |k| {
        let mut sys = with_kernel(build_forwarding_system(8).unwrap(), k);
        let delivered = replay(&log, &mut sys);
        Observed {
            trace: sys.take_tracer().unwrap().compact_text(),
            ledger: format!("{:?}", sys.ledger()),
            diagnostics: format!("{:?}", sys.diagnostics()),
            measurement: format!("delivered={}", delivered.len()),
            received: delivered.len() as u64,
            injected: log.events.len() as u64,
            drops: sys.drop_count(),
        }
    });
}

#[test]
fn fleet_failover_is_kernel_invariant() {
    // The whole rack on trial: a box crash and a brownout drive the fleet
    // ladder (probe misses, ring removal, purge, whole-box reload,
    // probation) while the survivors carry re-steered flows. Every box's
    // compact trace — including the archived trace of the incarnation the
    // reload retired — plus the fleet ladder log, ledger, and measurement
    // must be byte-identical under every kernel.
    use rosebud::core::{Fleet, FleetConfig, FleetHarness, FleetSupervisor, FleetSupervisorConfig};

    for seed in [5u64, 31] {
        differential(&format!("fleet-chaos seed={seed}"), |k| {
            let mut fleet = Fleet::new(
                FleetConfig {
                    boxes: 2,
                    ..FleetConfig::default()
                },
                k,
                |_| build_watchdog_forwarding_system(4, 64).unwrap(),
            )
            .unwrap();
            fleet.enable_tracing(trace_cfg());
            fleet.schedule_fault(rosebud::core::FaultEvent {
                at: 8_000,
                kind: FaultKind::BoxCrash { device: 1 },
            });
            fleet.schedule_fault(rosebud::core::FaultEvent {
                at: 30_000,
                kind: FaultKind::BoxBrownout {
                    device: 0,
                    cycles: 4_000,
                    factor: 4,
                },
            });
            let mut h = FleetHarness::new(fleet, Box::new(ImixGen::new(2, seed)), 40.0);
            let mut sup = FleetSupervisor::with_config(
                &h.fleet,
                FleetSupervisorConfig {
                    drain_timeout: 3_000,
                    reload_cycles: 5_000,
                    ..FleetSupervisorConfig::default()
                },
            );
            h.begin_window();
            for _ in 0..60_000 {
                sup.poll(&mut h.fleet);
                h.tick();
            }
            let m = h.measure();
            let mut trace = String::new();
            for archived in h.fleet.archived_traces() {
                trace.push_str(archived);
                trace.push('\n');
            }
            for b in 0..h.fleet.num_boxes() {
                trace.push_str(&format!("=== box {b} (live) ===\n"));
                trace.push_str(
                    &h.fleet
                        .sys_mut(b)
                        .take_tracer()
                        .expect("tracing enabled")
                        .compact_text(),
                );
            }
            trace.push_str("=== fleet ladder ===\n");
            trace.push_str(&h.fleet.log_text());
            let drops = (0..h.fleet.num_boxes())
                .map(|b| h.fleet.sys(b).drop_count())
                .sum();
            Observed {
                trace,
                ledger: format!("{:?}", h.fleet.ledger()),
                diagnostics: h.fleet.diagnostics().render(),
                measurement: format!("{m:?}"),
                received: h.received(),
                injected: h.injected(),
                drops,
            }
        });
    }
}
