//! # Rosebud (Rust reproduction)
//!
//! A cycle-level reproduction of **"Rosebud: Making FPGA-Accelerated
//! Middlebox Development More Pleasant"** (ASPLOS 2023): the RPU abstraction,
//! load-balanced packet distribution, inter-RPU messaging, host-side control
//! and debugging, and the paper's two case studies (the ported Pigasus IDS
//! and a blacklist firewall), all running against a simulated 250 MHz FPGA
//! substrate with an RV32IM instruction-set simulator standing in for the
//! VexRiscv cores.
//!
//! This umbrella crate re-exports the workspace crates under stable module
//! names:
//!
//! * [`kernel`] — simulation substrate (clock, FIFOs, links, counters),
//! * [`net`] — packets, headers, traffic generation,
//! * [`riscv`] — the RV32IM ISS and assembler,
//! * [`accel`] — accelerator models (Pigasus MPSE, firewall matcher),
//! * [`core`] — the Rosebud framework itself,
//! * [`apps`] — the case studies and the Snort CPU baseline,
//! * [`shell`] — the async I/O shell: live backends, record/replay event
//!   logs, and the control service.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` for a complete forwarding middlebox in a few
//! lines; `examples/firewall.rs` and `examples/ids.rs` reproduce the paper's
//! case studies.

#![forbid(unsafe_code)]

pub use rosebud_accel as accel;
pub use rosebud_apps as apps;
pub use rosebud_core as core;
pub use rosebud_kernel as kernel;
pub use rosebud_net as net;
pub use rosebud_riscv as riscv;
pub use rosebud_shell as shell;
