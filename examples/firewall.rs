//! The §7.2 case study: a 200 Gbps blacklisting firewall.
//!
//! Builds the two-cycle IP-prefix matcher from a blacklist (the paper
//! generates Verilog from the emerging-threats feed with a Python script),
//! loads the Appendix C firmware onto 16 RPUs, replays the verification
//! trace, then measures throughput under a 2 % attack mix.
//!
//! Run with: `cargo run --release --example firewall`

use rosebud::apps::firewall::{
    build_firewall_system, expected_drops, firewall_trace, synthetic_blacklist, NoopGen,
};
use rosebud::core::Harness;
use rosebud::net::{AttackMixGen, FixedSizeGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's blacklist has 1050 entries; ours is a synthetic stand-in
    // with the same size and prefix structure.
    let blacklist = synthetic_blacklist(1050, 7);

    // --- Verification pass (Appendix D): 1050 attack + 4 safe packets. ---
    let sys = build_firewall_system(16, &blacklist)?;
    let trace = firewall_trace(&blacklist, 4, 512);
    let should_drop = expected_drops(&trace, &blacklist);
    let mut h = Harness::new(sys, Box::new(NoopGen), 0.0);
    for pkt in &trace {
        let mut p = pkt.clone();
        loop {
            match h.sys.inject(p) {
                Ok(()) => break,
                Err(back) => {
                    p = back;
                    h.tick();
                }
            }
        }
        h.tick();
    }
    h.run(30_000);
    println!(
        "verification: {} packets in, {} forwarded, {} dropped (expected {})",
        trace.len(),
        h.received(),
        h.sys.drop_count(),
        should_drop
    );
    assert_eq!(h.sys.drop_count() as usize, should_drop);

    // --- Throughput pass: 256-byte packets at 200 Gbps, 2 % attacks. ---
    let sys = build_firewall_system(16, &blacklist)?;
    let gen = AttackMixGen::new(FixedSizeGen::new(256, 2), 0.02, Vec::new(), 5)
        .with_attack_ips(blacklist.clone());
    let mut h = Harness::new(sys, Box::new(gen), 205.0);
    h.run(60_000);
    h.begin_window();
    h.run(150_000);
    let m = h.measure();
    println!(
        "256 B @ 200 Gbps offered: forwarded {:.1} Gbps ({:.1} Mpps), dropped {} attack packets",
        m.gbps,
        m.mpps,
        h.sys.drop_count()
    );
    println!("paper: 200 Gbps for packets 256 bytes and above (§7.2)");
    Ok(())
}
