//! Chaos engineering against the self-healing supervisor (§3.4, A.8).
//!
//! Eight RPUs forward 64-byte packets at saturation while a scheduled
//! fault plan wedges firmware, crashes a core, corrupts frames on the
//! ingress link, sheds a MAC RX FIFO overflow burst, and takes the host
//! PCIe link down mid-recovery. The supervisor detects each failure from
//! host-visible signals only, walks the recovery ladder (poke → evict +
//! bounded drain → forced PR reload → firmware reboot → LB re-enable),
//! and the packet-conservation ledger proves nothing was lost untracked.
//!
//! Run with: `cargo run --release --example chaos`
//!
//! With `--fleet N` it runs the rack-scale drill instead: N boxes behind a
//! consistent-hashing front LB, one box killed mid-run, the fleet supervisor
//! walking probe → mark-unhealthy → drain → purge → whole-box reload →
//! probation → re-admission while the survivors absorb the re-steered flows.

use rosebud::apps::forwarder::build_watchdog_forwarding_system;
use rosebud::core::{
    FaultKind, FaultPlan, Fleet, FleetConfig, FleetHarness, FleetSupervisor, FleetSupervisorConfig,
    Harness, KernelMode, Supervisor, SupervisorConfig,
};
use rosebud::net::{FixedSizeGen, FlowTrafficGen};

fn fleet_main(boxes: usize) -> Result<(), Box<dyn std::error::Error>> {
    let killed = boxes / 2;
    let fleet = Fleet::new(
        FleetConfig {
            boxes,
            ..FleetConfig::default()
        },
        KernelMode::Sequential,
        |_| build_watchdog_forwarding_system(4, 64).unwrap(),
    )?;
    let load = 15.0 * boxes as f64;
    let mut h = FleetHarness::new(
        fleet,
        Box::new(FlowTrafficGen::new(512, 256, 0.0, 11)),
        load,
    );
    let mut sup = FleetSupervisor::with_config(
        &h.fleet,
        FleetSupervisorConfig {
            drain_timeout: 4_000,
            reload_cycles: 8_000,
            ..FleetSupervisorConfig::default()
        },
    );

    println!(
        "warming up {boxes} boxes (4 watchdog forwarders each) at {load:.0} Gbps aggregate ..."
    );
    let run = |h: &mut FleetHarness, sup: &mut FleetSupervisor, cycles: u64| {
        for _ in 0..cycles {
            sup.poll(&mut h.fleet);
            h.tick();
        }
    };
    run(&mut h, &mut sup, 20_000);
    h.begin_window();
    run(&mut h, &mut sup, 20_000);
    let baseline = h.measure();
    println!(
        "baseline: {:.1} Gbps / {:.2} Mpps aggregate\n",
        baseline.gbps, baseline.mpps
    );

    println!("killing box {killed} cold ...");
    h.fleet.inject_fault(FaultKind::BoxCrash { device: killed });
    let mut reported = 0;
    let mut windows = Vec::new();
    while h.fleet.failovers().is_empty() {
        h.begin_window();
        run(&mut h, &mut sup, 2_000);
        windows.push(h.measure().gbps);
        for e in &h.fleet.log()[reported..] {
            println!("  [{:>7}] box {}: {}", e.at, e.device, e.step);
        }
        reported = h.fleet.log().len();
    }

    println!("\ndegraded-throughput timeline (2 000-cycle windows after the kill):");
    for (i, gbps) in windows.iter().enumerate() {
        println!(
            "  window {:>2}: {:>6.1} Gbps ({:>3.0} % of baseline)",
            i,
            gbps,
            100.0 * gbps / baseline.gbps
        );
    }

    let rec = h.fleet.failovers()[0];
    println!(
        "\nfailover complete: detected @{}, drained @{} ({}), {} purged, \
         re-admitted @{} — downtime {} cycles, {} of {} flows re-steered",
        rec.detected_at,
        rec.drained_at,
        if rec.graceful { "clean" } else { "by deadline" },
        rec.packets_purged,
        rec.readmitted_at,
        rec.downtime,
        rec.flows_resteered,
        h.fleet.flows_seen(),
    );

    h.begin_window();
    run(&mut h, &mut sup, 20_000);
    let recovered = h.measure();
    println!(
        "re-admitted: {:.1} Gbps aggregate ({:.0} % of baseline)\n",
        recovered.gbps,
        100.0 * recovered.gbps / baseline.gbps
    );

    print!("{}", h.fleet.diagnostics().render());
    h.fleet.assert_conservation();
    println!("fleet ledger balances — no packet left unaccounted.");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--fleet") {
        let boxes = args
            .get(i + 1)
            .map(|n| n.parse::<usize>())
            .transpose()?
            .unwrap_or(4);
        if boxes < 2 {
            return Err("--fleet needs at least 2 boxes".into());
        }
        return fleet_main(boxes);
    }
    let mut sys = build_watchdog_forwarding_system(8, 64)?;

    // The schedule: every fault class the injector knows, overlapping.
    let plan = FaultPlan::new(0xC0FFEE)
        .at(40_000, FaultKind::CorruptIngress { rpu: 1, count: 20 })
        .at(50_000, FaultKind::FirmwareHang { rpu: 3 })
        .at(
            55_000,
            FaultKind::RxFifoOverflow {
                port: 0,
                cycles: 2_000,
            },
        )
        .at(60_000, FaultKind::HostDmaOutage { cycles: 8_000 })
        .at(140_000, FaultKind::FirmwareCrash { rpu: 6 });
    sys.install_fault_plan(plan);

    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 205.0);
    let mut sup = Supervisor::with_config(
        &h.sys,
        SupervisorConfig {
            drain_timeout: 4_000,
            ..SupervisorConfig::default()
        },
    );

    println!("warming up 8 watchdog-petting forwarders at 64 B saturation ...");
    for _ in 0..20_000 {
        h.tick();
        sup.poll(&mut h.sys);
    }
    h.begin_window();
    for _ in 0..20_000 {
        h.tick();
        sup.poll(&mut h.sys);
    }
    println!("baseline: {:.1} Mpps\n", h.measure().mpps);

    println!("unleashing the fault plan (hang, crash, corruption, overflow, PCIe outage) ...");
    let mut reported = 0;
    let mut was_down = false;
    // Two firmware faults are scheduled, so two recoveries must complete.
    while h.sys.recovery_log().len() < 2 || sup.recovering() {
        h.tick();
        sup.poll(&mut h.sys);
        if !h.sys.host_link_up() && !was_down {
            println!("  [PCIe] host link down — supervisor backing off");
            was_down = true;
        } else if h.sys.host_link_up() && was_down {
            println!(
                "  [PCIe] host link restored after {} retries",
                sup.link_retries()
            );
            was_down = false;
        }
        for ev in &h.sys.recovery_log()[reported..] {
            println!(
                "  [recovery] RPU {} {}: detected @{} (latency {}), \
                 re-enabled @{} (downtime {}), {} purged, forced: {}",
                ev.rpu,
                ev.kind,
                ev.detected_at,
                ev.detection_latency
                    .map_or_else(|| "n/a".into(), |l| l.to_string()),
                ev.reenabled_at,
                ev.downtime,
                ev.packets_purged,
                ev.forced,
            );
        }
        reported = h.sys.recovery_log().len();
    }

    h.begin_window();
    for _ in 0..20_000 {
        h.tick();
        sup.poll(&mut h.sys);
    }
    println!("\nall regions healthy again: {:.1} Mpps", h.measure().mpps);
    println!("enabled mask: {:#04x}", h.sys.enabled_mask());

    let ledger = h.sys.ledger();
    println!(
        "\nconservation ledger: {} injected + {} originated = {} delivered \
         + {} dropped + {} corrupted-quarantined + {} purged + {} in flight",
        ledger.injected,
        ledger.originated,
        ledger.delivered,
        ledger.dropped,
        ledger.corrupted,
        ledger.purged,
        h.sys.ledger_in_flight(),
    );
    h.sys.assert_conservation();
    println!("ledger balances — no packet left unaccounted.");
    Ok(())
}
