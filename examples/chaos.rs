//! Chaos engineering against the self-healing supervisor (§3.4, A.8).
//!
//! Eight RPUs forward 64-byte packets at saturation while a scheduled
//! fault plan wedges firmware, crashes a core, corrupts frames on the
//! ingress link, sheds a MAC RX FIFO overflow burst, and takes the host
//! PCIe link down mid-recovery. The supervisor detects each failure from
//! host-visible signals only, walks the recovery ladder (poke → evict +
//! bounded drain → forced PR reload → firmware reboot → LB re-enable),
//! and the packet-conservation ledger proves nothing was lost untracked.
//!
//! Run with: `cargo run --release --example chaos`

use rosebud::apps::forwarder::build_watchdog_forwarding_system;
use rosebud::core::{FaultKind, FaultPlan, Harness, Supervisor, SupervisorConfig};
use rosebud::net::FixedSizeGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = build_watchdog_forwarding_system(8, 64)?;

    // The schedule: every fault class the injector knows, overlapping.
    let plan = FaultPlan::new(0xC0FFEE)
        .at(40_000, FaultKind::CorruptIngress { rpu: 1, count: 20 })
        .at(50_000, FaultKind::FirmwareHang { rpu: 3 })
        .at(
            55_000,
            FaultKind::RxFifoOverflow {
                port: 0,
                cycles: 2_000,
            },
        )
        .at(60_000, FaultKind::HostDmaOutage { cycles: 8_000 })
        .at(140_000, FaultKind::FirmwareCrash { rpu: 6 });
    sys.install_fault_plan(plan);

    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 205.0);
    let mut sup = Supervisor::with_config(
        &h.sys,
        SupervisorConfig {
            drain_timeout: 4_000,
            ..SupervisorConfig::default()
        },
    );

    println!("warming up 8 watchdog-petting forwarders at 64 B saturation ...");
    for _ in 0..20_000 {
        h.tick();
        sup.poll(&mut h.sys);
    }
    h.begin_window();
    for _ in 0..20_000 {
        h.tick();
        sup.poll(&mut h.sys);
    }
    println!("baseline: {:.1} Mpps\n", h.measure().mpps);

    println!("unleashing the fault plan (hang, crash, corruption, overflow, PCIe outage) ...");
    let mut reported = 0;
    let mut was_down = false;
    // Two firmware faults are scheduled, so two recoveries must complete.
    while h.sys.recovery_log().len() < 2 || sup.recovering() {
        h.tick();
        sup.poll(&mut h.sys);
        if !h.sys.host_link_up() && !was_down {
            println!("  [PCIe] host link down — supervisor backing off");
            was_down = true;
        } else if h.sys.host_link_up() && was_down {
            println!(
                "  [PCIe] host link restored after {} retries",
                sup.link_retries()
            );
            was_down = false;
        }
        for ev in &h.sys.recovery_log()[reported..] {
            println!(
                "  [recovery] RPU {} {}: detected @{} (latency {}), \
                 re-enabled @{} (downtime {}), {} purged, forced: {}",
                ev.rpu,
                ev.kind,
                ev.detected_at,
                ev.detection_latency
                    .map_or_else(|| "n/a".into(), |l| l.to_string()),
                ev.reenabled_at,
                ev.downtime,
                ev.packets_purged,
                ev.forced,
            );
        }
        reported = h.sys.recovery_log().len();
    }

    h.begin_window();
    for _ in 0..20_000 {
        h.tick();
        sup.poll(&mut h.sys);
    }
    println!("\nall regions healthy again: {:.1} Mpps", h.measure().mpps);
    println!("enabled mask: {:#04x}", h.sys.enabled_mask());

    let ledger = h.sys.ledger();
    println!(
        "\nconservation ledger: {} injected + {} originated = {} delivered \
         + {} dropped + {} corrupted-quarantined + {} purged + {} in flight",
        ledger.injected,
        ledger.originated,
        ledger.delivered,
        ledger.dropped,
        ledger.corrupted,
        ledger.purged,
        h.sys.ledger_in_flight(),
    );
    h.sys.assert_conservation();
    println!("ledger balances — no packet left unaccounted.");
    Ok(())
}
