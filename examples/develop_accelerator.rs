//! The Appendix A development workflow, end to end: write a custom
//! accelerator, connect it in an RPU, write the accompanying firmware,
//! simulate a single RPU, then scale to the full load-balanced system —
//! "Rosebud enables a developer to only focus on implementing their
//! middlebox in a single RPU before they scale it to run at line-rate"
//! (§3.2).
//!
//! The custom accelerator here is a payload byte-entropy scorer (a common
//! exfiltration/encryption heuristic): it streams the payload from packet
//! memory at 16 B/cycle and exposes a score over MMIO; the firmware routes
//! high-entropy packets to the host for inspection.
//!
//! Run with: `cargo run --release --example develop_accelerator`

use rosebud::accel::{generate_firewall_verilog, Accelerator, RegRead, ResourceUsage};
use rosebud::core::{
    Desc, Firmware, Harness, Rosebud, RosebudConfig, RoundRobinLb, RpuIo, RpuProgram, RpuTestbench,
};
use rosebud::net::{FixedSizeGen, PacketBuilder};

/// Step A.1: the custom accelerator. Counts distinct byte values in the
/// payload as a cheap entropy proxy; hardware-style: streams 16 B/cycle,
/// 2-cycle result latency after the stream ends.
struct EntropyScorer {
    addr: u32,
    len: u32,
    pos: u32,
    seen: [bool; 256],
    distinct: u32,
    done_at: Option<u64>,
    now: u64,
    score: u32,
}

impl EntropyScorer {
    const REG_ADDR: u32 = 0x00;
    const REG_LEN: u32 = 0x04; // writing LEN starts the stream
    const REG_SCORE: u32 = 0x08; // 0xffff_ffff while busy
    const STREAM_BYTES_PER_CYCLE: u32 = 16;

    fn new() -> Self {
        Self {
            addr: 0,
            len: 0,
            pos: 0,
            seen: [false; 256],
            distinct: 0,
            done_at: None,
            now: 0,
            score: 0,
        }
    }
}

impl Accelerator for EntropyScorer {
    fn name(&self) -> &str {
        "entropy-scorer"
    }

    fn read_reg(&mut self, offset: u32) -> RegRead {
        match offset {
            Self::REG_SCORE => match self.done_at {
                Some(at) if self.now >= at => RegRead::fast(self.score),
                Some(at) => RegRead {
                    value: self.score,
                    wait_cycles: (at - self.now) as u32,
                },
                None if self.pos < self.len => RegRead::fast(u32::MAX), // busy
                None => RegRead::fast(self.score),
            },
            _ => RegRead::fast(0),
        }
    }

    fn write_reg(&mut self, offset: u32, value: u32) {
        match offset {
            Self::REG_ADDR => self.addr = value,
            Self::REG_LEN => {
                self.len = value;
                self.pos = 0;
                self.seen = [false; 256];
                self.distinct = 0;
                self.done_at = None;
            }
            _ => {}
        }
    }

    fn tick(&mut self, pmem: &[u8]) {
        self.now += 1;
        if self.pos < self.len {
            let end = (self.pos + Self::STREAM_BYTES_PER_CYCLE).min(self.len);
            for i in self.pos..end {
                if let Some(&b) = pmem.get((self.addr + i) as usize) {
                    if !self.seen[b as usize] {
                        self.seen[b as usize] = true;
                        self.distinct += 1;
                    }
                }
            }
            self.pos = end;
            if self.pos >= self.len {
                // Score: distinct byte values scaled to the payload length.
                self.score = if self.len == 0 {
                    0
                } else {
                    self.distinct * 256 / self.len.min(256)
                };
                self.done_at = Some(self.now + 2);
            }
        }
    }

    fn is_busy(&self) -> bool {
        self.pos < self.len
    }

    fn load_table(&mut self, _offset: u32, _data: &[u8]) {}

    fn reset(&mut self) {
        self.len = 0;
        self.pos = 0;
        self.done_at = None;
    }

    fn resources(&self) -> ResourceUsage {
        ResourceUsage {
            luts: 1200,
            regs: 900,
            bram: 1,
            uram: 0,
            dsp: 1,
        }
    }
}

/// Step A.3: the accompanying firmware — kick the scorer per packet, route
/// by score (native firmware; cycle cost chosen like the Appendix B code).
struct EntropyFirmware {
    threshold: u32,
    pending: Option<Desc>,
}

impl Firmware for EntropyFirmware {
    fn name(&self) -> &str {
        "entropy-router"
    }

    fn tick(&mut self, io: &mut RpuIo<'_>) {
        if let Some(desc) = self.pending {
            let score = io.accel_read(EntropyScorer::REG_SCORE);
            if score == u32::MAX {
                return; // still streaming; poll next cycle
            }
            io.charge(12);
            let out = if score >= self.threshold {
                Desc {
                    port: rosebud::core::port::HOST,
                    ..desc
                }
            } else {
                Desc {
                    port: desc.port ^ 1,
                    ..desc
                }
            };
            io.send(out);
            self.pending = None;
            return;
        }
        if let Some(desc) = io.rx_pop() {
            io.charge(24);
            let payload_off = 54u32.min(desc.len);
            io.accel_write(
                EntropyScorer::REG_ADDR,
                desc.data - rosebud::core::memmap::PMEM_BASE + payload_off,
            );
            io.accel_write(EntropyScorer::REG_LEN, desc.len - payload_off);
            self.pending = Some(desc);
        }
    }

    fn is_idle(&self) -> bool {
        self.pending.is_none()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step A.4: simulate a single RPU before any full-system build.
    println!("-- single-RPU simulation (Appendix A.4) --");
    let mut tb = RpuTestbench::new(RosebudConfig::with_rpus(8));
    tb.set_accelerator(Box::new(EntropyScorer::new()));
    tb.load_native(Box::new(EntropyFirmware {
        threshold: 180,
        pending: None,
    }));

    let low_entropy = PacketBuilder::new().tcp(1, 2).payload(&[0x41; 400]).build();
    let report = tb.process_one(&low_entropy, 1000);
    println!(
        "low-entropy packet: routed to port {} in {} cycles",
        report.outputs[0].desc.port, report.cycles
    );
    assert_ne!(report.outputs[0].desc.port, rosebud::core::port::HOST);

    let random: Vec<u8> = (0..400u32).map(|i| (i * 197 + 13) as u8).collect();
    let high_entropy = PacketBuilder::new().tcp(1, 2).payload(&random).build();
    let report = tb.process_one(&high_entropy, 1000);
    println!(
        "high-entropy packet: routed to port {} (host) in {} cycles",
        report.outputs[0].desc.port, report.cycles
    );
    assert_eq!(report.outputs[0].desc.port, rosebud::core::port::HOST);

    // Step A.5 analogue: for generated accelerators the framework can emit
    // the RTL artefact too (the firewall generator of §7.2):
    let verilog = generate_firewall_verilog("blacklist_matcher", &[[192, 0, 2, 0]]);
    println!(
        "\n-- generated Verilog artefact: {} lines (see §7.2) --",
        verilog.lines().count()
    );

    // Step A.6: scale out — same accelerator + firmware in every RPU,
    // behind the load balancer, at 2×100 G.
    println!("\n-- full system: 16 RPUs --");
    let sys = Rosebud::builder(RosebudConfig::with_rpus(16))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .accelerator(|_| Box::new(EntropyScorer::new()))
        .firmware(|_| {
            RpuProgram::Native(Box::new(EntropyFirmware {
                threshold: 180,
                pending: None,
            }))
        })
        .build()?;
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(512, 2)), 150.0);
    h.run(40_000);
    h.begin_window();
    h.run(100_000);
    let m = h.measure();
    println!(
        "zero-padded generator traffic: {:.1} Gbps forwarded, {} sent to host",
        m.gbps,
        h.host_received()
    );
    Ok(())
}
