//! Software-like debuggability (§3.4, A.7): status registers, the 64-bit
//! debug channel, poke interrupts, breakpoints (`ebreak`), memory dumps,
//! disassembly of a halted RPU — and the §4.3 observability layer: a
//! cycle-stamped trace of a supervised fault-recovery run exported as
//! Perfetto-loadable `trace.json`, plus a per-PC firmware profile.
//!
//! Run with: `cargo run --release --example debugging`

use rosebud::apps::forwarder::watchdog_forwarder_asm;
use rosebud::core::{
    Desc, FaultKind, FaultPlan, Firmware, Harness, MemRegion, Rosebud, RosebudConfig, RoundRobinLb,
    RpuIo, RpuProgram, Supervisor, SupervisorConfig, TraceConfig, TraceEvent,
};
use rosebud::net::FixedSizeGen;
use rosebud::riscv::{assemble, disassemble_image, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Firmware that counts packets into its status register, reports the
    // running count on the debug channel, and — on a host poke interrupt —
    // stops at a breakpoint for inspection.
    let firmware = assemble(
        "
        .equ IO, 0x02000000
            li t0, IO
            li t2, 0x01000000
            li s0, 0                 # packet counter
            # take poke interrupts (line 5): set mtvec + mie + mstatus.MIE
            li t3, on_poke
            csrw mtvec, t3
            li t3, 0x20
            csrw mie, t3
            sw t3, 0x2c(t0)          # unmask poke in the interconnect
            csrsi mstatus, 8
        poll:
            lw a0, 0x00(t0)
            beqz a0, poll
            lw a1, 0x04(t0)
            lw a2, 0x08(t0)
            sw zero, 0x0c(t0)
            addi s0, s0, 1
            sw s0, 0x18(t0)          # STATUS = packets handled (host-visible)
            sw s0, 0x1c(t0)          # DEBUG_OUT_L
            sw zero, 0x20(t0)        # DEBUG_OUT_H commits the 64-bit value
            xor a1, a1, t2
            sw a1, 0x10(t0)
            sw a2, 0x14(t0)
            j poll
        on_poke:
            ebreak                   # park for the host debugger
        ",
    )?;

    let sys = Rosebud::builder(RosebudConfig::with_rpus(4))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(firmware.clone()))
        .build()?;
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 10.0);
    h.run(30_000);

    // 1. Status registers: per-RPU progress at a glance.
    println!("status registers (packets handled per RPU):");
    for r in 0..4 {
        println!("  RPU {r}: {}", h.sys.rpu_status(r));
    }

    // 2. The 64-bit debug channel.
    if let Some(value) = h.sys.take_debug(0) {
        println!("debug channel from RPU 0: {value:#x}");
    }

    // 3. Poke RPU 2: its interrupt handler hits `ebreak` and the core halts
    //    — the paper's breakpoint behaviour.
    h.sys.poke(2);
    h.run(100);
    let rpu2 = &h.sys.rpus()[2];
    println!("\nafter poke: RPU 2 halted = {}", rpu2.is_halted());
    if let Some(cpu) = rpu2.cpu() {
        println!(
            "  pc = {:#010x}, s0 (packet count) = {}",
            cpu.pc(),
            cpu.reg(Reg::parse("s0").unwrap())
        );
    }

    // 4. Dump and disassemble the halted RPU's instruction memory.
    let imem = h.sys.read_rpu_mem(2, MemRegion::Imem, 0, 64);
    let words: Vec<u32> = imem
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    println!("\nfirst instructions of the halted RPU:");
    for (addr, _, text) in disassemble_image(0, &words).into_iter().take(8) {
        println!("  {addr:#06x}: {text}");
    }

    // 5. Dump a slice of packet memory: the host has full visibility.
    let pmem = h.sys.read_rpu_mem(2, MemRegion::Pmem, 0x0f0000, 32);
    println!("\npacket-memory dump @0x0f0000: {:02x?}", &pmem[..16]);

    // Traffic continues on the other RPUs while RPU 2 is parked.
    let before = h.received();
    h.run(10_000);
    println!(
        "\nwhile RPU 2 is parked, the rest forwarded {} more packets",
        h.received() - before
    );

    // 6. The observability layer (§4.3): trace a supervised recovery run
    //    and export it for chrome://tracing / ui.perfetto.dev.
    observability_trace()?;
    Ok(())
}

/// Forwards traffic and, every 64th packet, DMAs the frame header to host
/// DRAM — a telemetry sampler exercising the A.8 "save state to the host"
/// path so the trace contains real DMA transfers.
struct TelemetryForwarder {
    seen: u64,
}

impl Firmware for TelemetryForwarder {
    fn tick(&mut self, io: &mut RpuIo<'_>) {
        if let Some(desc) = io.rx_pop() {
            io.charge(12);
            self.seen += 1;
            if self.seen.is_multiple_of(64) && !io.host_dma_busy() {
                io.host_dma_write(0x1000, io.slot_addr(desc.tag), 64);
            }
            io.send(Desc {
                port: desc.port ^ 1,
                ..desc
            });
        }
    }
}

fn observability_trace() -> Result<(), Box<dyn std::error::Error>> {
    println!("\n=== cycle-stamped trace of a supervised recovery (§3.4 + §4.3) ===");
    let watchdog = assemble(&watchdog_forwarder_asm(64))?;
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(8))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |r| {
            if r == 7 {
                RpuProgram::Native(Box::new(TelemetryForwarder { seen: 0 }))
            } else {
                RpuProgram::Riscv(watchdog.clone())
            }
        })
        .build()?;
    sys.install_fault_plan(FaultPlan::new(7).at(20_000, FaultKind::FirmwareHang { rpu: 3 }));
    sys.enable_tracing(TraceConfig {
        counter_interval: 4096,
        pc_profile: true,
        max_events: 1 << 21,
    });

    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 60.0);
    let mut sup = Supervisor::with_config(
        &h.sys,
        SupervisorConfig {
            drain_timeout: 4_000,
            ..SupervisorConfig::default()
        },
    );
    for _ in 0..70_000 {
        h.tick();
        sup.poll(&mut h.sys);
    }

    // Per-PC cycle attribution: where RPU 0's firmware actually spends time.
    if let Some(profile) = h.sys.rpus()[0].pc_profile() {
        let imem = h.sys.read_rpu_mem(0, MemRegion::Imem, 0, 256);
        let words: Vec<u32> = imem
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let listing = disassemble_image(0, &words);
        let mut hot: Vec<(&u32, &u64)> = profile.iter().collect();
        hot.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        println!("hottest firmware PCs on RPU 0:");
        for (pc, cycles) in hot.into_iter().take(5) {
            let text = listing
                .iter()
                .find(|(addr, _, _)| *addr == *pc)
                .map(|(_, _, t)| t.as_str())
                .unwrap_or("<outside imem dump>");
            println!("  {pc:#06x}: {cycles:>8} cycles  {text}");
        }
    }

    let tracer = h.sys.take_tracer().expect("tracing was enabled");
    let (mut lb, mut dma, mut sup_ev, mut ctr) = (0u64, 0u64, 0u64, 0u64);
    for (_, ev) in tracer.events() {
        match ev {
            TraceEvent::LbAssign { .. } => lb += 1,
            TraceEvent::DmaStart { .. } | TraceEvent::DmaComplete { .. } => dma += 1,
            TraceEvent::Supervisor { .. } => sup_ev += 1,
            TraceEvent::CounterSample { .. } => ctr += 1,
            _ => {}
        }
    }
    println!(
        "traced {} events ({} LB assignments, {} DMA, {} supervisor steps, \
         {} counter samples, {} dropped)",
        tracer.events().len(),
        lb,
        dma,
        sup_ev,
        ctr,
        tracer.dropped_events(),
    );
    assert!(
        lb > 0 && dma > 0 && sup_ev > 0 && ctr > 0,
        "trace must cover all event classes"
    );

    let json = tracer.perfetto_json(h.sys.config().ns_per_cycle());
    std::fs::write("trace.json", &json)?;
    println!(
        "wrote trace.json ({} KiB) — load it in chrome://tracing or ui.perfetto.dev",
        json.len() / 1024
    );
    Ok(())
}
