//! Software-like debuggability (§3.4, A.7): status registers, the 64-bit
//! debug channel, poke interrupts, breakpoints (`ebreak`), memory dumps,
//! and disassembly of a halted RPU.
//!
//! Run with: `cargo run --release --example debugging`

use rosebud::core::{Harness, MemRegion, Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
use rosebud::net::FixedSizeGen;
use rosebud::riscv::{assemble, disassemble_image, Reg};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Firmware that counts packets into its status register, reports the
    // running count on the debug channel, and — on a host poke interrupt —
    // stops at a breakpoint for inspection.
    let firmware = assemble(
        "
        .equ IO, 0x02000000
            li t0, IO
            li t2, 0x01000000
            li s0, 0                 # packet counter
            # take poke interrupts (line 5): set mtvec + mie + mstatus.MIE
            li t3, on_poke
            csrw mtvec, t3
            li t3, 0x20
            csrw mie, t3
            sw t3, 0x2c(t0)          # unmask poke in the interconnect
            csrsi mstatus, 8
        poll:
            lw a0, 0x00(t0)
            beqz a0, poll
            lw a1, 0x04(t0)
            lw a2, 0x08(t0)
            sw zero, 0x0c(t0)
            addi s0, s0, 1
            sw s0, 0x18(t0)          # STATUS = packets handled (host-visible)
            sw s0, 0x1c(t0)          # DEBUG_OUT_L
            sw zero, 0x20(t0)        # DEBUG_OUT_H commits the 64-bit value
            xor a1, a1, t2
            sw a1, 0x10(t0)
            sw a2, 0x14(t0)
            j poll
        on_poke:
            ebreak                   # park for the host debugger
        ",
    )?;

    let sys = Rosebud::builder(RosebudConfig::with_rpus(4))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(firmware.clone()))
        .build()?;
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 10.0);
    h.run(30_000);

    // 1. Status registers: per-RPU progress at a glance.
    println!("status registers (packets handled per RPU):");
    for r in 0..4 {
        println!("  RPU {r}: {}", h.sys.rpu_status(r));
    }

    // 2. The 64-bit debug channel.
    if let Some(value) = h.sys.take_debug(0) {
        println!("debug channel from RPU 0: {value:#x}");
    }

    // 3. Poke RPU 2: its interrupt handler hits `ebreak` and the core halts
    //    — the paper's breakpoint behaviour.
    h.sys.poke(2);
    h.run(100);
    let rpu2 = &h.sys.rpus()[2];
    println!("\nafter poke: RPU 2 halted = {}", rpu2.is_halted());
    if let Some(cpu) = rpu2.cpu() {
        println!(
            "  pc = {:#010x}, s0 (packet count) = {}",
            cpu.pc(),
            cpu.reg(Reg::parse("s0").unwrap())
        );
    }

    // 4. Dump and disassemble the halted RPU's instruction memory.
    let imem = h.sys.read_rpu_mem(2, MemRegion::Imem, 0, 64);
    let words: Vec<u32> = imem
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    println!("\nfirst instructions of the halted RPU:");
    for (addr, _, text) in disassemble_image(0, &words).into_iter().take(8) {
        println!("  {addr:#06x}: {text}");
    }

    // 5. Dump a slice of packet memory: the host has full visibility.
    let pmem = h.sys.read_rpu_mem(2, MemRegion::Pmem, 0x0f0000, 32);
    println!("\npacket-memory dump @0x0f0000: {:02x?}", &pmem[..16]);

    // Traffic continues on the other RPUs while RPU 2 is parked.
    let before = h.received();
    h.run(10_000);
    println!(
        "\nwhile RPU 2 is parked, the rest forwarded {} more packets",
        h.received() - before
    );
    Ok(())
}
