//! Quickstart: build a Rosebud system, write firmware in RV32 assembly,
//! push packets through it, and read the host-visible counters.
//!
//! Run with: `cargo run --release --example quickstart`

use rosebud::core::{Harness, Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
use rosebud::net::FixedSizeGen;
use rosebud::riscv::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write the middlebox's software. This is the paper's development
    //    model (§3.2): orchestration lives in a few lines of RISC-V code,
    //    not in Verilog control logic. This one forwards every packet to
    //    the other physical port.
    let firmware = assemble(
        "
        .equ IO, 0x02000000
            li t0, IO
            li t2, 0x01000000        # XOR flips egress port 0 <-> 1
        poll:
            lw a0, 0x00(t0)          # descriptor ready?
            beqz a0, poll
            lw a1, 0x04(t0)          # read the descriptor
            lw a2, 0x08(t0)
            sw zero, 0x0c(t0)        # release it
            xor a1, a1, t2
            sw a1, 0x10(t0)          # send: stage low word,
            sw a2, 0x14(t0)          # ... commit with the data address
            j poll
        ",
    )?;

    // 2. Build the system: 8 RPUs, round-robin load balancer, the same
    //    firmware in every RPU. All the supporting hardware — switches,
    //    MACs, DMA, slot accounting — is the framework's job, not yours.
    let sys = Rosebud::builder(RosebudConfig::with_rpus(8))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_rpu| RpuProgram::Riscv(firmware.clone()))
        .build()?;

    // 3. Drive it with the tester model: 512-byte frames at 50 Gbps.
    let mut harness = Harness::new(sys, Box::new(FixedSizeGen::new(512, 2)), 50.0);
    harness.run(50_000); // warm up
    harness.begin_window();
    harness.run(200_000); // 0.8 ms of simulated traffic

    let m = harness.measure();
    println!("forwarded {:.2} Gbps / {:.2} Mpps", m.gbps, m.mpps);
    println!(
        "round-trip latency: mean {:.0} ns, p99 {:.0} ns",
        harness.latency().mean(),
        harness.latency().percentile(99.0),
    );

    // 4. Read the counters the host driver exposes (§4.3).
    for r in 0..4 {
        let c = harness.sys.rpu_counters(r);
        println!(
            "RPU {r}: rx {} frames / tx {} frames / {} drops",
            c.rx_frames, c.tx_frames, c.drops
        );
    }
    println!(
        "LB: {} packets assigned, {} stall cycles",
        harness.sys.lb_assigned(),
        harness.sys.lb_stall_cycles()
    );
    Ok(())
}
