//! The complete Appendix D experiment workflow: two Rosebud FPGAs
//! cross-connected — one running `basic_pkt_gen` on its 16 RPUs as the
//! traffic source, the other as the device under test — plus the host-side
//! tooling: bottleneck diagnostics from the §4.3 counters and a pcap export
//! of captured traffic for offline tools.
//!
//! Run with: `cargo run --release --example testbed`

use rosebud::apps::forwarder::build_forwarding_system;
use rosebud::apps::pktgen::{build_pktgen_system, BackToBack};
use rosebud::net::{to_pcap, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // "First, the FPGAs need to be programmed with the corresponding image.
    //  One FPGA is the tester FPGA that generates test packets, and one is
    //  the FPGA running benchmarks on the Rosebud framework."
    let tester = build_pktgen_system(16, 512)?;
    let dut = build_forwarding_system(16)?;
    let mut b2b = BackToBack::new(tester, dut);

    println!(
        "tester: 16 RPUs of basic_pkt_gen, LB RECV mask = {:#06x}",
        b2b.tester.enabled_mask()
    );
    println!("DUT   : 16 RPUs of basic_fw (the 16-cycle forwarder)\n");

    // "Now wait for the packets to flow for a minute to get a good average."
    b2b.run(60_000);
    b2b.begin_window();
    b2b.run(150_000);
    let m = b2b.measure();
    println!(
        "tester RX (the Appendix D status table): {:.1} Gbps / {:.1} Mpps of 512 B frames",
        m.gbps, m.mpps
    );
    let line = rosebud::net::effective_line_rate_gbps(200.0, 512);
    println!("line rate at 512 B: {line:.1} Gbps\n");

    // Host-side §4.3 counters on the DUT, with the bottleneck verdict.
    let diag = b2b.dut.diagnostics();
    println!("DUT diagnostics:\n{}", diag.render());

    // Capture a slice of what the DUT emits and export it as pcap, the way
    // the latency experiment captures samples with tcpdump.
    let capture: Trace = b2b.capture(32, 50_000).into_iter().collect();
    let pcap = to_pcap(&capture, b2b.dut.config().clock_hz);
    println!(
        "captured {} frames -> {} bytes of pcap (feed to wireshark/tcpreplay)",
        capture.len(),
        pcap.len()
    );
    Ok(())
}
