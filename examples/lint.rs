//! Static firmware lint — run the analyzer (CFG + abstract interpretation +
//! protocol/taint checks + WCET) over shipped firmware or your own `.s`
//! files, without simulating a single cycle.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lint                 # lint every builtin
//! cargo run --release --example lint -- firewall     # one builtin
//! cargo run --release --example lint -- my_fw.s      # your own assembly
//! cargo run --release --example lint -- --deny ...   # mirror the load gate
//! cargo run --release --example lint -- --strict ... # warnings fail too
//! cargo run --release --example lint -- --json ...   # machine-readable
//! ```
//!
//! `--deny` mirrors `LoadPolicy::Deny` exactly: the exit status is non-zero
//! when any report contains *errors* (the same findings that would refuse
//! the image at load time). `--strict` additionally fails on warnings.
//! `--json` replaces the text reports with one JSON object per target
//! (check id, severity, PC, and witness path per diagnostic), for CI
//! artifacts and editor integration.

use rosebud::apps::firewall::FIREWALL_ASM;
use rosebud::apps::forwarder::{
    duty_cycle_forwarder_asm, watchdog_forwarder_asm, FORWARDER_ASM, FORWARDER_SINGLE_PORT_ASM,
};
use rosebud::apps::host_dma::host_dma_forwarder_asm;
use rosebud::apps::pigasus_asm::PIGASUS_HW_ASM;
use rosebud::core::{machine_spec, RosebudConfig};
use rosebud::riscv::{assemble, Analyzer};

/// Builtin firmware: name → assembly source.
fn builtins() -> Vec<(&'static str, String)> {
    vec![
        ("forwarder", FORWARDER_ASM.to_string()),
        (
            "forwarder-single-port",
            FORWARDER_SINGLE_PORT_ASM.to_string(),
        ),
        ("watchdog-forwarder", watchdog_forwarder_asm(4096)),
        ("duty-cycle-forwarder", duty_cycle_forwarder_asm(2048)),
        ("host-dma-forwarder", host_dma_forwarder_asm(65536)),
        ("firewall", FIREWALL_ASM.to_string()),
        ("pigasus", PIGASUS_HW_ASM.to_string()),
    ]
}

fn main() {
    let mut deny = false;
    let mut strict = false;
    let mut json = false;
    let mut targets: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--strict" => strict = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: lint [--deny] [--strict] [--json] [NAME|FILE.s ...]");
                eprintln!("builtins: {}", builtin_names().join(", "));
                return;
            }
            _ => targets.push(arg),
        }
    }

    // Source each target: a builtin name, or a path to an assembly file.
    let jobs: Vec<(String, String)> = if targets.is_empty() {
        builtins()
            .into_iter()
            .map(|(n, s)| (n.to_string(), s))
            .collect()
    } else {
        let mut jobs = Vec::new();
        for t in &targets {
            if let Some((name, src)) = builtins().into_iter().find(|(n, _)| n == t) {
                jobs.push((name.to_string(), src));
            } else {
                match std::fs::read_to_string(t) {
                    Ok(src) => jobs.push((t.clone(), src)),
                    Err(e) => {
                        eprintln!(
                            "{t}: not a builtin ({}) and not a readable file: {e}",
                            builtin_names().join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            }
        }
        jobs
    };

    let analyzer = Analyzer::new(machine_spec(&RosebudConfig::with_rpus(1)));
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut json_reports: Vec<String> = Vec::new();
    for (name, src) in &jobs {
        let image = match assemble(src) {
            Ok(image) => image,
            Err(e) => {
                // file:line:col: error: message — editor-clickable.
                eprintln!("{name}:{}:{}: error: {}", e.line, e.col, e.message);
                errors += 1;
                continue;
            }
        };
        let report = analyzer.check(&image);
        if json {
            json_reports.push(report.render_json(name));
        } else {
            print!("{}", report.render(name));
            println!();
        }
        errors += report.error_count();
        warnings += report.warning_count();
    }

    if json {
        println!("[{}]", json_reports.join(","));
    } else {
        println!(
            "lint: {} target(s), {errors} error(s), {warnings} warning(s)",
            jobs.len()
        );
    }
    // Default and --deny both fail on errors (the findings LoadPolicy::Deny
    // refuses); --strict also fails on warnings.
    let _ = deny;
    if errors > 0 || (strict && warnings > 0) {
        std::process::exit(1);
    }
}

fn builtin_names() -> Vec<&'static str> {
    builtins().into_iter().map(|(n, _)| n).collect()
}
