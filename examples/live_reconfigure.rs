//! Runtime partial reconfiguration with no pause in traffic (§4.1, A.8).
//!
//! While 100 Gbps of traffic flows, the host swaps RPU 3's program from the
//! port-flipping forwarder to a TTL-checking firmware: the LB stops feeding
//! RPU 3, in-flight packets drain, the PR bitstream writes, the new program
//! boots, and the LB resumes — with zero packets lost and the other RPUs
//! carrying the load throughout.
//!
//! Run with: `cargo run --release --example live_reconfigure`

use rosebud::apps::forwarder::build_forwarding_system;
use rosebud::core::{Harness, RpuProgram, RpuState};
use rosebud::net::FixedSizeGen;
use rosebud::riscv::assemble;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = build_forwarding_system(16)?;
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(512, 2)), 100.0);
    h.run(50_000);
    println!("steady state reached: {} packets forwarded", h.received());

    // The replacement program: drop packets whose TTL (header byte 22 of
    // the Ethernet+IPv4 frame) has reached 1, else forward.
    let ttl_checker = assemble(
        "
        .equ IO,  0x02000000
        .equ HDR, 0x00804000
            li t0, IO
            li t1, HDR
            li t2, 0x01000000
        poll:
            lw a0, 0x00(t0)
            beqz a0, poll
            lw a1, 0x04(t0)
            lw a2, 0x08(t0)
            sw zero, 0x0c(t0)
            srli a3, a1, 16
            andi a3, a3, 0xff
            slli a4, a3, 7
            add a4, a4, t1
            lbu a5, 22(a4)       # IPv4 TTL
            li a6, 2
            bltu a5, a6, drop
            xor a1, a1, t2
            sw a1, 0x10(t0)
            sw a2, 0x14(t0)
            j poll
        drop:
            srli a1, a1, 16
            slli a1, a1, 16
            sw a1, 0x10(t0)
            sw a2, 0x14(t0)
            j poll
        ",
    )?;

    h.begin_window();
    let drops_before = h.sys.drop_count();
    println!("\nreconfiguring RPU 3 under load ...");
    h.sys
        .reconfigure_rpu(3, Some(RpuProgram::Riscv(ttl_checker)), None);

    let mut reported_drain = false;
    for _ in 0..100_000u64 {
        h.tick();
        if !reported_drain {
            if let RpuState::Reconfiguring { .. } = h.sys.rpus()[3].state() {
                println!(
                    "RPU 3 drained (LB mask now {:#06x}); PR bitstream writing ...",
                    h.sys.enabled_mask()
                );
                reported_drain = true;
            }
        }
        if reported_drain && !h.sys.reconfigure_pending(3) {
            println!("RPU 3 rebooted with the TTL checker and re-enabled");
            break;
        }
    }

    let m = h.measure();
    println!(
        "\nduring the swap: {:.1} Gbps sustained, {} packets, {} drops",
        m.gbps,
        m.packets,
        h.sys.drop_count() - drops_before
    );
    assert_eq!(h.sys.drop_count(), drops_before, "no packet lost during PR");
    assert!(h.sys.enabled_mask() & (1 << 3) != 0);

    // The new firmware is live: TTL-1 packets are now dropped.
    h.run(20_000);
    println!(
        "post-swap total: {} forwarded, {} drops (generator uses TTL 64, so none)",
        h.received(),
        h.sys.drop_count()
    );
    println!("\nwall-clock reload on real hardware: ~756 ms (see `cargo bench --bench sec41_pr`)");
    Ok(())
}
