//! The §7.1 case study: the Pigasus IDS/IPS ported to Rosebud.
//!
//! Compiles a rule set into the string/port-matching engine model, builds
//! both reordering configurations (hardware-assisted and software-on-
//! RISC-V), runs mixed attack/safe traffic, and shows that matched packets
//! arrive at the host with their rule IDs appended — the paper's IPS
//! data flow where "the FPGA filters non-attack traffic coming in at
//! line-rate, and the CPU only deals with attack traffic".
//!
//! Run with: `cargo run --release --example ids`

use rosebud::apps::pigasus::{build_pigasus_system, ReorderMode};
use rosebud::apps::rules::{parse_rules, synthetic_rules};
use rosebud::core::Harness;
use rosebud::net::{AttackMixGen, FlowTrafficGen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A few hand-written Snort-style rules plus a synthetic batch.
    let mut rules = parse_rules(
        r#"
        alert tcp any any -> any 80 (msg:"path traversal"; content:"../../etc/passwd"; sid:9001;)
        alert tcp any any -> any any (msg:"beacon"; content:"|de ad be ef|C2"; sid:9002;)
        alert tcp any 6666 -> any any (msg:"botnet src"; content:"JOIN #"; sid:9003;)
        "#,
    )?;
    rules.extend(synthetic_rules(125, 17));

    for mode in [ReorderMode::Hardware, ReorderMode::Software] {
        let sys = build_pigasus_system(mode, rules.clone())?;
        println!(
            "\n=== {mode:?} reordering: 8 RPUs x 16 engines, {} rules, LB = {} ===",
            rules.len(),
            sys.lb_name()
        );

        // 1 % attack traffic at 0.3 % TCP reordering, 800-byte packets —
        // the paper's headline operating point.
        let payloads: Vec<Vec<u8>> = rules.iter().map(|r| r.pattern.clone()).collect();
        let base = FlowTrafficGen::new(4096, 800, 0.003, 23);
        let gen = AttackMixGen::new(base, 0.01, payloads, 29);
        let mut h = Harness::new(sys, Box::new(gen), 205.0).keep_output(true);
        h.run(60_000);
        h.begin_window();
        h.run(150_000);
        let m = h.measure();
        println!("absorbed {:.1} Gbps / {:.1} Mpps at 800 B", m.gbps, m.mpps);
        println!(
            "safe traffic forwarded: {} packets; flagged to host: {}",
            h.received(),
            h.host_received()
        );

        // Matched packets carry their rule id in the trailing word.
        let flagged: Vec<_> = h
            .take_collected()
            .into_iter()
            .filter(|p| p.port == rosebud::core::port::HOST)
            .take(3)
            .collect();
        for pkt in flagged {
            let tail = &pkt.bytes()[pkt.bytes().len() - 4..];
            let sid = u32::from_le_bytes(tail.try_into().unwrap());
            if rules.iter().any(|r| r.id == sid) {
                println!(
                    "  host packet {}: {} bytes, matched sid {}",
                    pkt.id,
                    pkt.len(),
                    sid
                );
            } else {
                // Software reordering punts hash collisions and reorder-
                // buffer overflow to the host unprocessed (§7.1.2).
                println!(
                    "  host packet {}: {} bytes, punted unprocessed",
                    pkt.id,
                    pkt.len()
                );
            }
        }
    }
    println!("\npaper: ~200 Gbps (HW reorder) and ~100 Gbps (SW reorder) at 800 B (Fig. 8a)");
    Ok(())
}
