//! A live Rosebud middlebox: the deterministic sim core serving real
//! frames through the async I/O shell, with every arrival recorded for
//! bit-exact replay.
//!
//! Two modes:
//!
//! * `cargo run --release --example live` — binds one Unix-domain datagram
//!   socket per port plus a control socket, then serves forever. Talk to it
//!   from another terminal:
//!
//!   ```text
//!   # send a frame into port 0 (any tool that writes UDS datagrams works)
//!   socat - UNIX-SENDTO:/tmp/rosebud-live/port0.sock <<< "hello"
//!   # watch it
//!   curl --unix-socket /tmp/rosebud-live/control.sock http://x/stats
//!   curl --unix-socket /tmp/rosebud-live/control.sock http://x/ledger
//!   curl --unix-socket /tmp/rosebud-live/control.sock http://x/events
//!   # hot-swap firmware on RPU 2
//!   curl --unix-socket /tmp/rosebud-live/control.sock \
//!        --data-binary @firmware.s http://x/firmware/2
//!   ```
//!
//! * `cargo run --release --example live -- --smoke` — a self-contained CI
//!   pass: drives the blacklist firewall with real frames over the
//!   in-process ring, writes the event log (`live-events.log`) and the
//!   Perfetto trace (`live-trace.json`), then replays the log through a
//!   fresh sequential oracle and verifies the run reproduced bit-exactly.

use rosebud::apps::firewall::{
    build_firewall_system, expected_drops, firewall_trace, synthetic_blacklist,
};
use rosebud::core::ports::{replay, EventLog};
use rosebud::core::{Rosebud, TraceConfig};
use rosebud::shell::{ControlServer, RingBackend, Shell, UdsBackend};

fn trace_cfg() -> TraceConfig {
    TraceConfig {
        counter_interval: 4096,
        pc_profile: true,
        max_events: 1 << 21,
    }
}

fn traced_firewall(blacklist: &[[u8; 4]]) -> Result<Rosebud, String> {
    let mut sys = build_firewall_system(4, blacklist)?;
    sys.enable_tracing(trace_cfg());
    Ok(sys)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let blacklist = synthetic_blacklist(16, 7);
    if std::env::args().any(|a| a == "--smoke") {
        smoke(&blacklist)
    } else {
        serve(&blacklist)
    }
}

/// CI smoke: a recorded live run over the ring, artifacts on disk, and the
/// replay verified against the live observables.
fn smoke(blacklist: &[[u8; 4]]) -> Result<(), Box<dyn std::error::Error>> {
    let trace = firewall_trace(blacklist, 48, 256);
    let drops = expected_drops(&trace, blacklist);

    let (backend, peer) = RingBackend::pair();
    let mut shell = Shell::new(traced_firewall(blacklist)?, backend);
    for pkt in trace.iter() {
        peer.send(pkt.port, pkt.bytes().to_vec());
        shell.pump(37);
    }
    shell.pump(8_000);
    shell.sys().assert_conservation();

    let returned = peer.recv().len();
    println!(
        "live: {} frames in, {} forwarded, {} dropped by the blacklist",
        shell.log().events.len(),
        returned,
        drops
    );
    assert_eq!(shell.log().events.len(), trace.len());
    assert_eq!(returned, trace.len() - drops);

    // The two artifacts a live run leaves behind: the replayable event log
    // and the Perfetto trace of the run that produced it.
    std::fs::write("live-events.log", shell.log().to_text())?;
    let tracer = shell.sys_mut().take_tracer().expect("tracing enabled");
    std::fs::write(
        "live-trace.json",
        tracer.perfetto_json(shell.sys().config().ns_per_cycle()),
    )?;

    // Round-trip through the on-disk format, then replay through a fresh
    // sequential oracle: trace, ledger, and diagnostics must reproduce.
    let log = EventLog::parse_text(&std::fs::read_to_string("live-events.log")?)
        .map_err(std::io::Error::other)?;
    let mut oracle = traced_firewall(blacklist)?;
    let delivered = replay(&log, &mut oracle);
    assert_eq!(delivered.len(), returned, "replay delivery count");
    assert_eq!(
        oracle.take_tracer().unwrap().compact_text(),
        tracer.compact_text(),
        "replay trace must be byte-identical"
    );
    assert_eq!(oracle.ledger(), shell.sys().ledger(), "replay ledger");
    assert_eq!(
        format!("{:?}", oracle.diagnostics()),
        format!("{:?}", shell.sys().diagnostics()),
        "replay diagnostics"
    );
    println!("replay: bit-exact ({} frames delivered)", delivered.len());
    Ok(())
}

/// Live service: UDS frame ports + control socket, forever.
fn serve(blacklist: &[[u8; 4]]) -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::path::PathBuf::from("/tmp/rosebud-live");
    std::fs::create_dir_all(&dir)?;
    let sys = traced_firewall(blacklist)?;
    let ports = sys.config().num_ports;
    let paths: Vec<_> = (0..ports)
        .map(|p| dir.join(format!("port{p}.sock")))
        .collect();
    let backend = UdsBackend::bind(&paths)?;
    let mut control = ControlServer::bind(dir.join("control.sock"))?;
    let mut shell = Shell::new(sys, backend);

    println!("live firewall up ({} blacklist entries)", blacklist.len());
    for p in &paths {
        println!("  frame port: {}", p.display());
    }
    println!("  control:    {}", dir.join("control.sock").display());
    println!(
        "  try: curl --unix-socket {} http://x/stats",
        dir.join("control.sock").display()
    );

    loop {
        // ~4 µs of simulated time per iteration, then let the host breathe:
        // the core stays deterministic, only the arrival cycles of real
        // frames vary run to run — and those are exactly what the event
        // log records.
        shell.pump(1_000);
        control.poll(&mut shell);
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
