//! The §3.4 debugging flows — watchdog hang detection, state dumps to host
//! DRAM — and the host-DRAM DMA manager (§4.2), exercised from both
//! assembled and native firmware.

use rosebud_core::{
    irq, memmap, Desc, Firmware, Rosebud, RosebudConfig, RpuIo, RpuProgram, RpuTestbench,
};
use rosebud_riscv::assemble;

/// §3.4: "if the packet distribution part of the Rosebud framework hangs,
/// software on the RISC-V can detect the hang using internal timer
/// interrupt, and send its state to the host." Assembled firmware arms the
/// watchdog, deliberately hangs, and the handler reports + breaks.
#[test]
fn watchdog_detects_hang_and_reports_to_host() {
    let image = assemble(
        "
        .equ IO, 0x02000000
            li t0, IO
            # interrupt setup: timer is line 1
            li t3, handler
            csrw mtvec, t3
            li t3, 2
            csrw mie, t3
            csrsi mstatus, 8
            # arm the watchdog: 500 cycles
            li t4, 500
            sw t4, 0x40(t0)      # TIMER_CMP
            li s0, 0xBEEF        # 'state' the handler will dump
        hang:
            j hang               # the simulated distribution hang
        handler:
            sw s0, 0x1c(t0)      # DEBUG_OUT_L = state
            li t5, 0xDEAD
            sw t5, 0x20(t0)      # DEBUG_OUT_H commits
            ebreak               # park for the host
        ",
    )
    .unwrap();
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(2))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
        .unwrap();
    sys.run(400);
    assert!(!sys.rpus()[0].is_halted(), "watchdog fired too early");
    sys.run(400);
    assert!(sys.rpus()[0].is_halted(), "watchdog never fired");
    assert_eq!(sys.take_debug(0), Some(0xDEAD_0000_BEEF));
}

#[test]
fn watchdog_can_be_disarmed() {
    let image = assemble(
        "
        .equ IO, 0x02000000
            li t0, IO
            li t3, handler
            csrw mtvec, t3
            li t3, 2
            csrw mie, t3
            csrsi mstatus, 8
            li t4, 300
            sw t4, 0x40(t0)      # arm
            sw zero, 0x40(t0)    # immediately disarm
        spin:
            j spin
        handler:
            ebreak
        ",
    )
    .unwrap();
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(2))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
        .unwrap();
    sys.run(2_000);
    assert!(!sys.rpus()[0].is_halted(), "disarmed watchdog still fired");
}

/// Native firmware saving state to host DRAM on eviction (A.8: "send an
/// eviction interrupt to the RISC-V core to instruct it to finish
/// processing the current packets and save the desired state to the host").
#[test]
fn evict_handler_saves_state_to_host_dram() {
    struct Stateful {
        flows_seen: u32,
    }
    impl Firmware for Stateful {
        fn boot(&mut self, io: &mut RpuIo<'_>) {
            io.set_masks(0x30); // enable evict + poke
        }
        fn tick(&mut self, io: &mut RpuIo<'_>) {
            if let Some(desc) = io.rx_pop() {
                self.flows_seen += 1;
                io.charge(10);
                io.send(Desc {
                    port: desc.port ^ 1,
                    ..desc
                });
            }
        }
        fn interrupt(&mut self, line: u8, io: &mut RpuIo<'_>) {
            if line == irq::EVICT {
                // Serialize state into scratch pmem, then DMA it to host
                // DRAM at an address keyed by the RPU id.
                let scratch = memmap::PMEM_BASE + 0x100;
                io.pmem_write(scratch, &self.flows_seen.to_le_bytes());
                io.host_dma_write(0x1000 + io.rpu_id() as u32 * 16, scratch, 4);
                io.charge(40);
            }
        }
    }
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(2))
        .firmware(|_| RpuProgram::Native(Box::new(Stateful { flows_seen: 0 })))
        .build()
        .unwrap();
    // Feed a few packets to RPU 0 only.
    for i in 0..5u64 {
        let pkt = rosebud_net::PacketBuilder::new()
            .tcp(1, 2)
            .pad_to(100)
            .build_with(i, 0);
        sys.inject(pkt).unwrap();
        sys.run(300);
    }
    sys.evict(0);
    sys.run(1_000);
    let saved = u32::from_le_bytes(sys.host_dram()[0x1000..0x1004].try_into().unwrap());
    assert!(
        saved >= 1,
        "evicted RPU saved {saved} flows to host DRAM (expected ≥1)"
    );
}

/// The host prepares a lookup table in DRAM; firmware pulls it down with a
/// DMA read — the runtime-table-initialization path Rosebud added to
/// Pigasus (§7.1.2).
#[test]
fn firmware_dma_reads_host_tables() {
    struct TableLoader {
        loaded: bool,
        verified: Option<bool>,
    }
    impl Firmware for TableLoader {
        fn tick(&mut self, io: &mut RpuIo<'_>) {
            if !self.loaded {
                io.host_dma_read(0x2000, memmap::PMEM_BASE + 0x400, 8);
                self.loaded = true;
                return;
            }
            if self.verified.is_none() && !io.host_dma_busy() {
                let got = io.pmem_read(memmap::PMEM_BASE + 0x400, 8).to_vec();
                self.verified = Some(got == [1, 2, 3, 4, 5, 6, 7, 8]);
                io.set_status(if got == [1, 2, 3, 4, 5, 6, 7, 8] {
                    1
                } else {
                    2
                });
            }
        }
    }
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(2))
        .firmware(|_| {
            RpuProgram::Native(Box::new(TableLoader {
                loaded: false,
                verified: None,
            }))
        })
        .build()
        .unwrap();
    sys.host_dram_mut()[0x2000..0x2008].copy_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
    sys.run(2_000);
    assert_eq!(sys.rpu_status(0), 1, "table did not round-trip through DMA");
}

/// The same DMA engine driven from assembled firmware over MMIO, with the
/// completion interrupt observed through DMA_STATUS polling.
#[test]
fn riscv_firmware_drives_host_dma_over_mmio() {
    let image = assemble(
        "
        .equ IO,   0x02000000
        .equ PMEM, 0x01000000
            li t0, IO
            li t1, PMEM
            # put a marker word into pmem scratch
            li a0, 0x5AFE5AFE
            sw a0, 64(t1)
            # DMA it to host address 0x3000
            li a1, 0x3000
            sw a1, 0x44(t0)      # DMA_HOST_ADDR
            li a1, PMEM+64
            sw a1, 0x48(t0)      # DMA_LOCAL_ADDR
            li a1, 4
            sw a1, 0x4c(t0)      # DMA_LEN
            li a1, 1
            sw a1, 0x50(t0)      # DMA_CTRL = write to host
        wait:
            lw a2, 0x54(t0)      # DMA_STATUS
            bnez a2, wait
            li a3, 1
            sw a3, 0x18(t0)      # STATUS = done
            ebreak
        ",
    )
    .unwrap();
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(2))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
        .unwrap();
    sys.run(2_000);
    assert_eq!(sys.rpu_status(0), 1, "firmware never saw DMA completion");
    let word = u32::from_le_bytes(sys.host_dram()[0x3000..0x3004].try_into().unwrap());
    assert_eq!(word, 0x5AFE_5AFE);
}

/// DMA completion takes PCIe-scale time, not a cycle.
#[test]
fn host_dma_has_pcie_latency() {
    struct OneShot {
        started_at: Option<u64>,
        done_at: Option<u64>,
    }
    impl Firmware for OneShot {
        fn tick(&mut self, io: &mut RpuIo<'_>) {
            match (self.started_at, self.done_at) {
                (None, _) => {
                    io.host_dma_write(0, memmap::PMEM_BASE, 64);
                    self.started_at = Some(io.now());
                }
                (Some(_), None) if !io.host_dma_busy() => {
                    self.done_at = Some(io.now());
                    io.set_status(1);
                }
                _ => {}
            }
        }
    }
    let mut tb = RpuTestbench::new(RosebudConfig::with_rpus(2));
    tb.load_native(Box::new(OneShot {
        started_at: None,
        done_at: None,
    }));
    // The testbench has no host; drive through the full system instead.
    drop(tb);
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(2))
        .firmware(|_| {
            RpuProgram::Native(Box::new(OneShot {
                started_at: None,
                done_at: None,
            }))
        })
        .build()
        .unwrap();
    let pcie = sys.config().pcie_rtt_cycles / 2;
    let mut done_cycle = None;
    for c in 0..2_000u64 {
        sys.tick();
        if done_cycle.is_none() && sys.rpu_status(0) == 1 {
            done_cycle = Some(c);
        }
    }
    let done = done_cycle.expect("DMA never completed");
    assert!(
        done >= pcie,
        "DMA completed in {done} cycles, faster than PCIe ({pcie})"
    );
}

/// The host loads accelerator-local tables through the A.6 memory path —
/// the third RPU memory of §4.1.
#[test]
fn host_loads_accelerator_local_memory() {
    use rosebud_core::MemRegion;
    let rules = vec![rosebud_accel::Rule::new(1, b"x")];
    let compiled = rosebud_accel::RuleSet::compile(rules);
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(2))
        .accelerator(move |_| Box::new(rosebud_accel::PigasusMatcher::new(compiled.clone(), 16)))
        .firmware(|_| RpuProgram::Native(Box::new(Idle)))
        .build()
        .unwrap();
    struct Idle;
    impl Firmware for Idle {
        fn tick(&mut self, _io: &mut RpuIo<'_>) {}
    }
    sys.write_rpu_mem(1, MemRegion::AccelMem, 0x40, &[7u8; 512]);
    let rpus = sys.rpus();
    let accel = rpus[1].accelerator().unwrap();
    assert_eq!(accel.name(), "pigasus-mpse");
    // AccelMem reads are write-only from the host (readback goes through
    // the DMA engine only when the accelerator is quiescent, §4.1).
    assert!(sys.read_rpu_mem(1, MemRegion::AccelMem, 0, 16).is_empty());
}
