//! Integration tests for the inter-RPU messaging subsystem (§4.4) exercised
//! from assembled firmware, heterogeneous RPU processing chains over the
//! loopback module, and the host-DRAM (virtual Ethernet) data path.

use rosebud_core::{
    port, Desc, Firmware, Harness, Rosebud, RosebudConfig, RoundRobinLb, RpuIo, RpuProgram,
};
use rosebud_net::{FixedSizeGen, PacketBuilder};
use rosebud_riscv::assemble;

/// Assembled firmware exercising the broadcast region from real RV32 code:
/// RPU 0 writes its timer to the semi-coherent region; every RPU mirrors it.
#[test]
fn riscv_firmware_broadcasts_through_the_semi_coherent_region() {
    let sender = assemble(
        "
        .equ IO,    0x02000000
        .equ BCAST, 0x04000000
            li t0, IO
            li t1, BCAST
        loop:
            lw a0, 0x24(t0)      # TIMER_L
            sw a0, 16(t1)        # broadcast word 4
            # pace: burn some cycles so the outbox never saturates
            li a1, 200
        delay:
            addi a1, a1, -1
            bnez a1, delay
            j loop
        ",
    )
    .unwrap();
    let listener = assemble("spin: j spin").unwrap();
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(4))
        .firmware(move |r| {
            RpuProgram::Riscv(if r == 0 {
                sender.clone()
            } else {
                listener.clone()
            })
        })
        .build()
        .unwrap();
    sys.run(20_000);
    // Every RPU's mirror holds a recent timer value at offset 16.
    for r in 0..4 {
        let rpus = sys.rpus();
        let mirror = rpus[r].inner().bcast_mirror();
        let word = u32::from_le_bytes(mirror[16..20].try_into().unwrap());
        assert!(
            word > 0 && u64::from(word) < 20_000,
            "RPU {r} mirror word {word} not a plausible timestamp"
        );
    }
    assert!(sys.bcast_latency().count() > 10);
}

/// Assembled firmware that *receives* broadcasts via the notification FIFO
/// and accumulates delivered values into its status register.
#[test]
fn riscv_firmware_polls_broadcast_notifications() {
    let sender = assemble(
        "
        .equ BCAST, 0x04000000
            li t1, BCAST
            li a0, 7
            sw a0, 0(t1)         # word 0
            li a0, 35
            sw a0, 4(t1)         # word 1: distinct, so no mirror race
        spin:
            j spin
        ",
    )
    .unwrap();
    let receiver = assemble(
        "
        .equ IO,    0x02000000
        .equ BCAST, 0x04000000
            li t0, IO
            li t1, BCAST
            li s0, 0
        poll:
            lw a0, 0x38(t0)      # BCAST_NOTIFY: offset or 0xffffffff
            li a1, -1
            beq a0, a1, poll
            add a2, a0, t1       # read the delivered word from the mirror
            lw a3, 0(a2)
            add s0, s0, a3
            sw s0, 0x18(t0)      # STATUS = running sum
            j poll
        ",
    )
    .unwrap();
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(2))
        .firmware(move |r| {
            RpuProgram::Riscv(if r == 0 {
                sender.clone()
            } else {
                receiver.clone()
            })
        })
        .build()
        .unwrap();
    sys.run(5_000);
    assert_eq!(
        sys.rpu_status(1),
        42,
        "receiver must sum both delivered broadcast words (7 + 35)"
    );
}

/// A heterogeneous three-stage processing chain over the loopback module
/// (§4.4: "Inter-core packet messaging can also be used to implement a
/// processing chain of heterogeneous RPUs with different accelerators and
/// capabilities"): stage 0 stamps, stage 1 stamps, stage 2 emits.
struct ChainStage {
    stamp: u8,
    next: Option<usize>,
}

impl Firmware for ChainStage {
    fn name(&self) -> &str {
        "chain-stage"
    }

    fn tick(&mut self, io: &mut RpuIo<'_>) {
        if let Some(desc) = io.rx_pop() {
            // Stamp the first payload byte region with this stage's mark.
            let at = desc.data + 54 + u32::from(self.stamp);
            io.pmem_write(at, &[self.stamp]);
            io.charge(20);
            let out_port = match self.next {
                Some(next) => port::LOOPBACK_BASE + next as u8,
                None => 0,
            };
            io.send(Desc {
                port: out_port,
                ..desc
            });
        }
    }
}

#[test]
fn heterogeneous_rpu_chain_over_loopback() {
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(4))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(|r| {
            RpuProgram::Native(Box::new(match r {
                0 => ChainStage {
                    stamp: 1,
                    next: Some(1),
                },
                1 => ChainStage {
                    stamp: 2,
                    next: Some(2),
                },
                _ => ChainStage {
                    stamp: 3,
                    next: None,
                },
            }))
        })
        .build()
        .unwrap();
    // Only stage 0 receives wire traffic.
    sys.lb_host_write(rosebud_core::lb_regs::ENABLE_LO, 0b0001);
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 5.0).keep_output(true);
    h.run(60_000);
    assert!(h.received() > 20, "chain delivered {}", h.received());
    for pkt in h.collected() {
        // All three stamps must be present: bytes 55, 56, 57.
        assert_eq!(pkt.bytes()[55], 1, "stage 0 stamp missing");
        assert_eq!(pkt.bytes()[56], 2, "stage 1 stamp missing");
        assert_eq!(pkt.bytes()[57], 3, "stage 2 stamp missing");
        assert_eq!(pkt.port, 0, "chain exit port");
    }
}

/// The host's virtual Ethernet interface: packets injected from host DRAM
/// traverse the same LB + RPU path and can be returned to the host.
#[test]
fn host_virtual_ethernet_round_trip() {
    struct ToHost;
    impl Firmware for ToHost {
        fn tick(&mut self, io: &mut RpuIo<'_>) {
            if let Some(desc) = io.rx_pop() {
                io.charge(10);
                io.send(Desc {
                    port: port::HOST,
                    ..desc
                });
            }
        }
    }
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(4))
        .firmware(|_| RpuProgram::Native(Box::new(ToHost)))
        .build()
        .unwrap();
    for i in 0..20u64 {
        let pkt = PacketBuilder::new().tcp(1, 2).pad_to(200).build_with(i, 0);
        sys.inject_from_host(pkt).unwrap();
    }
    sys.run(5_000);
    let back = sys.take_host_packets();
    assert_eq!(back.len(), 20, "all host packets returned over PCIe");
    for pkt in &back {
        assert_eq!(pkt.len(), 200);
    }
}

/// Loopback traffic shares the distribution subsystem without deadlocking
/// when every RPU relays to its neighbour in a ring.
#[test]
fn loopback_ring_makes_progress() {
    struct Ring {
        hops_left_key: u32,
    }
    impl Firmware for Ring {
        fn tick(&mut self, io: &mut RpuIo<'_>) {
            if let Some(desc) = io.rx_pop() {
                io.charge(8);
                // Hop counter lives in the packet at a fixed offset.
                let at = desc.data + self.hops_left_key;
                let hops = io.pmem_read(at, 1)[0];
                if hops == 0 {
                    io.send(Desc { port: 0, ..desc });
                } else {
                    io.pmem_write(at, &[hops - 1]);
                    let me = io.rpu_id();
                    let next = (me + 1) % 4;
                    io.send(Desc {
                        port: port::LOOPBACK_BASE + next as u8,
                        ..desc
                    });
                }
            }
        }
    }
    let mut sys = Rosebud::builder(RosebudConfig::with_rpus(4))
        .firmware(|_| RpuProgram::Native(Box::new(Ring { hops_left_key: 60 })))
        .build()
        .unwrap();
    sys.lb_host_write(rosebud_core::lb_regs::ENABLE_LO, 0b0001);
    // A packet with 6 hops in its belly.
    let mut pkt = PacketBuilder::new().tcp(9, 9).pad_to(128).build_with(0, 0);
    pkt.bytes_mut()[60] = 6;
    let mut h = Harness::new(sys, Box::new(rosebud_apps_noop::NoopGen), 0.0).keep_output(true);
    h.sys.inject(pkt).unwrap();
    h.run(20_000);
    assert_eq!(h.received(), 1, "ring packet never escaped");
    assert_eq!(h.collected()[0].bytes()[60], 0, "all hops consumed");
}

// Local noop generator (rosebud-core tests cannot depend on rosebud-apps).
mod rosebud_apps_noop {
    #[derive(Debug)]
    pub struct NoopGen;
    impl rosebud_net::TrafficGen for NoopGen {
        fn generate(&mut self, id: u64, ts: u64) -> rosebud_net::Packet {
            rosebud_net::Packet::new(id, vec![0; 60], 0, ts)
        }
        fn next_size(&self) -> usize {
            60
        }
    }
}
