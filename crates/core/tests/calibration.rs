//! Calibration checks anchoring the simulation to the paper's measured
//! numbers (§6): minimum forwarding latency (Eq. 1), small-packet forwarding
//! rate (250 Mpps at 16 RPUs), and latency under saturation.

use rosebud_core::{Harness, Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
use rosebud_net::FixedSizeGen;
use rosebud_riscv::assemble;

/// The §6.1 forwarder: read a descriptor, flip the egress port, send.
fn forwarder_image() -> rosebud_riscv::Image {
    assemble(
        "
        .equ IO, 0x02000000
            li t0, IO
            li t1, 0x00800000        # context array in dmem
            li t2, 0x01000000        # XOR mask for the port byte
        poll:
            lw a0, 0x00(t0)          # RECV_READY
            beqz a0, poll
            lw a1, 0x04(t0)          # RECV_DESC_LO
            lw a2, 0x08(t0)          # RECV_DESC_DATA
            sw a1, 0(t1)             # copy descriptor into context
            sw a2, 4(t1)
            sw zero, 0x0c(t0)        # RECV_RELEASE
            xor a1, a1, t2
            sw a1, 0x10(t0)          # SEND_DESC_LO
            sw a2, 0x14(t0)          # SEND_DESC_DATA (commit)
            j poll
        ",
    )
    .unwrap()
}

fn forwarding_system(rpus: usize) -> Rosebud {
    let image = forwarder_image();
    Rosebud::builder(RosebudConfig::with_rpus(rpus))
        .load_balancer(Box::new(RoundRobinLb::new()))
        .firmware(move |_| RpuProgram::Riscv(image.clone()))
        .build()
        .unwrap()
}

/// Eq. 1: est. latency (µs) = size·8·(2/100 + 2/32)/1000 + 0.765.
fn eq1_us(size: u64) -> f64 {
    size as f64 * 8.0 * (2.0 / 100.0 + 2.0 / 32.0) / 1000.0 + 0.765
}

#[test]
fn low_load_latency_tracks_equation_1() {
    for &size in &[64u64, 256, 1500, 8192] {
        let sys = forwarding_system(16);
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(size as usize, 2)), 1.0);
        h.run(30_000);
        h.begin_window();
        h.run(120_000);
        let mean_us = h.latency().mean() / 1000.0;
        let expect = eq1_us(size);
        println!("size {size}: measured {mean_us:.3} us, Eq.1 {expect:.3} us");
        assert!(
            (mean_us - expect).abs() / expect < 0.25,
            "size {size}: measured {mean_us:.3} us vs Eq.1 {expect:.3} us"
        );
    }
}

#[test]
fn small_packet_forwarding_rate_is_250mpps_at_16_rpus() {
    let sys = forwarding_system(16);
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 200.0);
    h.run(50_000);
    h.begin_window();
    h.run(200_000);
    let m = h.measure();
    println!("64B @16 RPUs: {:.1} Mpps, {:.1} Gbps", m.mpps, m.gbps);
    // §6.1: 250 Mpps — 88 % of the 284 Mpps line rate.
    assert!(
        (230.0..265.0).contains(&m.mpps),
        "measured {:.1} Mpps, paper: 250",
        m.mpps
    );
}

#[test]
fn small_packet_forwarding_rate_is_125mpps_at_8_rpus() {
    let sys = forwarding_system(8);
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 200.0);
    h.run(50_000);
    h.begin_window();
    h.run(200_000);
    let m = h.measure();
    println!("64B @8 RPUs: {:.1} Mpps, {:.1} Gbps", m.mpps, m.gbps);
    assert!(
        (110.0..140.0).contains(&m.mpps),
        "measured {:.1} Mpps, paper: 125",
        m.mpps
    );
}

#[test]
fn large_packets_forward_at_line_rate() {
    for &size in &[1024u64, 1500, 9000] {
        let sys = forwarding_system(16);
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(size as usize, 2)), 200.0);
        h.run(60_000);
        h.begin_window();
        h.run(200_000);
        let m = h.measure();
        let line = rosebud_net::effective_line_rate_gbps(200.0, size);
        println!("size {size}: {:.1} Gbps (line {line:.1})", m.gbps);
        assert!(
            m.gbps > line * 0.97,
            "size {size}: {:.1} Gbps below line rate {line:.1}",
            m.gbps
        );
    }
}

#[test]
fn saturated_64b_flood_adds_rx_fifo_latency() {
    // §6.2: the 64-byte generator outruns the forwarder, the receive FIFO
    // fills, and steady state adds ≈32.8 µs.
    let sys = forwarding_system(16);
    let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(64, 2)), 205.0);
    h.run(300_000);
    h.begin_window();
    h.run(100_000);
    let mean_us = h.latency().mean() / 1000.0;
    let low_load = eq1_us(64);
    let added = mean_us - low_load;
    println!("64B saturated: {mean_us:.1} us mean ({added:.1} us added)");
    assert!(
        (15.0..60.0).contains(&added),
        "added latency {added:.1} us, paper: ~32.8"
    );
}
