//! Host-side control of a running Rosebud system: the Rust rendering of the
//! paper's host C library + Corundum driver (§3.2, §3.4, Appendix A.6–A.8).
//!
//! Everything here operates on a [`Rosebud`] the way the real host reaches
//! the FPGA over PCIe: load memories, read counters, poke/evict RPUs, drive
//! the LB's 30-bit register channel, dump memory, and kick off partial
//! reconfigurations.

use rosebud_kernel::Cycle;
use rosebud_riscv::Image;

use crate::system::{PrJob, PrPhase, Rosebud, RpuProgram};
use crate::types::{irq, memmap};

/// Memory regions addressable from the host within one RPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRegion {
    /// Instruction memory.
    Imem,
    /// Data memory (includes the DMA'd header slots).
    Dmem,
    /// Shared packet memory.
    Pmem,
    /// Accelerator-local memory — the third memory of §4.1, "loaded by the
    /// packet distribution subsystem for lookup tables or similar"; writes
    /// reach the accelerator through its table-load port, which hardware
    /// only connects "during boot or readback — where the accelerators are
    /// not active".
    AccelMem,
}

/// Well-known LB host-channel addresses (the 30-bit space of §4.2). The
/// first few words are framework-defined; everything else is forwarded to
/// the user's LB implementation.
pub mod lb_regs {
    /// (r/w) Enable mask, low 32 RPUs: "select which cores are used for
    /// incoming traffic and which cores are disabled".
    pub const ENABLE_LO: u32 = 0x0;
    /// (r/w) Enable mask, high 32 RPUs.
    pub const ENABLE_HI: u32 = 0x1;
    /// (w) Flush all slots of the RPU given by the written value (§4.2:
    /// "prepare the LB for load of a new RPU by flushing the slots").
    pub const FLUSH_RPU: u32 = 0x2;
    /// (r) Base of the per-RPU free-slot counters: `SLOTS_BASE + r` reads
    /// RPU `r`'s available slots ("helpful to detect freezes and
    /// starvation").
    pub const SLOTS_BASE: u32 = 0x100;
}

impl Rosebud {
    /// Reads a word from the LB's host register channel.
    pub fn lb_host_read(&mut self, addr: u32) -> u32 {
        match addr {
            lb_regs::ENABLE_LO => self.enabled as u32,
            lb_regs::ENABLE_HI => (self.enabled >> 32) as u32,
            a if a >= lb_regs::SLOTS_BASE
                && ((a - lb_regs::SLOTS_BASE) as usize) < self.lanes.len() =>
            {
                self.tracker.free_count((a - lb_regs::SLOTS_BASE) as usize) as u32
            }
            other => self.lb.host_read(other),
        }
    }

    /// Writes a word to the LB's host register channel.
    pub fn lb_host_write(&mut self, addr: u32, value: u32) {
        match addr {
            lb_regs::ENABLE_LO => {
                self.enabled = (self.enabled & !0xffff_ffff) | u64::from(value);
            }
            lb_regs::ENABLE_HI => {
                self.enabled = (self.enabled & 0xffff_ffff) | (u64::from(value) << 32);
            }
            lb_regs::FLUSH_RPU => {
                let r = value as usize;
                if r < self.lanes.len() {
                    self.tracker.flush(r);
                }
            }
            other => self.lb.host_write(other, value),
        }
    }

    /// The current RPU enable mask.
    pub fn enabled_mask(&self) -> u64 {
        self.enabled
    }

    /// Reads `len` bytes from an RPU memory region — the host debug path
    /// that can "dump the entire RPU shared memory" (§3.4).
    pub fn read_rpu_mem(
        &self,
        rpu: usize,
        region: MemRegion,
        offset: usize,
        len: usize,
    ) -> Vec<u8> {
        let inner = self.lanes[rpu].rpu.inner();
        let mem: &[u8] = match region {
            MemRegion::Imem => return self.read_imem(rpu, offset, len),
            MemRegion::Dmem => inner.dmem(),
            MemRegion::Pmem => inner.pmem(),
            MemRegion::AccelMem => return Vec::new(), // write/readback only via DMA
        };
        mem[offset.min(mem.len())..(offset + len).min(mem.len())].to_vec()
    }

    fn read_imem(&self, rpu: usize, offset: usize, len: usize) -> Vec<u8> {
        // imem is private to the inner; expose through the boot image plus
        // live reads would require a second port — the host reads back what
        // it loaded (A.6 loads "directly from the ELF output file").
        match &self.lanes[rpu].rpu.boot_image {
            Some(image) => {
                let bytes = image.bytes();
                bytes[offset.min(bytes.len())..(offset + len).min(bytes.len())].to_vec()
            }
            None => Vec::new(),
        }
    }

    /// Writes bytes into an RPU memory region before boot (loading lookup
    /// tables, Appendix A.6) or during debugging.
    pub fn write_rpu_mem(&mut self, rpu: usize, region: MemRegion, offset: usize, bytes: &[u8]) {
        self.wake_lane(rpu);
        let inner = self.lanes[rpu].rpu.inner_mut();
        match region {
            MemRegion::Imem => {
                // Firmware loads go through `load_riscv`; raw imem pokes are
                // modelled as a partial image overwrite via the bus.
                for (i, b) in bytes.iter().enumerate() {
                    let _ = inner_store_u8(inner, memmap::IMEM_BASE + (offset + i) as u32, *b);
                }
            }
            MemRegion::Dmem => {
                for (i, b) in bytes.iter().enumerate() {
                    let _ = inner_store_u8(inner, memmap::DMEM_BASE + (offset + i) as u32, *b);
                }
            }
            MemRegion::Pmem => {
                for (i, b) in bytes.iter().enumerate() {
                    let _ = inner_store_u8(inner, memmap::PMEM_BASE + (offset + i) as u32, *b);
                }
            }
            MemRegion::AccelMem => {
                if let Some(accel) = self.lanes[rpu].rpu.accelerator_mut() {
                    accel.load_table(offset as u32, bytes);
                }
            }
        }
    }

    /// Sends a poke interrupt "to tell it to stop processing packets" so the
    /// host can inspect state (§3.4).
    pub fn poke(&mut self, rpu: usize) {
        self.lanes[rpu].rpu.raise_irq(irq::POKE);
        self.wake_lane(rpu);
    }

    /// Sends the eviction interrupt ahead of a reconfiguration (A.8).
    pub fn evict(&mut self, rpu: usize) {
        self.lanes[rpu].rpu.raise_irq(irq::EVICT);
        self.wake_lane(rpu);
    }

    /// Reads RPU `rpu`'s host-visible status register.
    pub fn rpu_status(&self, rpu: usize) -> u32 {
        self.lanes[rpu].rpu.inner().status()
    }

    /// Takes the most recent 64-bit debug-channel value from `rpu`, if the
    /// firmware wrote one since the last read (A.7).
    pub fn take_debug(&mut self, rpu: usize) -> Option<u64> {
        self.lanes[rpu].rpu.inner_mut().take_debug_out()
    }

    /// Writes the host→RPU half of the 64-bit debug channel.
    pub fn write_debug(&mut self, rpu: usize, value: u64) {
        self.lanes[rpu].rpu.inner_mut().set_debug_in(value);
        self.wake_lane(rpu);
    }

    /// Begins a runtime reconfiguration of `rpu` (§4.1, A.8): the LB stops
    /// sending to it, in-flight packets drain, the PR bitstream writes for
    /// `pr_cycles`, then the new program (or the original factory's) boots
    /// and the LB resumes. Traffic to other RPUs continues throughout.
    pub fn reconfigure_rpu(
        &mut self,
        rpu: usize,
        program: Option<RpuProgram>,
        accel: Option<Box<dyn rosebud_accel::Accelerator>>,
    ) {
        assert!(rpu < self.lanes.len(), "no such RPU");
        self.enabled &= !(1 << rpu);
        self.lanes[rpu].rpu.start_drain();
        self.wake_lane(rpu);
        self.pr_jobs.push(PrJob {
            rpu,
            phase: PrPhase::Draining,
            program,
            accel,
            reenable: true,
        });
    }

    /// Like [`Rosebud::reconfigure_rpu`] with the factory program, but the
    /// LB enable bit does **not** come back automatically when the region
    /// boots: the caller re-enables with [`Rosebud::enable_rpu`] after
    /// verifying the reboot. This is the supervisor's graceful-eviction
    /// rung — it must never hand traffic to a region it has not confirmed
    /// alive.
    pub fn reconfigure_rpu_gated(&mut self, rpu: usize) {
        assert!(rpu < self.lanes.len(), "no such RPU");
        self.enabled &= !(1 << rpu);
        self.lanes[rpu].rpu.start_drain();
        self.wake_lane(rpu);
        self.pr_jobs.push(PrJob {
            rpu,
            phase: PrPhase::Draining,
            program: None,
            accel: None,
            reenable: false,
        });
    }

    /// Forced eviction (A.8 failure path): a wedged region holds packets
    /// that will never drain, so the host destroys them — every bound slot,
    /// every queued descriptor, everything on the ingress pipeline headed
    /// there — accounts them as purged in the conservation ledger, and
    /// starts the PR bitstream write immediately. Returns the number of
    /// slot-bound packets destroyed. The enable bit stays clear until the
    /// caller re-enables.
    pub fn force_reconfigure_rpu(&mut self, rpu: usize) -> u64 {
        assert!(rpu < self.lanes.len(), "no such RPU");
        self.enabled &= !(1 << rpu);
        // Supersede any graceful job that was waiting on a drain that will
        // never finish.
        self.pr_jobs.retain(|j| j.rpu != rpu);
        let purged = (self.cfg.slots_per_rpu - self.tracker.free_count(rpu)) as u64;
        self.ledger.purged += purged;
        self.ingress_delay.retain(|item| item.rpu != rpu);
        self.lanes[rpu].rin.flush();
        self.lanes[rpu].rout.flush();
        self.lanes[rpu].rpu.purge();
        self.tracker.flush(rpu);
        let until = self.clock.cycle() + self.cfg.pr_cycles;
        self.lanes[rpu].rpu.begin_reconfigure(until);
        self.wake_lane(rpu);
        self.pr_jobs.push(PrJob {
            rpu,
            phase: PrPhase::Writing { until },
            program: None,
            accel: None,
            reenable: false,
        });
        purged
    }

    /// Sets `rpu`'s LB enable bit (host register write).
    pub fn enable_rpu(&mut self, rpu: usize) {
        self.enabled |= 1 << rpu;
    }

    /// Clears `rpu`'s LB enable bit: new traffic immediately reroutes to
    /// the remaining RPUs (graceful degradation).
    pub fn disable_rpu(&mut self, rpu: usize) {
        self.enabled &= !(1 << rpu);
    }

    /// `true` while a reconfiguration of `rpu` is in progress.
    pub fn reconfigure_pending(&self, rpu: usize) -> bool {
        self.pr_jobs.iter().any(|j| j.rpu == rpu)
    }

    /// Loads a new assembled firmware into a *stopped* RPU and boots it —
    /// the plain (non-PR) load path of A.6. Under [`crate::LoadPolicy::Deny`]
    /// an image whose lint report contains errors is refused and the RPU is
    /// left untouched.
    pub fn load_rpu_firmware(&mut self, rpu: usize, image: &Image) -> Result<(), String> {
        if !self.vet_firmware(rpu, image) {
            return Err(format!(
                "firmware for RPU {rpu} rejected by LoadPolicy::Deny"
            ));
        }
        self.lanes[rpu].rpu.load_riscv(image);
        self.wake_lane(rpu);
        Ok(())
    }
}

fn inner_store_u8(inner: &mut crate::rpu::RpuInner, addr: u32, value: u8) -> Result<(), ()> {
    use rosebud_riscv::AccessSize;
    inner
        .host_store(addr, u32::from(value), AccessSize::Byte)
        .map(|_| ())
        .map_err(|_| ())
}

/// The analytic partial-reconfiguration timing model (§4.1): "We measured
/// the time to pause, load the new bit file, and boot a new RPU, and it
/// takes 756 milliseconds on average (across 320 loads)."
///
/// The dominant term is writing the PR bitstream through Xilinx's MCAP,
/// which streams configuration frames at roughly 3 MB/s effective on this
/// board generation; pausing/draining and booting add milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct PrTimingModel {
    /// PR bitstream size for one RPU region, in bytes.
    pub bitstream_bytes: f64,
    /// Effective MCAP write bandwidth, bytes/second.
    pub mcap_bytes_per_sec: f64,
    /// Pause + drain + boot overhead, seconds.
    pub fixed_overhead_s: f64,
    /// Run-to-run jitter fraction (uniform ±).
    pub jitter: f64,
}

impl Default for PrTimingModel {
    fn default() -> Self {
        // A VU9P PR region covering ~1/16 of the device is ~2.2 MB of
        // frames; 3 MB/s MCAP + ~20 ms overhead lands at the measured mean.
        Self {
            bitstream_bytes: 2.21e6,
            mcap_bytes_per_sec: 3.0e6,
            fixed_overhead_s: 0.020,
            jitter: 0.04,
        }
    }
}

impl PrTimingModel {
    /// One reload's duration in seconds, with deterministic per-sample
    /// jitter from `sample` (the load index).
    pub fn reload_seconds(&self, sample: u64) -> f64 {
        let base = self.bitstream_bytes / self.mcap_bytes_per_sec + self.fixed_overhead_s;
        let mut rng = rosebud_kernel::SimRng::seed_from(0x9E37 ^ sample);
        base * (1.0 + self.jitter * (2.0 * rng.unit() - 1.0))
    }

    /// Mean reload time over `n` samples, in seconds.
    pub fn mean_reload_seconds(&self, n: u64) -> f64 {
        (0..n).map(|i| self.reload_seconds(i)).sum::<f64>() / n as f64
    }
}

/// Converts a reload duration to cycles at `clock_hz` (for callers that want
/// to simulate the full wall-clock reconfiguration).
pub fn pr_reload_model(model: &PrTimingModel, clock_hz: u64, sample: u64) -> Cycle {
    (model.reload_seconds(sample) * clock_hz as f64) as Cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pr_model_means_756ms_over_320_loads() {
        let model = PrTimingModel::default();
        let mean = model.mean_reload_seconds(320);
        assert!(
            (mean - 0.756).abs() < 0.015,
            "mean reload {mean} s, paper: 0.756 s"
        );
    }

    #[test]
    fn pr_model_jitter_is_bounded() {
        let model = PrTimingModel::default();
        let base = model.bitstream_bytes / model.mcap_bytes_per_sec + model.fixed_overhead_s;
        for i in 0..100 {
            let s = model.reload_seconds(i);
            assert!((s - base).abs() <= base * model.jitter * 1.001);
        }
    }
}
