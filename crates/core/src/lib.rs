//! The Rosebud framework (paper §3–§4), as a cycle-level simulation.
//!
//! This crate is the reproduction's primary contribution: the RPU
//! abstraction and all the supporting hardware the paper builds around it —
//! the customizable load balancer, the two-stage packet distribution
//! subsystem, the inter-RPU loopback and broadcast messaging, the host
//! control/debug interface, partial reconfiguration, and the FPGA resource
//! model behind Tables 1–4.
//!
//! # Examples
//!
//! A four-RPU system running an assembled RV32 forwarder:
//!
//! ```
//! use rosebud_core::{Harness, Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
//! use rosebud_net::FixedSizeGen;
//! use rosebud_riscv::assemble;
//!
//! let forwarder = assemble("
//!     .equ IO, 0x02000000
//!         li t0, IO
//!         li t2, 0x01000000
//!     poll:
//!         lw a0, 0x00(t0)
//!         beqz a0, poll
//!         lw a1, 0x04(t0)
//!         lw a2, 0x08(t0)
//!         sw zero, 0x0c(t0)
//!         xor a1, a1, t2
//!         sw a1, 0x10(t0)
//!         sw a2, 0x14(t0)
//!         j poll
//! ").unwrap();
//!
//! let sys = Rosebud::builder(RosebudConfig::with_rpus(4))
//!     .load_balancer(Box::new(RoundRobinLb::new()))
//!     .firmware(move |_| RpuProgram::Riscv(forwarder.clone()))
//!     .build()
//!     .unwrap();
//!
//! let mut harness = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 20.0);
//! harness.run(20_000);
//! assert!(harness.received() > 0, "packets must flow end to end");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod diag;
mod fabric;
mod fault;
mod fleet;
mod harness;
mod host;
mod lane;
mod lb;
mod par;
pub mod ports;
pub mod resources;
mod rpu;
mod supervisor;
mod system;
mod testbench;
mod trace;
mod types;
mod verify;

pub use config::RosebudConfig;
pub use diag::{Bottleneck, BoxHealth, Diagnostics, FleetDiagnostics, RpuFaultKind};
pub use fabric::ByteFifo;
pub use fault::{FaultEvent, FaultKind, FaultPlan, Ledger};
pub use fleet::{
    FailoverRecord, Fleet, FleetConfig, FleetHarness, FleetLogEntry, FleetSupervisor,
    FleetSupervisorConfig,
};
pub use harness::{Harness, Measurement};
pub use host::{lb_regs, pr_reload_model, MemRegion, PrTimingModel};
pub use lb::{ConsistentHashRing, HashLb, LeastLoadedLb, LoadBalancer, RoundRobinLb, SlotTracker};
pub use ports::{pump, EventLog, PortEvent, SharedEgress};
pub use rosebud_kernel::KernelMode;
pub use rpu::{Firmware, PerfCounters, Rpu, RpuInner, RpuIo, RpuState};
pub use supervisor::{RecoveryEvent, Supervisor, SupervisorConfig};
pub use system::{AccelFactory, FirmwareFactory, Rosebud, RosebudBuilder, RpuProgram, Rpus};
pub use testbench::{PacketReport, RpuTestbench, TxRecord};
pub use trace::{FleetStep, SupervisorStep, TraceConfig, TraceEvent, Tracer};
pub use types::{irq, memmap, port, BcastMsg, Desc, HostDmaReq, SlotMeta, SELF_TAG};
pub use verify::{machine_spec, LintRecord, LoadPolicy, STACK_BYTES};
