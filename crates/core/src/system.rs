//! The top-level Rosebud system: RPUs, load balancer, packet distribution,
//! messaging, and the host bridge, advanced one 250 MHz cycle at a time.

use rosebud_accel::Accelerator;
use rosebud_kernel::{
    Clock, Counters, Cycle, DelayLine, EgressPort, Fifo, KernelMode, LatencyStats, Serializer,
};
use rosebud_net::Packet;
use rosebud_riscv::Image;

use crate::config::RosebudConfig;
use crate::fabric::{BcastArbiter, EgressItem, IngressItem, Loopback, PortState};
use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultState, Ledger};
use crate::lane::{lane_phase, Lane, LaneFx, RxFx, TxFx};
use crate::lb::{LoadBalancer, SlotTracker};
use crate::par::WorkerPool;
use crate::rpu::{Firmware, Rpu};
use crate::supervisor::RecoveryEvent;
use crate::trace::{SupervisorStep, TraceConfig, TraceEvent, Tracer};
use crate::types::{irq, port, HostDmaReq, SlotMeta, SELF_TAG};
use crate::verify::{machine_spec, LintRecord, LoadPolicy};

/// How often [`Rosebud::tick`] re-asserts the packet-conservation ledger.
const LEDGER_CHECK_INTERVAL: Cycle = 1024;

/// What runs on an RPU's core.
pub enum RpuProgram {
    /// Assembled RV32IM firmware on the instruction-set simulator.
    Riscv(Image),
    /// Native firmware with explicit cycle accounting.
    Native(Box<dyn Firmware>),
}

impl std::fmt::Debug for RpuProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpuProgram::Riscv(img) => write!(f, "Riscv({} words)", img.words().len()),
            RpuProgram::Native(fw) => write!(f, "Native({})", fw.name()),
        }
    }
}

/// Factory producing one firmware instance per RPU.
pub type FirmwareFactory = Box<dyn Fn(usize) -> RpuProgram + Send>;
/// Factory producing one accelerator instance per RPU.
pub type AccelFactory = Box<dyn Fn(usize) -> Box<dyn Accelerator> + Send>;

/// Builder for a [`Rosebud`] system.
///
/// # Examples
///
/// ```
/// use rosebud_core::{Rosebud, RosebudConfig, RoundRobinLb, RpuProgram};
/// use rosebud_riscv::assemble;
///
/// let image = assemble("
///     spin: j spin
/// ").unwrap();
/// let sys = Rosebud::builder(RosebudConfig::with_rpus(4))
///     .load_balancer(Box::new(RoundRobinLb::new()))
///     .firmware(move |_rpu| RpuProgram::Riscv(image.clone()))
///     .build()
///     .unwrap();
/// assert_eq!(sys.config().num_rpus, 4);
/// ```
pub struct RosebudBuilder {
    cfg: RosebudConfig,
    lb: Option<Box<dyn LoadBalancer>>,
    firmware: Option<FirmwareFactory>,
    accel: Option<AccelFactory>,
    kernel: Option<KernelMode>,
    load_policy: LoadPolicy,
}

impl RosebudBuilder {
    /// Installs the load-balancing policy (defaults to round-robin).
    pub fn load_balancer(mut self, lb: Box<dyn LoadBalancer>) -> Self {
        self.lb = Some(lb);
        self
    }

    /// Selects the simulation kernel explicitly. Defaults to
    /// [`KernelMode::from_env`] (`ROSEBUD_KERNEL`), so test suites can be
    /// matrixed over both kernels without code changes.
    pub fn kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = Some(kernel);
        self
    }

    /// Installs the per-RPU firmware factory.
    pub fn firmware<F>(mut self, factory: F) -> Self
    where
        F: Fn(usize) -> RpuProgram + Send + 'static,
    {
        self.firmware = Some(Box::new(factory));
        self
    }

    /// Installs the per-RPU accelerator factory.
    pub fn accelerator<F>(mut self, factory: F) -> Self
    where
        F: Fn(usize) -> Box<dyn Accelerator> + Send + 'static,
    {
        self.accel = Some(Box::new(factory));
        self
    }

    /// Selects the static-lint policy applied to every RISC-V firmware
    /// load: at boot, on host loads, and on partial-reconfiguration
    /// reloads. Defaults to [`LoadPolicy::Off`].
    pub fn load_policy(mut self, policy: LoadPolicy) -> Self {
        self.load_policy = policy;
        self
    }

    /// Constructs the system, loads accelerators and firmware into every
    /// RPU, and boots them.
    ///
    /// # Errors
    ///
    /// Returns the configuration-validation message on an invalid
    /// [`RosebudConfig`], or a description when no firmware was provided.
    pub fn build(self) -> Result<Rosebud, String> {
        self.cfg.validate()?;
        let firmware = self.firmware.ok_or("no firmware installed")?;
        let cfg = self.cfg;
        let mut lanes: Vec<Box<Lane>> = (0..cfg.num_rpus)
            .map(|i| {
                Box::new(Lane {
                    quiet_until: 0,
                    rpu: Rpu::new(i, &cfg),
                    rin: Serializer::new(cfg.rpu_link_bytes_per_cycle, cfg.slots_per_rpu + 2),
                    rout: Serializer::new(cfg.rpu_link_bytes_per_cycle, cfg.slots_per_rpu + 2),
                    fx: LaneFx::default(),
                })
            })
            .collect();
        let mut lint_log: Vec<LintRecord> = Vec::new();
        for (i, lane) in lanes.iter_mut().enumerate() {
            if let Some(accel) = &self.accel {
                lane.rpu.set_accelerator(accel(i));
            }
            match firmware(i) {
                RpuProgram::Riscv(image) => {
                    if self.load_policy != LoadPolicy::Off {
                        let report = rosebud_riscv::Analyzer::new(machine_spec(&cfg)).check(&image);
                        let denied = self.load_policy == LoadPolicy::Deny && report.has_errors();
                        let errors = report.error_count();
                        lint_log.push(LintRecord {
                            rpu: i,
                            cycle: 0,
                            denied,
                            report,
                        });
                        if denied {
                            return Err(format!(
                                "firmware for RPU {i} rejected by LoadPolicy::Deny: \
                                 {errors} lint error(s)"
                            ));
                        }
                    }
                    lane.rpu.load_riscv(&image);
                }
                RpuProgram::Native(fw) => lane.rpu.load_native(fw),
            }
        }
        let kernel = self.kernel.unwrap_or_else(KernelMode::from_env);
        let pool = match kernel {
            KernelMode::Parallel { workers, quantum } if workers > 0 => {
                Some(WorkerPool::new(workers, cfg.num_rpus, quantum))
            }
            _ => None,
        };
        let tracker = SlotTracker::new(cfg.num_rpus, cfg.slots_per_rpu);
        let enabled = if cfg.num_rpus >= 64 {
            u64::MAX
        } else {
            (1u64 << cfg.num_rpus) - 1
        };
        let ports = (0..cfg.num_ports).map(|_| PortState::new(&cfg)).collect();
        let lane_quiet = vec![0; cfg.num_rpus];
        Ok(Rosebud {
            clock: Clock::new(cfg.clock_hz),
            lanes,
            kernel,
            pool,
            lane_quiet,
            rout_mask: u64::MAX,
            dma_mask: u64::MAX,
            lb: self
                .lb
                .unwrap_or_else(|| Box::new(crate::lb::RoundRobinLb::new())),
            tracker,
            enabled,
            ports,
            egress: (0..cfg.num_ports).map(|_| None).collect(),
            ingress_delay: DelayLine::new(cfg.ingress_fixed_cycles),
            loopback: Loopback::new(&cfg),
            bcast: BcastArbiter::new(&cfg),
            bcast_latency: LatencyStats::new(),
            host_rx_delay: DelayLine::new(cfg.pcie_rtt_cycles / 2),
            host_rx: Vec::new(),
            host_tx: Fifo::new(256),
            host_dram: vec![0; 4 * 1024 * 1024],
            host_dma_delay: DelayLine::new(cfg.pcie_rtt_cycles / 2),
            pr_jobs: Vec::new(),
            lb_assigned: 0,
            lb_stall_cycles: 0,
            routed_drops: 0,
            firmware_factory: Some(firmware),
            accel_factory: self.accel,
            fault: None,
            ledger: Ledger::default(),
            recovery_log: Vec::new(),
            load_policy: self.load_policy,
            lint_log,
            tracer: None,
            cfg,
        })
    }
}

pub(crate) struct PrJob {
    pub rpu: usize,
    pub phase: PrPhase,
    pub program: Option<RpuProgram>,
    pub accel: Option<Box<dyn Accelerator>>,
    /// Whether the LB enable bit comes back automatically when the new
    /// program boots. Supervised recoveries pass `false`: the supervisor
    /// re-enables only after verifying the region actually rebooted.
    pub reenable: bool,
}

pub(crate) enum PrPhase {
    Draining,
    Writing { until: Cycle },
}

/// The simulated Rosebud system (Fig. 2): everything inside the DUT FPGA.
pub struct Rosebud {
    pub(crate) cfg: RosebudConfig,
    pub(crate) clock: Clock,
    /// One lane per RPU: the RPU plus its private ingress/egress links,
    /// boxed so the parallel kernel can move lanes to workers cheaply.
    // Boxed so the worker pool can move lanes across threads pointer-sized.
    #[allow(clippy::vec_box)]
    pub(crate) lanes: Vec<Box<Lane>>,
    /// Which kernel advances the system.
    kernel: KernelMode,
    /// Worker pool, when the parallel kernel has threads.
    pool: Option<WorkerPool>,
    /// Coordinator-side mirror of each lane's `quiet_until`, kept dense so
    /// the parallel kernel's skip checks never dereference a sleeping
    /// lane's box. Updated at the barrier and by [`Rosebud::wake_lane`];
    /// unused by the sequential kernel.
    lane_quiet: Vec<Cycle>,
    /// Persistent egress-link occupancy bitmap (parallel kernel): bit `r`
    /// set while lane `r`'s `rout` may hold data. Survives sleeping lanes —
    /// a lane can park with frames still serializing out — and self-clears
    /// in stage 7. Lanes ≥ 64 are never masked off.
    rout_mask: u64,
    /// Persistent host-DMA-request bitmap (parallel kernel): bit `r` set
    /// while lane `r`'s RPU may hold a committed DMA request. A parked core
    /// legitimately sleeps while its request waits out a PCIe outage, so
    /// this must survive elided cycles too.
    dma_mask: u64,
    pub(crate) lb: Box<dyn LoadBalancer>,
    pub(crate) tracker: SlotTracker,
    pub(crate) enabled: u64,
    pub(crate) ports: Vec<PortState>,
    /// Optional egress port bound per physical port: when present, frames
    /// leaving the TX MAC are offered to it (respecting its capacity — a
    /// refused frame stays serializing in the MAC, which is real wire-side
    /// backpressure); when absent, frames land in the port's `output` vec as
    /// they always have.
    pub(crate) egress: Vec<Option<Box<dyn EgressPort<Packet> + Send>>>,
    pub(crate) ingress_delay: DelayLine<IngressItem>,
    pub(crate) loopback: Loopback,
    pub(crate) bcast: BcastArbiter,
    pub(crate) bcast_latency: LatencyStats,
    pub(crate) host_rx_delay: DelayLine<Packet>,
    pub(crate) host_rx: Vec<Packet>,
    pub(crate) host_tx: Fifo<Packet>,
    /// Host DRAM reachable from the RPUs through the DMA manager (§4.2).
    pub(crate) host_dram: Vec<u8>,
    pub(crate) host_dma_delay: DelayLine<(usize, HostDmaReq)>,
    pub(crate) pr_jobs: Vec<PrJob>,
    pub(crate) lb_assigned: u64,
    pub(crate) lb_stall_cycles: u64,
    pub(crate) routed_drops: u64,
    pub(crate) firmware_factory: Option<FirmwareFactory>,
    pub(crate) accel_factory: Option<AccelFactory>,
    /// Installed fault-injection schedule, if any.
    pub(crate) fault: Option<FaultState>,
    /// Packet-conservation accounting.
    pub(crate) ledger: Ledger,
    /// Completed recovery records, written by the supervisor over the host
    /// interface.
    pub(crate) recovery_log: Vec<RecoveryEvent>,
    /// Static-lint policy applied to every RISC-V firmware load.
    pub(crate) load_policy: LoadPolicy,
    /// Every lint report produced by the load path, oldest first.
    pub(crate) lint_log: Vec<LintRecord>,
    /// The cycle-stamped event recorder, when tracing is enabled (§4.3).
    pub(crate) tracer: Option<Tracer>,
}

/// The trace-facing name of an RPU's lifecycle state.
fn rpu_state_name(rpu: &Rpu) -> &'static str {
    match rpu.state() {
        crate::rpu::RpuState::Running => "running",
        crate::rpu::RpuState::Draining => "draining",
        crate::rpu::RpuState::Reconfiguring { .. } => "reconfiguring",
        crate::rpu::RpuState::Stopped => {
            if rpu.is_halted() {
                "halted"
            } else {
                "stopped"
            }
        }
    }
}

impl std::fmt::Debug for Rosebud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rosebud")
            .field("rpus", &self.lanes.len())
            .field("cycle", &self.clock.cycle())
            .field("lb", &self.lb.name())
            .field("kernel", &self.kernel)
            .finish()
    }
}

/// Read-only view of every RPU, indexable like the slice the sequential-era
/// API returned.
///
/// # Examples
///
/// ```
/// # use rosebud_core::{Rosebud, RosebudConfig, RpuProgram};
/// # use rosebud_riscv::assemble;
/// # let image = assemble("spin: j spin").unwrap();
/// # let sys = Rosebud::builder(RosebudConfig::with_rpus(4))
/// #     .firmware(move |_| RpuProgram::Riscv(image.clone()))
/// #     .build()
/// #     .unwrap();
/// assert_eq!(sys.rpus().len(), 4);
/// assert_eq!(sys.rpus()[2].id(), 2);
/// assert_eq!(sys.rpus().iter().count(), 4);
/// ```
#[derive(Clone, Copy)]
pub struct Rpus<'a>(&'a [Box<Lane>]);

impl<'a> Rpus<'a> {
    /// Number of RPUs.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterates the RPUs in index order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Rpu> + use<'a> {
        self.0.iter().map(|lane| &lane.rpu)
    }
}

impl std::ops::Index<usize> for Rpus<'_> {
    type Output = Rpu;

    fn index(&self, r: usize) -> &Rpu {
        &self.0[r].rpu
    }
}

impl Rosebud {
    /// Starts building a system with `cfg`.
    pub fn builder(cfg: RosebudConfig) -> RosebudBuilder {
        RosebudBuilder {
            cfg,
            lb: None,
            firmware: None,
            accel: None,
            kernel: None,
            load_policy: LoadPolicy::default(),
        }
    }

    /// The static-lint policy applied to firmware loads.
    pub fn load_policy(&self) -> LoadPolicy {
        self.load_policy
    }

    /// Every lint report the load path has produced, oldest first.
    pub fn lint_log(&self) -> &[LintRecord] {
        &self.lint_log
    }

    /// Runs the analyzer over `image` per the load policy, recording the
    /// report. Returns `false` when [`LoadPolicy::Deny`] must block the
    /// install.
    pub(crate) fn vet_firmware(&mut self, rpu: usize, image: &Image) -> bool {
        if self.load_policy == LoadPolicy::Off {
            return true;
        }
        let report = rosebud_riscv::Analyzer::new(machine_spec(&self.cfg)).check(image);
        let denied = self.load_policy == LoadPolicy::Deny && report.has_errors();
        let cycle = self.clock.cycle();
        self.lint_log.push(LintRecord {
            rpu,
            cycle,
            denied,
            report,
        });
        !denied
    }

    /// The kernel advancing this system.
    pub fn kernel(&self) -> KernelMode {
        self.kernel
    }

    /// Replaces the simulation kernel. Safe at any cycle boundary: lane
    /// sleep state is conservative (the sequential kernel ignores it, and a
    /// freshly built system has every lane awake), so differential
    /// harnesses can build one scenario and re-run it under each kernel.
    pub fn set_kernel(&mut self, kernel: KernelMode) {
        self.kernel = kernel;
        self.pool = match kernel {
            KernelMode::Parallel { workers, quantum } if workers > 0 => {
                Some(WorkerPool::new(workers, self.lanes.len(), quantum))
            }
            _ => None,
        };
    }

    /// The configuration.
    pub fn config(&self) -> &RosebudConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.clock.cycle()
    }

    /// Elapsed simulated time in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.clock.ns()
    }

    /// The RPUs (host-side inspection).
    pub fn rpus(&self) -> Rpus<'_> {
        Rpus(&self.lanes)
    }

    /// Mutable access to one RPU (host-side debugging, table loads).
    pub fn rpu_mut(&mut self, rpu: usize) -> &mut Rpu {
        self.wake_lane(rpu);
        &mut self.lanes[rpu].rpu
    }

    /// Re-arms lane `r` for the parallel kernel's quiescent-lane elision:
    /// every event that could change an elided lane's behavior — an ingress
    /// push, a raised interrupt, a host access, fault injection, a PR step —
    /// must route through here. Spurious wakes are harmless (an inert
    /// lane's phase is a no-op and it re-sleeps at the next barrier); a
    /// *missed* wake is a determinism bug the differential suite exists to
    /// catch. No-op under the sequential kernel, which never sleeps lanes.
    #[inline]
    pub(crate) fn wake_lane(&mut self, r: usize) {
        self.lanes[r].quiet_until = 0;
        self.lane_quiet[r] = 0;
    }

    /// Offers a packet to physical port `pkt.port`'s receive MAC. Returns
    /// the packet back when the wire-side serializer is busy (the traffic
    /// source retries next cycle — that is what "the link is saturated"
    /// means).
    pub fn inject(&mut self, pkt: Packet) -> Result<(), Packet> {
        let now = self.clock.cycle();
        let p = pkt.port as usize;
        if p >= self.ports.len() {
            return Err(pkt);
        }
        if self
            .fault
            .as_ref()
            .is_some_and(|f| f.rx_drop_until[p] > now)
        {
            // Injected RX FIFO overflow burst: the MAC accepts the frame and
            // immediately sheds it — accounted, not lost.
            self.ports[p].counters.count_rx_frame(pkt.len());
            self.ports[p].counters.count_drop();
            self.ledger.injected += 1;
            self.ledger.dropped += 1;
            return Ok(());
        }
        let wire = pkt.wire_len();
        self.ports[p].counters.count_rx_frame(pkt.len());
        let res = self.ports[p]
            .rx_mac
            .push(pkt, wire, now)
            .inspect_err(|pkt| {
                self.ports[p].counters.rx_frames -= 1;
                self.ports[p].counters.rx_bytes -= pkt.len();
            });
        if res.is_ok() {
            self.ledger.injected += 1;
        }
        res
    }

    /// `true` if port `p`'s receive MAC can take another frame this cycle.
    pub fn can_inject(&self, p: usize) -> bool {
        p < self.ports.len() && !self.ports[p].rx_mac.is_full()
    }

    /// Drains frames delivered on physical port `p`.
    pub fn take_output(&mut self, p: usize) -> Vec<Packet> {
        std::mem::take(&mut self.ports[p].output)
    }

    /// Binds an egress port to physical port `p`: delivered frames are
    /// offered to it instead of accumulating in the [`take_output`]
    /// (Self::take_output) vec, and its capacity backpressures the TX MAC.
    /// Replaces (and returns) any previous binding.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn bind_egress(
        &mut self,
        p: usize,
        port: Box<dyn EgressPort<Packet> + Send>,
    ) -> Option<Box<dyn EgressPort<Packet> + Send>> {
        self.egress[p].replace(port)
    }

    /// Removes and returns port `p`'s egress binding; deliveries fall back
    /// to the `take_output` vec.
    pub fn unbind_egress(&mut self, p: usize) -> Option<Box<dyn EgressPort<Packet> + Send>> {
        self.egress[p].take()
    }

    /// Drains frames delivered to the host over PCIe.
    pub fn take_host_packets(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.host_rx)
    }

    /// Queues a frame from the host's virtual Ethernet interface.
    pub fn inject_from_host(&mut self, pkt: Packet) -> Result<(), Packet> {
        let res = self.host_tx.push(pkt);
        if res.is_ok() {
            self.ledger.injected += 1;
        }
        res
    }

    /// Counters of physical port `p`.
    pub fn port_counters(&self, p: usize) -> Counters {
        self.ports[p].counters
    }

    /// Bytes currently queued in port `p`'s MAC receive FIFO (host-visible
    /// occupancy, useful for locating bottlenecks per §4.3).
    pub fn rx_fifo_bytes(&self, p: usize) -> u64 {
        self.ports[p].rx_fifo.bytes()
    }

    /// Counters of RPU `r` (§4.3).
    pub fn rpu_counters(&self, r: usize) -> Counters {
        self.lanes[r].rpu.inner().counters()
    }

    /// Broadcast-message delivery latency samples, in nanoseconds (§6.3).
    pub fn bcast_latency(&mut self) -> &mut LatencyStats {
        &mut self.bcast_latency
    }

    /// Packets the LB has assigned so far.
    pub fn lb_assigned(&self) -> u64 {
        self.lb_assigned
    }

    /// Cycles the LB spent with a head-of-line packet it could not place.
    pub fn lb_stall_cycles(&self) -> u64 {
        self.lb_stall_cycles
    }

    /// Packets dropped by firmware (zero-length sends) plus routing errors.
    pub fn drop_count(&self) -> u64 {
        self.routed_drops
    }

    /// Runs `cycles` clock cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Advances the whole system by one clock cycle.
    ///
    /// Both kernels advance the same architectural stages in the same
    /// order. The sequential kernel is the stage-sliced reference: every
    /// stage sweeps all RPUs before the next begins, shared effects applied
    /// inline. The parallel kernel fuses the per-RPU stages 4–6 into one
    /// lane pass (possibly fanned out across worker threads), defers the
    /// shared-resource effects into each lane's [`LaneFx`], and replays
    /// them at the cycle barrier in the sequential kernel's exact order —
    /// see [`crate::lane`] for the equivalence argument.
    pub fn tick(&mut self) {
        let now = self.clock.cycle();
        self.tick_pre(now);
        let (rout_mask, dma_mask) = match self.kernel {
            KernelMode::Sequential => {
                self.sequential_lane_stages(now);
                (u64::MAX, u64::MAX)
            }
            KernelMode::Parallel { .. } => {
                let mut any_ran = true;
                if let Some(mut pool) = self.pool.take() {
                    pool.maybe_rebalance(&self.lanes, now);
                    pool.run_cycle(&mut self.lanes, now);
                    self.pool = Some(pool);
                } else {
                    // Quiescent-lane elision: the dense mirror lets the
                    // fused loop skip sleeping lanes without touching them.
                    any_ran = false;
                    for r in 0..self.lanes.len() {
                        if now < self.lane_quiet[r] {
                            continue;
                        }
                        lane_phase(&mut self.lanes[r], now);
                        any_ran = true;
                    }
                }
                if any_ran {
                    self.apply_lane_fx(now)
                } else {
                    // Every lane slept: no fresh effects to replay and no
                    // mask bit can have changed.
                    (self.rout_mask, self.dma_mask)
                }
            }
        };
        self.tick_post(now, rout_mask, dma_mask);
    }

    /// Stages 0–3: faults, wire-side receive, the load balancer, and the
    /// ingress pipeline. Runs before the per-lane phase under both kernels.
    fn tick_pre(&mut self, now: Cycle) {
        // 0. Scheduled fault injection (chaos harness).
        self.apply_due_faults(now);

        // 1. Wire-side receive: MAC serializer → MAC FIFO (byte-bounded).
        for p in &mut self.ports {
            if let Some(ready) = p.rx_mac.head_ready_at() {
                if ready <= now {
                    if let Some(front_len) = p.rx_mac.front().map(Packet::len) {
                        if p.rx_fifo.has_room(front_len) {
                            let pkt = p.rx_mac.pop_ready(now).expect("head ready");
                            p.rx_fifo.push(pkt).expect("room checked above");
                        }
                    }
                }
            }
        }

        // 2. LB stage: the distribution subsystem grants each incoming port
        //    a slot every other cycle — the "125 MPPS per incoming port"
        //    limit the paper reports (§6.1) — then serves the host's
        //    (low-rate) virtual interface.
        let nports = self.ports.len();
        let service_slots = nports.max(2);
        let p = (now as usize) % service_slots;
        if p < nports && !self.lb_stage_port(p, now) {
            self.lb_stall_cycles += 1;
        }
        self.lb_stage_host(now);

        // 3. Fixed ingress pipeline → per-RPU 32 Gbps links.
        while let Some(item) = self.ingress_delay.peek_ready(now) {
            if self.lanes[item.rpu].rin.is_full() {
                break;
            }
            let item = self.ingress_delay.pop_ready(now).expect("peeked ready");
            let len = item.bytes.len() as u64;
            let rpu = item.rpu;
            self.lanes[rpu]
                .rin
                .push(item, len, now)
                .expect("fullness checked above");
            self.wake_lane(rpu);
        }
    }

    /// Stages 4–6 as the sequential reference kernel runs them: each stage
    /// sweeps all RPUs before the next begins, shared effects applied
    /// inline. This is deliberately an independent implementation from
    /// [`lane_phase`] — the differential suite proves them equivalent.
    fn sequential_lane_stages(&mut self, now: Cycle) {
        // 4. Per-RPU link → DMA into packet memory + descriptor delivery.
        for r in 0..self.lanes.len() {
            if let Some(item) = self.lanes[r].rin.pop_ready(now) {
                if item.corrupted {
                    // Link FCS failure: quarantine before the DMA engine
                    // touches packet memory; the slot returns to the LB.
                    self.tracker.release(r, item.slot);
                    self.ledger.corrupted += 1;
                    continue;
                }
                let delivered =
                    self.lanes[r]
                        .rpu
                        .inner_mut()
                        .dma_deliver(item.slot, &item.bytes, item.meta);
                if !delivered {
                    // Should not happen: slots bound in-flight packets.
                    self.tracker.release(r, item.slot);
                    self.routed_drops += 1;
                    self.ledger.dropped += 1;
                } else if let Some(t) = self.tracer.as_mut() {
                    t.record(
                        now,
                        TraceEvent::DescRx {
                            rpu: r as u8,
                            slot: item.slot,
                            len: item.bytes.len() as u32,
                        },
                    );
                }
            }
        }

        // 5. RPUs: core + accelerator.
        for lane in &mut self.lanes {
            lane.rpu.tick(now);
        }

        // 6. Committed sends → per-RPU egress links.
        for r in 0..self.lanes.len() {
            if self.lanes[r].rout.is_full() {
                continue;
            }
            if let Some((desc, bytes, meta)) = self.lanes[r].rpu.inner_mut().take_tx() {
                if desc.len == 0 || bytes.is_empty() {
                    if desc.tag != SELF_TAG {
                        self.tracker.release(r, desc.tag);
                        // Self-originated zero-length sends never entered
                        // the conservation universe; slot-bound ones did.
                        self.ledger.dropped += 1;
                    }
                    self.routed_drops += 1;
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(
                            now,
                            TraceEvent::DescDrop {
                                rpu: r as u8,
                                tag: desc.tag,
                            },
                        );
                    }
                    continue;
                }
                if let Some(t) = self.tracer.as_mut() {
                    t.record(
                        now,
                        TraceEvent::DescTx {
                            rpu: r as u8,
                            tag: desc.tag,
                            port: desc.port,
                            len: bytes.len() as u32,
                        },
                    );
                }
                let len = bytes.len() as u64;
                self.lanes[r]
                    .rout
                    .push(
                        EgressItem {
                            src_rpu: r,
                            desc,
                            bytes,
                            meta,
                        },
                        len,
                        now,
                    )
                    .expect("fullness checked above");
            }
        }
    }

    /// The parallel kernel's barrier: replays every lane's deferred
    /// shared-resource effects in stage-major, lane-ascending order — the
    /// exact order [`Self::sequential_lane_stages`] produces them — and
    /// returns `(rout_mask, dma_mask)` bitmaps of lanes whose egress link
    /// holds data / whose RPU holds a host-DMA request, so
    /// [`Self::tick_post`] skips idle lanes.
    fn apply_lane_fx(&mut self, now: Cycle) -> (u64, u64) {
        // Stage-4 effects, ascending lane order. Lanes elided this cycle
        // (mirror still holding a future horizon) produced no fresh effects
        // and keep their persistent mask bits — a sleeping lane can still
        // have frames draining from its egress link or a DMA request
        // waiting out a PCIe outage.
        for r in 0..self.lanes.len() {
            if now < self.lane_quiet[r] {
                continue;
            }
            let (rout_busy, dma_req, rx) = {
                let fx = &mut self.lanes[r].fx;
                (fx.rout_busy, fx.dma_req, fx.rx.take())
            };
            if r < 64 {
                let bit = 1u64 << r;
                if rout_busy {
                    self.rout_mask |= bit;
                } else {
                    self.rout_mask &= !bit;
                }
                if dma_req {
                    self.dma_mask |= bit;
                } else {
                    self.dma_mask &= !bit;
                }
            }
            match rx {
                None => {}
                Some(RxFx::Corrupted { slot }) => {
                    self.tracker.release(r, slot);
                    self.ledger.corrupted += 1;
                }
                Some(RxFx::Failed { slot }) => {
                    self.tracker.release(r, slot);
                    self.routed_drops += 1;
                    self.ledger.dropped += 1;
                }
                Some(RxFx::Delivered { slot, len }) => {
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(
                            now,
                            TraceEvent::DescRx {
                                rpu: r as u8,
                                slot,
                                len,
                            },
                        );
                    }
                }
            }
        }
        // Stage-6 effects, ascending lane order; afterwards each active
        // lane's freshly computed quiet horizon is published to the dense
        // mirror (a lane that ran this cycle sleeps starting next cycle).
        for r in 0..self.lanes.len() {
            if now < self.lane_quiet[r] {
                continue;
            }
            self.lane_quiet[r] = self.lanes[r].quiet_until;
            match self.lanes[r].fx.tx.take() {
                None => {}
                Some(TxFx::Dropped { tag }) => {
                    if tag != SELF_TAG {
                        self.tracker.release(r, tag);
                        self.ledger.dropped += 1;
                    }
                    self.routed_drops += 1;
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(now, TraceEvent::DescDrop { rpu: r as u8, tag });
                    }
                }
                Some(TxFx::Sent { tag, port, len }) => {
                    if let Some(t) = self.tracer.as_mut() {
                        t.record(
                            now,
                            TraceEvent::DescTx {
                                rpu: r as u8,
                                tag,
                                port,
                                len,
                            },
                        );
                    }
                }
            }
        }
        (self.rout_mask, self.dma_mask)
    }

    /// Stages 7–12 plus the periodic scans: everything after the per-lane
    /// phase. `rout_mask`/`dma_mask` let the parallel kernel skip lanes
    /// with nothing queued; the sequential kernel passes all-ones (lane 64
    /// and above are never masked off).
    fn tick_post(&mut self, now: Cycle, rout_mask: u64, dma_mask: u64) {
        // 7. Egress links → routing; slot freed once fully serialized out
        //    ("the interconnect notifies the LB about slot being freed after
        //    it is sent out", §4.2).
        for r in 0..self.lanes.len() {
            if r < 64 && rout_mask & (1 << r) == 0 {
                continue;
            }
            // Hold the egress link when the destination port's pipeline is
            // congested: self-originated traffic (no slot bound) must not
            // grow the egress queues without limit.
            let Some(head) = self.lanes[r].rout.front() else {
                // The link drained; a sleeping lane cannot refill it, so
                // the persistent bit self-clears (a stale set bit only
                // costs this one look).
                if r < 64 {
                    self.rout_mask &= !(1 << r);
                }
                continue;
            };
            let dest = head.desc.port as usize;
            if dest < self.ports.len() && self.ports[dest].tx_delay.len() >= 64 {
                continue;
            }
            if let Some(item) = self.lanes[r].rout.pop_ready(now) {
                if r < 64 && self.lanes[r].rout.is_empty() {
                    self.rout_mask &= !(1 << r);
                }
                if item.desc.tag != SELF_TAG {
                    self.tracker.release(item.src_rpu, item.desc.tag);
                } else {
                    // A firmware-originated frame enters the conservation
                    // universe as it leaves the region.
                    self.ledger.originated += 1;
                }
                self.route_egress(item, now);
            }
        }

        // 8. Physical-port egress pipelines → wire. A bound egress port is
        //    the wire's far side: its capacity is consulted *before* the
        //    frame leaves the TX MAC, so a congested receiver holds the
        //    frame serializing in the MAC (real backpressure) instead of
        //    being dropped past the edge.
        for (p, eg) in self.ports.iter_mut().zip(self.egress.iter_mut()) {
            if p.tx_delay.peek_ready(now).is_some() && !p.tx_mac.is_full() {
                let pkt = p.tx_delay.pop_ready(now).expect("peeked ready");
                let wire = pkt.wire_len();
                p.tx_mac.push(pkt, wire, now).expect("fullness checked");
            }
            if let Some(port) = eg {
                if let Some(front_len) = p.tx_mac.front().map(Packet::len) {
                    if !port.can_accept(front_len) {
                        continue;
                    }
                }
            }
            if let Some(pkt) = p.tx_mac.pop_ready(now) {
                p.counters.count_tx_frame(pkt.len());
                let len = pkt.len();
                match eg {
                    Some(port) => match port.offer(pkt, len, now) {
                        Ok(()) => self.ledger.delivered += 1,
                        Err(_) => {
                            // Contract violation (`can_accept` said yes):
                            // account the frame as dropped so conservation
                            // still balances.
                            p.counters.count_drop();
                            self.ledger.dropped += 1;
                        }
                    },
                    None => {
                        p.output.push(pkt);
                        self.ledger.delivered += 1;
                    }
                }
            }
        }

        // 9. Loopback module (§4.4).
        self.loopback.grant(now);
        self.loopback_delivery(now);

        // 10. Host PCIe delivery, and the host-DRAM access manager: RPU
        //     DMA requests traverse PCIe, touch host DRAM, and complete with
        //     the DMA interrupt (§4.2). An injected PCIe outage stalls the
        //     whole stage: nothing is lost, everything waits for link-up.
        let host_up = self.fault.as_ref().is_none_or(|f| f.host_down_until <= now);
        if host_up {
            while let Some(pkt) = self.host_rx_delay.pop_ready(now) {
                self.host_rx.push(pkt);
                self.ledger.delivered += 1;
            }
            for r in 0..self.lanes.len() {
                if r < 64 && dma_mask & (1 << r) == 0 {
                    continue;
                }
                if let Some(req) = self.lanes[r].rpu.inner_mut().take_dma_req() {
                    if let Some(t) = self.tracer.as_mut() {
                        t.dma_started(now, r, req.to_host, req.len);
                    }
                    self.host_dma_delay.push((r, req), now);
                }
                // The request (if any) is now in the PCIe stage; only a
                // fresh lane phase can commit another one.
                if r < 64 {
                    self.dma_mask &= !(1 << r);
                }
            }
        }
        if host_up {
            while let Some((r, req)) = self.host_dma_delay.pop_ready(now) {
                let inner = self.lanes[r].rpu.inner_mut();
                if req.to_host {
                    let bytes = inner.pmem_copy_out(req.local_addr, req.len);
                    let at = (req.host_addr as usize).min(self.host_dram.len());
                    let end = (at + bytes.len()).min(self.host_dram.len());
                    self.host_dram[at..end].copy_from_slice(&bytes[..end - at]);
                } else {
                    let at = (req.host_addr as usize).min(self.host_dram.len());
                    let end = (at + req.len as usize).min(self.host_dram.len());
                    let bytes = self.host_dram[at..end].to_vec();
                    inner.pmem_copy_in(req.local_addr, &bytes);
                }
                self.lanes[r].rpu.inner_mut().dma_complete();
                self.lanes[r].rpu.raise_irq(irq::DMA);
                self.wake_lane(r);
                if let Some(t) = self.tracer.as_mut() {
                    t.dma_completed(now, r);
                }
            }
        }

        // 11. Broadcast arbiter: one outbox visited per cycle; delivery is
        //     simultaneous at every RPU (§4.4).
        let granted = self.bcast.granted_rpu(self.lanes.len());
        if let Some(msg) = self.lanes[granted].rpu.inner_mut().pop_bcast() {
            self.bcast.pipeline.push(msg, now);
        }
        while let Some(msg) = self.bcast.pipeline.pop_ready(now) {
            self.bcast.delivered += 1;
            self.bcast_latency
                .record((now - msg.sent_at) as f64 * self.cfg.ns_per_cycle());
            for r in 0..self.lanes.len() {
                let wants_irq = self.lanes[r].rpu.inner_mut().deliver_bcast(&msg);
                if wants_irq {
                    self.lanes[r].rpu.raise_irq(irq::BCAST);
                    self.wake_lane(r);
                }
            }
        }

        // 12. Partial-reconfiguration jobs.
        self.advance_pr_jobs(now);

        // Periodic trace scans: FIFO high-water marks, lifecycle
        // transitions, enable-mask changes, counter samples. Zero work when
        // tracing is off.
        if self.tracer.is_some() {
            self.trace_periodic(now);
        }

        // Packet conservation is a standing invariant, not a test-only one:
        // losing track of frames during fault recovery must fail loudly.
        if now.is_multiple_of(LEDGER_CHECK_INTERVAL) {
            self.assert_conservation();
        }

        self.clock.tick();
    }

    /// Applies every fault event scheduled at or before `now`.
    fn apply_due_faults(&mut self, now: Cycle) {
        let Some(fault) = &mut self.fault else {
            return;
        };
        let due = fault.due(now);
        if due.is_empty() {
            return;
        }
        for ev in due {
            let fault = self.fault.as_mut().expect("checked above");
            match ev.kind {
                FaultKind::FirmwareHang { rpu } if rpu < self.lanes.len() => {
                    fault.last_fault_at[rpu] = Some(now);
                    self.lanes[rpu].rpu.force_hang();
                    self.wake_lane(rpu);
                }
                FaultKind::FirmwareCrash { rpu } if rpu < self.lanes.len() => {
                    fault.last_fault_at[rpu] = Some(now);
                    self.lanes[rpu].rpu.force_crash();
                    self.wake_lane(rpu);
                }
                FaultKind::CorruptIngress { rpu, count } if rpu < self.lanes.len() => {
                    fault.corrupt_pending[rpu] += count;
                }
                FaultKind::RxFifoOverflow { port, cycles } if port < self.ports.len() => {
                    let until = now + cycles;
                    let cur = &mut fault.rx_drop_until[port];
                    *cur = (*cur).max(until);
                }
                FaultKind::HostDmaOutage { cycles } => {
                    fault.host_down_until = fault.host_down_until.max(now + cycles);
                }
                // Device-scale faults (box crash/outage/flap/brownout) are
                // applied at fleet scope by `crate::Fleet`; a single box
                // ignores them, as it does out-of-range targets.
                _ => {}
            }
        }
    }

    /// Attempts one LB assignment from port `p`'s MAC FIFO. Returns `false`
    /// when a head-of-line packet exists but could not be placed.
    fn lb_stage_port(&mut self, p: usize, now: Cycle) -> bool {
        let Some(front) = self.ports[p].rx_fifo.front() else {
            return true;
        };
        let Some(rpu) = self.lb.assign(front, &self.tracker, self.enabled) else {
            return false;
        };
        if self.lanes[rpu].rin.is_full() {
            return false;
        }
        let slot = self
            .tracker
            .alloc(rpu)
            .expect("LB only assigns RPUs with free slots");
        let pkt = self.ports[p].rx_fifo.pop().expect("front checked");
        let mut bytes = self.lb.prepend(&pkt).unwrap_or_default();
        bytes.extend_from_slice(pkt.bytes());
        let corrupted = self.corrupt_on_link(rpu, &mut bytes);
        let meta = SlotMeta {
            packet_id: pkt.id,
            ts_gen: pkt.ts_gen,
            ingress_port: pkt.port,
            orig_len: pkt.len() as u32,
        };
        self.lb_assigned += 1;
        if let Some(t) = self.tracer.as_mut() {
            t.record(
                now,
                TraceEvent::LbAssign {
                    port: p as u8,
                    rpu: rpu as u8,
                    slot,
                    packet_id: meta.packet_id,
                    len: meta.orig_len,
                },
            );
        }
        self.ingress_delay.push(
            IngressItem {
                rpu,
                slot,
                bytes,
                meta,
                corrupted,
            },
            now,
        );
        true
    }

    /// Applies pending injected link corruption for `rpu`, if any: flips a
    /// few bytes deterministically from the plan's effect RNG.
    fn corrupt_on_link(&mut self, rpu: usize, bytes: &mut [u8]) -> bool {
        let Some(fault) = &mut self.fault else {
            return false;
        };
        if fault.corrupt_pending[rpu] == 0 || bytes.is_empty() {
            return false;
        }
        fault.corrupt_pending[rpu] -= 1;
        let flips = 1 + fault.rng.below(4);
        for _ in 0..flips {
            let i = fault.rng.below(bytes.len() as u64) as usize;
            bytes[i] ^= 1 + fault.rng.below(255) as u8;
        }
        true
    }

    fn lb_stage_host(&mut self, now: Cycle) {
        let Some(front) = self.host_tx.front() else {
            return;
        };
        let Some(rpu) = self.lb.assign(front, &self.tracker, self.enabled) else {
            return;
        };
        if self.lanes[rpu].rin.is_full() {
            return;
        }
        let slot = self.tracker.alloc(rpu).expect("assign implies a free slot");
        let pkt = self.host_tx.pop().expect("front checked");
        let mut bytes = self.lb.prepend(&pkt).unwrap_or_default();
        bytes.extend_from_slice(pkt.bytes());
        let corrupted = self.corrupt_on_link(rpu, &mut bytes);
        let meta = SlotMeta {
            packet_id: pkt.id,
            ts_gen: pkt.ts_gen,
            ingress_port: pkt.port,
            orig_len: pkt.len() as u32,
        };
        self.lb_assigned += 1;
        if let Some(t) = self.tracer.as_mut() {
            t.record(
                now,
                TraceEvent::LbAssign {
                    port: port::HOST,
                    rpu: rpu as u8,
                    slot,
                    packet_id: meta.packet_id,
                    len: meta.orig_len,
                },
            );
        }
        self.ingress_delay.push(
            IngressItem {
                rpu,
                slot,
                bytes,
                meta,
                corrupted,
            },
            now,
        );
    }

    fn route_egress(&mut self, item: EgressItem, now: Cycle) {
        let meta = item.meta.unwrap_or(SlotMeta {
            packet_id: 0,
            ts_gen: now,
            ingress_port: 0,
            orig_len: item.bytes.len() as u32,
        });
        let dest = item.desc.port;
        if (dest as usize) < self.ports.len() {
            let pkt = Packet::new(meta.packet_id, item.bytes, dest, meta.ts_gen);
            self.ports[dest as usize].tx_delay.push(pkt, now);
        } else if dest == port::HOST {
            let pkt = Packet::new(meta.packet_id, item.bytes, dest, meta.ts_gen);
            self.host_rx_delay.push(pkt, now);
        } else if dest >= port::LOOPBACK_BASE
            && ((dest - port::LOOPBACK_BASE) as usize) < self.lanes.len()
        {
            if self.loopback.queue.push(item).is_err() {
                self.loopback.counters.count_drop();
                self.routed_drops += 1;
                self.ledger.dropped += 1;
            }
        } else {
            self.routed_drops += 1;
            self.ledger.dropped += 1;
        }
    }

    fn loopback_delivery(&mut self, now: Cycle) {
        let Some(item) = self.loopback.wire.front() else {
            return;
        };
        if !self.loopback.wire.head_ready(now) {
            return;
        }
        let dst = (item.desc.port - port::LOOPBACK_BASE) as usize;
        // The LB enable mask only gates ingress assignment (a two-step
        // pipeline legitimately loopback-feeds LB-disabled partners); what
        // must hold the wire is the destination *region* being down —
        // draining, mid-reload, or crashed — because a slot allocated into
        // such a region would be wiped by the PR flush.
        if !matches!(self.lanes[dst].rpu.state(), crate::rpu::RpuState::Running) {
            return;
        }
        if self.tracker.free_count(dst) == 0 || self.lanes[dst].rin.is_full() {
            return; // destination backpressure stalls the loopback wire
        }
        let item = self.loopback.wire.pop_ready(now).expect("head ready");
        let slot = self.tracker.alloc(dst).expect("free count checked");
        let meta = item.meta.unwrap_or(SlotMeta {
            packet_id: 0,
            ts_gen: now,
            ingress_port: item.desc.port,
            orig_len: item.bytes.len() as u32,
        });
        let len = item.bytes.len() as u64;
        self.lanes[dst]
            .rin
            .push(
                IngressItem {
                    rpu: dst,
                    slot,
                    bytes: item.bytes,
                    meta: SlotMeta {
                        ingress_port: port::LOOPBACK_BASE + item.src_rpu as u8,
                        ..meta
                    },
                    corrupted: false,
                },
                len,
                now,
            )
            .expect("fullness checked above");
        self.wake_lane(dst);
    }

    fn advance_pr_jobs(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.pr_jobs.len() {
            match self.pr_jobs[i].phase {
                PrPhase::Draining => {
                    let r = self.pr_jobs[i].rpu;
                    let in_flight = !self.lanes[r].rin.is_empty()
                        || !self.lanes[r].rout.is_empty()
                        || !self.tracker.all_free(r);
                    if self.lanes[r].rpu.is_drained() && !in_flight {
                        let until = now + self.cfg.pr_cycles;
                        self.lanes[r].rpu.begin_reconfigure(until);
                        self.wake_lane(r);
                        self.pr_jobs[i].phase = PrPhase::Writing { until };
                    }
                    i += 1;
                }
                PrPhase::Writing { until } if now >= until => {
                    let job = self.pr_jobs.swap_remove(i);
                    self.finish_reconfigure(job);
                }
                PrPhase::Writing { .. } => {
                    i += 1;
                }
            }
        }
    }

    fn finish_reconfigure(&mut self, job: PrJob) {
        let r = job.rpu;
        if let Some(accel) = job.accel {
            self.lanes[r].rpu.set_accelerator(accel);
        } else if let Some(factory) = &self.accel_factory {
            self.lanes[r].rpu.set_accelerator(factory(r));
        }
        let program = job
            .program
            .or_else(|| self.firmware_factory.as_ref().map(|f| f(r)));
        match program {
            Some(RpuProgram::Riscv(image)) => {
                if !self.vet_firmware(r, &image) {
                    // Denied: the bitstream write completed, but the host
                    // never finishes the boot. The region stays inert in
                    // `Reconfiguring` and its LB enable bit stays clear, so
                    // the supervisor sees a region that never came back
                    // instead of reinstalling a known-bad image.
                    self.tracker.flush(r);
                    return;
                }
                self.lanes[r].rpu.load_riscv(&image);
            }
            Some(RpuProgram::Native(fw)) => self.lanes[r].rpu.load_native(fw),
            None => {}
        }
        self.tracker.flush(r);
        self.wake_lane(r);
        if job.reenable {
            self.enabled |= 1 << r;
        }
    }

    /// Sends a full packet from RPU `src` to RPU `dst` through the loopback
    /// module — a convenience for tests; firmware does this by sending a
    /// descriptor with port `LOOPBACK_BASE + dst`.
    pub fn loopback_port_of(dst: usize) -> u8 {
        port::LOOPBACK_BASE + dst as u8
    }

    /// Packet conservation check: everything injected is either still in
    /// flight, delivered on a port/host, or an accounted drop. Intended for
    /// test assertions.
    pub fn in_flight(&self) -> usize {
        let mac: usize = self
            .ports
            .iter()
            .map(|p| p.rx_mac.len() + p.rx_fifo.len() + p.tx_delay.len() + p.tx_mac.len())
            .sum();
        let links: usize = self.lanes.iter().map(|l| l.rin.len() + l.rout.len()).sum();
        let rpu_slots: usize = (0..self.lanes.len())
            .map(|r| self.cfg.slots_per_rpu - self.tracker.free_count(r))
            .sum();
        // Careful not to double count: slots cover packets queued in rx
        // queues and being processed; rpu_in/rpu_out items also hold slots.
        let overlap: usize = links;
        mac + self.ingress_delay.len()
            + rpu_slots.saturating_sub(overlap)
            + links
            + self.loopback.queue.len()
            + self.loopback.wire.len()
            + self.host_rx_delay.len()
            + self.host_tx.len()
    }

    /// Installs a fault-injection schedule. Events already in the past
    /// (relative to the current cycle) trigger on the next tick.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(FaultState::new(plan, self.lanes.len(), self.ports.len()));
    }

    /// Lands a single fault on the next tick without replacing any
    /// installed plan — the path by which fleet-scope faults (a box-scoped
    /// host outage, say) reach into an individual box mid-run. Creates an
    /// empty fault state (fixed effect seed) when no plan was installed, so
    /// determinism is unaffected by whether a plan exists.
    pub fn inject_fault(&mut self, kind: FaultKind) {
        let (num_rpus, num_ports) = (self.lanes.len(), self.ports.len());
        let fault = self
            .fault
            .get_or_insert_with(|| FaultState::new(FaultPlan::new(0xF1E7), num_rpus, num_ports));
        fault.schedule(FaultEvent {
            at: self.clock.cycle(),
            kind,
        });
    }

    /// `true` once every installed fault has triggered and every fault
    /// window has closed (vacuously true with no plan installed).
    pub fn faults_quiescent(&self) -> bool {
        self.fault
            .as_ref()
            .is_none_or(|f| f.quiescent(self.clock.cycle()))
    }

    /// `true` while the host-DMA/PCIe path is up. The supervisor checks
    /// this before every control action and backs off when the link is down
    /// (a register op over a dead link just times out).
    pub fn host_link_up(&self) -> bool {
        self.fault
            .as_ref()
            .is_none_or(|f| f.host_down_until <= self.clock.cycle())
    }

    /// When the most recent injected firmware fault hit `rpu` (detection-
    /// latency accounting for recovery records).
    pub fn last_fault_at(&self, rpu: usize) -> Option<Cycle> {
        self.fault.as_ref().and_then(|f| f.last_fault_at[rpu])
    }

    /// The packet-conservation ledger.
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// Frames currently in flight as the conservation ledger counts them:
    /// MAC paths, bound LB slots (covering the ingress pipeline, per-RPU
    /// links, and in-region packets), the loopback module, and the host
    /// paths. Firmware-originated frames still inside a region are not yet
    /// in the universe — they enter at the egress link.
    pub fn ledger_in_flight(&self) -> u64 {
        let mac: usize = self
            .ports
            .iter()
            .map(|p| p.rx_mac.len() + p.rx_fifo.len() + p.tx_delay.len() + p.tx_mac.len())
            .sum();
        let slots: usize = (0..self.lanes.len())
            .map(|r| self.cfg.slots_per_rpu - self.tracker.free_count(r))
            .sum();
        (mac + slots
            + self.host_tx.len()
            + self.host_rx_delay.len()
            + self.loopback.queue.len()
            + self.loopback.wire.len()) as u64
    }

    /// Panics unless `injected + originated == delivered + dropped +
    /// corrupted + purged + in_flight`. Called automatically every
    /// [`LEDGER_CHECK_INTERVAL`] cycles.
    pub fn assert_conservation(&self) {
        let in_flight = self.ledger_in_flight();
        assert!(
            self.ledger.balances(in_flight),
            "packet conservation violated at cycle {}: {:?} + {} in flight \
             (entered {} != accounted {} + in-flight {})",
            self.clock.cycle(),
            self.ledger,
            in_flight,
            self.ledger.entered(),
            self.ledger.accounted(),
            in_flight,
        );
    }

    /// Appends a completed recovery record (the supervisor's host-side log).
    pub fn log_recovery(&mut self, event: RecoveryEvent) {
        self.recovery_log.push(event);
    }

    /// Completed recoveries, oldest first.
    pub fn recovery_log(&self) -> &[RecoveryEvent] {
        &self.recovery_log
    }

    /// The slot tracker (test inspection).
    pub fn tracker(&self) -> &SlotTracker {
        &self.tracker
    }

    /// Host DRAM as the RPUs' DMA manager sees it (§4.2).
    pub fn host_dram(&self) -> &[u8] {
        &self.host_dram
    }

    /// Mutable host DRAM (host-side table preparation before DMA reads).
    pub fn host_dram_mut(&mut self) -> &mut [u8] {
        &mut self.host_dram
    }

    /// The active LB policy's name.
    pub fn lb_name(&self) -> &str {
        self.lb.name()
    }

    /// Installs a [`Tracer`], replacing any previous one. When
    /// `cfg.pc_profile` is set, also turns on per-PC cycle attribution for
    /// every RPU's RV32 core.
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        if cfg.pc_profile {
            for lane in &mut self.lanes {
                lane.rpu.enable_profiling();
            }
        }
        self.tracer = Some(Tracer::new(cfg, self.lanes.len(), self.ports.len()));
    }

    /// The installed tracer, if tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Removes and returns the tracer (export, then tracing is off again).
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// Records a supervisor recovery-ladder step against `rpu`. Called by
    /// [`crate::Supervisor`] at every rung transition; a no-op when tracing
    /// is off.
    pub fn trace_supervisor(&mut self, rpu: usize, step: SupervisorStep) {
        let now = self.clock.cycle();
        if let Some(t) = self.tracer.as_mut() {
            t.record(
                now,
                TraceEvent::Supervisor {
                    rpu: rpu as u8,
                    step,
                },
            );
        }
    }

    /// The per-RPU periodic trace pass: FIFO high-water marks, lifecycle
    /// transitions, LB-mask changes, and counter samples on the configured
    /// interval.
    fn trace_periodic(&mut self, now: Cycle) {
        let Some(mut t) = self.tracer.take() else {
            return;
        };
        for p in 0..self.ports.len() {
            t.note_rx_fifo(now, p, self.ports[p].rx_fifo.bytes());
            t.note_tx_fifo(now, p, self.ports[p].tx_delay.len() as u32);
        }
        for r in 0..self.lanes.len() {
            t.note_state(now, r, rpu_state_name(&self.lanes[r].rpu));
        }
        t.note_mask(now, self.enabled);
        let interval = t.config().counter_interval;
        if interval != 0 && now.is_multiple_of(interval) {
            for r in 0..self.lanes.len() {
                t.record(
                    now,
                    TraceEvent::CounterSample {
                        rpu: r as u8,
                        perf: self.lanes[r].rpu.perf(),
                    },
                );
            }
        }
        self.tracer = Some(t);
    }
}
