//! Cycle-stamped event tracing for the whole simulated system (§4.3).
//!
//! The paper's observability pitch is that Rosebud's host-readable counters
//! "reveal to the developer where the bottlenecks are located". End-of-run
//! aggregates ([`crate::Diagnostics`]) answer *where*; this module answers
//! *when*: a [`Tracer`] installed via [`crate::Rosebud::enable_tracing`]
//! records a cycle-stamped event for every load-balancer assignment,
//! descriptor delivery and send, host-DMA start/completion, RPU lifecycle
//! transition (including every rung of the supervisor's recovery ladder),
//! RX/TX FIFO high-water mark, and periodic per-RPU hardware performance
//! counter sample.
//!
//! Tracing is strictly opt-in: with no tracer installed the hooks reduce to
//! an `Option::is_some` test on a field that is `None`, so the simulation's
//! hot path is unchanged (the micro benchmark pins this down).
//!
//! Two exporters:
//!
//! * [`Tracer::compact_text`] — one line per event, fully deterministic for
//!   a given seed; this is what the golden-trace regression suite diffs.
//! * [`Tracer::perfetto_json`] — the Chrome/Perfetto Trace Event format, for
//!   interactive timeline inspection (`chrome://tracing`, <https://ui.perfetto.dev>).

use rosebud_kernel::Cycle;

use crate::diag::RpuFaultKind;
use crate::rpu::PerfCounters;

/// Tuning for an installed [`Tracer`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Cycles between per-RPU performance-counter samples; 0 disables
    /// sampling.
    pub counter_interval: Cycle,
    /// Also enable per-PC cycle attribution on every RV32 core (the firmware
    /// profile of §4.3 / §3.4 debugging).
    pub pc_profile: bool,
    /// Hard cap on buffered events; once reached, further events are counted
    /// in [`Tracer::dropped_events`] instead of recorded.
    pub max_events: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            counter_interval: 4096,
            pc_profile: true,
            max_events: 1 << 20,
        }
    }
}

/// One rung-transition of the supervisor's recovery ladder, as it appears in
/// the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorStep {
    /// The detector concluded the RPU is faulty; it has been LB-disabled and
    /// poked (rung 1).
    Detected(RpuFaultKind),
    /// The poke proved the region alive: false alarm, traffic restored.
    FalseAlarm,
    /// Graceful eviction started — bounded drain before reconfiguration
    /// (rung 2).
    DrainStarted,
    /// The drain timed out: in-flight work destroyed, reload forced (rung 3).
    ForcedEvict {
        /// Slot-bound packets destroyed by the eviction.
        purged: u64,
    },
    /// The PR bitstream write / firmware reboot is underway (rung 4).
    Reloading,
    /// Fresh firmware booted; the supervisor is verifying forward progress.
    Verifying,
    /// Verification passed: the LB enable bit is back (rung 5).
    Reenabled,
}

impl SupervisorStep {
    fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            SupervisorStep::Detected(kind) => {
                let _ = write!(out, "detected kind={kind}");
            }
            SupervisorStep::FalseAlarm => out.push_str("false-alarm"),
            SupervisorStep::DrainStarted => out.push_str("drain"),
            SupervisorStep::ForcedEvict { purged } => {
                let _ = write!(out, "forced-evict purged={purged}");
            }
            SupervisorStep::Reloading => out.push_str("reload"),
            SupervisorStep::Verifying => out.push_str("verify"),
            SupervisorStep::Reenabled => out.push_str("reenabled"),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            SupervisorStep::Detected(_) => "sup.detected",
            SupervisorStep::FalseAlarm => "sup.false-alarm",
            SupervisorStep::DrainStarted => "sup.drain",
            SupervisorStep::ForcedEvict { .. } => "sup.forced-evict",
            SupervisorStep::Reloading => "sup.reload",
            SupervisorStep::Verifying => "sup.verify",
            SupervisorStep::Reenabled => "sup.reenabled",
        }
    }
}

/// One transition of the fleet supervisor's drain-the-device ladder, as it
/// appears in the fleet log ([`crate::Fleet::log_text`]). The per-box rungs
/// mirror [`SupervisorStep`] one level up: probes stand in for the
/// watchdog, the consistent-hash ring for the LB enable mask, and a whole-
/// box PR reload for the region bitstream write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetStep {
    /// A health probe timed out (or the box could not answer).
    ProbeMissed {
        /// Consecutive misses so far.
        streak: u32,
    },
    /// Enough consecutive misses: the box is marked unhealthy and its ring
    /// points leave rotation — new flows re-steer, in-flight completes.
    MarkedUnhealthy,
    /// The bounded drain of in-flight packets toward the box began.
    DrainStarted,
    /// The drain finished on its own: every in-flight frame delivered.
    DrainedClean,
    /// The drain deadline expired: front-link and in-box frames destroyed,
    /// accounted as purged in the fleet ledger.
    Purged {
        /// Frames destroyed fleet-wide for this box.
        packets: u64,
    },
    /// The whole-box PR reload/reboot is underway.
    Reloading,
    /// The rebuilt box is on probation, answering probes but carrying no
    /// traffic yet.
    Probation,
    /// Enough consecutive healthy probes: the box's ring points are back.
    Readmitted,
}

impl std::fmt::Display for FleetStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetStep::ProbeMissed { streak } => write!(f, "probe-missed streak={streak}"),
            FleetStep::MarkedUnhealthy => f.write_str("marked-unhealthy"),
            FleetStep::DrainStarted => f.write_str("drain"),
            FleetStep::DrainedClean => f.write_str("drained-clean"),
            FleetStep::Purged { packets } => write!(f, "purged packets={packets}"),
            FleetStep::Reloading => f.write_str("reload"),
            FleetStep::Probation => f.write_str("probation"),
            FleetStep::Readmitted => f.write_str("readmitted"),
        }
    }
}

/// One recorded event. The cycle stamp lives alongside the event in the
/// tracer's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The LB placed a head-of-line packet onto an RPU slot.
    LbAssign {
        /// Ingress port (`port::HOST` for the host's virtual interface).
        port: u8,
        /// Chosen RPU.
        rpu: u8,
        /// Allocated slot.
        slot: u8,
        /// The packet's generator-assigned id.
        packet_id: u64,
        /// Original frame length in bytes.
        len: u32,
    },
    /// A port's MAC receive FIFO reached a new occupancy high-water mark.
    RxFifoHighWater {
        /// The port.
        port: u8,
        /// New high-water occupancy in bytes.
        bytes: u64,
    },
    /// A port's egress pipeline reached a new queued-frame high-water mark.
    TxFifoHighWater {
        /// The port.
        port: u8,
        /// New high-water depth in frames.
        frames: u32,
    },
    /// The DMA engine delivered a packet descriptor into an RPU (lifecycle:
    /// slot → descriptor).
    DescRx {
        /// Receiving RPU.
        rpu: u8,
        /// Slot the packet landed in.
        slot: u8,
        /// Delivered length in bytes.
        len: u32,
    },
    /// Firmware committed a send and the descriptor left on the egress link
    /// (lifecycle: descriptor → wire).
    DescTx {
        /// Sending RPU.
        rpu: u8,
        /// Descriptor tag (slot, or `SELF_TAG` for firmware-originated).
        tag: u8,
        /// Destination port.
        port: u8,
        /// Frame length in bytes.
        len: u32,
    },
    /// Firmware dropped a packet with a zero-length send.
    DescDrop {
        /// Dropping RPU.
        rpu: u8,
        /// Descriptor tag.
        tag: u8,
    },
    /// An RPU's host-DMA request entered the PCIe pipeline (§4.2).
    DmaStart {
        /// Requesting RPU.
        rpu: u8,
        /// `true` for RPU→host writes, `false` for host→RPU reads.
        to_host: bool,
        /// Transfer length in bytes.
        len: u32,
    },
    /// The host-DRAM access completed and the DMA interrupt was raised.
    DmaComplete {
        /// Requesting RPU.
        rpu: u8,
        /// Cycle the request entered the pipeline.
        started: Cycle,
        /// Transfer direction.
        to_host: bool,
        /// Transfer length in bytes.
        len: u32,
    },
    /// An RPU's lifecycle state changed (running/draining/reconfiguring/
    /// halted — PR, crashes, supervisor actions all surface here).
    RpuStateChange {
        /// The RPU.
        rpu: u8,
        /// The new state's name.
        state: &'static str,
    },
    /// The LB enable mask changed (an RPU was taken out of or returned to
    /// rotation).
    LbEnableMask {
        /// New enable bitmask.
        mask: u64,
    },
    /// A supervisor recovery-ladder transition.
    Supervisor {
        /// The RPU being recovered.
        rpu: u8,
        /// The ladder step.
        step: SupervisorStep,
    },
    /// A periodic per-RPU hardware performance-counter sample.
    CounterSample {
        /// The sampled RPU.
        rpu: u8,
        /// Cumulative counters at the sample point.
        perf: PerfCounters,
    },
}

/// The cycle-stamped event recorder. Install with
/// [`crate::Rosebud::enable_tracing`], retrieve with
/// [`crate::Rosebud::take_tracer`].
#[derive(Debug)]
pub struct Tracer {
    cfg: TraceConfig,
    events: Vec<(Cycle, TraceEvent)>,
    dropped: u64,
    rx_fifo_hw: Vec<u64>,
    tx_fifo_hw: Vec<u32>,
    dma_open: Vec<Option<(Cycle, bool, u32)>>,
    last_state: Vec<&'static str>,
    last_mask: Option<u64>,
}

impl Tracer {
    pub(crate) fn new(cfg: TraceConfig, num_rpus: usize, num_ports: usize) -> Self {
        Self {
            cfg,
            events: Vec::new(),
            dropped: 0,
            rx_fifo_hw: vec![0; num_ports],
            tx_fifo_hw: vec![0; num_ports],
            dma_open: vec![None; num_rpus],
            // Empty sentinel: the first periodic scan records each RPU's
            // actual state once, so every trace opens with the system shape.
            last_state: vec![""; num_rpus],
            last_mask: None,
        }
    }

    /// The configuration this tracer was installed with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// All recorded `(cycle, event)` pairs, in record order (which is also
    /// cycle order).
    pub fn events(&self) -> &[(Cycle, TraceEvent)] {
        &self.events
    }

    /// Events discarded after the buffer hit `max_events`.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn record(&mut self, now: Cycle, event: TraceEvent) {
        if self.events.len() >= self.cfg.max_events {
            self.dropped += 1;
            return;
        }
        self.events.push((now, event));
    }

    pub(crate) fn note_rx_fifo(&mut self, now: Cycle, port: usize, bytes: u64) {
        if bytes > self.rx_fifo_hw[port] {
            self.rx_fifo_hw[port] = bytes;
            self.record(
                now,
                TraceEvent::RxFifoHighWater {
                    port: port as u8,
                    bytes,
                },
            );
        }
    }

    pub(crate) fn note_tx_fifo(&mut self, now: Cycle, port: usize, frames: u32) {
        if frames > self.tx_fifo_hw[port] {
            self.tx_fifo_hw[port] = frames;
            self.record(
                now,
                TraceEvent::TxFifoHighWater {
                    port: port as u8,
                    frames,
                },
            );
        }
    }

    pub(crate) fn note_state(&mut self, now: Cycle, rpu: usize, state: &'static str) {
        if self.last_state[rpu] != state {
            self.last_state[rpu] = state;
            self.record(
                now,
                TraceEvent::RpuStateChange {
                    rpu: rpu as u8,
                    state,
                },
            );
        }
    }

    pub(crate) fn note_mask(&mut self, now: Cycle, mask: u64) {
        if self.last_mask != Some(mask) {
            self.last_mask = Some(mask);
            self.record(now, TraceEvent::LbEnableMask { mask });
        }
    }

    pub(crate) fn dma_started(&mut self, now: Cycle, rpu: usize, to_host: bool, len: u32) {
        self.dma_open[rpu] = Some((now, to_host, len));
        self.record(
            now,
            TraceEvent::DmaStart {
                rpu: rpu as u8,
                to_host,
                len,
            },
        );
    }

    pub(crate) fn dma_completed(&mut self, now: Cycle, rpu: usize) {
        if let Some((started, to_host, len)) = self.dma_open[rpu].take() {
            self.record(
                now,
                TraceEvent::DmaComplete {
                    rpu: rpu as u8,
                    started,
                    to_host,
                    len,
                },
            );
        }
    }

    /// The compact deterministic text form: one `@cycle event key=value…`
    /// line per event. Byte-identical across runs with the same seeds; this
    /// is the representation the golden-trace suite snapshots.
    pub fn compact_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.events.len() * 40 + 64);
        out.push_str("# rosebud trace v1\n");
        for &(cycle, ref ev) in &self.events {
            let _ = write!(out, "@{cycle} ");
            match *ev {
                TraceEvent::LbAssign {
                    port,
                    rpu,
                    slot,
                    packet_id,
                    len,
                } => {
                    let _ = write!(
                        out,
                        "lb.assign port={port} rpu={rpu} slot={slot} pkt={packet_id} len={len}"
                    );
                }
                TraceEvent::RxFifoHighWater { port, bytes } => {
                    let _ = write!(out, "rxfifo.hw port={port} bytes={bytes}");
                }
                TraceEvent::TxFifoHighWater { port, frames } => {
                    let _ = write!(out, "txfifo.hw port={port} frames={frames}");
                }
                TraceEvent::DescRx { rpu, slot, len } => {
                    let _ = write!(out, "desc.rx rpu={rpu} slot={slot} len={len}");
                }
                TraceEvent::DescTx {
                    rpu,
                    tag,
                    port,
                    len,
                } => {
                    let _ = write!(out, "desc.tx rpu={rpu} tag={tag} port={port} len={len}");
                }
                TraceEvent::DescDrop { rpu, tag } => {
                    let _ = write!(out, "desc.drop rpu={rpu} tag={tag}");
                }
                TraceEvent::DmaStart { rpu, to_host, len } => {
                    let _ = write!(
                        out,
                        "dma.start rpu={rpu} dir={} len={len}",
                        if to_host { "to-host" } else { "to-rpu" }
                    );
                }
                TraceEvent::DmaComplete {
                    rpu,
                    started,
                    to_host,
                    len,
                } => {
                    let _ = write!(
                        out,
                        "dma.done rpu={rpu} dir={} len={len} dur={}",
                        if to_host { "to-host" } else { "to-rpu" },
                        cycle.saturating_sub(started),
                    );
                }
                TraceEvent::RpuStateChange { rpu, state } => {
                    let _ = write!(out, "rpu.state rpu={rpu} state={state}");
                }
                TraceEvent::LbEnableMask { mask } => {
                    let _ = write!(out, "lb.mask mask={mask:#x}");
                }
                TraceEvent::Supervisor { rpu, step } => {
                    let _ = write!(out, "sup rpu={rpu} ");
                    step.render(&mut out);
                }
                TraceEvent::CounterSample { rpu, perf } => {
                    let _ = write!(
                        out,
                        "ctr rpu={rpu} sw={} ret={} stall={} memwait={} bp={} rx={} tx={} drop={}",
                        perf.sw_cycles,
                        perf.instret,
                        perf.stall_cycles,
                        perf.mem_wait_cycles,
                        perf.backpressure_stalls,
                        perf.rx_frames,
                        perf.tx_frames,
                        perf.drops,
                    );
                }
            }
            out.push('\n');
        }
        if self.dropped > 0 {
            let _ = writeln!(out, "# dropped {} events past the buffer cap", self.dropped);
        }
        out
    }

    /// Exports the trace in the Chrome/Perfetto Trace Event JSON format.
    ///
    /// Fabric events (LB, FIFOs) land in process 0, per-RPU events in
    /// process 1 with one thread per RPU. DMA transfers become duration
    /// (`"X"`) events; counter samples become counter (`"C"`) tracks.
    /// `ns_per_cycle` converts cycle stamps into the format's microsecond
    /// timebase (pass [`crate::RosebudConfig::ns_per_cycle`]).
    pub fn perfetto_json(&self, ns_per_cycle: f64) -> String {
        let ts = |cycle: Cycle| cycle as f64 * ns_per_cycle / 1000.0;
        let mut entries: Vec<String> = Vec::with_capacity(self.events.len() + 8);
        entries.push(
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"fabric\"}}"
                .to_string(),
        );
        entries.push(
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"rpus\"}}"
                .to_string(),
        );
        for i in 0..self.rx_fifo_hw.len() {
            entries.push(format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{i},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"port{i}\"}}}}"
            ));
        }
        for i in 0..self.dma_open.len() {
            entries.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"rpu{i}\"}}}}"
            ));
        }
        for &(cycle, ref ev) in &self.events {
            let t = ts(cycle);
            let line = match *ev {
                TraceEvent::LbAssign {
                    port,
                    rpu,
                    slot,
                    packet_id,
                    len,
                } => format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{port},\"ts\":{t:.4},\"s\":\"t\",\
                     \"name\":\"lb.assign\",\"args\":{{\"rpu\":{rpu},\"slot\":{slot},\
                     \"pkt\":{packet_id},\"len\":{len}}}}}"
                ),
                TraceEvent::RxFifoHighWater { port, bytes } => format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":{port},\"ts\":{t:.4},\
                     \"name\":\"rx_fifo{port}\",\"args\":{{\"bytes\":{bytes}}}}}"
                ),
                TraceEvent::TxFifoHighWater { port, frames } => format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":{port},\"ts\":{t:.4},\
                     \"name\":\"tx_queue{port}\",\"args\":{{\"frames\":{frames}}}}}"
                ),
                TraceEvent::DescRx { rpu, slot, len } => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{rpu},\"ts\":{t:.4},\"s\":\"t\",\
                     \"name\":\"desc.rx\",\"args\":{{\"slot\":{slot},\"len\":{len}}}}}"
                ),
                TraceEvent::DescTx {
                    rpu,
                    tag,
                    port,
                    len,
                } => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{rpu},\"ts\":{t:.4},\"s\":\"t\",\
                     \"name\":\"desc.tx\",\"args\":{{\"tag\":{tag},\"port\":{port},\
                     \"len\":{len}}}}}"
                ),
                TraceEvent::DescDrop { rpu, tag } => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{rpu},\"ts\":{t:.4},\"s\":\"t\",\
                     \"name\":\"desc.drop\",\"args\":{{\"tag\":{tag}}}}}"
                ),
                // The start instant is implicit in the completion's "X"
                // duration event; still emit it so cancelled DMAs (trace
                // ends mid-flight) remain visible.
                TraceEvent::DmaStart { rpu, to_host, len } => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{rpu},\"ts\":{t:.4},\"s\":\"t\",\
                     \"name\":\"dma.start\",\"args\":{{\"to_host\":{to_host},\
                     \"len\":{len}}}}}"
                ),
                TraceEvent::DmaComplete {
                    rpu,
                    started,
                    to_host,
                    len,
                } => {
                    let dur = ts(cycle) - ts(started);
                    format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{rpu},\"ts\":{:.4},\
                         \"dur\":{dur:.4},\"name\":\"dma\",\"args\":{{\
                         \"to_host\":{to_host},\"len\":{len}}}}}",
                        ts(started),
                    )
                }
                TraceEvent::RpuStateChange { rpu, state } => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{rpu},\"ts\":{t:.4},\"s\":\"t\",\
                     \"name\":\"state:{state}\",\"args\":{{}}}}"
                ),
                TraceEvent::LbEnableMask { mask } => format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{t:.4},\
                     \"name\":\"lb_enabled\",\"args\":{{\"rpus\":{}}}}}",
                    mask.count_ones(),
                ),
                TraceEvent::Supervisor { rpu, step } => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{rpu},\"ts\":{t:.4},\"s\":\"p\",\
                     \"name\":\"{}\",\"args\":{{}}}}",
                    step.label(),
                ),
                TraceEvent::CounterSample { rpu, perf } => format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":{rpu},\"ts\":{t:.4},\
                     \"name\":\"rpu{rpu}.perf\",\"args\":{{\"stall\":{},\
                     \"memwait\":{},\"instret\":{},\"bp\":{}}}}}",
                    perf.stall_cycles, perf.mem_wait_cycles, perf.instret, perf.backpressure_stalls,
                ),
            };
            entries.push(line);
        }
        let mut out = String::with_capacity(entries.len() * 120 + 64);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        out.push_str(&entries.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}
