//! Single-RPU simulation (paper §3.3, Appendix A.4).
//!
//! "Rosebud's architecture also supports simulating an entire RPU's
//! operation, with or without the distribution system, avoiding the need to
//! lay out a full design" — the paper provides a cocotb/Python test bench;
//! this is the Rust rendering. Developers link in the accelerator and the
//! firmware they want to test, feed packets directly into the RPU (the
//! distribution subsystem is bypassed), and observe outputs and exact cycle
//! counts — the workflow that produced the paper's "61 cycles for safe TCP
//! packets" simulation numbers (§7.1.4).

use rosebud_accel::Accelerator;
use rosebud_kernel::IngressPort;
use rosebud_net::Packet;
use rosebud_riscv::Image;

use crate::config::RosebudConfig;
use crate::rpu::{Firmware, Rpu};
use crate::types::{Desc, SlotMeta};

/// A packet emitted by the RPU under test.
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// The descriptor as the firmware sent it.
    pub desc: Desc,
    /// Frame bytes read back from packet memory (empty for drops).
    pub bytes: Vec<u8>,
    /// Cycle at which the firmware committed the send.
    pub sent_at: u64,
}

/// Per-packet simulation report from [`RpuTestbench::process_one`].
#[derive(Debug, Clone)]
pub struct PacketReport {
    /// Cycles from descriptor delivery to the (last) send — the number the
    /// paper's single-RPU simulations report per packet.
    pub cycles: u64,
    /// Everything the firmware sent while processing this packet.
    pub outputs: Vec<TxRecord>,
}

/// A bench around a single RPU: deliver packets, step cycles, collect
/// sends, count cycles.
///
/// # Examples
///
/// ```
/// use rosebud_core::{RosebudConfig, RpuTestbench, Desc, Firmware, RpuIo};
/// use rosebud_net::PacketBuilder;
///
/// struct Echo;
/// impl Firmware for Echo {
///     fn tick(&mut self, io: &mut RpuIo<'_>) {
///         if let Some(desc) = io.rx_pop() {
///             io.send(Desc { port: 1, ..desc });
///             io.charge(15);
///         }
///     }
/// }
///
/// let mut tb = RpuTestbench::new(RosebudConfig::with_rpus(4));
/// tb.load_native(Box::new(Echo));
/// let report = tb.process_one(&PacketBuilder::new().tcp(1, 2).pad_to(64).build(), 1000);
/// assert_eq!(report.outputs.len(), 1);
/// assert!(report.cycles <= 20);
/// ```
pub struct RpuTestbench {
    rpu: Rpu,
    now: u64,
    next_slot: u8,
    slots: usize,
    outputs: Vec<TxRecord>,
}

impl std::fmt::Debug for RpuTestbench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpuTestbench")
            .field("now", &self.now)
            .field("outputs", &self.outputs.len())
            .finish()
    }
}

impl RpuTestbench {
    /// Creates a bench around a fresh RPU with `cfg`'s memory geometry.
    pub fn new(cfg: RosebudConfig) -> Self {
        Self {
            rpu: Rpu::new(0, &cfg),
            now: 0,
            next_slot: 0,
            slots: cfg.slots_per_rpu,
            outputs: Vec::new(),
        }
    }

    /// Installs an accelerator (Appendix A.2: "connecting the accelerator
    /// to RPU").
    pub fn set_accelerator(&mut self, accel: Box<dyn Accelerator>) {
        self.rpu.set_accelerator(accel);
    }

    /// Loads assembled firmware and boots the core.
    pub fn load_riscv(&mut self, image: &Image) {
        self.rpu.load_riscv(image);
    }

    /// Installs native firmware and boots it.
    pub fn load_native(&mut self, firmware: Box<dyn Firmware>) {
        self.rpu.load_native(firmware);
    }

    /// The RPU under test (memory dumps, status, CPU state).
    pub fn rpu(&self) -> &Rpu {
        &self.rpu
    }

    /// Mutable access (e.g. for host-style memory pokes).
    pub fn rpu_mut(&mut self) -> &mut Rpu {
        &mut self.rpu
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Delivers a packet straight into the RPU's DMA (distribution system
    /// bypassed), assigning the next free slot round-robin. Returns the
    /// slot, or `None` when the receive queue is full.
    pub fn deliver(&mut self, pkt: &Packet) -> Option<u8> {
        let slot = self.next_slot;
        self.next_slot = (self.next_slot + 1) % self.slots as u8;
        let meta = SlotMeta {
            packet_id: pkt.id,
            ts_gen: self.now,
            ingress_port: pkt.port,
            orig_len: pkt.len() as u32,
        };
        self.rpu
            .inner_mut()
            .dma_deliver(slot, pkt.bytes(), meta)
            .then_some(slot)
    }

    /// Delivers every frame `source` has due at the current cycle, stopping
    /// when the receive queue refuses one (it goes back to the port and is
    /// re-offered on the next feed). Returns how many frames were
    /// delivered. This is the bench-scale pump: the same port that drives a
    /// full system replays into a single bare RPU.
    pub fn feed(&mut self, source: &mut dyn IngressPort<Packet>) -> usize {
        let mut delivered = 0;
        while let Some(pkt) = source.poll(self.now) {
            if self.deliver(&pkt).is_some() {
                delivered += 1;
            } else {
                source.give_back(pkt);
                break;
            }
        }
        delivered
    }

    /// Advances `cycles` clock cycles, collecting firmware sends.
    pub fn step(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.rpu.tick(self.now);
            while let Some((desc, bytes, _meta)) = self.rpu.inner_mut().take_tx() {
                self.outputs.push(TxRecord {
                    desc,
                    bytes,
                    sent_at: self.now,
                });
            }
            self.now += 1;
        }
    }

    /// Steps until the firmware and accelerator are idle, or `max` cycles.
    /// Returns `true` when idle was reached.
    pub fn run_until_idle(&mut self, max: u64) -> bool {
        for _ in 0..max {
            if self.rpu.is_drained() {
                return true;
            }
            self.step(1);
        }
        self.rpu.is_drained()
    }

    /// Everything sent so far.
    pub fn outputs(&self) -> &[TxRecord] {
        &self.outputs
    }

    /// Drains the recorded sends.
    pub fn take_outputs(&mut self) -> Vec<TxRecord> {
        std::mem::take(&mut self.outputs)
    }

    /// Delivers one packet and runs until the firmware finishes with it (or
    /// `max_cycles` pass), reporting the cycle count and outputs — the
    /// per-packet simulation measurement of §7.1.4.
    ///
    /// # Panics
    ///
    /// Panics if the receive queue is full (deliver single packets to an
    /// idle bench).
    pub fn process_one(&mut self, pkt: &Packet, max_cycles: u64) -> PacketReport {
        let before = self.outputs.len();
        let start = self.now;
        self.deliver(pkt).expect("testbench rx queue full");
        let mut last_send = self.now;
        for _ in 0..max_cycles {
            self.step(1);
            if self.outputs.len() > before {
                last_send = self.outputs.last().expect("just pushed").sent_at;
                if self.rpu.is_drained() {
                    break;
                }
            }
        }
        PacketReport {
            cycles: last_send.saturating_sub(start),
            outputs: self.outputs[before..].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosebud_net::PacketBuilder;
    use rosebud_riscv::assemble;

    #[test]
    fn riscv_forwarder_measured_at_16_cycles_steady_state() {
        let image = assemble(
            "
            .equ IO, 0x02000000
                li t0, IO
                li t1, 0x00800000
                li t2, 0x01000000
            poll:
                lw a0, 0x00(t0)
                beqz a0, poll
                lw a1, 0x04(t0)
                lw a2, 0x08(t0)
                sw a1, 0(t1)
                sw a2, 4(t1)
                sw zero, 0x0c(t0)
                xor a1, a1, t2
                sw a1, 0x10(t0)
                sw a2, 0x14(t0)
                j poll
            ",
        )
        .unwrap();
        let mut tb = RpuTestbench::new(RosebudConfig::with_rpus(4));
        tb.load_riscv(&image);
        tb.step(100); // boot + settle into the poll loop
                      // Back-to-back packets: steady state is 16 cycles each.
        let pkt = PacketBuilder::new().tcp(1, 2).pad_to(64).build();
        for _ in 0..8 {
            tb.deliver(&pkt).unwrap();
        }
        tb.step(400);
        let sends: Vec<u64> = tb.outputs().iter().map(|o| o.sent_at).collect();
        assert_eq!(sends.len(), 8);
        let gaps: Vec<u64> = sends.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(
            gaps.iter().all(|&g| g == 16),
            "steady-state forwarder gaps {gaps:?}, expected 16 cycles"
        );
    }

    #[test]
    fn process_one_reports_outputs_and_cycles() {
        struct DoubleSend;
        impl Firmware for DoubleSend {
            fn tick(&mut self, io: &mut crate::rpu::RpuIo<'_>) {
                if let Some(desc) = io.rx_pop() {
                    io.send(Desc { port: 0, ..desc });
                    io.send(Desc {
                        port: crate::types::port::HOST,
                        len: 0,
                        ..desc
                    });
                    io.charge(9);
                }
            }
        }
        let mut tb = RpuTestbench::new(RosebudConfig::with_rpus(4));
        tb.load_native(Box::new(DoubleSend));
        let pkt = PacketBuilder::new().udp(7, 8).pad_to(100).build();
        let report = tb.process_one(&pkt, 100);
        assert_eq!(report.outputs.len(), 2);
        assert!(report.cycles <= 12, "took {} cycles", report.cycles);
        assert_eq!(report.outputs[0].bytes.len(), 100);
        assert!(report.outputs[1].bytes.is_empty());
    }

    #[test]
    fn run_until_idle_detects_quiescence() {
        struct Slow;
        impl Firmware for Slow {
            fn tick(&mut self, io: &mut crate::rpu::RpuIo<'_>) {
                if let Some(desc) = io.rx_pop() {
                    io.charge(50);
                    io.send(desc);
                }
            }
            fn is_idle(&self) -> bool {
                true
            }
        }
        let mut tb = RpuTestbench::new(RosebudConfig::with_rpus(4));
        tb.load_native(Box::new(Slow));
        tb.deliver(&PacketBuilder::new().tcp(1, 2).pad_to(64).build())
            .unwrap();
        assert!(tb.run_until_idle(200));
        assert_eq!(tb.outputs().len(), 1);
    }
}
