//! The tester-FPGA model: paced traffic injection plus sink-side metrics.
//!
//! The paper's experiments use a second VCU1525 as traffic source/sink,
//! cross-connected with two 100 G cables (§6, Appendix D). [`Harness`] plays
//! that role: it paces a [`TrafficGen`] at a target load, injects into the
//! DUT's MACs, collects delivered frames, and aggregates throughput and
//! round-trip latency exactly as the paper's host scripts do.

use rosebud_kernel::LatencyStats;
use rosebud_net::{GenPort, Packet, TrafficGen};

use crate::ports::pump;
use crate::system::Rosebud;

/// Measured results over a window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Effective received throughput in Gbps (frame bytes, like the paper's
    /// "RX bytes" readings).
    pub gbps: f64,
    /// Received packet rate in millions of packets per second.
    pub mpps: f64,
    /// Packets received in the window.
    pub packets: u64,
    /// Packets injected in the window.
    pub injected: u64,
    /// Window length in cycles.
    pub cycles: u64,
}

/// Drives a [`Rosebud`] with generated traffic at a target offered load.
///
/// The generator is wrapped in a [`GenPort`] — the paced ingress-port
/// implementation — and pumped through the same
/// [`ports::pump`](crate::ports::pump) loop every other traffic source
/// uses, so the harness is just "a port plus metrics".
pub struct Harness {
    /// The device under test.
    pub sys: Rosebud,
    source: GenPort,
    injected: u64,
    received: u64,
    received_bytes: u64,
    host_received: u64,
    host_received_bytes: u64,
    latency: LatencyStats,
    window_start_cycle: u64,
    window_injected: u64,
    window_received: u64,
    window_received_bytes: u64,
    collect_output: bool,
    collected: Vec<Packet>,
}

impl Harness {
    /// Creates a harness offering `target_gbps` of aggregate load from
    /// `gen`. Offered load above the MAC line rate is clipped by wire-side
    /// serialization, exactly like a saturating tester.
    pub fn new(sys: Rosebud, gen: Box<dyn TrafficGen>, target_gbps: f64) -> Self {
        let ports = sys.config().num_ports;
        let source = GenPort::per_port(gen, target_gbps, sys.config().ns_per_cycle(), ports);
        Self {
            sys,
            source,
            injected: 0,
            received: 0,
            received_bytes: 0,
            host_received: 0,
            host_received_bytes: 0,
            latency: LatencyStats::new(),
            window_start_cycle: 0,
            window_injected: 0,
            window_received: 0,
            window_received_bytes: 0,
            collect_output: false,
            collected: Vec::new(),
        }
    }

    /// Keep delivered frames for inspection (off by default: high-rate runs
    /// would hoard memory).
    pub fn keep_output(mut self, keep: bool) -> Self {
        self.collect_output = keep;
        self
    }

    /// Advances the system one cycle, injecting paced traffic first.
    ///
    /// Each physical port is paced independently at `target_gbps / ports`,
    /// like the tester FPGA's per-port generator RPUs — one congested port
    /// must not starve the other. That pacing lives in the [`GenPort`]; the
    /// harness just pumps it.
    pub fn tick(&mut self) {
        let accepted = pump(&mut self.sys, &mut self.source);
        self.injected += accepted;
        self.window_injected += accepted;

        self.sys.tick();

        let now = self.sys.now();
        let ns_per_cycle = self.sys.config().ns_per_cycle();
        for p in 0..self.sys.config().num_ports {
            for pkt in self.sys.take_output(p) {
                self.received += 1;
                self.window_received += 1;
                self.received_bytes += pkt.len();
                self.window_received_bytes += pkt.len();
                self.latency
                    .record((now.saturating_sub(pkt.ts_gen)) as f64 * ns_per_cycle);
                if self.collect_output {
                    self.collected.push(pkt);
                }
            }
        }
        for pkt in self.sys.take_host_packets() {
            self.host_received += 1;
            self.host_received_bytes += pkt.len();
            // Host-delivered frames count toward absorbed throughput: the
            // paper reads "RX bytes" over physical and virtual interfaces
            // alike (Appendix D).
            self.window_received += 1;
            self.window_received_bytes += pkt.len();
            self.latency
                .record((now.saturating_sub(pkt.ts_gen)) as f64 * ns_per_cycle);
            if self.collect_output {
                self.collected.push(pkt);
            }
        }
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Starts a measurement window (call after warm-up).
    pub fn begin_window(&mut self) {
        self.window_start_cycle = self.sys.now();
        self.window_injected = 0;
        self.window_received = 0;
        self.window_received_bytes = 0;
        self.latency = LatencyStats::new();
    }

    /// Results since [`begin_window`](Self::begin_window).
    pub fn measure(&self) -> Measurement {
        let cycles = self
            .sys
            .now()
            .saturating_sub(self.window_start_cycle)
            .max(1);
        let secs = cycles as f64 * self.sys.config().ns_per_cycle() / 1e9;
        Measurement {
            gbps: self.window_received_bytes as f64 * 8.0 / secs / 1e9,
            mpps: self.window_received as f64 / secs / 1e6,
            packets: self.window_received,
            injected: self.window_injected,
            cycles,
        }
    }

    /// Round-trip latency samples in nanoseconds since the window began.
    pub fn latency(&mut self) -> &mut LatencyStats {
        &mut self.latency
    }

    /// All-time injected packet count.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// All-time received packet count (physical ports).
    pub fn received(&self) -> u64 {
        self.received
    }

    /// All-time frames delivered to the host.
    pub fn host_received(&self) -> u64 {
        self.host_received
    }

    /// Frames kept when built with [`keep_output`](Self::keep_output).
    pub fn collected(&self) -> &[Packet] {
        &self.collected
    }

    /// Drains kept frames.
    pub fn take_collected(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.collected)
    }

    /// The wrapped generator.
    pub fn generator(&self) -> &dyn TrafficGen {
        self.source.generator()
    }

    /// The paced ingress port feeding the DUT.
    pub fn source(&self) -> &GenPort {
        &self.source
    }
}
