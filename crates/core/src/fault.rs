//! Deterministic fault injection (§3.4 hang detection, Appendix A.8).
//!
//! Nothing in the paper's operational story can be trusted until the
//! failures it defends against can be *caused on demand*: a [`FaultPlan`] is
//! a schedule of seeded fault events — firmware hangs, firmware crashes,
//! ingress-link packet corruption, MAC RX FIFO overflow bursts, transient
//! host-DMA/PCIe outages — that the system applies at exact cycles during
//! [`crate::Rosebud::tick`]. The same plan and seed reproduce the same
//! cycle-exact failure (and, with the supervisor, recovery) trace.

use rosebud_kernel::{Cycle, SimRng};

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Firmware enters an infinite loop: the core stops making forward
    /// progress but the region is otherwise alive (the §3.4 hang the
    /// watchdog timer exists to catch).
    FirmwareHang {
        /// The RPU whose firmware wedges.
        rpu: usize,
    },
    /// Firmware traps to halt (ebreak/illegal instruction): the core stops
    /// and the halt flag becomes host-visible.
    FirmwareCrash {
        /// The RPU whose firmware dies.
        rpu: usize,
    },
    /// The next `count` packets crossing an RPU's ingress link arrive with
    /// flipped bytes; the link-level FCS check quarantines them before DMA.
    CorruptIngress {
        /// The RPU whose ingress link glitches.
        rpu: usize,
        /// How many consecutive packets are corrupted.
        count: u32,
    },
    /// A MAC receive FIFO sheds every arriving frame for a window — the
    /// overflow burst of a stalled distribution stage.
    RxFifoOverflow {
        /// The physical port whose RX path sheds.
        port: usize,
        /// Window length in cycles.
        cycles: Cycle,
    },
    /// The host-DMA/PCIe path goes down for a window: host register
    /// operations fail and RPU-initiated DMA completions stall (they finish
    /// once the link returns; nothing is lost).
    HostDmaOutage {
        /// Window length in cycles.
        cycles: Cycle,
    },
    /// An entire box loses power or wedges at the shell level: every core,
    /// MAC, and host path of the device freezes at once. Device-scale —
    /// applied by [`crate::Fleet`]; a single-box system ignores it.
    BoxCrash {
        /// The fleet device that dies.
        device: usize,
    },
    /// A device-scoped host-link outage: the box keeps forwarding but its
    /// PCIe/DMA management path is down, so the per-box supervisor backs
    /// off. Device-scale; ignored by single-box systems.
    BoxHostOutage {
        /// The affected fleet device.
        device: usize,
        /// Window length in cycles.
        cycles: Cycle,
    },
    /// The front load-balancer link to one box flaps: nothing crosses the
    /// link for the window, nothing is lost (frames wait in the link
    /// queues). Device-scale; ignored by single-box systems.
    FrontLinkFlap {
        /// The affected fleet device.
        device: usize,
        /// Window length in cycles.
        cycles: Cycle,
    },
    /// A slow-box brownout: the front link delivers into the box only every
    /// `factor`-th cycle and health-probe round trips inflate by the same
    /// factor. Device-scale; ignored by single-box systems.
    BoxBrownout {
        /// The affected fleet device.
        device: usize,
        /// Window length in cycles.
        cycles: Cycle,
        /// Slowdown factor (≥ 1; 1 is a no-op).
        factor: u32,
    },
}

impl FaultKind {
    /// `true` for the device-scale faults a [`crate::Fleet`] applies itself
    /// (a single box has no notion of the device they target).
    pub fn is_device_scale(&self) -> bool {
        matches!(
            self,
            FaultKind::BoxCrash { .. }
                | FaultKind::BoxHostOutage { .. }
                | FaultKind::FrontLinkFlap { .. }
                | FaultKind::BoxBrownout { .. }
        )
    }
}

/// A fault scheduled at an absolute cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault triggers.
    pub at: Cycle,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events plus the seed used for any
/// randomness inside their effects (corruption byte flips).
///
/// # Examples
///
/// ```
/// use rosebud_core::{FaultKind, FaultPlan};
/// let plan = FaultPlan::new(42)
///     .at(10_000, FaultKind::FirmwareHang { rpu: 3 })
///     .at(25_000, FaultKind::HostDmaOutage { cycles: 2_000 });
/// assert_eq!(plan.events().len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: u64,
}

impl FaultPlan {
    /// An empty plan with an effect seed.
    pub fn new(seed: u64) -> Self {
        Self {
            events: Vec::new(),
            seed,
        }
    }

    /// Adds an event (builder style). Events may be added in any order;
    /// the plan sorts by cycle on installation.
    #[must_use]
    pub fn at(mut self, cycle: Cycle, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at: cycle, kind });
        self
    }

    /// Generates a random plan of `events` faults over `[0, horizon)`
    /// against a system of `num_rpus` RPUs and `num_ports` ports — the
    /// chaos-testing entry point. Fully determined by `seed`.
    pub fn random(
        seed: u64,
        horizon: Cycle,
        num_rpus: usize,
        num_ports: usize,
        events: usize,
    ) -> Self {
        let mut rng = SimRng::seed_from(seed ^ 0xFA17_7E57);
        let mut plan = Self::new(seed);
        for _ in 0..events {
            let at = rng.below(horizon.max(1));
            let rpu = rng.below(num_rpus.max(1) as u64) as usize;
            let kind = match rng.below(5) {
                0 => FaultKind::FirmwareHang { rpu },
                1 => FaultKind::FirmwareCrash { rpu },
                2 => FaultKind::CorruptIngress {
                    rpu,
                    count: 1 + rng.below(8) as u32,
                },
                3 => FaultKind::RxFifoOverflow {
                    port: rng.below(num_ports.max(1) as u64) as usize,
                    cycles: 100 + rng.below(2_000),
                },
                _ => FaultKind::HostDmaOutage {
                    cycles: 100 + rng.below(3_000),
                },
            };
            plan = plan.at(at, kind);
        }
        plan
    }

    /// Generates a random device-scale plan of `events` faults over
    /// `[0, horizon)` against a fleet of `num_boxes` devices — whole-box
    /// crashes, box-scoped host outages, front-link flaps, and slow-box
    /// brownouts. Fully determined by `seed`.
    pub fn random_fleet(seed: u64, horizon: Cycle, num_boxes: usize, events: usize) -> Self {
        let mut rng = SimRng::seed_from(seed ^ 0xB0F7_FA17);
        let mut plan = Self::new(seed);
        for _ in 0..events {
            let at = rng.below(horizon.max(1));
            let device = rng.below(num_boxes.max(1) as u64) as usize;
            let kind = match rng.below(4) {
                0 => FaultKind::BoxCrash { device },
                1 => FaultKind::BoxHostOutage {
                    device,
                    cycles: 500 + rng.below(8_000),
                },
                2 => FaultKind::FrontLinkFlap {
                    device,
                    cycles: 100 + rng.below(3_000),
                },
                _ => FaultKind::BoxBrownout {
                    device,
                    cycles: 500 + rng.below(6_000),
                    factor: 2 + rng.below(6) as u32,
                },
            };
            plan = plan.at(at, kind);
        }
        plan
    }

    /// The scheduled events (unsorted, as built).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The effect seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// The packet-conservation ledger: every frame the system ever accepted is
/// accounted as exactly one of delivered, dropped, quarantined, purged, or
/// still in flight. [`crate::Rosebud`] asserts the balance periodically, so
/// a fault-recovery path that loses or double-counts packets fails loudly
/// instead of silently skewing throughput numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Frames accepted from the wire or the host's virtual interface.
    pub injected: u64,
    /// Frames the firmware originated itself (`SELF_TAG` sends entering the
    /// egress fabric).
    pub originated: u64,
    /// Frames delivered on a physical port or to the host over PCIe.
    pub delivered: u64,
    /// Frames dropped with an accounted reason (firmware zero-length sends,
    /// routing errors, queue overflow, injected RX-FIFO sheds).
    pub dropped: u64,
    /// Frames quarantined by the link FCS check after injected corruption.
    pub corrupted: u64,
    /// Frames destroyed by forced eviction of a wedged RPU.
    pub purged: u64,
}

impl Ledger {
    /// Left-hand side: everything that ever entered the system.
    pub fn entered(&self) -> u64 {
        self.injected + self.originated
    }

    /// Right-hand side less in-flight: everything accounted for.
    pub fn accounted(&self) -> u64 {
        self.delivered + self.dropped + self.corrupted + self.purged
    }

    /// `true` when `entered == accounted + in_flight`.
    pub fn balances(&self, in_flight: u64) -> bool {
        self.entered() == self.accounted() + in_flight
    }
}

/// Live injection state the system carries once a plan is installed.
#[derive(Debug)]
pub(crate) struct FaultState {
    /// Remaining events, sorted by cycle (ascending), consumed from the
    /// front.
    pending: Vec<FaultEvent>,
    /// RNG for corruption byte flips.
    pub rng: SimRng,
    /// Packets still to corrupt on each RPU's ingress link.
    pub corrupt_pending: Vec<u32>,
    /// Per-port cycle until which the RX FIFO sheds arriving frames.
    pub rx_drop_until: Vec<Cycle>,
    /// Cycle until which the host-DMA/PCIe path is down.
    pub host_down_until: Cycle,
    /// Last injected firmware fault per RPU (for detection-latency
    /// accounting in recovery records).
    pub last_fault_at: Vec<Option<Cycle>>,
}

impl FaultState {
    pub fn new(plan: FaultPlan, num_rpus: usize, num_ports: usize) -> Self {
        let mut pending = plan.events;
        // Stable order: by cycle, ties in insertion order (sort is stable).
        pending.sort_by_key(|e| e.at);
        Self {
            pending,
            rng: SimRng::seed_from(plan.seed ^ 0xC0DE_FA17),
            corrupt_pending: vec![0; num_rpus],
            rx_drop_until: vec![0; num_ports],
            host_down_until: 0,
            last_fault_at: vec![None; num_rpus],
        }
    }

    /// Pops every event due at or before `now`.
    pub fn due(&mut self, now: Cycle) -> Vec<FaultEvent> {
        let split = self.pending.partition_point(|e| e.at <= now);
        self.pending.drain(..split).collect()
    }

    /// Inserts an event into the pending queue, keeping it sorted by cycle
    /// with ties behind already-queued events (matching the stable sort of
    /// plan installation). Used by [`crate::Rosebud::inject_fault`] to land
    /// faults mid-run without replacing the installed plan.
    pub fn schedule(&mut self, ev: FaultEvent) {
        let idx = self.pending.partition_point(|e| e.at <= ev.at);
        self.pending.insert(idx, ev);
    }

    /// `true` once every event has triggered and every window has closed.
    pub fn quiescent(&self, now: Cycle) -> bool {
        self.pending.is_empty()
            && self.corrupt_pending.iter().all(|&c| c == 0)
            && self.rx_drop_until.iter().all(|&u| u <= now)
            && self.host_down_until <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_reproducible() {
        let a = FaultPlan::random(7, 100_000, 8, 2, 12);
        let b = FaultPlan::random(7, 100_000, 8, 2, 12);
        assert_eq!(a.events(), b.events());
        let c = FaultPlan::random(8, 100_000, 8, 2, 12);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn due_consumes_in_cycle_order() {
        let plan = FaultPlan::new(0)
            .at(50, FaultKind::FirmwareHang { rpu: 1 })
            .at(10, FaultKind::FirmwareCrash { rpu: 0 });
        let mut state = FaultState::new(plan, 4, 2);
        assert!(state.due(9).is_empty());
        let first = state.due(10);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].kind, FaultKind::FirmwareCrash { rpu: 0 });
        assert_eq!(state.due(100).len(), 1);
        assert!(state.quiescent(100));
    }

    #[test]
    fn random_fleet_plans_are_reproducible_and_device_scale() {
        let a = FaultPlan::random_fleet(11, 50_000, 4, 9);
        let b = FaultPlan::random_fleet(11, 50_000, 4, 9);
        assert_eq!(a.events(), b.events());
        assert!(a.events().iter().all(|e| e.kind.is_device_scale()));
        assert!(!FaultKind::FirmwareHang { rpu: 0 }.is_device_scale());
    }

    #[test]
    fn schedule_keeps_cycle_order() {
        let plan = FaultPlan::new(0).at(50, FaultKind::FirmwareHang { rpu: 1 });
        let mut state = FaultState::new(plan, 4, 2);
        state.schedule(FaultEvent {
            at: 10,
            kind: FaultKind::BoxCrash { device: 0 },
        });
        let first = state.due(20);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].kind, FaultKind::BoxCrash { device: 0 });
    }
}
