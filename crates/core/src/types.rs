//! Shared datapath types: descriptors, ports, interrupts, the memory map.

/// The RPU memory map, matching the constants in the paper's firmware
/// (Appendices B and C: `DMEM_BASE = 0x800000`, `IO_EXT_BASE`, packet slots
/// in the upper half of packet memory).
pub mod memmap {
    /// Instruction memory base.
    pub const IMEM_BASE: u32 = 0x0000_0000;
    /// Data memory base (the paper's `DMEM_BASE`).
    pub const DMEM_BASE: u32 = 0x0080_0000;
    /// Shared packet memory base (the paper's `PMEM_BASE`).
    pub const PMEM_BASE: u32 = 0x0100_0000;
    /// Interconnect MMIO window (descriptors, status, debug, timer).
    pub const IO_BASE: u32 = 0x0200_0000;
    /// Accelerator MMIO window (the paper's `IO_EXT_BASE`).
    pub const IO_EXT_BASE: u32 = 0x0300_0000;
    /// Semi-coherent broadcast region (§4.4): writes propagate to all RPUs.
    pub const BCAST_BASE: u32 = 0x0400_0000;
    /// Size of the broadcast region in bytes.
    pub const BCAST_BYTES: u32 = 4096;

    /// Interconnect register offsets from [`IO_BASE`].
    pub mod io {
        /// (r) Non-zero when a received descriptor is pending.
        pub const RECV_READY: u32 = 0x00;
        /// (r) Head descriptor's packed low word (see [`super::super::Desc`]).
        pub const RECV_DESC_LO: u32 = 0x04;
        /// (r) Head descriptor's packet-memory address.
        pub const RECV_DESC_DATA: u32 = 0x08;
        /// (w) Releases the head received descriptor.
        pub const RECV_RELEASE: u32 = 0x0c;
        /// (w) Stages an outgoing descriptor's packed low word.
        pub const SEND_DESC_LO: u32 = 0x10;
        /// (w) Outgoing descriptor's data address; writing commits the send.
        pub const SEND_DESC_DATA: u32 = 0x14;
        /// (r/w) Status register, readable by the host (§3.4 breakpoints).
        pub const STATUS: u32 = 0x18;
        /// (w) Debug channel to host, low word (the paper's `DEBUG_OUT_L`).
        pub const DEBUG_OUT_L: u32 = 0x1c;
        /// (w) Debug channel to host, high word (commits the 64-bit value).
        pub const DEBUG_OUT_H: u32 = 0x20;
        /// (r) Cycle timer, low word (timers in all RPUs are synced, §6.2).
        pub const TIMER_L: u32 = 0x24;
        /// (r) Cycle timer, high word.
        pub const TIMER_H: u32 = 0x28;
        /// (w) Interrupt mask register (the firmware's `set_masks(0x30)`).
        pub const MASKS: u32 = 0x2c;
        /// (r) Debug channel from host, low word.
        pub const HOST_IN_L: u32 = 0x30;
        /// (r) Debug channel from host, high word.
        pub const HOST_IN_H: u32 = 0x34;
        /// (r) Pops the oldest broadcast-delivery notification: the message's
        /// region offset, or `0xffff_ffff` when none is pending (§4.4).
        pub const BCAST_NOTIFY: u32 = 0x38;
        /// (r) Number of free entries in this RPU's broadcast outbox.
        pub const BCAST_FREE: u32 = 0x3c;
        /// (w) One-shot watchdog: raises the timer interrupt after the
        /// written number of cycles (the hang-detection mechanism of §3.4:
        /// "software on the RISC-V can detect the hang using internal timer
        /// interrupt"). Writing 0 cancels it.
        pub const TIMER_CMP: u32 = 0x40;
        /// (w) Host-DRAM address for the next DMA transfer (§4.2's
        /// packetized host-DRAM communication with DRAM tags).
        pub const DMA_HOST_ADDR: u32 = 0x44;
        /// (w) Local packet-memory address for the next DMA transfer.
        pub const DMA_LOCAL_ADDR: u32 = 0x48;
        /// (w) DMA transfer length in bytes.
        pub const DMA_LEN: u32 = 0x4c;
        /// (w) DMA control: 1 = write local→host, 2 = read host→local.
        pub const DMA_CTRL: u32 = 0x50;
        /// (r) DMA status: non-zero while a transfer is in flight.
        pub const DMA_STATUS: u32 = 0x54;
    }
}

/// Interrupt lines into each RPU's core.
pub mod irq {
    /// Broadcast message delivered (maskable per target address, §4.4).
    pub const BCAST: u8 = 0;
    /// Internal timer (the hang-detection example of §3.4).
    pub const TIMER: u8 = 1;
    /// Host DRAM DMA completion.
    pub const DMA: u8 = 2;
    /// Eviction request before partial reconfiguration (Appendix A.8).
    pub const EVICT: u8 = 4;
    /// Host poke for debugging (§3.4).
    pub const POKE: u8 = 5;
}

/// Packet destinations encoded in a descriptor's `port` field. Ports 0 and 1
/// are the physical 100 Gbps interfaces; the case-study firmware sends
/// matched packets to the host with `desc.port = 2` (Appendix B).
pub mod port {
    /// Host virtual Ethernet interface over PCIe.
    pub const HOST: u8 = 2;
    /// Base of loopback destinations: `LOOPBACK_BASE + k` targets RPU `k`
    /// through the loopback module (§4.4).
    pub const LOOPBACK_BASE: u8 = 4;
}

/// Descriptor tag marking a packet the firmware originated itself rather
/// than received through the LB (the tester FPGA's `basic_pkt_gen` firmware,
/// §6.1/Appendix D): no LB slot is held, so none is released on egress.
pub const SELF_TAG: u8 = 0xff;

/// A packet descriptor: the slot-based handle the LB, interconnect, and
/// firmware exchange instead of packet payloads (§4.2).
///
/// # Examples
///
/// ```
/// use rosebud_core::Desc;
/// let desc = Desc { tag: 3, len: 1500, port: 1, data: 0x0108_0000 };
/// assert_eq!(Desc::unpack_lo(desc.pack_lo()), (1500, 3, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Desc {
    /// Slot tag within the owning RPU.
    pub tag: u8,
    /// Frame length in bytes; firmware drops a packet by sending length 0
    /// (Appendix C: `desc->len = 0; pkt_send(desc);`).
    pub len: u32,
    /// Source port on receive; destination port on send.
    pub port: u8,
    /// Packet-memory address of the frame data.
    pub data: u32,
}

impl Desc {
    /// Packs `(len, tag, port)` into the MMIO low word.
    pub fn pack_lo(&self) -> u32 {
        (self.len & 0xffff) | (u32::from(self.tag) << 16) | (u32::from(self.port) << 24)
    }

    /// Unpacks an MMIO low word into `(len, tag, port)`.
    pub fn unpack_lo(lo: u32) -> (u32, u8, u8) {
        (lo & 0xffff, (lo >> 16) as u8, (lo >> 24) as u8)
    }

    /// Reassembles a descriptor from the packed low word plus data address.
    pub fn from_words(lo: u32, data: u32) -> Self {
        let (len, tag, port) = Self::unpack_lo(lo);
        Self {
            tag,
            len,
            port,
            data,
        }
    }
}

/// Simulation-side metadata for a packet occupying a slot (identity and
/// timestamps survive the trip through packet memory so conservation and
/// latency can be measured).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotMeta {
    /// The packet's unique id.
    pub packet_id: u64,
    /// Cycle the traffic source generated it.
    pub ts_gen: u64,
    /// Port it entered the system on.
    pub ingress_port: u8,
    /// Original frame length.
    pub orig_len: u32,
}

/// A host-DRAM DMA request from an RPU (§4.2: "communication between host
/// DRAM and RPUs is also packetized, using a different slot number, i.e.,
/// DRAM tag").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostDmaReq {
    /// Byte address in host DRAM.
    pub host_addr: u32,
    /// Byte address in the RPU's packet memory (absolute, `PMEM_BASE`-based).
    pub local_addr: u32,
    /// Transfer length in bytes.
    pub len: u32,
    /// `true` for local→host writes, `false` for host→local reads.
    pub to_host: bool,
}

/// A broadcast message in flight (§4.4): a word written to the semi-coherent
/// region, delivered to every RPU at the same cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcastMsg {
    /// Originating RPU.
    pub from: usize,
    /// Byte offset within the broadcast region.
    pub offset: u32,
    /// The written word.
    pub value: u32,
    /// Cycle the originating core issued the write (latency accounting).
    pub sent_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn desc_pack_round_trip() {
        for desc in [
            Desc {
                tag: 0,
                len: 0,
                port: 0,
                data: 0,
            },
            Desc {
                tag: 31,
                len: 9000,
                port: 2,
                data: 0x01ff_ffff,
            },
            Desc {
                tag: 255,
                len: 65535,
                port: port::LOOPBACK_BASE + 7,
                data: 1,
            },
        ] {
            let rt = Desc::from_words(desc.pack_lo(), desc.data);
            assert_eq!(rt, desc);
        }
    }

    #[test]
    fn len_truncates_to_16_bits() {
        let desc = Desc {
            tag: 1,
            len: 0x12_0000,
            port: 0,
            data: 0,
        };
        let (len, _, _) = Desc::unpack_lo(desc.pack_lo());
        assert_eq!(len, 0); // callers must respect the 16 KB slot limit
    }
}
