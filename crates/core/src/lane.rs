//! One RPU "lane": the RPU plus its private ingress/egress links, and the
//! fused per-cycle lane phase the parallel kernel runs.
//!
//! The sequential reference kernel advances the system stage by stage, each
//! stage sweeping all RPUs (see [`crate::Rosebud::tick`]). Stages 4–6 — the
//! per-RPU link pop + DMA delivery, the core/accelerator tick, and the
//! committed-send pop — only ever touch state belonging to a single RPU,
//! *except* for a handful of shared-resource side effects: slot-tracker
//! releases, conservation-ledger counts, the routed-drop counter, and trace
//! events. The parallel kernel exploits this: each lane runs its three
//! stages fused in one pass (possibly on a worker thread), records the
//! would-be shared effects in [`LaneFx`], and the coordinator replays them
//! at the cycle barrier in stage-major, lane-ascending order — the exact
//! order the sequential kernel produces them. Architectural state, counters
//! and traces are therefore byte-identical between kernels.

use rosebud_kernel::{Cycle, Serializer};

use crate::fabric::{EgressItem, IngressItem};
use crate::rpu::Rpu;

/// An RPU plus its private distribution links.
pub(crate) struct Lane {
    /// Quiescent-lane elision (parallel kernel only): the first cycle at
    /// which this lane's phase could change any state. While `now` is below
    /// it the lane is provably inert — core parked/halted/hung/mid-PR, no
    /// stall tail, no queued send, empty ingress link — so [`lane_phase`]
    /// is skipped entirely. Every coordinator-side event that could change
    /// the answer (ingress push, raised interrupt, host access, fault
    /// injection, PR step) resets it to 0 via `Rosebud::wake_lane`; the
    /// armed-watchdog deadline caps it. The sequential kernel never reads
    /// this field: it ticks every lane every cycle and is the oracle the
    /// differential suite compares against.
    pub quiet_until: Cycle,
    /// The packet-processing unit itself.
    pub rpu: Rpu,
    /// The 32 Gbps ingress link feeding this RPU's DMA engine.
    pub rin: Serializer<IngressItem>,
    /// The 32 Gbps egress link draining committed sends.
    pub rout: Serializer<EgressItem>,
    /// Shared-resource effects recorded by the last lane phase.
    pub fx: LaneFx,
}

/// Shared-resource side effects of one lane's stages 4–6, deferred to the
/// cycle barrier. At most one packet is popped from each link per cycle and
/// at most one send committed, so single `Option`s suffice.
#[derive(Default)]
pub(crate) struct LaneFx {
    /// Stage-4 outcome (ingress pop).
    pub rx: Option<RxFx>,
    /// Stage-6 outcome (committed send).
    pub tx: Option<TxFx>,
    /// The RPU holds a host-DMA request for the PCIe stage.
    pub dma_req: bool,
    /// The egress link is non-empty, so the routing stage must look at it.
    pub rout_busy: bool,
}

/// Deferred stage-4 effect.
pub(crate) enum RxFx {
    /// Link FCS failure: quarantined before DMA; slot returns to the LB.
    Corrupted {
        /// The slot bound to the corrupted frame.
        slot: u8,
    },
    /// DMA delivery failed (rx queue full — should not happen, slots bound
    /// in-flight packets); slot returns, drop accounted.
    Failed {
        /// The slot bound to the undeliverable frame.
        slot: u8,
    },
    /// Delivered into packet memory; descriptor queued.
    Delivered {
        /// The slot the frame landed in.
        slot: u8,
        /// Delivered byte count (for the trace event).
        len: u32,
    },
}

/// Deferred stage-6 effect.
pub(crate) enum TxFx {
    /// Zero-length send: firmware dropped the packet.
    Dropped {
        /// The descriptor tag (slot, or `SELF_TAG`).
        tag: u8,
    },
    /// A frame entered the egress link.
    Sent {
        /// The descriptor tag.
        tag: u8,
        /// Destination port.
        port: u8,
        /// Frame length in bytes.
        len: u32,
    },
}

/// Runs one lane's fused stage 4 → 5 → 6 pass for cycle `now`, recording
/// shared-resource effects in `lane.fx` instead of applying them. Must
/// perform *exactly* the per-lane actions of the sequential kernel's stages
/// 4–6, in the same intra-lane order.
pub(crate) fn lane_phase(lane: &mut Lane, now: Cycle) {
    if now < lane.quiet_until {
        return;
    }
    let mut fx = LaneFx::default();

    // Stage 4: per-RPU link → DMA into packet memory + descriptor delivery.
    if let Some(item) = lane.rin.pop_ready(now) {
        if item.corrupted {
            fx.rx = Some(RxFx::Corrupted { slot: item.slot });
        } else {
            let delivered = lane
                .rpu
                .inner_mut()
                .dma_deliver(item.slot, &item.bytes, item.meta);
            fx.rx = Some(if delivered {
                RxFx::Delivered {
                    slot: item.slot,
                    len: item.bytes.len() as u32,
                }
            } else {
                RxFx::Failed { slot: item.slot }
            });
        }
    }

    // Stage 5: core + accelerator.
    lane.rpu.tick(now);

    // Stage 6: committed sends → the egress link.
    if !lane.rout.is_full() {
        if let Some((desc, bytes, meta)) = lane.rpu.inner_mut().take_tx() {
            if desc.len == 0 || bytes.is_empty() {
                fx.tx = Some(TxFx::Dropped { tag: desc.tag });
            } else {
                fx.tx = Some(TxFx::Sent {
                    tag: desc.tag,
                    port: desc.port,
                    len: bytes.len() as u32,
                });
                let len = bytes.len() as u64;
                lane.rout
                    .push(
                        EgressItem {
                            src_rpu: lane.rpu.id(),
                            desc,
                            bytes,
                            meta,
                        },
                        len,
                        now,
                    )
                    .expect("fullness checked above");
            }
        }
    }

    fx.dma_req = lane.rpu.inner().has_dma_req();
    fx.rout_busy = !lane.rout.is_empty();
    // Only a fully inert cycle may start a sleep: no ingress or egress
    // activity this cycle and nothing pending on the ingress link. A
    // non-empty egress link does NOT hold the lane awake — the coordinator
    // drains `rout` in tick_post, guided by the persistent rout mask.
    lane.quiet_until = if fx.rx.is_none() && fx.tx.is_none() && lane.rin.is_empty() {
        lane.rpu.quiet_horizon()
    } else {
        0
    };
    lane.fx = fx;
}
