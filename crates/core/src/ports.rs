//! The device-edge port layer: how traffic reaches and leaves a [`Rosebud`].
//!
//! The simulation core is a pure, cycle-deterministic function of its
//! injected traffic; everything on the far side of a MAC — a paced
//! generator, a pcap replay, a fleet front link, a live socket — implements
//! the [`IngressPort`]/[`EgressPort`] contract from `rosebud_kernel` and is
//! driven through [`pump`]. The split buys two things:
//!
//! * any feeder is "a small port impl", not a change to the core, and
//! * every external arrival can be recorded as a cycle-stamped event
//!   ([`EventLog`]) and replayed bit-exactly through the sequential kernel
//!   oracle ([`replay`]) — a live run becomes a reproducible testcase.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

pub use rosebud_kernel::{CollectEgress, EgressPort, IngressPort, LinkPort, PortClock};
use rosebud_kernel::{Cycle, StampedIngress};
use rosebud_net::Packet;

use crate::system::Rosebud;

/// Drains `source` into `sys`'s receive MACs for the current cycle,
/// returning how many frames were accepted.
///
/// The loop follows the port contract: poll until the source runs dry, hand
/// refused frames back through [`IngressPort::give_back`]. A source that
/// re-offers the *same* frame after a refusal (a replay or link port — the
/// target MAC stays busy all cycle) ends the pump for this cycle; a source
/// that moves on to other traffic (a multi-lane generator) keeps pumping.
///
/// # Examples
///
/// ```
/// use rosebud_core::ports::pump;
/// use rosebud_core::{Rosebud, RosebudConfig, RpuProgram};
/// use rosebud_kernel::StampedIngress;
/// use rosebud_net::{FixedSizeGen, TrafficGen};
/// # let image = rosebud_riscv::assemble("spin: j spin").unwrap();
/// # let mut sys = Rosebud::builder(RosebudConfig::with_rpus(2))
/// #     .firmware(move |_| RpuProgram::Riscv(image.clone()))
/// #     .build()
/// #     .unwrap();
///
/// let mut gen = FixedSizeGen::new(64, 2);
/// let mut source = StampedIngress::new();
/// source.push_at(0, gen.generate(0, 0));
/// assert_eq!(pump(&mut sys, &mut source), 1);
/// ```
pub fn pump(sys: &mut Rosebud, source: &mut dyn IngressPort<Packet>) -> u64 {
    let now = sys.now();
    let mut accepted = 0;
    let mut last_refused: Option<u64> = None;
    while let Some(pkt) = source.poll(now) {
        let id = pkt.id;
        match sys.inject(pkt) {
            Ok(()) => accepted += 1,
            Err(pkt) => {
                let stuck = last_refused == Some(id);
                source.give_back(pkt);
                if stuck {
                    break;
                }
                last_refused = Some(id);
            }
        }
    }
    accepted
}

/// One recorded external arrival: the frame and the cycle its injection was
/// accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortEvent {
    /// Cycle the receive MAC accepted the frame.
    pub cycle: Cycle,
    /// The frame, exactly as injected.
    pub pkt: Packet,
}

/// A cycle-stamped record of every external arrival over a run, plus the
/// total cycles ticked — everything needed to reproduce the run bit-exactly
/// on a fresh system ([`replay`]).
///
/// The text format is line-oriented and versioned:
///
/// ```text
/// rosebud-events v1 cycles=<total>
/// <cycle> <id> <port> <ts_gen> <frame-hex>
/// ...
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventLog {
    /// Accepted arrivals in cycle order.
    pub events: Vec<PortEvent>,
    /// Total cycles the recorded run ticked.
    pub cycles: u64,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an accepted arrival.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` precedes the last recorded event (arrivals are
    /// accepted in cycle order).
    pub fn push(&mut self, cycle: Cycle, pkt: Packet) {
        if let Some(last) = self.events.last() {
            assert!(cycle >= last.cycle, "events must be recorded in order");
        }
        self.events.push(PortEvent { cycle, pkt });
    }

    /// Serializes to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 160);
        out.push_str(&format!("rosebud-events v1 cycles={}\n", self.cycles));
        for ev in &self.events {
            out.push_str(&format!(
                "{} {} {} {} ",
                ev.cycle, ev.pkt.id, ev.pkt.port, ev.pkt.ts_gen
            ));
            for b in ev.pkt.bytes() {
                out.push_str(&format!("{b:02x}"));
            }
            out.push('\n');
        }
        out
    }

    /// Parses the text format back.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty event log")?;
        let cycles = header
            .strip_prefix("rosebud-events v1 cycles=")
            .ok_or_else(|| format!("bad header: {header:?}"))?
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("bad cycle count: {e}"))?;
        let mut log = Self {
            events: Vec::new(),
            cycles,
        };
        for (n, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let mut f = line.split_ascii_whitespace();
            let mut field = |name: &str| {
                f.next()
                    .ok_or_else(|| format!("line {}: missing {name}", n + 2))
            };
            let cycle: Cycle = parse_num(field("cycle")?, n)?;
            let id: u64 = parse_num(field("id")?, n)?;
            let port: u8 = parse_num(field("port")?, n)?;
            let ts_gen: Cycle = parse_num(field("ts_gen")?, n)?;
            let hex = field("frame bytes")?;
            if hex.len() % 2 != 0 {
                return Err(format!("line {}: odd hex length", n + 2));
            }
            let mut data = Vec::with_capacity(hex.len() / 2);
            for i in (0..hex.len()).step_by(2) {
                let byte = u8::from_str_radix(&hex[i..i + 2], 16)
                    .map_err(|e| format!("line {}: bad hex: {e}", n + 2))?;
                data.push(byte);
            }
            log.push(cycle, Packet::new(id, data, port, ts_gen));
        }
        Ok(log)
    }

    /// The log as a replayable ingress port: every event is delivered at its
    /// recorded cycle, then the source reports
    /// [`Exhausted`](PortClock::Exhausted).
    pub fn replay_port(&self) -> StampedIngress<Packet> {
        let mut port = StampedIngress::new();
        for ev in &self.events {
            port.push_at(ev.cycle, ev.pkt.clone());
        }
        port.finish();
        port
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, line: usize) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse()
        .map_err(|e| format!("line {}: bad number {s:?}: {e}", line + 2))
}

/// Replays a recorded run on a fresh system: injects every logged arrival
/// at its recorded cycle, ticks exactly the recorded cycle count, and
/// returns everything the device delivered. Determinism makes this exact —
/// the log holds only *accepted* injections, so each one succeeds at the
/// same cycle it did live, and every downstream effect (trace, ledger,
/// diagnostics) reproduces bit-for-bit.
///
/// `sys` must be built by the same factory as the recorded run (same
/// config, firmware, LB — the kernel may differ, which is the point: live
/// shell runs replay through the sequential oracle).
pub fn replay(log: &EventLog, sys: &mut Rosebud) -> Vec<Packet> {
    let mut source = log.replay_port();
    let mut delivered = Vec::new();
    while sys.now() < log.cycles {
        pump(sys, &mut source);
        sys.tick();
        for p in 0..sys.config().num_ports {
            delivered.extend(sys.take_output(p));
        }
        delivered.extend(sys.take_host_packets());
    }
    delivered
}

/// A cloneable egress sink over a shared queue: bind one clone to each of a
/// device's ports and drain the union from outside the simulation — the
/// shape a live I/O shell needs to turn deliveries into socket writes.
///
/// # Examples
///
/// ```
/// use rosebud_core::ports::{EgressPort, SharedEgress};
///
/// let sink = SharedEgress::new();
/// let mut clone = sink.clone();
/// # let pkt = rosebud_net::Packet::new(0, vec![0u8; 64], 0, 0);
/// clone.offer(pkt, 64, 0).unwrap();
/// assert_eq!(sink.drain().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedEgress {
    queue: Arc<Mutex<VecDeque<Packet>>>,
}

impl SharedEgress {
    /// An empty shared sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes every frame delivered since the last drain, in delivery order.
    pub fn drain(&self) -> Vec<Packet> {
        self.queue
            .lock()
            .expect("egress queue poisoned")
            .drain(..)
            .collect()
    }

    /// Frames currently queued.
    pub fn len(&self) -> usize {
        self.queue.lock().expect("egress queue poisoned").len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EgressPort<Packet> for SharedEgress {
    fn can_accept(&self, _len_bytes: u64) -> bool {
        true
    }

    fn offer(&mut self, pkt: Packet, _len_bytes: u64, _now: Cycle) -> Result<(), Packet> {
        self.queue
            .lock()
            .expect("egress queue poisoned")
            .push_back(pkt);
        Ok(())
    }

    fn backlog(&self) -> usize {
        self.len()
    }

    fn name(&self) -> &'static str {
        "shared"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosebud_net::{FixedSizeGen, TrafficGen};

    #[test]
    fn event_log_round_trips_through_text() {
        let mut gen = FixedSizeGen::new(64, 2);
        let mut log = EventLog::new();
        for i in 0..5u64 {
            log.push(i * 3, gen.generate(i, i * 3));
        }
        log.cycles = 100;
        let text = log.to_text();
        let back = EventLog::parse_text(&text).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn event_log_parse_rejects_garbage() {
        assert!(EventLog::parse_text("").is_err());
        assert!(EventLog::parse_text("not-a-header\n").is_err());
        assert!(EventLog::parse_text("rosebud-events v1 cycles=10\n5 0 0\n").is_err());
        assert!(EventLog::parse_text("rosebud-events v1 cycles=10\n5 0 0 0 abc\n").is_err());
        assert!(EventLog::parse_text("rosebud-events v1 cycles=10\n5 0 0 0 zz\n").is_err());
    }

    #[test]
    #[should_panic(expected = "recorded in order")]
    fn event_log_enforces_cycle_order() {
        let mut gen = FixedSizeGen::new(64, 1);
        let mut log = EventLog::new();
        log.push(10, gen.generate(0, 10));
        log.push(9, gen.generate(1, 9));
    }

    #[test]
    fn shared_egress_clones_feed_one_queue() {
        let sink = SharedEgress::new();
        let mut a = sink.clone();
        let mut b = sink.clone();
        let mut gen = FixedSizeGen::new(64, 2);
        a.offer(gen.generate(0, 0), 64, 0).unwrap();
        b.offer(gen.generate(1, 0), 64, 0).unwrap();
        assert_eq!(sink.len(), 2);
        let drained = sink.drain();
        assert_eq!(drained[0].id, 0);
        assert_eq!(drained[1].id, 1);
        assert!(sink.is_empty());
    }
}
