//! The customizable packet load balancer (paper §4.2).
//!
//! The LB labels each arriving packet with a destination RPU and memory
//! slot. Slots are advertised by the RPUs at boot and tracked centrally; the
//! policy deciding *which* RPU gets a packet is user-replaceable — the paper
//! ships round-robin and hash-based policies and reserves a PR block for
//! custom ones. The host configures and inspects the LB through a 30-bit
//! read/write register channel.

use rosebud_accel::ResourceUsage;
use rosebud_net::{flow_hash, Packet};

/// Central accounting of per-RPU packet slots. The LB "refers to packet
/// memory in RPUs by a descriptor (slot number)" and only ever assigns free
/// slots, so "any packet past the LB can be absorbed by RPUs" (§6.2) — the
/// property that keeps added latency marginal under load.
#[derive(Debug, Clone)]
pub struct SlotTracker {
    free: Vec<Vec<u8>>,
    capacity: usize,
}

impl SlotTracker {
    /// Creates a tracker for `num_rpus` RPUs advertising `slots` slots each.
    pub fn new(num_rpus: usize, slots: usize) -> Self {
        assert!(slots <= 256, "slot tags are 8-bit");
        Self {
            free: (0..num_rpus)
                .map(|_| (0..slots as u8).rev().collect())
                .collect(),
            capacity: slots,
        }
    }

    /// Number of RPUs tracked.
    pub fn num_rpus(&self) -> usize {
        self.free.len()
    }

    /// Slots currently free on `rpu`.
    pub fn free_count(&self, rpu: usize) -> usize {
        self.free[rpu].len()
    }

    /// Takes a free slot on `rpu`, if any.
    pub fn alloc(&mut self, rpu: usize) -> Option<u8> {
        self.free[rpu].pop()
    }

    /// Returns `slot` on `rpu` to the free pool.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already free (a double-free means the
    /// interconnect notified the LB twice — a protocol bug worth failing
    /// loudly on).
    pub fn release(&mut self, rpu: usize, slot: u8) {
        assert!(
            !self.free[rpu].contains(&slot),
            "double free of slot {slot} on RPU {rpu}"
        );
        assert!(
            self.free[rpu].len() < self.capacity,
            "releasing more slots than RPU {rpu} advertised"
        );
        self.free[rpu].push(slot);
    }

    /// Marks every slot of `rpu` free — the host-side flush before loading a
    /// new RPU (§4.2).
    pub fn flush(&mut self, rpu: usize) {
        self.free[rpu] = (0..self.capacity as u8).rev().collect();
    }

    /// `true` when every slot of `rpu` is free (drain complete).
    pub fn all_free(&self, rpu: usize) -> bool {
        self.free[rpu].len() == self.capacity
    }
}

/// A load-balancing policy. Implementations are dropped into the LB's
/// partially reconfigurable block; this trait is the Rust rendering of that
/// interface, including the host's 30-bit register channel.
pub trait LoadBalancer: Send {
    /// Policy name for diagnostics and resource tables.
    fn name(&self) -> &str;

    /// Picks a destination RPU for `pkt` among RPUs that are enabled in
    /// `enabled` (bit per RPU) and have a free slot in `tracker`. `None`
    /// stalls the packet at the head of its ingress FIFO.
    fn assign(&mut self, pkt: &Packet, tracker: &SlotTracker, enabled: u64) -> Option<usize>;

    /// Bytes the LB prepends to the packet before delivery (the hash LB
    /// "pads the 4-byte hash result to the beginning of each packet",
    /// §7.1.2).
    fn prepend(&mut self, pkt: &Packet) -> Option<Vec<u8>> {
        let _ = pkt;
        None
    }

    /// Host register read (30-bit address space, §4.2).
    fn host_read(&mut self, addr: u32) -> u32 {
        let _ = addr;
        0
    }

    /// Host register write.
    fn host_write(&mut self, addr: u32, value: u32) {
        let _ = (addr, value);
    }

    /// FPGA resources of this policy implementation.
    fn resources(&self, num_rpus: usize) -> ResourceUsage;
}

/// Round-robin policy — the default used for the framework evaluation (§6).
#[derive(Debug, Clone, Default)]
pub struct RoundRobinLb {
    next: usize,
}

impl RoundRobinLb {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LoadBalancer for RoundRobinLb {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn assign(&mut self, _pkt: &Packet, tracker: &SlotTracker, enabled: u64) -> Option<usize> {
        let n = tracker.num_rpus();
        for step in 0..n {
            let rpu = (self.next + step) % n;
            if enabled & (1 << rpu) != 0 && tracker.free_count(rpu) > 0 {
                self.next = (rpu + 1) % n;
                return Some(rpu);
            }
        }
        None
    }

    fn resources(&self, num_rpus: usize) -> ResourceUsage {
        // Calibrated to Tables 1 and 2 (16 RPUs: 8221 LUTs / 22503 FFs;
        // 8 RPUs: 7580 / 22076) — arbitration logic grows with RPU count.
        let n = num_rpus as u32;
        ResourceUsage {
            luts: 6940 + n * 80,
            regs: 21650 + n * 53,
            bram: 0,
            uram: 0,
            dsp: 0,
        }
    }
}

/// Flow-hash policy with inline hash computation: packets of a flow always
/// reach the same RPU, and the 4-byte hash is prepended so firmware reuses
/// it "without recomputation" (§7.1.2). Used by the software-reordering
/// Pigasus configuration.
#[derive(Debug, Clone, Default)]
pub struct HashLb {
    non_ip_next: usize,
}

impl HashLb {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }

    fn target(&self, hash: u32, n: usize) -> usize {
        if n.is_power_of_two() {
            (hash as usize) & (n - 1) // "3 bits of the same hash" for 8 RPUs
        } else {
            (hash as usize) % n
        }
    }
}

impl LoadBalancer for HashLb {
    fn name(&self) -> &str {
        "hash"
    }

    fn assign(&mut self, pkt: &Packet, tracker: &SlotTracker, enabled: u64) -> Option<usize> {
        let n = tracker.num_rpus();
        match flow_hash(pkt) {
            Some(hash) => {
                let rpu = self.target(hash, n);
                if enabled & (1 << rpu) == 0 {
                    // Flow affinity cannot hold while the home RPU is being
                    // reconfigured; rehash over the enabled set.
                    let enabled_rpus: Vec<usize> =
                        (0..n).filter(|r| enabled & (1 << r) != 0).collect();
                    if enabled_rpus.is_empty() {
                        return None;
                    }
                    let alt = enabled_rpus[(hash as usize) % enabled_rpus.len()];
                    return (tracker.free_count(alt) > 0).then_some(alt);
                }
                // Affinity is strict: a full home RPU stalls the flow.
                (tracker.free_count(rpu) > 0).then_some(rpu)
            }
            None => {
                // Non-IP traffic round-robins.
                for step in 0..n {
                    let rpu = (self.non_ip_next + step) % n;
                    if enabled & (1 << rpu) != 0 && tracker.free_count(rpu) > 0 {
                        self.non_ip_next = (rpu + 1) % n;
                        return Some(rpu);
                    }
                }
                None
            }
        }
    }

    fn prepend(&mut self, pkt: &Packet) -> Option<Vec<u8>> {
        flow_hash(pkt).map(|h| h.to_le_bytes().to_vec())
    }

    fn resources(&self, num_rpus: usize) -> ResourceUsage {
        // Table 3: the hash LB for the 8-RPU Pigasus build uses 10467 LUTs,
        // 24872 FFs and 26 BRAMs (the inline hash unit's tables).
        let rr = RoundRobinLb::new().resources(num_rpus);
        ResourceUsage {
            luts: rr.luts + 2247,
            regs: rr.regs + 2372,
            bram: 26,
            uram: 0,
            dsp: 0,
        }
    }
}

/// "A policy designed specifically for their target middlebox application,
/// for instance one that assigns a new packet to the least-loaded core"
/// (§3.1).
#[derive(Debug, Clone, Default)]
pub struct LeastLoadedLb;

impl LeastLoadedLb {
    /// Creates the policy.
    pub fn new() -> Self {
        Self
    }
}

impl LoadBalancer for LeastLoadedLb {
    fn name(&self) -> &str {
        "least-loaded"
    }

    fn assign(&mut self, _pkt: &Packet, tracker: &SlotTracker, enabled: u64) -> Option<usize> {
        (0..tracker.num_rpus())
            .filter(|&r| enabled & (1 << r) != 0 && tracker.free_count(r) > 0)
            .max_by_key(|&r| tracker.free_count(r))
    }

    fn resources(&self, num_rpus: usize) -> ResourceUsage {
        // Comparator tree over per-RPU occupancy counters.
        let rr = RoundRobinLb::new().resources(num_rpus);
        ResourceUsage {
            luts: rr.luts + 400 + num_rpus as u32 * 24,
            regs: rr.regs + num_rpus as u32 * 16,
            ..rr
        }
    }
}

/// A consistent-hash ring with virtual nodes — the fleet's ECMP front load
/// balancer policy.
///
/// Each member box contributes `vnodes` points on a 64-bit ring; a flow
/// hash is steered to the first live point clockwise. Removing a box
/// re-steers *only* the flows whose successor point belonged to that box
/// (its points are skipped, not recomputed), and restoring it sends exactly
/// those flows home again — the bounded-disturbance property the fleet
/// failover tests assert.
///
/// # Examples
///
/// ```
/// use rosebud_core::ConsistentHashRing;
/// let mut ring = ConsistentHashRing::new(4, 64);
/// let home = ring.node_for(0xABCD_EF01_2345_6789);
/// ring.remove(home);
/// assert_ne!(ring.node_for(0xABCD_EF01_2345_6789), home);
/// ring.restore(home);
/// assert_eq!(ring.node_for(0xABCD_EF01_2345_6789), home);
/// ```
#[derive(Debug, Clone)]
pub struct ConsistentHashRing {
    /// `(point, node)` sorted by point.
    points: Vec<(u64, u16)>,
    live: Vec<bool>,
}

impl ConsistentHashRing {
    /// A ring over `nodes` members with `vnodes` points each, all live.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `vnodes` is zero, or `nodes > u16::MAX`.
    pub fn new(nodes: usize, vnodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(vnodes > 0, "need at least one virtual node");
        assert!(nodes <= usize::from(u16::MAX), "node index must fit u16");
        let mut points: Vec<(u64, u16)> = (0..nodes)
            .flat_map(|n| (0..vnodes).map(move |v| (Self::point(n as u64, v as u64), n as u16)))
            .collect();
        points.sort_unstable();
        Self {
            points,
            live: vec![true; nodes],
        }
    }

    /// splitmix64 over the (node, replica) pair: deterministic, well-mixed
    /// ring points.
    fn point(node: u64, replica: u64) -> u64 {
        let mut z = ((node << 32) | replica).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Takes a node's points out of rotation (drain). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if this would leave no live node — an ECMP group must always
    /// have somewhere to steer.
    pub fn remove(&mut self, node: usize) {
        let was_live = self.live[node];
        self.live[node] = false;
        if self.live.iter().all(|l| !l) {
            self.live[node] = was_live;
            panic!("cannot remove the last live node from the ring");
        }
    }

    /// Returns a node's points to rotation (re-admission). Idempotent.
    pub fn restore(&mut self, node: usize) {
        self.live[node] = true;
    }

    /// Whether a node is currently in rotation.
    pub fn is_live(&self, node: usize) -> bool {
        self.live[node]
    }

    /// Number of live members.
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Total member count (live or not).
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// `true` when the ring has no members (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// The live node owning `hash`: the first live point at or clockwise of
    /// the hash, wrapping.
    pub fn node_for(&self, hash: u64) -> usize {
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let n = self.points.len();
        for i in 0..n {
            let (_, node) = self.points[(start + i) % n];
            if self.live[usize::from(node)] {
                return usize::from(node);
            }
        }
        unreachable!("ring always has a live node");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosebud_net::PacketBuilder;

    fn pkt(src_port: u16) -> Packet {
        PacketBuilder::new().tcp(src_port, 80).pad_to(64).build()
    }

    #[test]
    fn tracker_alloc_release_cycle() {
        let mut t = SlotTracker::new(2, 4);
        let s0 = t.alloc(0).unwrap();
        let s1 = t.alloc(0).unwrap();
        assert_ne!(s0, s1);
        assert_eq!(t.free_count(0), 2);
        t.release(0, s0);
        assert_eq!(t.free_count(0), 3);
        assert!(!t.all_free(0));
        t.release(0, s1);
        assert!(t.all_free(0));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn tracker_double_free_panics() {
        let mut t = SlotTracker::new(1, 2);
        let s = t.alloc(0).unwrap();
        t.release(0, s);
        t.release(0, s);
    }

    #[test]
    fn round_robin_cycles_through_enabled_rpus() {
        let tracker = SlotTracker::new(4, 4);
        let mut lb = RoundRobinLb::new();
        let picks: Vec<usize> = (0..8)
            .map(|i| lb.assign(&pkt(i), &tracker, 0b1111).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_skips_disabled_and_full() {
        let mut tracker = SlotTracker::new(4, 1);
        let mut lb = RoundRobinLb::new();
        // Disable RPU 1; exhaust RPU 2.
        while tracker.alloc(2).is_some() {}
        let picks: Vec<usize> = (0..4)
            .map(|i| lb.assign(&pkt(i), &tracker, 0b1101).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 3, 0, 3]);
    }

    #[test]
    fn round_robin_stalls_when_nothing_available() {
        let tracker = SlotTracker::new(2, 2);
        let mut lb = RoundRobinLb::new();
        assert_eq!(lb.assign(&pkt(1), &tracker, 0), None);
    }

    #[test]
    fn hash_lb_is_flow_sticky() {
        let tracker = SlotTracker::new(8, 4);
        let mut lb = HashLb::new();
        for port in [100u16, 2000, 40000] {
            let first = lb.assign(&pkt(port), &tracker, 0xff).unwrap();
            for _ in 0..5 {
                assert_eq!(lb.assign(&pkt(port), &tracker, 0xff), Some(first));
            }
        }
    }

    #[test]
    fn hash_lb_prepends_flow_hash() {
        let mut lb = HashLb::new();
        let p = pkt(7);
        let pre = lb.prepend(&p).unwrap();
        assert_eq!(pre.len(), 4);
        assert_eq!(
            u32::from_le_bytes(pre.try_into().unwrap()),
            flow_hash(&p).unwrap()
        );
    }

    #[test]
    fn hash_lb_rehashes_around_disabled_home() {
        let tracker = SlotTracker::new(8, 4);
        let mut lb = HashLb::new();
        let p = pkt(123);
        let home = lb.assign(&p, &tracker, 0xff).unwrap();
        let masked = 0xffu64 & !(1 << home);
        let alt = lb.assign(&p, &tracker, masked).unwrap();
        assert_ne!(alt, home);
    }

    #[test]
    fn hash_lb_stalls_on_full_home() {
        let mut tracker = SlotTracker::new(8, 1);
        let mut lb = HashLb::new();
        let p = pkt(55);
        let home = lb.assign(&p, &tracker, 0xff).unwrap();
        while tracker.alloc(home).is_some() {}
        assert_eq!(lb.assign(&p, &tracker, 0xff), None, "affinity must stall");
    }

    #[test]
    fn least_loaded_picks_emptiest() {
        let mut tracker = SlotTracker::new(3, 8);
        for _ in 0..5 {
            tracker.alloc(0);
        }
        for _ in 0..2 {
            tracker.alloc(1);
        }
        let mut lb = LeastLoadedLb::new();
        assert_eq!(lb.assign(&pkt(1), &tracker, 0b111), Some(2));
    }

    #[test]
    fn ring_disturbance_is_bounded_to_the_removed_node() {
        let mut ring = ConsistentHashRing::new(4, 64);
        let hashes: Vec<u64> = (0..20_000u64)
            .map(|i| rosebud_net::extend_hash(i as u32))
            .collect();
        let before: Vec<usize> = hashes.iter().map(|&h| ring.node_for(h)).collect();
        ring.remove(2);
        let mut moved = 0usize;
        for (&h, &was) in hashes.iter().zip(&before) {
            let now = ring.node_for(h);
            if was != 2 {
                assert_eq!(now, was, "flow not owned by the dead node moved");
            } else {
                assert_ne!(now, 2);
                moved += 1;
            }
        }
        // Roughly a quarter of flows lived on the removed node.
        assert!((3_000..7_000).contains(&moved), "moved {moved}");
        // Restoring sends exactly the displaced flows home.
        ring.restore(2);
        for (&h, &was) in hashes.iter().zip(&before) {
            assert_eq!(ring.node_for(h), was);
        }
    }

    #[test]
    fn ring_spreads_load_roughly_evenly() {
        let ring = ConsistentHashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for i in 0..40_000u64 {
            counts[ring.node_for(rosebud_net::extend_hash(i as u32))] += 1;
        }
        for (n, &c) in counts.iter().enumerate() {
            assert!(
                (5_000..=16_000).contains(&c),
                "node {n} owns {c} of 40000 flows"
            );
        }
    }

    #[test]
    #[should_panic(expected = "last live node")]
    fn ring_refuses_to_empty() {
        let mut ring = ConsistentHashRing::new(2, 8);
        ring.remove(0);
        ring.remove(1);
    }

    #[test]
    fn lb_resources_match_tables_1_and_2() {
        let rr = RoundRobinLb::new();
        let r16 = rr.resources(16);
        assert!(
            (r16.luts as i64 - 8221).abs() < 20,
            "16-RPU LUTs {}",
            r16.luts
        );
        assert!((r16.regs as i64 - 22503).abs() < 20);
        let r8 = rr.resources(8);
        assert!((r8.luts as i64 - 7580).abs() < 20, "8-RPU LUTs {}", r8.luts);
        assert!((r8.regs as i64 - 22076).abs() < 20);
        let hash = HashLb::new().resources(8);
        assert!(
            (hash.luts as i64 - 10467).abs() < 700,
            "hash LUTs {}",
            hash.luts
        );
        assert_eq!(hash.bram, 26);
    }
}
