//! The FPGA resource model regenerating the paper's utilization tables.
//!
//! Synthesis cannot run in this reproduction, so per-component resource
//! costs are parametric formulas calibrated against the paper's published
//! Vivado reports (Tables 1–4 for the XCVU9P). The *structure* — what scales
//! with RPU count, what is fixed, how much PR head-room each layout leaves —
//! is the reproducible content; the constants are anchored to the paper.

use rosebud_accel::ResourceUsage;

/// Total resources of the XCVU9P device (the last row of Tables 1 and 2).
pub const VU9P: ResourceUsage = ResourceUsage {
    luts: 1_182_240,
    regs: 2_364_480,
    bram: 2_160,
    uram: 960,
    dsp: 6_840,
};

/// Resource model of the Rosebud framework's static components for a layout
/// with `num_rpus` RPUs.
///
/// # Examples
///
/// ```
/// use rosebud_core::resources::FrameworkResources;
/// let r = FrameworkResources::new(16);
/// // Table 1: switching for 16 RPUs is 86234 LUTs (7.3 % of the VU9P).
/// assert!((r.switching().luts as i64 - 86234).abs() < 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FrameworkResources {
    num_rpus: u32,
}

impl FrameworkResources {
    /// Creates the model for `num_rpus` RPUs.
    pub fn new(num_rpus: usize) -> Self {
        Self {
            num_rpus: num_rpus as u32,
        }
    }

    /// The framework logic inside a single RPU (RISC-V core, memory
    /// subsystem, accelerator manager) — the "Single RPU" rows of
    /// Tables 1–2. Slightly cheaper at higher RPU counts because narrower
    /// per-RPU switch ports need less width conversion.
    pub fn rpu_base(&self) -> ResourceUsage {
        let n = self.num_rpus;
        ResourceUsage {
            luts: 4740u32.saturating_sub(n * 25 / 2),
            regs: 3824u32.saturating_sub(n * 9 / 4),
            bram: 24,
            uram: 32,
            dsp: 0,
        }
    }

    /// The per-RPU framework broken into the sub-components of Tables 3–4.
    /// Returns `(riscv_core, mem_subsystem, accel_manager)`.
    pub fn rpu_base_breakdown(&self) -> (ResourceUsage, ResourceUsage, ResourceUsage) {
        let total = self.rpu_base();
        let riscv = ResourceUsage {
            luts: 2012,
            regs: 1050,
            bram: 0,
            uram: 0,
            dsp: 0,
        };
        let accel_mgr = ResourceUsage {
            luts: 660,
            regs: 2330,
            bram: 0,
            uram: 0,
            dsp: 0,
        };
        let mem = ResourceUsage {
            luts: total.luts - riscv.luts - accel_mgr.luts,
            regs: total.regs.saturating_sub(riscv.regs + accel_mgr.regs),
            bram: 16,
            uram: 32,
            dsp: 0,
        };
        (riscv, mem, accel_mgr)
    }

    /// Total capacity of one RPU's partially reconfigurable block — the
    /// "Single RPU" plus "Remaining (PR)" rows. The floorplan trades RPU
    /// count against per-RPU area: 16 blocks of ~27.8 k LUTs, or 8 of
    /// ~64.2 k (the Pigasus engine needed the 8-RPU layout, §7.1.2).
    pub fn pr_block_capacity(&self) -> ResourceUsage {
        match self.num_rpus {
            16 => ResourceUsage {
                luts: 27_839,
                regs: 55_920,
                bram: 36,
                uram: 32,
                dsp: 168,
            },
            8 => ResourceUsage {
                luts: 64_161,
                regs: 128_880,
                bram: 114,
                uram: 64,
                dsp: 384,
            },
            n => {
                // General layouts divide roughly 40 % of the device among
                // the PR blocks.
                ResourceUsage {
                    luts: (VU9P.luts * 2 / 5) / n,
                    regs: (VU9P.regs * 2 / 5) / n,
                    bram: (VU9P.bram * 2 / 5) / n,
                    uram: (VU9P.uram / 2) / n,
                    dsp: (VU9P.dsp * 2 / 5) / n,
                }
            }
        }
    }

    /// Total capacity of the LB's PR block ("LB" + "Remaining" rows).
    pub fn lb_block_capacity(&self) -> ResourceUsage {
        match self.num_rpus {
            16 => ResourceUsage {
                luts: 78_384,
                regs: 158_400,
                bram: 144,
                uram: 48,
                dsp: 576,
            },
            _ => ResourceUsage {
                luts: 114_016,
                regs: 230_400,
                bram: 180,
                uram: 96,
                dsp: 648,
            },
        }
    }

    /// One RPU interconnect module.
    pub fn interconnect(&self) -> ResourceUsage {
        let n = self.num_rpus;
        ResourceUsage {
            luts: 3135u32.saturating_sub(n * 21),
            regs: 3147u32.saturating_sub(n * 12),
            bram: 0,
            uram: 0,
            dsp: 0,
        }
    }

    /// The 100 Gbps CMAC glue (both ports).
    pub fn cmac(&self) -> ResourceUsage {
        ResourceUsage {
            luts: 6_397,
            regs: 14_850,
            bram: 0,
            uram: 18,
            dsp: 0,
        }
    }

    /// PCIe + Corundum host interface.
    pub fn pcie(&self) -> ResourceUsage {
        ResourceUsage {
            luts: 41_510,
            regs: 63_738,
            bram: 110,
            uram: 32,
            dsp: 0,
        }
    }

    /// The two-stage packet distribution switches — the component that
    /// scales fastest with RPU count (compare Tables 1 and 2).
    pub fn switching(&self) -> ResourceUsage {
        let n = self.num_rpus;
        ResourceUsage {
            luts: 10_570 + n * 4_729,
            regs: 14_126 + n * 6_846,
            bram: 24 + n * 3 / 2,
            uram: 4 * n,
            dsp: 0,
        }
    }

    /// The complete static design given the LB policy's cost: the bottom
    /// rows of Tables 1–2.
    pub fn complete(&self, lb: ResourceUsage) -> ResourceUsage {
        self.rpu_base()
            .plus(self.interconnect())
            .times(self.num_rpus)
            .plus(lb)
            .plus(self.cmac())
            .plus(self.pcie())
            .plus(self.switching())
    }
}

/// Percentage of the VU9P a usage consumes, per resource class, formatted
/// like the paper's tables.
pub fn percent_of_device(usage: ResourceUsage) -> [f64; 5] {
    [
        usage.luts as f64 * 100.0 / VU9P.luts as f64,
        usage.regs as f64 * 100.0 / VU9P.regs as f64,
        usage.bram as f64 * 100.0 / VU9P.bram as f64,
        usage.uram as f64 * 100.0 / VU9P.uram as f64,
        usage.dsp as f64 * 100.0 / VU9P.dsp as f64,
    ]
}

/// Renders a table row the way the paper prints them:
/// `name | LUTs (x%) | Registers (x%) | BRAM (x%) | URAM (x%) | DSP (x%)`.
pub fn format_row(name: &str, usage: ResourceUsage) -> String {
    let pct = percent_of_device(usage);
    format!(
        "{name:<22} | {:>7} ({:>4.1}%) | {:>7} ({:>4.1}%) | {:>4} ({:>4.1}%) | {:>4} ({:>4.1}%) | {:>4} ({:>4.1}%)",
        usage.luts, pct[0], usage.regs, pct[1], usage.bram, pct[2], usage.uram, pct[3],
        usage.dsp, pct[4]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(actual: u32, expected: u32, tol: u32) -> bool {
        actual.abs_diff(expected) <= tol
    }

    #[test]
    fn table1_16_rpus() {
        let r = FrameworkResources::new(16);
        let rpu = r.rpu_base();
        assert!(close(rpu.luts, 4541, 60), "RPU LUTs {}", rpu.luts);
        assert!(close(rpu.regs, 3788, 20), "RPU regs {}", rpu.regs);
        let ic = r.interconnect();
        assert!(close(ic.luts, 2793, 20), "interconnect LUTs {}", ic.luts);
        let sw = r.switching();
        assert!(close(sw.luts, 86234, 50), "switching LUTs {}", sw.luts);
        assert!(close(sw.regs, 123654, 100));
        assert_eq!(sw.bram, 48);
        assert_eq!(sw.uram, 64);
        let lb = crate::lb::RoundRobinLb::new();
        use crate::lb::LoadBalancer;
        let complete = r.complete(lb.resources(16));
        assert!(
            close(complete.luts, 259713, 700),
            "complete LUTs {}",
            complete.luts
        );
        assert!(
            close(complete.regs, 332636, 800),
            "complete regs {}",
            complete.regs
        );
        assert!(
            close(complete.bram, 542, 8),
            "complete BRAM {}",
            complete.bram
        );
        assert!(
            close(complete.uram, 626, 8),
            "complete URAM {}",
            complete.uram
        );
    }

    #[test]
    fn table2_8_rpus() {
        let r = FrameworkResources::new(8);
        let rpu = r.rpu_base();
        assert!(close(rpu.luts, 4640, 20), "RPU LUTs {}", rpu.luts);
        let sw = r.switching();
        assert!(close(sw.luts, 48402, 50), "switching LUTs {}", sw.luts);
        assert_eq!(sw.uram, 32);
        use crate::lb::LoadBalancer;
        let complete = r.complete(crate::lb::RoundRobinLb::new().resources(8));
        assert!(
            close(complete.luts, 164699, 700),
            "complete LUTs {}",
            complete.luts
        );
        assert!(close(complete.bram, 338, 8));
        assert!(close(complete.uram, 338, 8));
    }

    #[test]
    fn pr_block_fits_pigasus_in_8_rpu_layout_only() {
        // §7.1.2: the Pigasus engine (Table 3 total: 42364 LUTs) does not
        // fit a 16-RPU block but fits an 8-RPU block.
        let pigasus_total_luts = 42_364u32;
        assert!(FrameworkResources::new(16).pr_block_capacity().luts < pigasus_total_luts);
        assert!(FrameworkResources::new(8).pr_block_capacity().luts > pigasus_total_luts);
    }

    #[test]
    fn utilization_under_device_limits() {
        use crate::lb::LoadBalancer;
        for n in [8usize, 16] {
            let r = FrameworkResources::new(n);
            let c = r.complete(crate::lb::RoundRobinLb::new().resources(n));
            let pct = percent_of_device(c);
            for (i, p) in pct.iter().enumerate() {
                assert!(*p < 100.0, "resource {i} over budget for {n} RPUs: {p}%");
            }
        }
    }

    #[test]
    fn format_row_is_stable() {
        let row = format_row("Switching", FrameworkResources::new(16).switching());
        assert!(row.contains("Switching"));
        assert!(row.contains('%'));
    }
}
