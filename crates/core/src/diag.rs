//! Host-side bottleneck diagnosis from the framework's counters (§4.3):
//! "They can shed light to how packets are going through the system, for
//! instance how the LB is distributing packets. Therefore, they can reveal
//! to the developer where the bottlenecks are located."

use rosebud_kernel::Counters;

use crate::fault::Ledger;
use crate::rpu::PerfCounters;
use crate::supervisor::RecoveryEvent;
use crate::system::Rosebud;
use crate::verify::LintRecord;

/// How an RPU is misbehaving (§3.4 distinguishes cores that *halted* — trap,
/// `ebreak` — from cores that *hung* — wedged firmware the watchdog timer
/// exists to catch — and both from firmware that runs but sheds packets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpuFaultKind {
    /// The core trapped or hit `ebreak`: the halt flag is host-visible.
    Halted,
    /// The core stopped making forward progress with work outstanding —
    /// inferred from a fired watchdog or a wedged region.
    Hung,
    /// The core is alive but dropping an outsized share of its traffic.
    Dropping,
}

impl std::fmt::Display for RpuFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RpuFaultKind::Halted => "halted",
            RpuFaultKind::Hung => "hung",
            RpuFaultKind::Dropping => "dropping",
        })
    }
}

/// Where the diagnosis believes the system is limited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Traffic is being absorbed without visible backpressure.
    None,
    /// MAC receive FIFOs are filling: the system behind the LB cannot keep
    /// up with the offered load.
    IngressFifo {
        /// The most congested port.
        port: usize,
    },
    /// The LB frequently has a head-of-line packet it cannot place: RPU
    /// slots are the constraint (firmware too slow, or too few RPUs).
    SlotStarvation,
    /// One RPU carries a disproportionate share — the LB policy is
    /// imbalanced for this workload (the hash-LB effect of §7.1.3).
    Imbalance {
        /// The overloaded RPU.
        rpu: usize,
    },
    /// Firmware on some RPU halted, hung, or is dropping traffic.
    RpuFault {
        /// The misbehaving RPU.
        rpu: usize,
        /// How it is misbehaving.
        kind: RpuFaultKind,
    },
}

/// A point-in-time diagnostic snapshot.
#[derive(Debug, Clone)]
pub struct Diagnostics {
    /// Per-port interface counters.
    pub ports: Vec<Counters>,
    /// Per-port MAC receive-FIFO occupancy in bytes.
    pub rx_fifo_bytes: Vec<u64>,
    /// Per-RPU interface counters.
    pub rpus: Vec<Counters>,
    /// Per-RPU free slots as the LB sees them.
    pub free_slots: Vec<usize>,
    /// Per-RPU hardware performance counters (§4.3): instructions retired,
    /// stall cycles, memory-port wait cycles.
    pub perf: Vec<PerfCounters>,
    /// Cycles the LB spent unable to place a head-of-line packet.
    pub lb_stall_cycles: u64,
    /// Packets the LB has placed.
    pub lb_assigned: u64,
    /// The packet-conservation ledger.
    pub ledger: Ledger,
    /// Completed fault recoveries, oldest first.
    pub recoveries: Vec<RecoveryEvent>,
    /// Firmware lint reports recorded by the load path, oldest first
    /// (empty under [`crate::LoadPolicy::Off`]).
    pub lint: Vec<LintRecord>,
    /// The verdict.
    pub bottleneck: Bottleneck,
}

impl Diagnostics {
    /// Renders the report the way the paper's host utility prints its
    /// status table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "LB: {} assigned, {} stall cycles",
            self.lb_assigned, self.lb_stall_cycles
        );
        for (p, (c, fifo)) in self.ports.iter().zip(&self.rx_fifo_bytes).enumerate() {
            let _ = writeln!(
                out,
                "port {p}: rx {} frames / tx {} frames / rx-fifo {} B",
                c.rx_frames, c.tx_frames, fifo
            );
        }
        for (r, (c, free)) in self.rpus.iter().zip(&self.free_slots).enumerate() {
            let _ = writeln!(
                out,
                "RPU {r}: rx {} tx {} drops {} / {} free slots",
                c.rx_frames, c.tx_frames, c.drops, free
            );
        }
        for (r, p) in self.perf.iter().enumerate() {
            let _ = writeln!(
                out,
                "RPU {r} perf: {} retired / {} stall cycles / {} mem-wait / {} backpressure",
                p.instret, p.stall_cycles, p.mem_wait_cycles, p.backpressure_stalls
            );
        }
        for ev in &self.recoveries {
            let _ = writeln!(
                out,
                "recovery: RPU {} {} — detected @{} cycle(s){}, down {} cycles, \
                 {} purged{}{}",
                ev.rpu,
                ev.kind,
                ev.detected_at,
                ev.detection_latency
                    .map(|l| format!(" ({l} after fault)"))
                    .unwrap_or_default(),
                ev.downtime,
                ev.packets_purged,
                if ev.forced { ", forced eviction" } else { "" },
                if ev.retries > 0 {
                    format!(", {} host retries", ev.retries)
                } else {
                    String::new()
                },
            );
        }
        for rec in &self.lint {
            // Break the errors down by check id so a denied reload names the
            // failing analysis (e.g. `[protocol 1, taint 2]`) at a glance.
            let mut by_check = std::collections::BTreeMap::<String, usize>::new();
            for d in &rec.report.diagnostics {
                if d.severity == rosebud_riscv::Severity::Error {
                    *by_check.entry(d.check.to_string()).or_default() += 1;
                }
            }
            let breakdown = if by_check.is_empty() {
                String::new()
            } else {
                let parts: Vec<String> = by_check
                    .iter()
                    .map(|(check, n)| format!("{check} {n}"))
                    .collect();
                format!(" [{}]", parts.join(", "))
            };
            let _ = writeln!(
                out,
                "lint: RPU {} @{}: {} error(s){breakdown}, {} warning(s){}",
                rec.rpu,
                rec.cycle,
                rec.report.error_count(),
                rec.report.warning_count(),
                if rec.denied { " — load DENIED" } else { "" },
            );
        }
        let _ = writeln!(
            out,
            "ledger: {} in / {} originated / {} out / {} dropped / {} \
             quarantined / {} purged",
            self.ledger.injected,
            self.ledger.originated,
            self.ledger.delivered,
            self.ledger.dropped,
            self.ledger.corrupted,
            self.ledger.purged,
        );
        let _ = writeln!(out, "bottleneck: {:?}", self.bottleneck);
        out
    }
}

/// Per-box health summary inside a [`FleetDiagnostics`] snapshot.
#[derive(Debug, Clone)]
pub struct BoxHealth {
    /// The fleet device index.
    pub device: usize,
    /// Whether the box's ring points are in rotation.
    pub in_rotation: bool,
    /// Whether the shell is frozen by an injected box crash.
    pub crashed: bool,
    /// Frames the box delivered (ports + host), lifetime including reloads.
    pub delivered: u64,
    /// Frames the box dropped with an accounted reason, lifetime.
    pub dropped: u64,
    /// Frames in flight inside the box right now.
    pub in_flight: u64,
    /// Frames queued on the front link toward the box (serializer + wire).
    pub front_queue: u64,
    /// Completed whole-box reloads.
    pub reloads: u64,
}

/// A point-in-time diagnostic snapshot of a whole fleet — the per-box
/// rollup of what [`Diagnostics`] reports for one box, plus the fleet-wide
/// conservation ledger and flow-disturbance accounting.
#[derive(Debug, Clone)]
pub struct FleetDiagnostics {
    /// Per-box health, indexed by device.
    pub boxes: Vec<BoxHealth>,
    /// The fleet-wide conservation ledger (see [`crate::Fleet::ledger`]).
    pub ledger: Ledger,
    /// Frames in flight fleet-wide (front links plus in-box).
    pub in_flight: u64,
    /// Distinct flows the front LB has steered.
    pub flows_seen: u64,
    /// Flows whose steering changed box at least once.
    pub flows_resteered: u64,
    /// Completed box failovers.
    pub failovers: usize,
}

impl FleetDiagnostics {
    /// Renders the fleet status table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for b in &self.boxes {
            let _ = writeln!(
                out,
                "box {}: {}{} / {} delivered / {} dropped / {} in flight / \
                 {} queued at front / {} reload(s)",
                b.device,
                if b.in_rotation {
                    "in rotation"
                } else {
                    "drained"
                },
                if b.crashed { " (crashed)" } else { "" },
                b.delivered,
                b.dropped,
                b.in_flight,
                b.front_queue,
                b.reloads,
            );
        }
        let _ = writeln!(
            out,
            "fleet ledger: {} in / {} originated / {} out / {} dropped / {} \
             quarantined / {} purged / {} in flight",
            self.ledger.injected,
            self.ledger.originated,
            self.ledger.delivered,
            self.ledger.dropped,
            self.ledger.corrupted,
            self.ledger.purged,
            self.in_flight,
        );
        let _ = writeln!(
            out,
            "flows: {} seen, {} re-steered; {} failover(s) completed",
            self.flows_seen, self.flows_resteered, self.failovers,
        );
        out
    }
}

impl Rosebud {
    /// Takes a diagnostic snapshot and classifies the dominant bottleneck.
    pub fn diagnostics(&self) -> Diagnostics {
        let ports: Vec<Counters> = (0..self.cfg.num_ports)
            .map(|p| self.port_counters(p))
            .collect();
        let rx_fifo_bytes: Vec<u64> = (0..self.cfg.num_ports)
            .map(|p| self.rx_fifo_bytes(p))
            .collect();
        let rpus: Vec<Counters> = (0..self.cfg.num_rpus)
            .map(|r| self.rpu_counters(r))
            .collect();
        let free_slots: Vec<usize> = (0..self.cfg.num_rpus)
            .map(|r| self.tracker().free_count(r))
            .collect();
        let perf: Vec<PerfCounters> = (0..self.cfg.num_rpus)
            .map(|r| self.rpus()[r].perf())
            .collect();

        let bottleneck = self.classify(&ports, &rx_fifo_bytes, &rpus, &free_slots);
        Diagnostics {
            ports,
            rx_fifo_bytes,
            rpus,
            free_slots,
            perf,
            lb_stall_cycles: self.lb_stall_cycles(),
            lb_assigned: self.lb_assigned(),
            ledger: self.ledger(),
            recoveries: self.recovery_log().to_vec(),
            lint: self.lint_log().to_vec(),
            bottleneck,
        }
    }

    fn classify(
        &self,
        _ports: &[Counters],
        rx_fifo_bytes: &[u64],
        rpus: &[Counters],
        free_slots: &[usize],
    ) -> Bottleneck {
        // A halted, hung, or drop-heavy RPU dominates any throughput
        // symptom. Halted beats hung beats dropping: a trap is definitive,
        // a fired watchdog with work outstanding is strong, heavy drops are
        // circumstantial.
        for r in 0..rpus.len() {
            if self.rpus()[r].is_halted() {
                return Bottleneck::RpuFault {
                    rpu: r,
                    kind: RpuFaultKind::Halted,
                };
            }
        }
        for (r, &free) in free_slots.iter().enumerate() {
            let wedged = self.rpus()[r].watchdog_fires() > 0
                || (self.rpus()[r].is_hung() && free < self.cfg.slots_per_rpu);
            if wedged {
                return Bottleneck::RpuFault {
                    rpu: r,
                    kind: RpuFaultKind::Hung,
                };
            }
        }
        for (r, c) in rpus.iter().enumerate() {
            if c.drops > c.rx_frames / 10 + 8 {
                return Bottleneck::RpuFault {
                    rpu: r,
                    kind: RpuFaultKind::Dropping,
                };
            }
        }
        // Full ingress FIFO: something downstream cannot keep up.
        if let Some((port, &bytes)) = rx_fifo_bytes.iter().enumerate().max_by_key(|(_, &b)| b) {
            if bytes * 2 >= self.cfg.mac_rx_fifo_bytes {
                // Distinguish imbalance from global starvation by slot
                // distribution: starvation empties every RPU's free pool;
                // imbalance empties a few while others stay fresh.
                let starved = free_slots.iter().filter(|&&f| f == 0).count();
                let roomy = free_slots
                    .iter()
                    .filter(|&&f| f > self.cfg.slots_per_rpu / 2)
                    .count();
                if starved > 0 && roomy > 0 {
                    let rpu = free_slots
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &f)| f)
                        .map(|(r, _)| r)
                        .unwrap_or(0);
                    return Bottleneck::Imbalance { rpu };
                }
                if self.lb_stall_cycles() > 0 && starved > 0 {
                    return Bottleneck::SlotStarvation;
                }
                return Bottleneck::IngressFifo { port };
            }
        }
        Bottleneck::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lb::HashLb;
    use crate::system::RpuProgram;
    use crate::{Desc, Firmware, Harness, RosebudConfig, RpuIo};
    use rosebud_net::FixedSizeGen;

    struct PacedForwarder {
        cycles: u64,
    }
    impl Firmware for PacedForwarder {
        fn tick(&mut self, io: &mut RpuIo<'_>) {
            if let Some(desc) = io.rx_pop() {
                io.charge(self.cycles);
                io.send(Desc {
                    port: desc.port ^ 1,
                    ..desc
                });
            }
        }
    }

    fn system(rpus: usize, fw_cycles: u64, lb: Box<dyn crate::LoadBalancer>) -> Rosebud {
        Rosebud::builder(RosebudConfig::with_rpus(rpus))
            .load_balancer(lb)
            .firmware(move |_| RpuProgram::Native(Box::new(PacedForwarder { cycles: fw_cycles })))
            .build()
            .unwrap()
    }

    #[test]
    fn healthy_system_reports_no_bottleneck() {
        let sys = system(8, 15, Box::new(crate::RoundRobinLb::new()));
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(512, 2)), 20.0);
        h.run(30_000);
        let diag = h.sys.diagnostics();
        assert_eq!(diag.bottleneck, Bottleneck::None, "{}", diag.render());
    }

    #[test]
    fn slow_firmware_shows_slot_starvation_or_full_fifo() {
        // 400 cycles/packet on 4 RPUs ≈ 2.5 Mpps against a 60 Gbps offered
        // load of 256 B frames (≈29 Mpps): the FIFOs must fill.
        let sys = system(4, 400, Box::new(crate::RoundRobinLb::new()));
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 60.0);
        h.run(120_000);
        let diag = h.sys.diagnostics();
        assert!(
            matches!(
                diag.bottleneck,
                Bottleneck::SlotStarvation | Bottleneck::IngressFifo { .. }
            ),
            "{}",
            diag.render()
        );
    }

    #[test]
    fn halted_rpu_reported_as_fault() {
        let sys = system(4, 10, Box::new(crate::RoundRobinLb::new()));
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 10.0);
        h.run(5_000);
        // Simulate a crash: halt RPU 2 via a firmware fault stand-in — load
        // an image that faults immediately.
        let bad = rosebud_riscv::assemble(".word 0xffffffff").unwrap();
        h.sys.load_rpu_firmware(2, &bad).unwrap();
        h.run(5_000);
        let diag = h.sys.diagnostics();
        assert_eq!(
            diag.bottleneck,
            Bottleneck::RpuFault {
                rpu: 2,
                kind: RpuFaultKind::Halted
            },
            "{}",
            diag.render()
        );
    }

    #[test]
    fn hung_rpu_reported_as_hung_not_halted() {
        let sys = system(4, 10, Box::new(crate::RoundRobinLb::new()));
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 10.0);
        h.run(5_000);
        h.sys.install_fault_plan(
            crate::FaultPlan::new(1).at(h.sys.now() + 1, crate::FaultKind::FirmwareHang { rpu: 1 }),
        );
        h.run(5_000);
        let diag = h.sys.diagnostics();
        assert_eq!(
            diag.bottleneck,
            Bottleneck::RpuFault {
                rpu: 1,
                kind: RpuFaultKind::Hung
            },
            "{}",
            diag.render()
        );
    }

    #[test]
    fn dropping_rpu_reported_as_dropping() {
        struct Shedder;
        impl Firmware for Shedder {
            fn tick(&mut self, io: &mut RpuIo<'_>) {
                if let Some(desc) = io.rx_pop() {
                    io.send(Desc { len: 0, ..desc }); // zero-length = drop
                }
            }
        }
        let sys = Rosebud::builder(RosebudConfig::with_rpus(4))
            .load_balancer(Box::new(crate::RoundRobinLb::new()))
            .firmware(|r| {
                if r == 3 {
                    RpuProgram::Native(Box::new(Shedder))
                } else {
                    RpuProgram::Native(Box::new(PacedForwarder { cycles: 10 }))
                }
            })
            .build()
            .unwrap();
        let mut h = Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 10.0);
        h.run(20_000);
        let diag = h.sys.diagnostics();
        assert_eq!(
            diag.bottleneck,
            Bottleneck::RpuFault {
                rpu: 3,
                kind: RpuFaultKind::Dropping
            },
            "{}",
            diag.render()
        );
    }

    #[test]
    fn single_flow_on_hash_lb_reports_imbalance() {
        // One elephant flow pins everything to one RPU whose firmware is
        // slower than the offered rate: its slots starve while others idle.
        let sys = system(8, 200, Box::new(HashLb::new()));
        let gen = FixedSizeGen::new(512, 2).with_flows(1);
        let mut h = Harness::new(sys, Box::new(gen), 60.0);
        h.run(150_000);
        let diag = h.sys.diagnostics();
        assert!(
            matches!(diag.bottleneck, Bottleneck::Imbalance { .. }),
            "{}",
            diag.render()
        );
    }

    #[test]
    fn render_is_humane() {
        let sys = system(2, 10, Box::new(crate::RoundRobinLb::new()));
        let text = sys.diagnostics().render();
        assert!(text.contains("RPU 0"));
        assert!(text.contains("bottleneck"));
    }
}
