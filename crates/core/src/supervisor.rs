//! The self-healing host supervisor (§3.4, Appendix A.8).
//!
//! The paper's operational argument is that a Rosebud deployment survives
//! firmware failure without operator intervention: the host "can see if any
//! of the cores are hung" from the counter block, evicts the offender, and
//! partial reconfiguration "loads a new bit file" while the load balancer
//! carries traffic on the remaining regions. [`Supervisor`] is that agent.
//!
//! It polls [`crate::Rosebud::diagnostics`]-grade state over the host
//! interface and walks a recovery ladder per RPU:
//!
//! 1. **poke** — a poke interrupt plus immediate LB disable; a transiently
//!    stuck core gets one poll interval to prove it is alive.
//! 2. **evict + bounded drain** — graceful reconfiguration; a region that
//!    does not drain within the timeout will never drain.
//! 3. **forced eviction + PR reload** — destroy the wedged region's
//!    in-flight work (accounted as purged) and write the bitstream.
//! 4. **firmware reboot** — the factory program boots into the fresh
//!    region.
//! 5. **LB re-enable** — only after the supervisor has *verified* the
//!    reboot: the region reports `Running`, is not halted, and has retired
//!    cycles. A supervisor must never hand traffic to a region it has not
//!    confirmed alive.
//!
//! Host-link outages (transient PCIe/DMA failure) make every rung retry
//! with exponential backoff rather than act on stale state.
//!
//! Detection is deliberately limited to what a real host can see: the halt
//! flag, the watchdog-expiry counter, free-slot levels, and per-RPU
//! counters. The injected-fault oracle ([`crate::Rpu::is_hung`]) is never
//! consulted.

use rosebud_kernel::Cycle;

use crate::diag::RpuFaultKind;
use crate::rpu::RpuState;
use crate::system::Rosebud;
use crate::trace::SupervisorStep;

/// Tuning knobs for the supervisor's detection and recovery ladder.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Cycles between polls of the host-visible state.
    pub poll_interval: Cycle,
    /// Consecutive polls with zero forward progress and work outstanding
    /// before an RPU is declared hung (watchdog expiry declares it
    /// immediately).
    pub stall_polls: u32,
    /// Grace period after a poke before the ladder escalates to eviction; a
    /// transiently stuck core that shows life inside the grace is a false
    /// alarm. Defaults to one poll interval.
    pub poke_grace: Cycle,
    /// How long a graceful drain may take before forced eviction.
    pub drain_timeout: Cycle,
    /// Drop-rate trigger: an RPU whose drops exceed this share of its
    /// received frames (with a small absolute floor) is recycled.
    pub drop_fraction: f64,
    /// Base backoff after a failed host-link access; doubles per retry.
    pub backoff: Cycle,
    /// Ceiling on the exponential host-link backoff.
    pub backoff_cap: Cycle,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            poll_interval: 512,
            stall_polls: 3,
            poke_grace: 512,
            drain_timeout: 20_000,
            drop_fraction: 0.5,
            backoff: 512,
            backoff_cap: 32_768,
        }
    }
}

/// One completed recovery, as recorded in the host log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryEvent {
    /// The recovered RPU.
    pub rpu: usize,
    /// What the detector concluded.
    pub kind: RpuFaultKind,
    /// Cycle at which the supervisor detected the fault.
    pub detected_at: Cycle,
    /// Cycle of the injected fault, when injection bookkeeping knows it.
    pub fault_at: Option<Cycle>,
    /// `detected_at - fault_at`, when known.
    pub detection_latency: Option<Cycle>,
    /// Cycle at which traffic was re-enabled to the region.
    pub reenabled_at: Cycle,
    /// `reenabled_at - detected_at`: how long the region was out of rotation.
    pub downtime: Cycle,
    /// Slot-bound packets destroyed by forced eviction (0 for graceful).
    pub packets_purged: u64,
    /// Whether the graceful drain timed out and eviction was forced.
    pub forced: bool,
    /// Host-link retries spent during this recovery.
    pub retries: u32,
}

/// Where one RPU sits on the recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rung {
    /// No fault suspected.
    Healthy,
    /// Poked and disabled; escalates to eviction at `until` unless the
    /// region shows signs of life first.
    Poked {
        /// Cycle at which the grace period expires.
        until: Cycle,
    },
    /// Graceful eviction in progress; escalates at `deadline`.
    Draining {
        /// Cycle at which the drain is declared stuck.
        deadline: Cycle,
    },
    /// PR bitstream writing / firmware booting.
    Reloading,
    /// Booted; verifying forward progress before re-enable.
    Rebooting {
        /// `sw_cycles` reading right after boot.
        sw0: u64,
    },
}

/// Per-RPU detector baselines and ladder state.
#[derive(Debug, Clone, Copy)]
struct Watch {
    rung: Rung,
    last_sw_cycles: u64,
    last_rx_frames: u64,
    last_drops: u64,
    last_watchdog_fires: u64,
    stalled_polls: u32,
    // Bookkeeping for the in-progress recovery.
    kind: RpuFaultKind,
    detected_at: Cycle,
    fault_at: Option<Cycle>,
    purged: u64,
    forced: bool,
    retries: u32,
}

impl Watch {
    fn new() -> Self {
        Self {
            rung: Rung::Healthy,
            last_sw_cycles: 0,
            last_rx_frames: 0,
            last_drops: 0,
            last_watchdog_fires: 0,
            stalled_polls: 0,
            kind: RpuFaultKind::Hung,
            detected_at: 0,
            fault_at: None,
            purged: 0,
            forced: false,
            retries: 0,
        }
    }
}

/// The polling host agent. Drive it with [`Supervisor::poll`] every cycle
/// (it rate-limits itself to its configured interval).
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    watch: Vec<Watch>,
    next_poll: Cycle,
    link_retries: u64,
}

impl Supervisor {
    /// A supervisor for `sys`, with default tuning.
    pub fn new(sys: &Rosebud) -> Self {
        Self::with_config(sys, SupervisorConfig::default())
    }

    /// A supervisor with explicit tuning.
    pub fn with_config(sys: &Rosebud, cfg: SupervisorConfig) -> Self {
        Self {
            cfg,
            watch: vec![Watch::new(); sys.rpus().len()],
            next_poll: 0,
            link_retries: 0,
        }
    }

    /// Total host-link accesses that had to be retried because PCIe was
    /// down.
    pub fn link_retries(&self) -> u64 {
        self.link_retries
    }

    /// `true` while any RPU is mid-recovery.
    pub fn recovering(&self) -> bool {
        self.watch.iter().any(|w| w.rung != Rung::Healthy)
    }

    /// One supervisor step. Cheap when it is not yet time to poll.
    pub fn poll(&mut self, sys: &mut Rosebud) {
        let now = sys.now();
        if now < self.next_poll {
            return;
        }
        if !sys.host_link_up() {
            // Transient PCIe outage: no register op can be trusted. Retry
            // with exponential backoff instead of acting on stale state.
            self.link_retries += 1;
            let mut backoff = self.cfg.backoff;
            for w in &mut self.watch {
                if w.rung != Rung::Healthy {
                    w.retries += 1;
                }
            }
            let attempts = self.watch.iter().map(|w| w.retries).max().unwrap_or(0);
            backoff = backoff
                .checked_shl(attempts)
                .unwrap_or(Cycle::MAX)
                .min(self.cfg.backoff_cap);
            self.next_poll = now + backoff;
            return;
        }
        self.next_poll = now + self.cfg.poll_interval;
        for r in 0..self.watch.len() {
            self.poll_rpu(sys, r, now);
        }
    }

    fn poll_rpu(&mut self, sys: &mut Rosebud, r: usize, now: Cycle) {
        match self.watch[r].rung {
            Rung::Healthy => self.detect(sys, r, now),
            Rung::Poked { until } => {
                // Did the poke shake it loose? Progress plus a live state
                // means a false alarm (or a transient): put it back.
                let rpu = &sys.rpus()[r];
                let alive = rpu.state() == RpuState::Running
                    && !rpu.is_halted()
                    && rpu.sw_cycles() > self.watch[r].last_sw_cycles
                    && rpu.watchdog_fires() == self.watch[r].last_watchdog_fires;
                if alive && self.watch[r].kind != RpuFaultKind::Dropping {
                    sys.trace_supervisor(r, SupervisorStep::FalseAlarm);
                    sys.enable_rpu(r);
                    self.finish(sys, r, now, /* rebooted */ false);
                } else if now >= until {
                    // Rung 2: the grace expired — graceful eviction with a
                    // bounded drain.
                    sys.trace_supervisor(r, SupervisorStep::DrainStarted);
                    sys.reconfigure_rpu_gated(r);
                    self.watch[r].rung = Rung::Draining {
                        deadline: now + self.cfg.drain_timeout,
                    };
                }
            }
            Rung::Draining { deadline } => {
                if matches!(sys.rpus()[r].state(), RpuState::Reconfiguring { .. }) {
                    // Drain completed; the PR write is underway.
                    sys.trace_supervisor(r, SupervisorStep::Reloading);
                    self.watch[r].rung = Rung::Reloading;
                } else if now >= deadline {
                    // Rung 3: the region will never drain — destroy its
                    // in-flight work and force the reload.
                    self.watch[r].purged = sys.force_reconfigure_rpu(r);
                    self.watch[r].forced = true;
                    self.watch[r].rung = Rung::Reloading;
                    sys.trace_supervisor(
                        r,
                        SupervisorStep::ForcedEvict {
                            purged: self.watch[r].purged,
                        },
                    );
                    sys.trace_supervisor(r, SupervisorStep::Reloading);
                }
            }
            Rung::Reloading => {
                if !sys.reconfigure_pending(r) {
                    // Rung 4 happened inside `finish_reconfigure`: the
                    // factory firmware booted. Verify before re-enabling.
                    sys.trace_supervisor(r, SupervisorStep::Verifying);
                    self.watch[r].rung = Rung::Rebooting {
                        sw0: sys.rpus()[r].sw_cycles(),
                    };
                }
            }
            Rung::Rebooting { sw0 } => {
                let rpu = &sys.rpus()[r];
                let verified =
                    rpu.state() == RpuState::Running && !rpu.is_halted() && rpu.sw_cycles() > sw0;
                if verified {
                    // Rung 5: the region demonstrably rebooted — only now
                    // does it get traffic again.
                    sys.trace_supervisor(r, SupervisorStep::Reenabled);
                    sys.enable_rpu(r);
                    self.finish(sys, r, now, /* rebooted */ true);
                } else if rpu.is_halted() {
                    // The fresh firmware died on boot: reload again.
                    let purged = sys.force_reconfigure_rpu(r);
                    self.watch[r].purged += purged;
                    self.watch[r].forced = true;
                    self.watch[r].rung = Rung::Reloading;
                    sys.trace_supervisor(r, SupervisorStep::ForcedEvict { purged });
                    sys.trace_supervisor(r, SupervisorStep::Reloading);
                }
            }
        }
    }

    /// Fault detection from host-visible signals only.
    fn detect(&mut self, sys: &mut Rosebud, r: usize, now: Cycle) {
        let rpu = &sys.rpus()[r];
        let counters = rpu.inner().counters();
        let sw = rpu.sw_cycles();
        let wd = rpu.watchdog_fires();
        let busy_slots = sys.tracker().free_count(r) < sys.config().slots_per_rpu;

        let halted = rpu.is_halted() || rpu.state() == RpuState::Stopped;
        let watchdog_fired = wd > self.watch[r].last_watchdog_fires;
        let stalled = sw == self.watch[r].last_sw_cycles && busy_slots;
        let rx_delta = counters.rx_frames - self.watch[r].last_rx_frames;
        let drop_delta = counters.drops - self.watch[r].last_drops;
        let dropping = drop_delta > 8
            && (drop_delta as f64) > self.cfg.drop_fraction * (rx_delta.max(1) as f64);

        let w = &mut self.watch[r];
        w.last_sw_cycles = sw;
        w.last_rx_frames = counters.rx_frames;
        w.last_drops = counters.drops;
        w.last_watchdog_fires = wd;

        let kind = if halted {
            Some(RpuFaultKind::Halted)
        } else if watchdog_fired {
            Some(RpuFaultKind::Hung)
        } else if stalled {
            w.stalled_polls += 1;
            if w.stalled_polls >= self.cfg.stall_polls {
                Some(RpuFaultKind::Hung)
            } else {
                None
            }
        } else if dropping {
            Some(RpuFaultKind::Dropping)
        } else {
            w.stalled_polls = 0;
            None
        };

        if let Some(kind) = kind {
            w.kind = kind;
            w.detected_at = now;
            w.fault_at = sys.last_fault_at(r);
            w.purged = 0;
            w.forced = false;
            w.retries = 0;
            w.stalled_polls = 0;
            // Rung 1: stop routing traffic to it *now* (graceful
            // degradation across the remaining RPUs) and poke it.
            sys.trace_supervisor(r, SupervisorStep::Detected(kind));
            sys.disable_rpu(r);
            sys.poke(r);
            w.rung = Rung::Poked {
                until: now + self.cfg.poke_grace,
            };
        }
    }

    /// Closes out a recovery: writes the record to the host log and resets
    /// the detector baselines against the (possibly brand-new) region.
    fn finish(&mut self, sys: &mut Rosebud, r: usize, now: Cycle, rebooted: bool) {
        let w = &mut self.watch[r];
        let event = RecoveryEvent {
            rpu: r,
            kind: w.kind,
            detected_at: w.detected_at,
            fault_at: w.fault_at,
            detection_latency: w.fault_at.map(|f| w.detected_at.saturating_sub(f)),
            reenabled_at: now,
            downtime: now.saturating_sub(w.detected_at),
            packets_purged: w.purged,
            forced: w.forced,
            retries: w.retries,
        };
        let _ = rebooted;
        w.rung = Rung::Healthy;
        w.stalled_polls = 0;
        let rpu = &sys.rpus()[r];
        w.last_sw_cycles = rpu.sw_cycles();
        w.last_watchdog_fires = rpu.watchdog_fires();
        let counters = rpu.inner().counters();
        w.last_rx_frames = counters.rx_frames;
        w.last_drops = counters.drops;
        sys.log_recovery(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::RpuProgram;
    use crate::{Desc, FaultKind, FaultPlan, Firmware, Harness, RosebudConfig, RpuIo};
    use rosebud_net::FixedSizeGen;

    struct PacedForwarder;
    impl Firmware for PacedForwarder {
        fn tick(&mut self, io: &mut RpuIo<'_>) {
            if let Some(desc) = io.rx_pop() {
                io.charge(15);
                io.send(Desc {
                    port: desc.port ^ 1,
                    ..desc
                });
            }
        }
    }

    fn harness(rpus: usize) -> Harness {
        let sys = crate::Rosebud::builder(RosebudConfig::with_rpus(rpus))
            .firmware(|_| RpuProgram::Native(Box::new(PacedForwarder)))
            .build()
            .unwrap();
        Harness::new(sys, Box::new(FixedSizeGen::new(256, 2)), 20.0)
    }

    #[test]
    fn crash_is_detected_and_region_recycled() {
        let mut h = harness(4);
        h.sys
            .install_fault_plan(FaultPlan::new(3).at(10_000, FaultKind::FirmwareCrash { rpu: 2 }));
        let mut sup = Supervisor::new(&h.sys);
        for _ in 0..200_000 {
            h.tick();
            sup.poll(&mut h.sys);
            if !h.sys.recovery_log().is_empty() && !sup.recovering() {
                break;
            }
        }
        let log = h.sys.recovery_log();
        assert_eq!(log.len(), 1, "exactly one recovery: {log:?}");
        let ev = log[0];
        assert_eq!(ev.rpu, 2);
        assert_eq!(ev.kind, RpuFaultKind::Halted);
        assert!(ev.detection_latency.unwrap() <= 1024, "{ev:?}");
        assert!(ev.downtime >= h.sys.config().pr_cycles, "{ev:?}");
        assert_eq!(h.sys.enabled_mask(), 0b1111);
        assert!(h.sys.rpus()[2].state() == crate::RpuState::Running);
        h.sys.assert_conservation();
    }

    #[test]
    fn false_alarm_does_not_reload() {
        // No faults: the supervisor must stay quiet over a long busy run.
        let mut h = harness(4);
        let mut sup = Supervisor::new(&h.sys);
        for _ in 0..60_000 {
            h.tick();
            sup.poll(&mut h.sys);
        }
        assert!(h.sys.recovery_log().is_empty());
        assert_eq!(h.sys.enabled_mask(), 0b1111);
    }

    #[test]
    fn host_outage_delays_but_does_not_prevent_recovery() {
        let mut h = harness(4);
        h.sys.install_fault_plan(
            FaultPlan::new(5)
                .at(9_000, FaultKind::HostDmaOutage { cycles: 30_000 })
                .at(10_000, FaultKind::FirmwareCrash { rpu: 1 }),
        );
        let mut sup = Supervisor::new(&h.sys);
        for _ in 0..300_000 {
            h.tick();
            sup.poll(&mut h.sys);
            if !h.sys.recovery_log().is_empty() && !sup.recovering() {
                break;
            }
        }
        assert!(sup.link_retries() > 0, "outage must force retries");
        let log = h.sys.recovery_log();
        assert_eq!(log.len(), 1, "{log:?}");
        assert!(
            log[0].detected_at >= 39_000,
            "detection had to wait for link-up: {:?}",
            log[0]
        );
        assert_eq!(h.sys.enabled_mask(), 0b1111);
    }
}
