//! System configuration.

/// Configuration of a Rosebud instance, mirroring the build-time parameters
/// of the paper's FPGA images (8- or 16-RPU layouts, §5).
///
/// # Examples
///
/// ```
/// use rosebud_core::RosebudConfig;
/// let cfg = RosebudConfig::with_rpus(16);
/// assert_eq!(cfg.rpu_link_bytes_per_cycle, 16); // 128-bit @ 250 MHz = 32 Gbps
/// assert_eq!(cfg.gbps_per_port(), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RosebudConfig {
    /// Number of RPUs (the paper builds 8 and 16).
    pub num_rpus: usize,
    /// Number of 100 Gbps physical Ethernet ports (the VCU1525 has 2).
    pub num_ports: usize,
    /// Clock frequency in Hz (250 MHz for all the paper's designs, §5).
    pub clock_hz: u64,
    /// Bytes per cycle on a physical MAC: 100 Gbps at 250 MHz = 50 B/cycle.
    pub mac_bytes_per_cycle: u64,
    /// Bytes per cycle on each RPU's distribution link: the narrowest
    /// switches are 128-bit = 32 Gbps = 16 B/cycle (§5).
    pub rpu_link_bytes_per_cycle: u64,
    /// Bytes per cycle through a cluster switch: 512-bit = 128 Gbps (§5).
    pub cluster_bytes_per_cycle: u64,
    /// MAC receive FIFO capacity in bytes. Sized so that a saturated
    /// 64-byte flood adds the ≈32.8 µs the paper measures (§6.2).
    pub mac_rx_fifo_bytes: u64,
    /// Packet slots each RPU advertises to the LB at boot (§4.2).
    pub slots_per_rpu: usize,
    /// Size of each packet slot in bytes (16 KB in the case-study firmware).
    pub slot_bytes: u32,
    /// Fixed ingress pipeline latency in cycles: LB decision, cluster-switch
    /// hops, die-crossing registers, DMA setup. Calibrated so the minimum
    /// forwarding RTT matches the paper's 0.765 µs (Eq. 1).
    pub ingress_fixed_cycles: u64,
    /// Fixed egress pipeline latency in cycles (switch hops + MAC FIFO).
    pub egress_fixed_cycles: u64,
    /// Instruction memory size per RPU in bytes.
    pub imem_bytes: u32,
    /// Data memory size per RPU in bytes.
    pub dmem_bytes: u32,
    /// Shared packet memory size per RPU in bytes (8 URAM blocks × 128 KB).
    pub pmem_bytes: u32,
    /// Depth of each RPU's broadcast-message outbox FIFO: 16 entries plus 2
    /// partial-reconfiguration border registers (§6.3).
    pub bcast_fifo_depth: usize,
    /// Pipeline cycles from broadcast arbiter grant to simultaneous delivery
    /// at every core (§6.3's sparse-message latency floor).
    pub bcast_pipeline_cycles: u64,
    /// Cycles between loopback-port packet grants (destination-RPU header
    /// attach, §6.3: loopback tops out at ~60 % of 64 B line rate).
    pub loopback_header_cycles: u64,
    /// Cycles a partial reconfiguration occupies in live simulation. The
    /// wall-clock reload time (756 ms, §4.1) is reported by the analytic
    /// [`pr_reload_model`](crate::pr_reload_model); simulating 189 M cycles
    /// per reload would dominate run time, so live-traffic tests use this
    /// shorter stand-in.
    pub pr_cycles: u64,
    /// Simulated PCIe round-trip latency to host DRAM, in cycles (the paper
    /// cites "order of microseconds"; 1 µs = 250 cycles).
    pub pcie_rtt_cycles: u64,
    /// Predecode each RPU's instruction memory into the ISS's internal IR
    /// (a host-side simulation speedup with no architectural effect; traces
    /// are byte-identical either way). On by default; the sim-speed bench
    /// turns it off to measure its contribution.
    pub decode_cache: bool,
}

impl RosebudConfig {
    /// The 16-RPU layout (Fig. 5).
    pub fn with_rpus(num_rpus: usize) -> Self {
        assert!(
            num_rpus > 0 && num_rpus <= 64,
            "RPU count out of supported range"
        );
        Self {
            num_rpus,
            num_ports: 2,
            clock_hz: 250_000_000,
            mac_bytes_per_cycle: 50,
            rpu_link_bytes_per_cycle: 16,
            cluster_bytes_per_cycle: 64,
            mac_rx_fifo_bytes: 256 * 1024,
            slots_per_rpu: 16,
            slot_bytes: 16 * 1024,
            ingress_fixed_cycles: 88,
            egress_fixed_cycles: 87,
            imem_bytes: 32 * 1024,
            dmem_bytes: 32 * 1024,
            pmem_bytes: 1024 * 1024,
            bcast_fifo_depth: 18,
            bcast_pipeline_cycles: 12,
            loopback_header_cycles: 3,
            pr_cycles: 25_000,
            pcie_rtt_cycles: 250,
            decode_cache: true,
        }
    }

    /// Line rate of one physical port in Gbps.
    pub fn gbps_per_port(&self) -> f64 {
        self.mac_bytes_per_cycle as f64 * 8.0 * self.clock_hz as f64 / 1e9
    }

    /// Aggregate line rate across ports in Gbps.
    pub fn total_gbps(&self) -> f64 {
        self.gbps_per_port() * self.num_ports as f64
    }

    /// Nanoseconds per clock cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1e9 / self.clock_hz as f64
    }

    /// Number of RPU clusters (the two-stage switch groups RPUs in fours,
    /// §4.3 / Fig. 4a).
    pub fn num_clusters(&self) -> usize {
        self.num_rpus.div_ceil(4)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_rpus == 0 {
            return Err("need at least one RPU".into());
        }
        if self.num_ports == 0 || self.num_ports > 8 {
            return Err("port count must be 1–8".into());
        }
        if self.slots_per_rpu == 0 || self.slots_per_rpu > 32 {
            return Err(
                "slots per RPU must be 1–32 (descriptor tag is 5 bits + context array)".into(),
            );
        }
        let needed = self.slots_per_rpu as u32 * self.slot_bytes;
        if needed > self.pmem_bytes {
            return Err(format!(
                "slot storage ({needed} B) exceeds packet memory ({} B)",
                self.pmem_bytes
            ));
        }
        if self.rpu_link_bytes_per_cycle == 0 || self.mac_bytes_per_cycle == 0 {
            return Err("link widths must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for RosebudConfig {
    /// The paper's primary 16-RPU configuration.
    fn default() -> Self {
        Self::with_rpus(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_rates() {
        let cfg = RosebudConfig::default();
        assert_eq!(cfg.gbps_per_port(), 100.0);
        assert_eq!(cfg.total_gbps(), 200.0);
        assert_eq!(cfg.ns_per_cycle(), 4.0);
        assert_eq!(cfg.num_clusters(), 4);
        assert!(cfg.validate().is_ok());
        // RPU link: 16 B/cycle × 8 × 250 MHz = 32 Gbps (the narrow switches).
        let rpu_gbps = cfg.rpu_link_bytes_per_cycle as f64 * 8.0 * cfg.clock_hz as f64 / 1e9;
        assert_eq!(rpu_gbps, 32.0);
    }

    #[test]
    fn validation_catches_slot_overflow() {
        let mut cfg = RosebudConfig::with_rpus(8);
        cfg.slots_per_rpu = 32;
        cfg.slot_bytes = 64 * 1024; // 2 MB > 1 MB pmem
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn eight_rpu_layout_has_two_clusters() {
        assert_eq!(RosebudConfig::with_rpus(8).num_clusters(), 2);
    }
}
