//! Datapath fabric: MAC interfaces, byte-bounded FIFOs, the loopback
//! module, and the broadcast arbiter (paper §4.3, §4.4).

use rosebud_kernel::{Counters, Cycle, DelayLine, Fifo, Serializer};
use rosebud_net::Packet;

use crate::config::RosebudConfig;
use crate::types::{BcastMsg, SlotMeta};

/// A FIFO bounded by total bytes rather than item count — the MAC receive
/// FIFOs whose fill level produces the 32.8 µs added latency of a saturated
/// 64-byte flood (§6.2).
#[derive(Debug, Clone)]
pub struct ByteFifo {
    items: std::collections::VecDeque<Packet>,
    bytes: u64,
    capacity_bytes: u64,
    pub(crate) rejected: u64,
}

impl ByteFifo {
    /// Creates a FIFO holding at most `capacity_bytes` of frame data.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "capacity must be non-zero");
        Self {
            items: Default::default(),
            bytes: 0,
            capacity_bytes,
            rejected: 0,
        }
    }

    /// `true` if `len` more bytes fit.
    pub fn has_room(&self, len: u64) -> bool {
        self.bytes + len <= self.capacity_bytes
    }

    /// Enqueues `pkt`, or returns it when full.
    pub fn push(&mut self, pkt: Packet) -> Result<(), Packet> {
        if !self.has_room(pkt.len()) {
            self.rejected += 1;
            return Err(pkt);
        }
        self.bytes += pkt.len();
        self.items.push_back(pkt);
        Ok(())
    }

    /// The oldest packet, without dequeuing.
    pub fn front(&self) -> Option<&Packet> {
        self.items.front()
    }

    /// Dequeues the oldest packet.
    pub fn pop(&mut self) -> Option<Packet> {
        let pkt = self.items.pop_front()?;
        self.bytes -= pkt.len();
        Some(pkt)
    }

    /// Queued bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// One physical 100 Gbps Ethernet interface: receive serializer + FIFO on
/// the way in, fixed switch-egress delay + transmit serializer on the way
/// out.
pub(crate) struct PortState {
    /// Wire-side receive serialization at line rate.
    pub rx_mac: Serializer<Packet>,
    /// MAC receive FIFO (byte-bounded).
    pub rx_fifo: ByteFifo,
    /// Egress switch pipeline (fixed latency).
    pub tx_delay: DelayLine<Packet>,
    /// Wire-side transmit serialization at line rate.
    pub tx_mac: Serializer<Packet>,
    /// Delivered output frames, drained by the harness.
    pub output: Vec<Packet>,
    pub counters: Counters,
}

impl PortState {
    pub fn new(cfg: &RosebudConfig) -> Self {
        Self {
            rx_mac: Serializer::new(cfg.mac_bytes_per_cycle, 64),
            rx_fifo: ByteFifo::new(cfg.mac_rx_fifo_bytes),
            tx_delay: DelayLine::new(cfg.egress_fixed_cycles),
            tx_mac: Serializer::new(cfg.mac_bytes_per_cycle, 64),
            output: Vec::new(),
            counters: Counters::default(),
        }
    }
}

/// A packet travelling from the LB to an RPU.
#[derive(Debug, Clone)]
pub(crate) struct IngressItem {
    pub rpu: usize,
    pub slot: u8,
    pub bytes: Vec<u8>,
    pub meta: SlotMeta,
    /// Bytes were mangled on the link (fault injection); the link-level FCS
    /// check quarantines the frame before it reaches the RPU's DMA engine.
    pub corrupted: bool,
}

/// A packet leaving an RPU, captured at `take_tx` time.
#[derive(Debug, Clone)]
pub(crate) struct EgressItem {
    pub src_rpu: usize,
    pub desc: crate::types::Desc,
    pub bytes: Vec<u8>,
    pub meta: Option<SlotMeta>,
}

/// The loopback module routing full packets between RPUs (§4.4). A single
/// 100 Gbps port with a per-packet destination-header attach cost that caps
/// small-packet throughput at ~60 % of line rate (§6.3).
pub(crate) struct Loopback {
    pub queue: Fifo<EgressItem>,
    pub wire: Serializer<EgressItem>,
    header_cycles: u64,
    next_grant: Cycle,
    pub counters: Counters,
}

impl Loopback {
    pub fn new(cfg: &RosebudConfig) -> Self {
        Self {
            queue: Fifo::new(64),
            wire: Serializer::new(cfg.mac_bytes_per_cycle, 8),
            header_cycles: cfg.loopback_header_cycles,
            next_grant: 0,
            counters: Counters::default(),
        }
    }

    /// Moves at most one queued packet onto the loopback wire per grant
    /// period (the destination-header attach).
    pub fn grant(&mut self, now: Cycle) {
        if now < self.next_grant || self.wire.is_full() {
            return;
        }
        if let Some(item) = self.queue.pop() {
            let wire_len = item.bytes.len() as u64 + rosebud_net::WIRE_OVERHEAD_BYTES;
            self.counters.count_tx_frame(item.bytes.len() as u64);
            self.wire
                .push(item, wire_len, now)
                .expect("wire fullness checked above");
            self.next_grant = now + self.header_cycles;
        }
    }
}

/// Round-robin broadcast arbiter: visits one RPU outbox per cycle, so each
/// RPU is granted every `num_rpus` cycles (§6.3: "which can be sent out
/// every 16 cycles due to round-robin arbitration among cores").
pub(crate) struct BcastArbiter {
    next_rpu: usize,
    pub pipeline: DelayLine<BcastMsg>,
    pub delivered: u64,
}

impl BcastArbiter {
    pub fn new(cfg: &RosebudConfig) -> Self {
        Self {
            next_rpu: 0,
            pipeline: DelayLine::new(cfg.bcast_pipeline_cycles),
            delivered: 0,
        }
    }

    /// The RPU whose outbox gets this cycle's grant.
    pub fn granted_rpu(&mut self, num_rpus: usize) -> usize {
        let rpu = self.next_rpu;
        self.next_rpu = (self.next_rpu + 1) % num_rpus;
        rpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_fifo_enforces_byte_capacity() {
        let mut fifo = ByteFifo::new(200);
        let pkt = |len: usize| Packet::new(0, vec![0; len], 0, 0);
        assert!(fifo.push(pkt(100)).is_ok());
        assert!(fifo.push(pkt(100)).is_ok());
        assert!(fifo.push(pkt(1)).is_err());
        assert_eq!(fifo.rejected, 1);
        fifo.pop();
        assert!(fifo.push(pkt(1)).is_ok());
        assert_eq!(fifo.bytes(), 101);
        assert_eq!(fifo.len(), 2);
    }

    #[test]
    fn loopback_grants_are_paced() {
        let cfg = RosebudConfig::with_rpus(8);
        let mut lb = Loopback::new(&cfg);
        let item = || EgressItem {
            src_rpu: 0,
            desc: crate::types::Desc {
                tag: 0,
                len: 64,
                port: 4,
                data: 0,
            },
            bytes: vec![0; 64],
            meta: None,
        };
        lb.queue.push(item()).unwrap();
        lb.queue.push(item()).unwrap();
        lb.grant(0);
        assert_eq!(lb.queue.len(), 1);
        lb.grant(1); // within the header-attach window: no grant
        lb.grant(2);
        assert_eq!(lb.queue.len(), 1);
        lb.grant(3); // 3 = loopback_header_cycles
        assert_eq!(lb.queue.len(), 0);
    }

    #[test]
    fn bcast_arbiter_round_robins() {
        let cfg = RosebudConfig::with_rpus(4);
        let mut arb = BcastArbiter::new(&cfg);
        let grants: Vec<usize> = (0..8).map(|_| arb.granted_rpu(4)).collect();
        assert_eq!(grants, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }
}
