//! Fleet-level topology: N Rosebud boxes behind a consistent-hashing front
//! load balancer, with device-scale fault injection and a drain-the-device
//! supervisor ladder.
//!
//! The paper deploys one VCU1525 per middlebox (§6); a production rack runs
//! many, fronted by an ECMP switch that hashes flows across boxes. This
//! module reproduces that rack: [`Fleet`] steers flows over a
//! [`ConsistentHashRing`](crate::ConsistentHashRing) onto per-box front
//! links with real serialization and propagation delay, and
//! [`FleetSupervisor`] runs the health-probe → mark-unhealthy → drain →
//! whole-box PR-reload → probation ladder — the box-scale analogue of the
//! per-RPU [`Supervisor`](crate::Supervisor) rungs.
//!
//! Everything is cycle-deterministic: the same seed and kernel produce the
//! same steering decisions, fault timeline, supervisor log, and conservation
//! ledger, under both the sequential and parallel kernels.
//!
//! # Examples
//!
//! ```
//! use rosebud_core::{
//!     Desc, Firmware, Fleet, FleetConfig, KernelMode, Rosebud, RosebudConfig, RpuIo, RpuProgram,
//! };
//!
//! struct Fwd;
//! impl Firmware for Fwd {
//!     fn tick(&mut self, io: &mut RpuIo<'_>) {
//!         if let Some(d) = io.rx_pop() {
//!             io.charge(15);
//!             io.send(Desc { port: d.port ^ 1, ..d });
//!         }
//!     }
//! }
//!
//! let mut fleet = Fleet::new(
//!     FleetConfig { boxes: 2, ..FleetConfig::default() },
//!     KernelMode::Sequential,
//!     |_| {
//!         Rosebud::builder(RosebudConfig::with_rpus(2))
//!             .firmware(|_| RpuProgram::Native(Box::new(Fwd)))
//!             .build()
//!             .unwrap()
//!     },
//! )
//! .unwrap();
//! fleet.run(100);
//! assert_eq!(fleet.now(), 100);
//! fleet.assert_conservation();
//! ```

use rosebud_kernel::{Cycle, IngressPort, KernelMode, LinkPort};
use rosebud_net::{extend_hash, flow_hash, Packet, ShardedFlowTable};

use crate::diag::{BoxHealth, FleetDiagnostics};
use crate::fault::{FaultEvent, FaultKind, FaultPlan, Ledger};
use crate::lb::ConsistentHashRing;
use crate::supervisor::{Supervisor, SupervisorConfig};
use crate::system::Rosebud;
use crate::trace::{FleetStep, TraceConfig};

/// Topology knobs for a [`Fleet`].
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of Rosebud boxes behind the front LB.
    pub boxes: usize,
    /// Front-link serialization rate per box, bytes per cycle (50 B/cycle at
    /// 4 ns/cycle is a 100 G cable, matching the testbed's cross-connects).
    pub link_bytes_per_cycle: u64,
    /// Front-link propagation delay in cycles (switch + cable).
    pub link_latency: Cycle,
    /// Frames the front link buffers before back-pressuring the tester.
    pub link_capacity: usize,
    /// Virtual nodes per box on the consistent-hash ring; more points mean
    /// smoother spread and smaller disturbance per failover.
    pub vnodes: usize,
    /// Shards in the front LB's flow table.
    pub flow_shards: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            boxes: 4,
            link_bytes_per_cycle: 50,
            link_latency: 64,
            link_capacity: 64,
            vnodes: 64,
            flow_shards: 16,
        }
    }
}

/// One rack slot: a [`Rosebud`] DUT plus its front link and fault state.
struct FleetBox {
    sys: Rosebud,
    /// The front link as a port: serialization stage (switch egress toward
    /// the box), propagation stage, and the RX-refusal retry slot, with
    /// capacity refusals counted instead of silently shed.
    front: LinkPort<Packet>,
    /// Shell frozen by an injected whole-box crash; the box neither ticks
    /// nor accepts frames until reloaded.
    crashed: bool,
    /// Dark during a whole-box PR reload; cleared by the supervisor.
    offline: bool,
    /// Front link down (flap) through this cycle.
    flap_until: Cycle,
    /// Ingress brownout through this cycle: frames are delivered to the box
    /// only every `brownout_factor`-th cycle.
    brownout_until: Cycle,
    brownout_factor: u32,
    /// Ledger rows folded in from incarnations retired by reloads, so
    /// per-box lifetime counters survive the rebuild.
    acc_delivered: u64,
    acc_dropped: u64,
    /// Completed whole-box reloads.
    reloads: u64,
}

/// One entry of the fleet supervisor's failover log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetLogEntry {
    /// Cycle of the transition.
    pub at: Cycle,
    /// The box it concerns.
    pub device: usize,
    /// The ladder step taken.
    pub step: FleetStep,
}

/// A completed box failover, from detection to re-admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverRecord {
    /// The box that failed over.
    pub device: usize,
    /// Cycle the box was marked unhealthy (probe-miss threshold reached).
    pub detected_at: Cycle,
    /// Cycle the drain completed (clean or by deadline purge).
    pub drained_at: Cycle,
    /// Whether the drain completed without purging anything.
    pub graceful: bool,
    /// Frames destroyed by the deadline purge (front link plus in-box).
    pub packets_purged: u64,
    /// Cycle the box re-entered rotation after probation.
    pub readmitted_at: Cycle,
    /// `readmitted_at - detected_at`.
    pub downtime: Cycle,
    /// Flows whose steering changed while the box was out of rotation.
    pub flows_resteered: u64,
}

/// N Rosebud boxes behind a consistent-hashing ECMP front load balancer.
///
/// Frames enter via [`inject`](Self::inject): the front LB hashes the
/// 5-tuple, extends it to 64 bits, and walks the ring to a live box; the
/// frame then crosses that box's front link (serialization + propagation)
/// before reaching the box's MACs. Delivered frames are collected per box
/// with [`take_output`](Self::take_output).
///
/// A fleet-wide conservation ledger spans every frame ever steered:
/// injected + originated == delivered + dropped + corrupted + purged +
/// in-flight, asserted every 1024 cycles and on demand via
/// [`assert_conservation`](Self::assert_conservation) — including across
/// whole-box purges and reloads.
pub struct Fleet {
    cfg: FleetConfig,
    kernel: KernelMode,
    factory: Box<dyn Fn(usize) -> Rosebud>,
    boxes: Vec<FleetBox>,
    outputs: Vec<Vec<Packet>>,
    ring: ConsistentHashRing,
    flows: ShardedFlowTable,
    /// `resteer_matrix[prev * boxes + new]`: flows whose steering moved from
    /// box `prev` to box `new`.
    resteer_matrix: Vec<u64>,
    flows_seen: u64,
    flows_resteered: u64,
    /// Round-robin cursor for frames without a 5-tuple.
    rr: u64,
    pending_faults: Vec<FaultEvent>,
    /// Frames the front LB accepted (fleet-scope `Ledger::injected`).
    injected: u64,
    /// Ledger rows folded in from box incarnations retired by reloads.
    ledger_acc: Ledger,
    log: Vec<FleetLogEntry>,
    failovers: Vec<FailoverRecord>,
    trace_cfg: Option<TraceConfig>,
    archived_traces: Vec<String>,
    now: Cycle,
    ns_per_cycle: f64,
}

impl Fleet {
    /// Builds a fleet of `cfg.boxes` systems, each produced by `factory`
    /// (called with the device index) and stepped under `kernel`.
    ///
    /// Every box should expose the same port count; the front LB steers the
    /// generator's port rotation unchanged, so a frame addressed to a port a
    /// box lacks is refused at injection.
    pub fn new<F>(cfg: FleetConfig, kernel: KernelMode, factory: F) -> Result<Self, String>
    where
        F: Fn(usize) -> Rosebud + 'static,
    {
        if cfg.boxes == 0 {
            return Err("fleet needs at least one box".into());
        }
        if cfg.link_bytes_per_cycle == 0 {
            return Err("front link rate must be nonzero".into());
        }
        if cfg.link_capacity == 0 {
            return Err("front link capacity must be nonzero".into());
        }
        let factory: Box<dyn Fn(usize) -> Rosebud> = Box::new(factory);
        let boxes: Vec<FleetBox> = (0..cfg.boxes)
            .map(|b| {
                let mut sys = factory(b);
                sys.set_kernel(kernel);
                FleetBox {
                    sys,
                    front: LinkPort::new(
                        cfg.link_bytes_per_cycle,
                        cfg.link_capacity,
                        cfg.link_latency,
                    ),
                    crashed: false,
                    offline: false,
                    flap_until: 0,
                    brownout_until: 0,
                    brownout_factor: 1,
                    acc_delivered: 0,
                    acc_dropped: 0,
                    reloads: 0,
                }
            })
            .collect();
        let ns_per_cycle = boxes[0].sys.config().ns_per_cycle();
        Ok(Self {
            ring: ConsistentHashRing::new(cfg.boxes, cfg.vnodes),
            flows: ShardedFlowTable::new(cfg.flow_shards),
            resteer_matrix: vec![0; cfg.boxes * cfg.boxes],
            flows_seen: 0,
            flows_resteered: 0,
            rr: 0,
            pending_faults: Vec::new(),
            injected: 0,
            ledger_acc: Ledger::default(),
            log: Vec::new(),
            failovers: Vec::new(),
            trace_cfg: None,
            archived_traces: Vec::new(),
            now: 0,
            ns_per_cycle,
            outputs: vec![Vec::new(); cfg.boxes],
            kernel,
            factory,
            cfg,
            boxes,
        })
    }

    /// Number of boxes in the rack (live or not).
    pub fn num_boxes(&self) -> usize {
        self.boxes.len()
    }

    /// Current fleet cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Nanoseconds per cycle (taken from box 0's clock).
    pub fn ns_per_cycle(&self) -> f64 {
        self.ns_per_cycle
    }

    /// The front LB's ring, for inspection.
    pub fn ring(&self) -> &ConsistentHashRing {
        self.ring_ref()
    }

    fn ring_ref(&self) -> &ConsistentHashRing {
        &self.ring
    }

    /// Direct access to one box's system (e.g. for RPU-level inspection).
    pub fn sys(&self, device: usize) -> &Rosebud {
        &self.boxes[device].sys
    }

    /// Mutable access to one box's system.
    pub fn sys_mut(&mut self, device: usize) -> &mut Rosebud {
        &mut self.boxes[device].sys
    }

    /// Whether the box can be managed right now (not crashed, not dark in a
    /// PR reload) — the fleet supervisor only drives per-RPU supervisors on
    /// manageable boxes.
    pub fn box_manageable(&self, device: usize) -> bool {
        let b = &self.boxes[device];
        !b.crashed && !b.offline
    }

    /// Whether the box's shell is frozen by an injected crash.
    pub fn box_crashed(&self, device: usize) -> bool {
        self.boxes[device].crashed
    }

    /// Completed whole-box reloads of `device`.
    pub fn box_reloads(&self, device: usize) -> u64 {
        self.boxes[device].reloads
    }

    /// Enables event tracing on every box (and on boxes rebuilt later).
    /// Traces of retired incarnations are archived; see
    /// [`archived_traces`](Self::archived_traces).
    pub fn enable_tracing(&mut self, cfg: TraceConfig) {
        self.trace_cfg = Some(cfg);
        for b in &mut self.boxes {
            b.sys.enable_tracing(cfg);
        }
    }

    /// Compact trace texts of box incarnations retired by reloads.
    pub fn archived_traces(&self) -> &[String] {
        &self.archived_traces
    }

    /// Schedules device-scale fault events. Events whose
    /// [`FaultKind::is_device_scale`] is false are ignored — RPU-scale
    /// faults have no box address at fleet scope; inject them through
    /// [`sys_mut`](Self::sys_mut) instead.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        for ev in plan.events() {
            if ev.kind.is_device_scale() {
                self.schedule_fault(*ev);
            }
        }
    }

    /// Schedules one device-scale fault event, keeping the queue sorted.
    pub fn schedule_fault(&mut self, ev: FaultEvent) {
        let idx = self.pending_faults.partition_point(|e| e.at <= ev.at);
        self.pending_faults.insert(idx, ev);
    }

    /// Injects a device-scale fault effective this cycle.
    pub fn inject_fault(&mut self, kind: FaultKind) {
        self.schedule_fault(FaultEvent { at: self.now, kind });
    }

    fn apply_due_faults(&mut self) {
        while let Some(ev) = self.pending_faults.first() {
            if ev.at > self.now {
                break;
            }
            let ev = self.pending_faults.remove(0);
            self.apply_fault(ev.kind);
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::BoxCrash { device } => {
                if let Some(b) = self.boxes.get_mut(device) {
                    b.crashed = true;
                }
            }
            FaultKind::BoxHostOutage { device, cycles } => {
                if let Some(b) = self.boxes.get_mut(device) {
                    if !b.crashed && !b.offline {
                        b.sys.inject_fault(FaultKind::HostDmaOutage { cycles });
                    }
                }
            }
            FaultKind::FrontLinkFlap { device, cycles } => {
                if let Some(b) = self.boxes.get_mut(device) {
                    b.flap_until = b.flap_until.max(self.now + cycles);
                }
            }
            FaultKind::BoxBrownout {
                device,
                cycles,
                factor,
            } => {
                if let Some(b) = self.boxes.get_mut(device) {
                    b.brownout_until = b.brownout_until.max(self.now + cycles);
                    // Last writer wins on the slowdown factor.
                    b.brownout_factor = factor.max(1);
                }
            }
            // RPU-scale kinds are not addressable at fleet scope.
            _ => {}
        }
    }

    /// Steers one frame through the front LB onto a box's front link.
    ///
    /// `Err(pkt)` hands the frame back when the chosen box's front link is
    /// full — the ECMP switch back-pressuring the tester. Flow-to-box
    /// ownership is recorded only for accepted frames.
    pub fn inject(&mut self, pkt: Packet) -> Result<(), Packet> {
        let key = flow_hash(&pkt).map(extend_hash);
        let device = match key {
            Some(k) => self.ring.node_for(k),
            None => {
                // No 5-tuple: round-robin over live boxes so control frames
                // don't all pile onto one device.
                let live = self.ring.live_count().max(1) as u64;
                let mut pick = self.rr % live;
                self.rr = self.rr.wrapping_add(1);
                let mut device = 0;
                for (b, _) in self.boxes.iter().enumerate() {
                    if self.ring.is_live(b) {
                        if pick == 0 {
                            device = b;
                            break;
                        }
                        pick -= 1;
                    }
                }
                device
            }
        };
        let wire = pkt.wire_len();
        match self.boxes[device].front.push(pkt, wire, self.now) {
            Ok(()) => {
                self.injected += 1;
                if let Some(k) = key {
                    match self.flows.insert(k, device as u16) {
                        None => self.flows_seen += 1,
                        Some(prev) if prev as usize != device => {
                            self.flows_resteered += 1;
                            self.resteer_matrix[prev as usize * self.cfg.boxes + device] += 1;
                        }
                        Some(_) => {}
                    }
                }
                Ok(())
            }
            Err(pkt) => Err(pkt),
        }
    }

    /// Advances the whole rack one cycle: due faults fire, every front link
    /// moves, every live box ticks, and the fleet ledger is spot-checked.
    pub fn tick(&mut self) {
        self.apply_due_faults();
        let now = self.now;
        for b in 0..self.boxes.len() {
            self.tick_box(b, now);
        }
        if now.is_multiple_of(1024) {
            self.assert_conservation();
        }
        self.now += 1;
    }

    fn tick_box(&mut self, device: usize, now: Cycle) {
        let bx = &mut self.boxes[device];
        let flapped = bx.flap_until > now;
        let browned = bx.brownout_until > now;
        let gate = u64::from(bx.brownout_factor.max(1));
        // Ingress gating: a flapped link delivers nothing; a browned-out box
        // accepts frames only every `factor`-th cycle.
        let deliver =
            !bx.crashed && !bx.offline && !flapped && (!browned || now.is_multiple_of(gate));
        if deliver {
            while let Some(pkt) = bx.front.poll(now) {
                match bx.sys.inject(pkt) {
                    Ok(()) => {}
                    Err(p) => {
                        bx.front.give_back(p);
                        break;
                    }
                }
            }
        }
        if !flapped {
            // Frames finishing serialization enter the propagation stage; a
            // flapped (dark) link skips the advance and goes nowhere.
            bx.front.advance(now);
        }
        if !bx.crashed && !bx.offline {
            bx.sys.tick();
            let ports = bx.sys.config().num_ports;
            let out = &mut self.outputs[device];
            for p in 0..ports {
                out.extend(bx.sys.take_output(p));
            }
            out.extend(bx.sys.take_host_packets());
        }
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Drains the frames box `device` delivered since the last call
    /// (physical ports and host alike).
    pub fn take_output(&mut self, device: usize) -> Vec<Packet> {
        std::mem::take(&mut self.outputs[device])
    }

    /// Whether box `device` and its front link hold no frames — the drain
    /// ladder's completion test. A crashed box never quiesces (its in-flight
    /// frames are frozen until the reload purges them).
    pub fn box_quiesced(&self, device: usize) -> bool {
        let b = &self.boxes[device];
        b.front.is_empty() && !b.crashed && b.sys.ledger_in_flight() == 0
    }

    /// Frames queued on box `device`'s front link (serializer + wire + the
    /// retry slot) — the port-layer backlog signal.
    pub fn front_queue(&self, device: usize) -> u64 {
        self.boxes[device].front.backlog() as u64
    }

    /// Frames the front LB tried to push onto box `device`'s link and were
    /// refused for capacity — the port-layer backpressure counter. Every
    /// refusal was handed back to the caller of [`inject`](Self::inject),
    /// never dropped, which is what keeps the fleet conservation ledger
    /// balanced under saturation.
    pub fn front_refused(&self, device: usize) -> u64 {
        self.boxes[device].front.refused()
    }

    /// The health-probe model: round-trip cycles for a probe to box
    /// `device`, or `None` if the box is unreachable (crashed, dark in a
    /// reload, or its front link is flapped). A brownout inflates the RTT by
    /// its slowdown factor, so a browned-out box looks slow, not dead.
    pub fn probe_rtt(&self, device: usize) -> Option<Cycle> {
        let b = &self.boxes[device];
        if b.crashed || b.offline || b.flap_until > self.now {
            return None;
        }
        let mut rtt = 2 * self.cfg.link_latency + 16;
        if b.brownout_until > self.now {
            rtt *= Cycle::from(b.brownout_factor.max(1));
        }
        Some(rtt)
    }

    /// Whether a probe to `device` completes within `timeout` cycles.
    pub fn probe_ok(&self, device: usize, timeout: Cycle) -> bool {
        self.probe_rtt(device).is_some_and(|rtt| rtt <= timeout)
    }

    /// Takes box `device` out of the steering ring (drain). The last live
    /// box is never removed — with nowhere to re-steer, traffic keeps
    /// aiming at it and back-pressures the tester instead.
    pub fn ring_remove(&mut self, device: usize) {
        if self.ring.is_live(device) && self.ring.live_count() > 1 {
            self.ring.remove(device);
        }
    }

    /// Returns box `device`'s ring points to rotation.
    pub fn ring_restore(&mut self, device: usize) {
        self.ring.restore(device);
    }

    /// Purges box `device`'s front link and in-flight frames into the fleet
    /// ledger, archives its trace, and rebuilds it from the factory. The box
    /// comes back dark ([`box_manageable`](Self::box_manageable) is false)
    /// until [`finish_reload`](Self::finish_reload). Returns the number of
    /// frames purged.
    pub fn begin_reload(&mut self, device: usize) -> u64 {
        let bx = &mut self.boxes[device];
        let mut purged = bx.front.flush() as u64;
        purged += bx.sys.ledger_in_flight();
        // Fold the retiring incarnation's ledger into the fleet accumulator
        // so lifetime conservation spans the reload.
        let l = bx.sys.ledger();
        self.ledger_acc.originated += l.originated;
        self.ledger_acc.delivered += l.delivered;
        self.ledger_acc.dropped += l.dropped;
        self.ledger_acc.corrupted += l.corrupted;
        self.ledger_acc.purged += l.purged + purged;
        bx.acc_delivered += l.delivered;
        bx.acc_dropped += l.dropped;
        if self.trace_cfg.is_some() {
            if let Some(t) = bx.sys.take_tracer() {
                self.archived_traces.push(format!(
                    "=== box {device} incarnation {} ===\n{}",
                    bx.reloads,
                    t.compact_text()
                ));
            }
        }
        let mut sys = (self.factory)(device);
        sys.set_kernel(self.kernel);
        if let Some(tc) = self.trace_cfg {
            sys.enable_tracing(tc);
        }
        let bx = &mut self.boxes[device];
        bx.sys = sys;
        bx.crashed = false;
        bx.offline = true;
        bx.reloads += 1;
        purged
    }

    /// Brings a reloaded box out of the dark: it starts ticking (firmware
    /// boots) but stays out of rotation until the supervisor re-admits it.
    pub fn finish_reload(&mut self, device: usize) {
        self.boxes[device].offline = false;
    }

    /// Appends one ladder transition to the fleet log.
    pub fn log_step(&mut self, device: usize, step: FleetStep) {
        self.log.push(FleetLogEntry {
            at: self.now,
            device,
            step,
        });
    }

    /// Records a completed failover.
    pub fn log_failover(&mut self, rec: FailoverRecord) {
        self.failovers.push(rec);
    }

    /// The fleet supervisor's ladder log.
    pub fn log(&self) -> &[FleetLogEntry] {
        &self.log
    }

    /// The ladder log rendered one transition per line — the fleet-scale
    /// analogue of a box trace's supervisor lines.
    pub fn log_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.log {
            let _ = writeln!(out, "[{:>8}] box {}: {}", e.at, e.device, e.step);
        }
        out
    }

    /// Completed failovers, in completion order.
    pub fn failovers(&self) -> &[FailoverRecord] {
        &self.failovers
    }

    /// Distinct flows the front LB has steered.
    pub fn flows_seen(&self) -> u64 {
        self.flows_seen
    }

    /// Flows whose steering changed box at least once.
    pub fn flows_resteered(&self) -> u64 {
        self.flows_resteered
    }

    /// Flows re-steered from box `prev` to box `new`.
    pub fn resteered_between(&self, prev: usize, new: usize) -> u64 {
        self.resteer_matrix[prev * self.cfg.boxes + new]
    }

    /// The fleet-wide conservation ledger: every frame ever steered by the
    /// front LB, summed across live box ledgers, retired incarnations, and
    /// whole-box purges. `injected` counts front-LB acceptances (box-level
    /// injections are interior hops, not entries).
    pub fn ledger(&self) -> Ledger {
        let mut l = self.ledger_acc;
        l.injected = self.injected;
        for b in &self.boxes {
            let bl = b.sys.ledger();
            l.originated += bl.originated;
            l.delivered += bl.delivered;
            l.dropped += bl.dropped;
            l.corrupted += bl.corrupted;
            l.purged += bl.purged;
        }
        l
    }

    /// Frames in flight fleet-wide: front links plus inside every box.
    pub fn ledger_in_flight(&self) -> u64 {
        let mut in_flight = 0;
        for (b, _) in self.boxes.iter().enumerate() {
            in_flight += self.front_queue(b) + self.boxes[b].sys.ledger_in_flight();
        }
        in_flight
    }

    /// Panics unless the fleet ledger balances:
    /// `injected + originated == delivered + dropped + corrupted + purged +
    /// in-flight`, across every box, front link, purge, and reload.
    pub fn assert_conservation(&self) {
        let l = self.ledger();
        let in_flight = self.ledger_in_flight();
        assert!(
            l.balances(in_flight),
            "fleet ledger out of balance at cycle {}: {:?} in_flight={}",
            self.now,
            l,
            in_flight,
        );
    }

    /// A point-in-time fleet health snapshot.
    pub fn diagnostics(&self) -> FleetDiagnostics {
        let boxes = self
            .boxes
            .iter()
            .enumerate()
            .map(|(d, b)| {
                let l = b.sys.ledger();
                BoxHealth {
                    device: d,
                    in_rotation: self.ring.is_live(d),
                    crashed: b.crashed,
                    delivered: b.acc_delivered + l.delivered,
                    dropped: b.acc_dropped + l.dropped,
                    in_flight: b.sys.ledger_in_flight(),
                    front_queue: self.front_queue(d),
                    reloads: b.reloads,
                }
            })
            .collect();
        FleetDiagnostics {
            boxes,
            ledger: self.ledger(),
            in_flight: self.ledger_in_flight(),
            flows_seen: self.flows_seen,
            flows_resteered: self.flows_resteered,
            failovers: self.failovers.len(),
        }
    }
}

/// Tuning knobs for the [`FleetSupervisor`] ladder.
#[derive(Debug, Clone, Copy)]
pub struct FleetSupervisorConfig {
    /// Cycles between health probes of a healthy box.
    pub probe_interval: Cycle,
    /// A probe RTT above this is a miss.
    pub probe_timeout: Cycle,
    /// Consecutive probe misses before a box is marked unhealthy.
    pub unhealthy_probes: u32,
    /// Consecutive healthy probes a reloaded box must pass in probation
    /// before re-admission to the ring.
    pub probation_probes: u32,
    /// Base re-probe backoff after a miss; doubles per consecutive miss.
    pub probe_backoff: Cycle,
    /// Ceiling on the probe backoff.
    pub probe_backoff_cap: Cycle,
    /// How long a drain may run before the deadline purge.
    pub drain_timeout: Cycle,
    /// Cycles a whole-box PR reload keeps the box dark (the full-bitstream
    /// cost; per-RPU PR inside a box is two orders cheaper, §5.4).
    pub reload_cycles: Cycle,
    /// Config for the per-box RPU supervisors the fleet ladder drives.
    pub rpu: SupervisorConfig,
}

impl Default for FleetSupervisorConfig {
    fn default() -> Self {
        Self {
            probe_interval: 1_024,
            probe_timeout: 256,
            unhealthy_probes: 3,
            probation_probes: 3,
            probe_backoff: 256,
            probe_backoff_cap: 8_192,
            drain_timeout: 8_192,
            reload_cycles: 25_000,
            rpu: SupervisorConfig::default(),
        }
    }
}

/// Per-box position on the fleet ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoxRung {
    Healthy,
    Draining { deadline: Cycle },
    Reloading { done_at: Cycle },
    Probation,
}

struct BoxWatch {
    rung: BoxRung,
    /// Consecutive probe misses on the current rung.
    misses: u32,
    /// Consecutive healthy probes in probation.
    streak: u32,
    next_probe: Cycle,
    detected_at: Cycle,
    drained_at: Cycle,
    graceful: bool,
    purged: u64,
    resteered_at_detect: u64,
}

/// The fleet-scale recovery ladder: health probes with deterministic
/// timeout/backoff → mark-unhealthy → drain (ring removal re-steers only the
/// failed box's flows; in-flight frames complete against the ledger) →
/// whole-box PR reload → probation → re-admission.
///
/// It also drives one per-RPU [`Supervisor`] per manageable box, so the
/// intra-box ladder (§3.4's poke → drain → evict → PR) keeps running
/// underneath the fleet ladder.
///
/// # Examples
///
/// ```
/// use rosebud_core::{
///     Fleet, FleetConfig, FleetSupervisor, KernelMode, Rosebud, RosebudConfig, RpuProgram,
/// };
/// use rosebud_riscv::assemble;
///
/// let spin = assemble("spin: j spin").unwrap();
/// let mut fleet = Fleet::new(
///     FleetConfig { boxes: 2, ..FleetConfig::default() },
///     KernelMode::Sequential,
///     move |_| {
///         Rosebud::builder(RosebudConfig::with_rpus(2))
///             .firmware({
///                 let spin = spin.clone();
///                 move |_| RpuProgram::Riscv(spin.clone())
///             })
///             .build()
///             .unwrap()
///     },
/// )
/// .unwrap();
/// let mut sup = FleetSupervisor::new(&fleet);
/// for _ in 0..5_000 {
///     sup.poll(&mut fleet);
///     fleet.tick();
/// }
/// assert!(!sup.recovering(), "a healthy fleet stays off the ladder");
/// ```
pub struct FleetSupervisor {
    cfg: FleetSupervisorConfig,
    watch: Vec<BoxWatch>,
    rpu_sups: Vec<Supervisor>,
}

impl FleetSupervisor {
    /// A supervisor over `fleet` with default knobs.
    pub fn new(fleet: &Fleet) -> Self {
        Self::with_config(fleet, FleetSupervisorConfig::default())
    }

    /// A supervisor over `fleet` with explicit knobs.
    pub fn with_config(fleet: &Fleet, cfg: FleetSupervisorConfig) -> Self {
        let n = fleet.num_boxes();
        Self {
            watch: (0..n)
                .map(|_| BoxWatch {
                    rung: BoxRung::Healthy,
                    misses: 0,
                    streak: 0,
                    next_probe: cfg.probe_interval,
                    detected_at: 0,
                    drained_at: 0,
                    graceful: true,
                    purged: 0,
                    resteered_at_detect: 0,
                })
                .collect(),
            rpu_sups: (0..n)
                .map(|b| Supervisor::with_config(fleet.sys(b), cfg.rpu))
                .collect(),
            cfg,
        }
    }

    /// Whether any box is on a ladder rung other than healthy.
    pub fn recovering(&self) -> bool {
        self.watch.iter().any(|w| w.rung != BoxRung::Healthy)
    }

    /// The per-RPU supervisor the fleet ladder runs inside box `device`.
    pub fn rpu_supervisor(&self, device: usize) -> &Supervisor {
        &self.rpu_sups[device]
    }

    fn backoff(&self, misses: u32) -> Cycle {
        self.cfg
            .probe_backoff
            .checked_shl(misses.saturating_sub(1))
            .unwrap_or(Cycle::MAX)
            .min(self.cfg.probe_backoff_cap)
    }

    /// One supervisory step: drives the per-RPU supervisors on manageable
    /// boxes, then advances each box's fleet-ladder rung. Call once per
    /// cycle, before [`Fleet::tick`].
    pub fn poll(&mut self, fleet: &mut Fleet) {
        let now = fleet.now();
        for b in 0..fleet.num_boxes() {
            if fleet.box_manageable(b) {
                self.rpu_sups[b].poll(fleet.sys_mut(b));
            }
        }
        for b in 0..fleet.num_boxes() {
            self.poll_box(fleet, b, now);
        }
    }

    fn poll_box(&mut self, fleet: &mut Fleet, b: usize, now: Cycle) {
        let rung = self.watch[b].rung;
        match rung {
            BoxRung::Healthy => {
                if now < self.watch[b].next_probe {
                    return;
                }
                if fleet.probe_ok(b, self.cfg.probe_timeout) {
                    let w = &mut self.watch[b];
                    w.misses = 0;
                    w.next_probe = now + self.cfg.probe_interval;
                } else {
                    self.watch[b].misses += 1;
                    let misses = self.watch[b].misses;
                    fleet.log_step(b, FleetStep::ProbeMissed { streak: misses });
                    if misses >= self.cfg.unhealthy_probes {
                        fleet.log_step(b, FleetStep::MarkedUnhealthy);
                        fleet.ring_remove(b);
                        fleet.log_step(b, FleetStep::DrainStarted);
                        let w = &mut self.watch[b];
                        w.detected_at = now;
                        w.resteered_at_detect = fleet.flows_resteered();
                        w.misses = 0;
                        w.rung = BoxRung::Draining {
                            deadline: now + self.cfg.drain_timeout,
                        };
                    } else {
                        self.watch[b].next_probe = now + self.backoff(misses);
                    }
                }
            }
            BoxRung::Draining { deadline } => {
                if fleet.box_quiesced(b) {
                    fleet.log_step(b, FleetStep::DrainedClean);
                    self.watch[b].graceful = true;
                } else if now >= deadline {
                    self.watch[b].graceful = false;
                } else {
                    return;
                }
                let purged = fleet.begin_reload(b);
                if purged > 0 {
                    fleet.log_step(b, FleetStep::Purged { packets: purged });
                }
                fleet.log_step(b, FleetStep::Reloading);
                // The rebuilt box gets a fresh per-RPU supervisor: the old
                // one's watch state describes hardware that no longer exists.
                self.rpu_sups[b] = Supervisor::with_config(fleet.sys(b), self.cfg.rpu);
                let w = &mut self.watch[b];
                w.purged = purged;
                w.drained_at = now;
                w.rung = BoxRung::Reloading {
                    done_at: now + self.cfg.reload_cycles,
                };
            }
            BoxRung::Reloading { done_at } => {
                if now < done_at {
                    return;
                }
                fleet.finish_reload(b);
                fleet.log_step(b, FleetStep::Probation);
                let w = &mut self.watch[b];
                w.rung = BoxRung::Probation;
                w.streak = 0;
                w.misses = 0;
                w.next_probe = now + self.cfg.probe_interval;
            }
            BoxRung::Probation => {
                if now < self.watch[b].next_probe {
                    return;
                }
                if fleet.probe_ok(b, self.cfg.probe_timeout) {
                    self.watch[b].streak += 1;
                    if self.watch[b].streak >= self.cfg.probation_probes {
                        fleet.ring_restore(b);
                        fleet.log_step(b, FleetStep::Readmitted);
                        let w = &mut self.watch[b];
                        let rec = FailoverRecord {
                            device: b,
                            detected_at: w.detected_at,
                            drained_at: w.drained_at,
                            graceful: w.graceful,
                            packets_purged: w.purged,
                            readmitted_at: now,
                            downtime: now.saturating_sub(w.detected_at),
                            flows_resteered: fleet
                                .flows_resteered()
                                .saturating_sub(w.resteered_at_detect),
                        };
                        w.rung = BoxRung::Healthy;
                        w.misses = 0;
                        w.next_probe = now + self.cfg.probe_interval;
                        fleet.log_failover(rec);
                    } else {
                        self.watch[b].next_probe = now + self.cfg.probe_interval;
                    }
                } else {
                    self.watch[b].streak = 0;
                    self.watch[b].misses += 1;
                    let misses = self.watch[b].misses;
                    fleet.log_step(b, FleetStep::ProbeMissed { streak: misses });
                    if misses >= self.cfg.unhealthy_probes {
                        // A fresh fault landed on the rebuilt box before it
                        // ever re-entered rotation: recycle it.
                        let purged = fleet.begin_reload(b);
                        if purged > 0 {
                            fleet.log_step(b, FleetStep::Purged { packets: purged });
                        }
                        fleet.log_step(b, FleetStep::Reloading);
                        self.rpu_sups[b] = Supervisor::with_config(fleet.sys(b), self.cfg.rpu);
                        let w = &mut self.watch[b];
                        w.purged += purged;
                        w.misses = 0;
                        w.rung = BoxRung::Reloading {
                            done_at: now + self.cfg.reload_cycles,
                        };
                    } else {
                        self.watch[b].next_probe = now + self.backoff(misses);
                    }
                }
            }
        }
    }
}

/// Paces a [`TrafficGen`](rosebud_net::TrafficGen) into a [`Fleet`] at a
/// target aggregate load and aggregates delivery metrics, exactly like the
/// single-box [`Harness`](crate::Harness) but with one shared byte budget
/// across the rack (a [`GenPort`](rosebud_net::GenPort) in aggregate mode)
/// and per-box latency histograms.
pub struct FleetHarness {
    /// The rack under test.
    pub fleet: Fleet,
    source: rosebud_net::GenPort,
    injected: u64,
    received: u64,
    window_start_cycle: Cycle,
    window_injected: u64,
    window_received: u64,
    window_received_bytes: u64,
    box_latency: Vec<rosebud_kernel::LatencyStats>,
}

impl FleetHarness {
    /// A harness offering `target_gbps` of aggregate load from `gen` to the
    /// whole rack. The generator's port rotation must stay within each box's
    /// port count.
    pub fn new(fleet: Fleet, gen: Box<dyn rosebud_net::TrafficGen>, target_gbps: f64) -> Self {
        let boxes = fleet.num_boxes();
        let source = rosebud_net::GenPort::aggregate(gen, target_gbps, fleet.ns_per_cycle());
        Self {
            fleet,
            source,
            injected: 0,
            received: 0,
            window_start_cycle: 0,
            window_injected: 0,
            window_received: 0,
            window_received_bytes: 0,
            box_latency: (0..boxes)
                .map(|_| rosebud_kernel::LatencyStats::new())
                .collect(),
        }
    }

    /// Advances the rack one cycle, injecting paced traffic first through
    /// the aggregate-mode port (one shared byte budget, a refused frame
    /// retried next cycle).
    pub fn tick(&mut self) {
        let now = self.fleet.now();
        while let Some(pkt) = self.source.poll(now) {
            match self.fleet.inject(pkt) {
                Ok(()) => {
                    self.injected += 1;
                    self.window_injected += 1;
                }
                Err(pkt) => {
                    self.source.give_back(pkt);
                    break;
                }
            }
        }

        self.fleet.tick();

        let now = self.fleet.now();
        let ns_per_cycle = self.fleet.ns_per_cycle();
        for b in 0..self.fleet.num_boxes() {
            for pkt in self.fleet.take_output(b) {
                self.received += 1;
                self.window_received += 1;
                self.window_received_bytes += pkt.len();
                self.box_latency[b].record((now.saturating_sub(pkt.ts_gen)) as f64 * ns_per_cycle);
            }
        }
    }

    /// Runs `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.tick();
        }
    }

    /// Starts a measurement window (call after warm-up).
    pub fn begin_window(&mut self) {
        self.window_start_cycle = self.fleet.now();
        self.window_injected = 0;
        self.window_received = 0;
        self.window_received_bytes = 0;
        for l in &mut self.box_latency {
            *l = rosebud_kernel::LatencyStats::new();
        }
    }

    /// Results since [`begin_window`](Self::begin_window), aggregated across
    /// the rack.
    pub fn measure(&self) -> crate::harness::Measurement {
        let cycles = self
            .fleet
            .now()
            .saturating_sub(self.window_start_cycle)
            .max(1);
        let secs = cycles as f64 * self.fleet.ns_per_cycle() / 1e9;
        crate::harness::Measurement {
            gbps: self.window_received_bytes as f64 * 8.0 / secs / 1e9,
            mpps: self.window_received as f64 / secs / 1e6,
            packets: self.window_received,
            injected: self.window_injected,
            cycles,
        }
    }

    /// Round-trip latency samples for frames box `device` delivered since
    /// the window began, in nanoseconds.
    pub fn box_latency(&mut self, device: usize) -> &mut rosebud_kernel::LatencyStats {
        &mut self.box_latency[device]
    }

    /// All-time injected frame count.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// All-time received frame count.
    pub fn received(&self) -> u64 {
        self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosebud_net::FixedSizeGen;

    use crate::rpu::RpuIo;
    use crate::system::RpuProgram;
    use crate::types::Desc;
    use crate::{Firmware, RosebudConfig};

    struct PacedForwarder;
    impl Firmware for PacedForwarder {
        fn tick(&mut self, io: &mut RpuIo<'_>) {
            if let Some(desc) = io.rx_pop() {
                io.charge(15);
                io.send(Desc {
                    port: desc.port ^ 1,
                    ..desc
                });
            }
        }
    }

    fn forwarder_box() -> Rosebud {
        Rosebud::builder(RosebudConfig::with_rpus(2))
            .firmware(|_| RpuProgram::Native(Box::new(PacedForwarder)))
            .build()
            .unwrap()
    }

    fn forwarder_fleet(boxes: usize) -> Fleet {
        Fleet::new(
            FleetConfig {
                boxes,
                ..FleetConfig::default()
            },
            KernelMode::Sequential,
            |_| forwarder_box(),
        )
        .unwrap()
    }

    #[test]
    fn fleet_forwards_and_conserves() {
        let fleet = forwarder_fleet(2);
        let mut h = FleetHarness::new(fleet, Box::new(FixedSizeGen::new(256, 2)), 40.0);
        h.run(20_000);
        assert!(h.received() > 1_000, "received {}", h.received());
        h.fleet.assert_conservation();
        assert!(h.fleet.flows_seen() > 0);
    }

    #[test]
    fn front_link_saturation_backpressures_instead_of_dropping() {
        // Starve the front links (1 B/cycle, 2-deep) and offer far more
        // than they can carry: capacity refusals must surface through the
        // port-layer counter AND hand every refused frame back to the
        // harness — nothing silently shed, so the ledger still balances.
        let fleet = Fleet::new(
            FleetConfig {
                boxes: 2,
                link_bytes_per_cycle: 1,
                link_capacity: 2,
                ..FleetConfig::default()
            },
            KernelMode::Sequential,
            |_| forwarder_box(),
        )
        .unwrap();
        let mut h = FleetHarness::new(fleet, Box::new(FixedSizeGen::new(256, 2)), 100.0);
        h.run(10_000);
        let refused: u64 = (0..2).map(|b| h.fleet.front_refused(b)).sum();
        assert!(refused > 0, "saturated links must report refusals");
        // Refused frames were handed back, not lost: conservation holds
        // over everything actually accepted.
        h.fleet.assert_conservation();
        assert!(h.received() > 0);
    }

    #[test]
    fn crash_purge_reload_keeps_ledger_balanced() {
        let fleet = forwarder_fleet(2);
        let mut h = FleetHarness::new(fleet, Box::new(FixedSizeGen::new(256, 2)), 40.0);
        let mut sup = FleetSupervisor::with_config(
            &h.fleet,
            FleetSupervisorConfig {
                reload_cycles: 2_000,
                ..FleetSupervisorConfig::default()
            },
        );
        h.run(5_000);
        h.fleet.inject_fault(FaultKind::BoxCrash { device: 1 });
        for _ in 0..60_000 {
            sup.poll(&mut h.fleet);
            h.tick();
        }
        assert_eq!(h.fleet.failovers().len(), 1, "log:\n{}", h.fleet.log_text());
        let rec = h.fleet.failovers()[0];
        assert_eq!(rec.device, 1);
        assert!(!rec.graceful, "a crash can never drain cleanly");
        assert!(rec.packets_purged > 0);
        assert!(h.fleet.box_reloads(1) >= 1);
        assert!(!sup.recovering());
        h.fleet.assert_conservation();
    }

    #[test]
    fn flap_and_brownout_recover_without_losing_frames() {
        let fleet = forwarder_fleet(2);
        let mut h = FleetHarness::new(fleet, Box::new(FixedSizeGen::new(256, 2)), 30.0);
        let mut sup = FleetSupervisor::with_config(
            &h.fleet,
            FleetSupervisorConfig {
                reload_cycles: 2_000,
                ..FleetSupervisorConfig::default()
            },
        );
        h.run(2_000);
        h.fleet.inject_fault(FaultKind::FrontLinkFlap {
            device: 0,
            cycles: 6_000,
        });
        h.fleet.inject_fault(FaultKind::BoxBrownout {
            device: 1,
            cycles: 6_000,
            factor: 4,
        });
        for _ in 0..80_000 {
            sup.poll(&mut h.fleet);
            h.tick();
        }
        assert!(!sup.recovering(), "log:\n{}", h.fleet.log_text());
        h.fleet.assert_conservation();
        assert!(h.received() > 1_000);
    }

    #[test]
    fn probe_model_reflects_box_state() {
        let mut fleet = forwarder_fleet(2);
        assert!(fleet.probe_ok(0, 256));
        fleet.inject_fault(FaultKind::BoxCrash { device: 0 });
        fleet.tick();
        assert!(fleet.probe_rtt(0).is_none());
        assert!(fleet.probe_ok(1, 256));
        fleet.inject_fault(FaultKind::BoxBrownout {
            device: 1,
            cycles: 100,
            factor: 4,
        });
        fleet.tick();
        // 4 × (2·64 + 16) = 576 > 256: slow, not dead.
        assert_eq!(fleet.probe_rtt(1), Some(576));
        assert!(!fleet.probe_ok(1, 256));
    }

    #[test]
    fn last_live_box_is_never_removed() {
        let mut fleet = forwarder_fleet(2);
        fleet.ring_remove(0);
        assert_eq!(fleet.ring().live_count(), 1);
        fleet.ring_remove(1);
        assert!(
            fleet.ring().is_live(1),
            "last live box must stay in rotation"
        );
    }
}
