//! Static firmware verification wired into the load path.
//!
//! `rosebud_riscv::Analyzer` knows nothing about the Rosebud framework; this
//! module is the bridge. [`machine_spec`] renders the framework's memory map
//! ([`crate::memmap`]) into the analyzer's [`MachineSpec`], and
//! [`LoadPolicy`] decides what a [`crate::Rosebud`] does with the resulting
//! [`LintReport`] whenever firmware is (re)loaded: record it, or refuse the
//! image outright so the supervisor's evict/reload ladder never reinstalls a
//! known-bad program.

use rosebud_riscv::{CostModel, LintReport, MachineSpec, MmioReg, ProtocolSpec, Region};

use crate::config::RosebudConfig;
use crate::types::memmap::{self, io};

/// Bytes reserved for the firmware stack at the top of data memory. Purely
/// a lint-time convention: `sp`-relative constant accesses must stay inside
/// this window.
pub const STACK_BYTES: u32 = 4096;

/// Worst-case wait-states a blocking accelerator register read can charge
/// (the firewall matcher's early result read costs up to this much).
pub const ACCEL_READ_WAIT_CYCLES: u32 = 2;

/// Extra wait-states on packet-memory accesses (mirrors the RPU bus).
pub const PMEM_WAIT_CYCLES: u32 = 1;

/// What a [`crate::Rosebud`] does with lint findings at firmware-load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadPolicy {
    /// Do not run the analyzer (the pre-existing behaviour).
    #[default]
    Off,
    /// Run the analyzer and record the report in `diagnostics()`, but load
    /// the firmware regardless.
    Warn,
    /// Like `Warn`, but refuse to install an image whose report contains
    /// errors — at boot, on host loads, and on supervisor PR reloads.
    Deny,
}

/// One recorded lint event: which RPU, when, and what the analyzer said.
#[derive(Debug, Clone)]
pub struct LintRecord {
    /// RPU index the firmware was destined for.
    pub rpu: usize,
    /// System cycle at which the load was vetted (0 = initial boot).
    pub cycle: u64,
    /// Whether the load was refused under [`LoadPolicy::Deny`].
    pub denied: bool,
    /// The analyzer's full report.
    pub report: LintReport,
}

/// Builds the analyzer's machine description from a framework config: the
/// RPU memory map, the interconnect register table with read/write
/// directions, the watchdog-pet register, and the simulator's cost model.
pub fn machine_spec(cfg: &RosebudConfig) -> MachineSpec {
    MachineSpec {
        imem_bytes: cfg.imem_bytes,
        dmem: Region {
            base: memmap::DMEM_BASE,
            bytes: cfg.dmem_bytes,
        },
        pmem: Region {
            base: memmap::PMEM_BASE,
            bytes: cfg.pmem_bytes,
        },
        io_base: memmap::IO_BASE,
        io_window_bytes: memmap::IO_EXT_BASE - memmap::IO_BASE,
        io_regs: io_reg_table(),
        accel: Region {
            base: memmap::IO_EXT_BASE,
            bytes: memmap::BCAST_BASE - memmap::IO_EXT_BASE,
        },
        bcast: Region {
            base: memmap::BCAST_BASE,
            bytes: memmap::BCAST_BYTES,
        },
        watchdog_pet_offset: Some(io::TIMER_CMP),
        stack: Some(Region {
            base: memmap::DMEM_BASE + cfg.dmem_bytes - STACK_BYTES,
            bytes: STACK_BYTES,
        }),
        protocol: Some(ProtocolSpec {
            recv_ready: io::RECV_READY,
            recv_desc: vec![io::RECV_DESC_LO, io::RECV_DESC_DATA],
            recv_release: io::RECV_RELEASE,
            send_stage: io::SEND_DESC_LO,
            send_commit: io::SEND_DESC_DATA,
            dma_host_addr: io::DMA_HOST_ADDR,
            dma_local_addr: io::DMA_LOCAL_ADDR,
            dma_len: io::DMA_LEN,
            dma_ctrl: io::DMA_CTRL,
            dma_status: io::DMA_STATUS,
        }),
        cost: CostModel::default(),
        pmem_wait_cycles: PMEM_WAIT_CYCLES,
        accel_read_wait_cycles: ACCEL_READ_WAIT_CYCLES,
    }
}

/// The interconnect register table, with directions matching the RPU's
/// `io_read`/`io_write` dispatch (reads of write-only registers return 0,
/// writes to read-only registers vanish — exactly the silent bugs the
/// analyzer exists to catch).
fn io_reg_table() -> Vec<MmioReg> {
    fn r(offset: u32, name: &'static str) -> MmioReg {
        MmioReg {
            offset,
            name,
            readable: true,
            writable: false,
        }
    }
    fn w(offset: u32, name: &'static str) -> MmioReg {
        MmioReg {
            offset,
            name,
            readable: false,
            writable: true,
        }
    }
    fn rw(offset: u32, name: &'static str) -> MmioReg {
        MmioReg {
            offset,
            name,
            readable: true,
            writable: true,
        }
    }
    vec![
        r(io::RECV_READY, "RECV_READY"),
        r(io::RECV_DESC_LO, "RECV_DESC_LO"),
        r(io::RECV_DESC_DATA, "RECV_DESC_DATA"),
        w(io::RECV_RELEASE, "RECV_RELEASE"),
        w(io::SEND_DESC_LO, "SEND_DESC_LO"),
        w(io::SEND_DESC_DATA, "SEND_DESC_DATA"),
        rw(io::STATUS, "STATUS"),
        w(io::DEBUG_OUT_L, "DEBUG_OUT_L"),
        w(io::DEBUG_OUT_H, "DEBUG_OUT_H"),
        r(io::TIMER_L, "TIMER_L"),
        r(io::TIMER_H, "TIMER_H"),
        w(io::MASKS, "MASKS"),
        r(io::HOST_IN_L, "HOST_IN_L"),
        r(io::HOST_IN_H, "HOST_IN_H"),
        r(io::BCAST_NOTIFY, "BCAST_NOTIFY"),
        r(io::BCAST_FREE, "BCAST_FREE"),
        w(io::TIMER_CMP, "TIMER_CMP"),
        w(io::DMA_HOST_ADDR, "DMA_HOST_ADDR"),
        w(io::DMA_LOCAL_ADDR, "DMA_LOCAL_ADDR"),
        w(io::DMA_LEN, "DMA_LEN"),
        w(io::DMA_CTRL, "DMA_CTRL"),
        r(io::DMA_STATUS, "DMA_STATUS"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rosebud_riscv::{assemble, Analyzer};

    #[test]
    fn spec_matches_the_rpu_bus_dispatch() {
        let spec = machine_spec(&RosebudConfig::with_rpus(1));
        // The strict IO window ends exactly where the accelerator window
        // begins, and the accelerator window ends at the broadcast region.
        assert_eq!(spec.io_base + spec.io_window_bytes, spec.accel.base);
        assert_eq!(spec.accel.base + spec.accel.bytes, spec.bcast.base);
        // Every register offset is word-aligned and inside the window.
        for reg in &spec.io_regs {
            assert_eq!(reg.offset % 4, 0, "{}", reg.name);
            assert!(reg.offset < spec.io_window_bytes);
        }
    }

    #[test]
    fn protocol_spec_agrees_with_the_io_table() {
        let spec = machine_spec(&RosebudConfig::with_rpus(1));
        let proto = spec.protocol.clone().expect("protocol table is wired in");
        let dir = |off: u32| {
            let reg = spec
                .io_regs
                .iter()
                .find(|r| r.offset == off)
                .unwrap_or_else(|| panic!("protocol offset 0x{off:02x} not in IO table"));
            (reg.readable, reg.writable)
        };
        // Every automaton register is a real register with the direction
        // the automaton's trigger (load vs. store) requires.
        assert_eq!(dir(proto.recv_ready).0, true);
        for &d in &proto.recv_desc {
            assert_eq!(dir(d).0, true);
        }
        assert_eq!(dir(proto.recv_release).1, true);
        assert_eq!(dir(proto.send_stage).1, true);
        assert_eq!(dir(proto.send_commit).1, true);
        for off in [
            proto.dma_host_addr,
            proto.dma_local_addr,
            proto.dma_len,
            proto.dma_ctrl,
        ] {
            assert_eq!(dir(off).1, true);
        }
        assert_eq!(dir(proto.dma_status).0, true);
    }

    #[test]
    fn doc_example_forwarder_lints_clean() {
        let spec = machine_spec(&RosebudConfig::with_rpus(1));
        let image = assemble(
            "
            .equ IO, 0x02000000
                li t0, IO
                li t2, 0x01000000
            poll:
                lw a0, 0x00(t0)
                beqz a0, poll
                lw a1, 0x04(t0)
                lw a2, 0x08(t0)
                sw zero, 0x0c(t0)
                xor a1, a1, t2
                sw a1, 0x10(t0)
                sw a2, 0x14(t0)
                j poll
            ",
        )
        .unwrap();
        let report = Analyzer::new(spec).check(&image);
        assert!(!report.has_errors(), "{}", report.render("forwarder"));
    }
}
