//! The parallel kernel's worker pool: persistent threads that run the fused
//! lane phase for contiguous batches of lanes, one cycle at a time.
//!
//! Ownership of each [`Lane`] (`Box`ed, so moves are pointer-sized) is
//! transferred to a worker over a channel at the start of the cycle's lane
//! phase and transferred back before the barrier. Exactly one thread ever
//! touches a lane at a time, so no locking or `unsafe` is needed — the
//! type system enforces the race-freedom the determinism argument needs.
//!
//! Scheduling (which worker advances which lanes) is invisible in results:
//! lanes record shared effects in their [`LaneFx`](crate::lane::LaneFx) and
//! the coordinator replays them in lane order at the barrier. The partition
//! is rebalanced at most once per scheduling quantum, from per-lane firmware
//! cycle counts — simulation state, so the schedule itself is reproducible.

// Lanes cross thread boundaries boxed on purpose: a `Box<Lane>` move is
// pointer-sized, where a bare `Lane` move would memcpy the whole lane
// (packet memory included) into and out of every channel message.
#![allow(clippy::vec_box)]

use std::ops::Range;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use rosebud_kernel::{partition, Cycle};

use crate::lane::{lane_phase, Lane};

/// A batch of lanes for one cycle: first lane index, the lanes, the cycle.
type Job = (usize, Vec<Box<Lane>>, Cycle);

pub(crate) struct WorkerPool {
    to_workers: Vec<Sender<Job>>,
    from_workers: Receiver<(usize, Vec<Box<Lane>>)>,
    /// Keeps worker threads joinable; they exit when their sender drops.
    _handles: Vec<JoinHandle<()>>,
    /// Current contiguous lane ranges, one per busy worker.
    parts: Vec<Range<usize>>,
    /// Per-lane firmware cycle counters at the last rebalance.
    last_sw: Vec<u64>,
    /// Scheduling quantum in cycles.
    quantum: u32,
}

impl WorkerPool {
    pub(crate) fn new(workers: usize, num_lanes: usize, quantum: u32) -> Self {
        let workers = workers.max(1).min(num_lanes.max(1));
        let (done_tx, from_workers) = channel::<(usize, Vec<Box<Lane>>)>();
        let mut to_workers = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = channel::<Job>();
            let done = done_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rosebud-lane-{w}"))
                    .spawn(move || {
                        while let Ok((start, mut batch, now)) = rx.recv() {
                            for lane in &mut batch {
                                lane_phase(lane, now);
                            }
                            if done.send((start, batch)).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("spawn lane worker"),
            );
            to_workers.push(tx);
        }
        Self {
            to_workers,
            from_workers,
            _handles: handles,
            parts: partition(&vec![1; num_lanes], workers),
            last_sw: vec![0; num_lanes],
            quantum: quantum.max(1),
        }
    }

    /// Re-partitions lanes across workers from the firmware cycles each lane
    /// retired during the last quantum. Runs at most once per quantum;
    /// affects scheduling only, never results.
    pub(crate) fn maybe_rebalance(&mut self, lanes: &[Box<Lane>], now: Cycle) {
        if now == 0 || !now.is_multiple_of(u64::from(self.quantum)) {
            return;
        }
        let weights: Vec<u64> = lanes
            .iter()
            .enumerate()
            .map(|(r, l)| l.rpu.sw_cycles().saturating_sub(self.last_sw[r]))
            .collect();
        self.parts = partition(&weights, self.to_workers.len());
        for (r, l) in lanes.iter().enumerate() {
            self.last_sw[r] = l.rpu.sw_cycles();
        }
    }

    /// Runs the lane phase for cycle `now` across the pool and waits for
    /// every lane to return (the cycle barrier).
    pub(crate) fn run_cycle(&mut self, lanes: &mut Vec<Box<Lane>>, now: Cycle) {
        let n = lanes.len();
        let mut rest = std::mem::take(lanes);
        // Carve contiguous batches back to front so indices stay valid.
        let mut batches: Vec<(usize, Vec<Box<Lane>>)> = Vec::with_capacity(self.parts.len());
        for part in self.parts.iter().rev() {
            batches.push((part.start, rest.split_off(part.start)));
        }
        debug_assert!(rest.is_empty());
        batches.reverse();
        let k = batches.len();
        for ((start, batch), tx) in batches.into_iter().zip(&self.to_workers) {
            tx.send((start, batch, now)).expect("lane worker alive");
        }
        let mut done: Vec<(usize, Vec<Box<Lane>>)> = (0..k)
            .map(|_| self.from_workers.recv().expect("lane worker alive"))
            .collect();
        done.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(n);
        for (_, mut batch) in done {
            out.append(&mut batch);
        }
        debug_assert_eq!(out.len(), n);
        *lanes = out;
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.to_workers.len())
            .field("parts", &self.parts)
            .finish()
    }
}
