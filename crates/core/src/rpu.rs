//! The Reconfigurable Packet-processing Unit (paper §3.1, §4.1).
//!
//! An RPU is a RISC-V core plus custom accelerators inside a partially
//! reconfigurable FPGA block, glued by a tailored memory subsystem:
//!
//! * small single-cycle BRAM instruction/data memories dedicated to the core,
//! * a large URAM packet memory shared between the core (one arbitrated
//!   port, core priority) and the accelerators (one exclusive port),
//! * a DMA engine that copies arriving packets into packet memory and their
//!   headers into the core's low-latency data memory,
//! * an interconnect delivering descriptors and carrying control traffic.
//!
//! Firmware runs either on the full RV32IM instruction-set simulator (the
//! `RiscvFirmware` path — real assembled firmware, cycle-accurate) or as
//! *native firmware*: Rust handlers performing the identical architectural
//! actions while charging an explicit cycle cost (used for the Pigasus case
//! study, whose C firmware the paper characterizes in cycles per packet,
//! Fig. 9).

use rosebud_accel::Accelerator;
use rosebud_kernel::{Counters, Fifo};
use rosebud_riscv::{
    decode, AccessSize, Bus, BusFault, BusValue, Cpu, DecodeCache, DecodeCacheStats, Fetched,
    Image, StepResult,
};

use crate::config::RosebudConfig;
use crate::types::memmap::{self, io};
use crate::types::{BcastMsg, Desc, SlotMeta};

/// Wait-states the core pays for each shared-packet-memory access: URAMs are
/// "larger, higher-latency memories" (§4.1) compared to the single-cycle
/// BRAM next to the core.
const PMEM_WAIT_CYCLES: u32 = 1;

/// Native firmware: packet-processing logic with explicit cycle accounting.
///
/// Implementations perform the same architectural actions as firmware on the
/// instruction-set simulator — read descriptors, poke accelerator registers,
/// send packets — and charge their software cost with [`RpuIo::charge`].
pub trait Firmware: Send {
    /// Short name for diagnostics.
    fn name(&self) -> &str {
        "firmware"
    }

    /// Runs once when the RPU boots (slot setup, mask configuration).
    fn boot(&mut self, io: &mut RpuIo<'_>) {
        let _ = io;
    }

    /// Runs every cycle the core is not stalled on previously charged work.
    fn tick(&mut self, io: &mut RpuIo<'_>);

    /// Delivery of an (unmasked) interrupt line.
    fn interrupt(&mut self, line: u8, io: &mut RpuIo<'_>) {
        let _ = (line, io);
    }

    /// `true` when no packet is mid-processing — the eviction drain check
    /// before partial reconfiguration (Appendix A.8).
    fn is_idle(&self) -> bool {
        true
    }
}

/// The core running inside an RPU.
enum Engine {
    /// Nothing loaded; the RPU discards traffic (it should not receive any —
    /// the LB is told to skip unbooted RPUs).
    Empty,
    /// The RV32IM instruction-set simulator.
    Riscv(Box<Cpu>),
    /// Native firmware with explicit cycle accounting.
    Native(Box<dyn Firmware>),
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Empty => f.write_str("Empty"),
            Engine::Riscv(_) => f.write_str("Riscv"),
            Engine::Native(fw) => write!(f, "Native({})", fw.name()),
        }
    }
}

/// Lifecycle state of the partially reconfigurable region (§4.1, A.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpuState {
    /// Processing packets.
    Running,
    /// LB stopped sending; waiting for in-flight packets to drain.
    Draining,
    /// The PR bitstream is being written; the region is inert.
    Reconfiguring {
        /// Cycle at which the reconfiguration completes.
        until: u64,
    },
    /// Halted (ebreak / fault / never booted).
    Stopped,
}

/// The host-sampled hardware performance counters of one RPU (§4.3): where
/// the region's cycles went, alongside the interface counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// Core cycles consumed by firmware (execution + charged stalls).
    pub sw_cycles: u64,
    /// Instructions retired (RV32 `minstret`; ticks for native firmware).
    pub instret: u64,
    /// Cycles the core sat in multi-cycle instruction stalls or charged
    /// native-firmware work — `sw_cycles` minus the issue cycles.
    pub stall_cycles: u64,
    /// Wait-state cycles lost to memory-port contention (the shared URAM
    /// packet-memory port of §4.1). RV32 engines only.
    pub mem_wait_cycles: u64,
    /// Backpressure stalls charged at the interconnect (full egress queue,
    /// full broadcast FIFO).
    pub backpressure_stalls: u64,
    /// Frames DMA-delivered into the region.
    pub rx_frames: u64,
    /// Frames the region committed for egress.
    pub tx_frames: u64,
    /// Frames the region dropped.
    pub drops: u64,
}

/// Memory, queues, and interconnect registers of one RPU — everything both
/// firmware kinds talk to.
pub struct RpuInner {
    id: usize,
    imem: Vec<u8>,
    /// Predecoded mirror of `imem` (host-side fetch shortcut; no
    /// architectural effect). `None` when `cfg.decode_cache` is off.
    icache: Option<DecodeCache>,
    dmem: Vec<u8>,
    pmem: Vec<u8>,
    bcast_mirror: Vec<u8>,
    accel: Option<Box<dyn Accelerator>>,
    rx_queue: Fifo<Desc>,
    tx_queue: Fifo<Desc>,
    slot_meta: Vec<Option<SlotMeta>>,
    status: u32,
    debug_out: Option<u64>,
    debug_out_staged: u32,
    debug_in: u64,
    masks: u32,
    bcast_irq_mask: u32,
    bcast_out: Fifo<BcastMsg>,
    bcast_hw_depth: usize,
    bcast_notify: Fifo<u32>,
    /// Raised-but-undelivered interrupt lines for native firmware.
    native_irqs: u32,
    now: u64,
    /// One-shot watchdog deadline; 0 = disarmed (§3.4 hang detection).
    timer_deadline: u64,
    /// Set by a `TIMER_CMP` write: re-arming (or disarming) the watchdog
    /// acknowledges any pending timer interrupt, `mtimecmp`-style. Consumed
    /// by [`Rpu::tick`], which clears the core's pending line.
    timer_ack: bool,
    /// Staged host-DMA registers and the committed request.
    dma_host_addr: u32,
    dma_local_addr: u32,
    dma_len: u32,
    dma_pending: Option<crate::types::HostDmaReq>,
    dma_busy: bool,
    num_rpus: usize,
    slot_bytes: u32,
    slots: usize,
    counters: Counters,
    send_staged_lo: u32,
    header_slot_bytes: u32,
}

impl std::fmt::Debug for RpuInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RpuInner")
            .field("id", &self.id)
            .field("rx_queue", &self.rx_queue.len())
            .field("tx_queue", &self.tx_queue.len())
            .field("status", &self.status)
            .finish()
    }
}

impl RpuInner {
    fn new(id: usize, cfg: &RosebudConfig) -> Self {
        Self {
            id,
            imem: vec![0; cfg.imem_bytes as usize],
            icache: cfg
                .decode_cache
                .then(|| DecodeCache::new(cfg.imem_bytes as usize)),
            dmem: vec![0; cfg.dmem_bytes as usize],
            pmem: vec![0; cfg.pmem_bytes as usize],
            bcast_mirror: vec![0; memmap::BCAST_BYTES as usize],
            accel: None,
            rx_queue: Fifo::new(cfg.slots_per_rpu.max(1)),
            tx_queue: Fifo::new(cfg.slots_per_rpu.max(4)),
            slot_meta: vec![None; cfg.slots_per_rpu],
            status: 0,
            debug_out: None,
            debug_out_staged: 0,
            debug_in: 0,
            masks: 0,
            bcast_irq_mask: u32::MAX,
            bcast_out: Fifo::new(cfg.bcast_fifo_depth * 4),
            bcast_hw_depth: cfg.bcast_fifo_depth,
            bcast_notify: Fifo::new(64),
            native_irqs: 0,
            now: 0,
            timer_deadline: 0,
            timer_ack: false,
            dma_host_addr: 0,
            dma_local_addr: 0,
            dma_len: 0,
            dma_pending: None,
            dma_busy: false,
            num_rpus: cfg.num_rpus,
            slot_bytes: cfg.slot_bytes,
            slots: cfg.slots_per_rpu,
            counters: Counters::default(),
            send_staged_lo: 0,
            header_slot_bytes: 128,
        }
    }

    /// Packet-memory address of `slot`'s buffer. Slots occupy the upper
    /// region of packet memory, like the firmware's `PKTS_START` layout
    /// (Appendix B).
    pub fn slot_addr(&self, slot: u8) -> u32 {
        let region = self.pmem.len() as u32 - self.slots as u32 * self.slot_bytes;
        memmap::PMEM_BASE + region + u32::from(slot) * self.slot_bytes
    }

    /// Data-memory address of `slot`'s low-latency header copy.
    pub fn header_slot_addr(&self, slot: u8) -> u32 {
        memmap::DMEM_BASE + (self.dmem.len() as u32 / 2) + u32::from(slot) * self.header_slot_bytes
    }

    fn io_read(&mut self, offset: u32) -> u32 {
        match offset {
            io::RECV_READY => u32::from(!self.rx_queue.is_empty()),
            io::RECV_DESC_LO => self.rx_queue.front().map_or(0, Desc::pack_lo),
            io::RECV_DESC_DATA => self.rx_queue.front().map_or(0, |d| d.data),
            io::STATUS => self.status,
            io::TIMER_L => self.now as u32,
            io::TIMER_H => (self.now >> 32) as u32,
            io::HOST_IN_L => self.debug_in as u32,
            io::HOST_IN_H => (self.debug_in >> 32) as u32,
            io::BCAST_NOTIFY => self.bcast_notify.pop().unwrap_or(u32::MAX),
            io::BCAST_FREE => self.bcast_out.free() as u32,
            io::DMA_STATUS => u32::from(self.dma_busy || self.dma_pending.is_some()),
            _ => 0,
        }
    }

    fn io_write(&mut self, offset: u32, value: u32) {
        match offset {
            io::RECV_RELEASE => {
                let _ = self.rx_queue.pop();
            }
            io::SEND_DESC_LO => self.send_staged_lo = value,
            io::SEND_DESC_DATA => {
                let desc = Desc::from_words(self.send_staged_lo, value);
                if self.tx_queue.push(desc).is_err() {
                    // Backpressure: hardware would stall the store; account
                    // it as a stall and drop — firmware written against this
                    // model checks queue space via counters.
                    self.counters.count_stall(1);
                    self.counters.count_drop();
                }
            }
            io::STATUS => self.status = value,
            io::DEBUG_OUT_L => self.debug_out_staged = value,
            io::DEBUG_OUT_H => {
                self.debug_out = Some(u64::from(value) << 32 | u64::from(self.debug_out_staged));
            }
            io::MASKS => self.masks = value,
            io::TIMER_CMP => {
                self.timer_deadline = if value == 0 {
                    0
                } else {
                    self.now + u64::from(value)
                };
                // Re-arming acknowledges a pending timer interrupt.
                self.timer_ack = true;
            }
            io::DMA_HOST_ADDR => self.dma_host_addr = value,
            io::DMA_LOCAL_ADDR => self.dma_local_addr = value,
            io::DMA_LEN => self.dma_len = value,
            io::DMA_CTRL if (value == 1 || value == 2) => {
                self.dma_pending = Some(crate::types::HostDmaReq {
                    host_addr: self.dma_host_addr,
                    local_addr: self.dma_local_addr,
                    len: self.dma_len,
                    to_host: value == 1,
                });
                self.dma_busy = true;
            }
            _ => {}
        }
    }

    /// Writes a word into the broadcast outbox, returning the cycles the
    /// writing core blocks. "A write to the broadcast memory region will be
    /// blocked until there is room in the FIFO" (§6.3): the 18-entry FIFO
    /// (16 + 2 PR border registers) drains one entry per round-robin grant,
    /// i.e. every `num_rpus` cycles, so each entry beyond the hardware depth
    /// costs the writer one full grant period.
    fn bcast_write(&mut self, offset: u32, value: u32) -> u32 {
        let msg = BcastMsg {
            from: self.id,
            offset,
            value,
            sent_at: self.now,
        };
        let word = offset as usize & !3;
        self.bcast_mirror[word..word + 4].copy_from_slice(&value.to_le_bytes());
        if self.bcast_out.push(msg).is_err() {
            // The backing queue is sized 4× the hardware depth; hitting its
            // end means the writer mis-modelled its stalls. Account a drop.
            self.counters.count_drop();
            return self.num_rpus as u32;
        }
        let over = self.bcast_out.len().saturating_sub(self.bcast_hw_depth);
        let wait = (over as u32) * self.num_rpus as u32;
        if wait > 0 {
            self.counters.count_stall(u64::from(wait));
        }
        wait
    }

    /// Delivery of a broadcast message (all RPUs simultaneously, §4.4).
    pub(crate) fn deliver_bcast(&mut self, msg: &BcastMsg) -> bool {
        let word = msg.offset as usize & !3;
        if word + 4 > self.bcast_mirror.len() {
            return false;
        }
        self.bcast_mirror[word..word + 4].copy_from_slice(&msg.value.to_le_bytes());
        let _ = self.bcast_notify.push(msg.offset);
        // Interrupt only if the target word is unmasked.
        let bit = (msg.offset >> 2) & 31;
        self.bcast_irq_mask & (1 << bit) != 0
    }

    pub(crate) fn pop_bcast(&mut self) -> Option<BcastMsg> {
        self.bcast_out.pop()
    }

    pub(crate) fn take_dma_req(&mut self) -> Option<crate::types::HostDmaReq> {
        self.dma_pending.take()
    }

    /// `true` while a committed host-DMA request awaits the PCIe stage.
    pub(crate) fn has_dma_req(&self) -> bool {
        self.dma_pending.is_some()
    }

    pub(crate) fn dma_complete(&mut self) {
        self.dma_busy = false;
    }

    /// Copies out of packet memory by absolute address (DMA engine path).
    pub(crate) fn pmem_copy_out(&self, addr: u32, len: u32) -> Vec<u8> {
        let at = addr.saturating_sub(memmap::PMEM_BASE) as usize;
        let end = (at + len as usize).min(self.pmem.len());
        self.pmem[at.min(self.pmem.len())..end].to_vec()
    }

    /// Copies into packet memory by absolute address (DMA engine path).
    pub(crate) fn pmem_copy_in(&mut self, addr: u32, bytes: &[u8]) {
        let at = addr.saturating_sub(memmap::PMEM_BASE) as usize;
        let end = (at + bytes.len()).min(self.pmem.len());
        if at < end {
            self.pmem[at..end].copy_from_slice(&bytes[..end - at]);
        }
    }

    /// `true` when the one-shot watchdog expired this cycle; re-arms to 0.
    pub(crate) fn watchdog_fired(&mut self) -> bool {
        if self.timer_deadline != 0 && self.now >= self.timer_deadline {
            self.timer_deadline = 0;
            true
        } else {
            false
        }
    }

    /// DMA an arriving packet into `slot`: payload into packet memory, the
    /// first 128 bytes into the data-memory header slot (§4.1).
    pub(crate) fn dma_deliver(&mut self, slot: u8, bytes: &[u8], meta: SlotMeta) -> bool {
        let addr = (self.slot_addr(slot) - memmap::PMEM_BASE) as usize;
        let len = bytes.len().min(self.slot_bytes as usize);
        if self.rx_queue.is_full() {
            self.counters.count_drop();
            return false;
        }
        self.pmem[addr..addr + len].copy_from_slice(&bytes[..len]);
        let header_at = (self.header_slot_addr(slot) - memmap::DMEM_BASE) as usize;
        let header_len = len.min(self.header_slot_bytes as usize);
        self.dmem[header_at..header_at + header_len].copy_from_slice(&bytes[..header_len]);
        self.slot_meta[slot as usize] = Some(meta);
        self.counters.count_rx_frame(len as u64);
        let desc = Desc {
            tag: slot,
            len: len as u32,
            port: meta.ingress_port,
            data: self.slot_addr(slot),
        };
        self.rx_queue
            .push(desc)
            .expect("rx_queue fullness checked above");
        true
    }

    /// Pops a committed send: the descriptor, the frame bytes read back from
    /// packet memory, and the slot's metadata.
    pub(crate) fn take_tx(&mut self) -> Option<(Desc, Vec<u8>, Option<SlotMeta>)> {
        let desc = self.tx_queue.pop()?;
        let meta = if desc.tag == crate::types::SELF_TAG {
            None
        } else {
            self.slot_meta.get(desc.tag as usize).copied().flatten()
        };
        if desc.tag != crate::types::SELF_TAG {
            if let Some(slot) = self.slot_meta.get_mut(desc.tag as usize) {
                *slot = None;
            }
        }
        let bytes = if desc.len == 0 {
            Vec::new()
        } else {
            let at = desc.data.checked_sub(memmap::PMEM_BASE).map(|a| a as usize);
            match at {
                Some(at) if at + desc.len as usize <= self.pmem.len() => {
                    self.pmem[at..at + desc.len as usize].to_vec()
                }
                _ => Vec::new(),
            }
        };
        if !bytes.is_empty() {
            self.counters.count_tx_frame(bytes.len() as u64);
        } else {
            self.counters.count_drop();
        }
        Some((desc, bytes, meta))
    }

    /// Host/interconnect counters for this RPU (§4.3).
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// The host-visible status register (§3.4).
    pub fn status(&self) -> u32 {
        self.status
    }

    /// Takes the most recent firmware-written 64-bit debug value, if any.
    pub fn take_debug_out(&mut self) -> Option<u64> {
        self.debug_out.take()
    }

    /// Sets the host→RPU half of the debug channel.
    pub fn set_debug_in(&mut self, value: u64) {
        self.debug_in = value;
    }

    /// Host-initiated store through the same address decode the core uses
    /// (memory loads before boot, debug pokes, Appendix A.6).
    pub(crate) fn host_store(
        &mut self,
        addr: u32,
        value: u32,
        size: AccessSize,
    ) -> Result<u32, BusFault> {
        self.store(addr, value, size)
    }

    /// Raw packet memory (host debugging reads the whole RPU memory, §3.4).
    pub fn pmem(&self) -> &[u8] {
        &self.pmem
    }

    /// Raw data memory.
    pub fn dmem(&self) -> &[u8] {
        &self.dmem
    }

    /// The broadcast-region mirror as this RPU sees it.
    pub fn bcast_mirror(&self) -> &[u8] {
        &self.bcast_mirror
    }

    /// Decoded-instruction-cache counters, when the cache is enabled.
    pub fn decode_cache_stats(&self) -> Option<DecodeCacheStats> {
        self.icache.as_ref().map(DecodeCache::stats)
    }

    fn load(&mut self, addr: u32, size: AccessSize) -> Result<BusValue, BusFault> {
        let n = size.bytes() as usize;
        let read_from = |mem: &[u8], off: u32| -> Result<u32, BusFault> {
            let off = off as usize;
            if off + n > mem.len() {
                return Err(BusFault {
                    addr,
                    is_store: false,
                });
            }
            let mut bytes = [0u8; 4];
            bytes[..n].copy_from_slice(&mem[off..off + n]);
            Ok(u32::from_le_bytes(bytes))
        };
        match addr {
            a if (memmap::BCAST_BASE..memmap::BCAST_BASE + memmap::BCAST_BYTES).contains(&a) => Ok(
                BusValue::fast(read_from(&self.bcast_mirror, a - memmap::BCAST_BASE)?),
            ),
            a if a >= memmap::IO_EXT_BASE => {
                let r = match &mut self.accel {
                    Some(accel) => accel.read_reg(a - memmap::IO_EXT_BASE),
                    None => rosebud_accel::RegRead::fast(0),
                };
                Ok(BusValue {
                    value: r.value,
                    wait_cycles: r.wait_cycles,
                })
            }
            a if a >= memmap::IO_BASE => Ok(BusValue::fast(self.io_read(a - memmap::IO_BASE))),
            a if a >= memmap::PMEM_BASE => Ok(BusValue {
                value: read_from(&self.pmem, a - memmap::PMEM_BASE)?,
                wait_cycles: PMEM_WAIT_CYCLES,
            }),
            a if a >= memmap::DMEM_BASE => Ok(BusValue::fast(read_from(
                &self.dmem,
                a - memmap::DMEM_BASE,
            )?)),
            a => Ok(BusValue::fast(read_from(&self.imem, a)?)),
        }
    }

    fn store(&mut self, addr: u32, value: u32, size: AccessSize) -> Result<u32, BusFault> {
        let n = size.bytes() as usize;
        let bytes = value.to_le_bytes();
        match addr {
            a if (memmap::BCAST_BASE..memmap::BCAST_BASE + memmap::BCAST_BYTES).contains(&a) => {
                Ok(self.bcast_write(a - memmap::BCAST_BASE, value))
            }
            a if a >= memmap::IO_EXT_BASE => {
                if let Some(accel) = &mut self.accel {
                    accel.write_reg(a - memmap::IO_EXT_BASE, value);
                }
                Ok(0)
            }
            a if a >= memmap::IO_BASE => {
                self.io_write(a - memmap::IO_BASE, value);
                Ok(0)
            }
            a if a >= memmap::PMEM_BASE => {
                let off = (a - memmap::PMEM_BASE) as usize;
                if off + n > self.pmem.len() {
                    return Err(BusFault {
                        addr,
                        is_store: true,
                    });
                }
                self.pmem[off..off + n].copy_from_slice(&bytes[..n]);
                Ok(PMEM_WAIT_CYCLES)
            }
            a if a >= memmap::DMEM_BASE => {
                let off = (a - memmap::DMEM_BASE) as usize;
                if off + n > self.dmem.len() {
                    return Err(BusFault {
                        addr,
                        is_store: true,
                    });
                }
                self.dmem[off..off + n].copy_from_slice(&bytes[..n]);
                Ok(0)
            }
            a => {
                // Stores to instruction memory are allowed (the DMA engine
                // loads firmware this way) but unusual from the core.
                let off = a as usize;
                if off + n > self.imem.len() {
                    return Err(BusFault {
                        addr,
                        is_store: true,
                    });
                }
                self.imem[off..off + n].copy_from_slice(&bytes[..n]);
                if let Some(ic) = &mut self.icache {
                    ic.invalidate_bytes(a, n);
                }
                Ok(0)
            }
        }
    }
}

struct InnerBus<'a>(&'a mut RpuInner);

impl Bus for InnerBus<'_> {
    fn load(&mut self, addr: u32, size: AccessSize) -> Result<BusValue, BusFault> {
        self.0.load(addr, size)
    }

    fn store(&mut self, addr: u32, value: u32, size: AccessSize) -> Result<u32, BusFault> {
        self.0.store(addr, value, size)
    }

    fn fetch(&mut self, pc: u32) -> Result<Fetched, BusFault> {
        // Fast path: a word-aligned fetch from instruction memory skips the
        // full address decode and, on a cache hit, the instruction decode.
        // Everything else (misaligned PCs, runaway PCs in other regions)
        // takes the exact uncached path, including its fault values.
        if let Some(ic) = &mut self.0.icache {
            if ic.covers(pc) {
                let at = pc as usize;
                if at + 4 <= self.0.imem.len() {
                    if let Some(instr) = ic.get(pc) {
                        return Ok(Fetched::Decoded(instr));
                    }
                    let word =
                        u32::from_le_bytes(self.0.imem[at..at + 4].try_into().expect("4 bytes"));
                    return match decode(word) {
                        Ok(instr) => {
                            ic.fill(pc, instr);
                            Ok(Fetched::Decoded(instr))
                        }
                        // Never cache illegal words: the core must fault
                        // with the raw word, exactly like the slow path.
                        Err(_) => Ok(Fetched::Word(word)),
                    };
                }
            }
        }
        self.0
            .load(pc, AccessSize::Word)
            .map(|v| Fetched::Word(v.value))
    }
}

/// The I/O surface native firmware programs against: the same interconnect
/// and accelerator interfaces the assembled firmware reaches through MMIO,
/// plus explicit cycle charging.
pub struct RpuIo<'a> {
    inner: &'a mut RpuInner,
    stall: &'a mut u64,
}

impl RpuIo<'_> {
    /// This RPU's index.
    pub fn rpu_id(&self) -> usize {
        self.inner.id
    }

    /// Current cycle (all RPU timers are synchronized, §6.2).
    pub fn now(&self) -> u64 {
        self.inner.now
    }

    /// Charges `cycles` of software execution time.
    pub fn charge(&mut self, cycles: u64) {
        *self.stall += cycles;
    }

    /// `true` when a received descriptor is pending (`in_pkt_ready()`).
    pub fn rx_ready(&self) -> bool {
        !self.inner.rx_queue.is_empty()
    }

    /// The pending descriptor, without consuming it.
    pub fn rx_peek(&self) -> Option<Desc> {
        self.inner.rx_queue.front().copied()
    }

    /// Consumes the pending descriptor (`RECV_DESC_RELEASE = 1`).
    pub fn rx_pop(&mut self) -> Option<Desc> {
        self.inner.rx_queue.pop()
    }

    /// Sends a descriptor out (`pkt_send`). Returns `false` on egress-queue
    /// backpressure.
    pub fn send(&mut self, desc: Desc) -> bool {
        self.inner.tx_queue.push(desc).is_ok()
    }

    /// Reads an accelerator register, charging any wait-states.
    pub fn accel_read(&mut self, offset: u32) -> u32 {
        match &mut self.inner.accel {
            Some(accel) => {
                let r = accel.read_reg(offset);
                *self.stall += u64::from(r.wait_cycles);
                r.value
            }
            None => 0,
        }
    }

    /// Writes an accelerator register.
    pub fn accel_write(&mut self, offset: u32, value: u32) {
        if let Some(accel) = &mut self.inner.accel {
            accel.write_reg(offset, value);
        }
    }

    /// Read-only view of packet memory.
    pub fn pmem(&self) -> &[u8] {
        &self.inner.pmem
    }

    /// Reads `len` bytes at packet-memory address `addr` (absolute, i.e.
    /// `PMEM_BASE`-relative addresses as they appear in descriptors).
    pub fn pmem_read(&self, addr: u32, len: usize) -> &[u8] {
        let at = (addr - memmap::PMEM_BASE) as usize;
        &self.inner.pmem[at..(at + len).min(self.inner.pmem.len())]
    }

    /// Writes bytes at packet-memory address `addr`.
    pub fn pmem_write(&mut self, addr: u32, bytes: &[u8]) {
        let at = (addr - memmap::PMEM_BASE) as usize;
        let end = (at + bytes.len()).min(self.inner.pmem.len());
        self.inner.pmem[at..end].copy_from_slice(&bytes[..end - at]);
    }

    /// The low-latency header copy the DMA engine placed for `slot`.
    pub fn header(&self, slot: u8) -> &[u8] {
        let at = (self.inner.header_slot_addr(slot) - memmap::DMEM_BASE) as usize;
        &self.inner.dmem[at..at + self.inner.header_slot_bytes as usize]
    }

    /// Packet-memory address of `slot`.
    pub fn slot_addr(&self, slot: u8) -> u32 {
        self.inner.slot_addr(slot)
    }

    /// Sets the host-visible status register (§3.4 breakpoints).
    pub fn set_status(&mut self, value: u32) {
        self.inner.status = value;
    }

    /// Writes the 64-bit debug channel to the host.
    pub fn debug_out(&mut self, value: u64) {
        self.inner.debug_out = Some(value);
    }

    /// Reads the 64-bit debug channel from the host.
    pub fn debug_in(&self) -> u64 {
        self.inner.debug_in
    }

    /// Sets the interrupt mask register (`set_masks`).
    pub fn set_masks(&mut self, masks: u32) {
        self.inner.masks = masks;
    }

    /// Writes a word into the semi-coherent broadcast region; it propagates
    /// to every RPU (§4.4). Charges blocking wait when the outbox is full.
    pub fn broadcast(&mut self, offset: u32, value: u32) {
        let wait = self.inner.bcast_write(offset, value);
        *self.stall += u64::from(wait);
    }

    /// Pops the oldest broadcast-delivery notification: the region offset
    /// and the delivered word.
    pub fn bcast_poll(&mut self) -> Option<(u32, u32)> {
        let offset = self.inner.bcast_notify.pop()?;
        let word = offset as usize & !3;
        let value = u32::from_le_bytes(
            self.inner.bcast_mirror[word..word + 4]
                .try_into()
                .expect("4-byte slice"),
        );
        Some((offset, value))
    }

    /// Reads a word from this RPU's broadcast mirror.
    pub fn bcast_read(&self, offset: u32) -> u32 {
        let word = offset as usize & !3;
        u32::from_le_bytes(
            self.inner.bcast_mirror[word..word + 4]
                .try_into()
                .expect("4-byte slice"),
        )
    }

    /// Arms the one-shot watchdog timer: the timer interrupt fires after
    /// `cycles` (§3.4 hang detection). 0 disarms.
    pub fn arm_watchdog(&mut self, cycles: u32) {
        self.inner.io_write(io::TIMER_CMP, cycles);
    }

    /// Starts a DMA of `len` bytes from packet memory (`local_addr`,
    /// absolute) into host DRAM at `host_addr` — the A.8 "save the desired
    /// state to the host" path. Completion raises the DMA interrupt.
    pub fn host_dma_write(&mut self, host_addr: u32, local_addr: u32, len: u32) {
        self.inner.io_write(io::DMA_HOST_ADDR, host_addr);
        self.inner.io_write(io::DMA_LOCAL_ADDR, local_addr);
        self.inner.io_write(io::DMA_LEN, len);
        self.inner.io_write(io::DMA_CTRL, 1);
    }

    /// Starts a DMA of `len` bytes from host DRAM into packet memory —
    /// runtime table loads and post-PR state restore (A.8).
    pub fn host_dma_read(&mut self, host_addr: u32, local_addr: u32, len: u32) {
        self.inner.io_write(io::DMA_HOST_ADDR, host_addr);
        self.inner.io_write(io::DMA_LOCAL_ADDR, local_addr);
        self.inner.io_write(io::DMA_LEN, len);
        self.inner.io_write(io::DMA_CTRL, 2);
    }

    /// `true` while a host DMA is in flight.
    pub fn host_dma_busy(&self) -> bool {
        self.inner.dma_busy || self.inner.dma_pending.is_some()
    }
}

/// One RPU: memories + core + accelerator + partial-reconfiguration state.
pub struct Rpu {
    inner: RpuInner,
    engine: Engine,
    stall: u64,
    state: RpuState,
    /// Firmware cycles spent and packets handled (Fig. 9 accounting).
    sw_cycles: u64,
    /// Share of `sw_cycles` spent consuming stall cycles rather than issuing.
    stalled_cycles: u64,
    /// Per-PC cycle attribution, when profiling is enabled (§4.3 firmware
    /// profile). `BTreeMap` for deterministic iteration order.
    profile: Option<std::collections::BTreeMap<u32, u64>>,
    pub(crate) boot_image: Option<Image>,
    /// Injected-fault wedge: the core spins without retiring useful work
    /// (§3.4 — the hang class the watchdog exists to catch).
    hung: bool,
    /// Injected-fault trap: treated as halted regardless of engine kind.
    crashed: bool,
    /// Host-visible count of watchdog expirations (detection signal).
    watchdog_fires: u64,
}

impl std::fmt::Debug for Rpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rpu")
            .field("id", &self.inner.id)
            .field("state", &self.state)
            .field("engine", &self.engine)
            .finish()
    }
}

impl Rpu {
    pub(crate) fn new(id: usize, cfg: &RosebudConfig) -> Self {
        Self {
            inner: RpuInner::new(id, cfg),
            engine: Engine::Empty,
            stall: 0,
            state: RpuState::Stopped,
            sw_cycles: 0,
            stalled_cycles: 0,
            profile: None,
            boot_image: None,
            hung: false,
            crashed: false,
            watchdog_fires: 0,
        }
    }

    /// This RPU's index.
    pub fn id(&self) -> usize {
        self.inner.id
    }

    /// The PR/lifecycle state.
    pub fn state(&self) -> RpuState {
        self.state
    }

    /// Access to memories, queues and registers.
    pub fn inner(&self) -> &RpuInner {
        &self.inner
    }

    pub(crate) fn inner_mut(&mut self) -> &mut RpuInner {
        &mut self.inner
    }

    /// Installs an accelerator into the PR region.
    pub fn set_accelerator(&mut self, accel: Box<dyn Accelerator>) {
        self.inner.accel = Some(accel);
    }

    /// The installed accelerator, if any.
    pub fn accelerator(&self) -> Option<&dyn Accelerator> {
        self.inner.accel.as_deref()
    }

    /// Mutable access to the installed accelerator (host-side table loads).
    pub fn accelerator_mut(&mut self) -> Option<&mut (dyn Accelerator + '_)> {
        match &mut self.inner.accel {
            Some(b) => Some(&mut **b),
            None => None,
        }
    }

    /// Loads an assembled firmware image into instruction memory and boots
    /// the RV32 core at the image base.
    pub fn load_riscv(&mut self, image: &Image) {
        let bytes = image.bytes();
        let base = image.base() as usize;
        self.inner.imem[base..base + bytes.len()].copy_from_slice(&bytes);
        if let Some(ic) = &mut self.inner.icache {
            ic.clear();
            ic.predecode(image.base(), image.words());
        }
        self.boot_image = Some(image.clone());
        let mut cpu = Box::new(Cpu::new(image.base()));
        cpu.raise_irq(31); // reserved line kept clear; ensures mip plumbed
        cpu.clear_irq(31);
        // A stale watchdog acknowledgement must not carry into a fresh boot.
        self.inner.timer_ack = false;
        self.engine = Engine::Riscv(cpu);
        self.hung = false;
        self.crashed = false;
        self.state = RpuState::Running;
    }

    /// Installs native firmware and runs its boot hook.
    pub fn load_native(&mut self, mut firmware: Box<dyn Firmware>) {
        let mut io = RpuIo {
            inner: &mut self.inner,
            stall: &mut self.stall,
        };
        firmware.boot(&mut io);
        self.engine = Engine::Native(firmware);
        self.hung = false;
        self.crashed = false;
        self.state = RpuState::Running;
    }

    /// Raises interrupt `line`, subject to the firmware's mask register.
    pub fn raise_irq(&mut self, line: u8) {
        if self.inner.masks & (1 << line) == 0 && line >= 4 {
            return; // evict/poke respect set_masks (Appendix B/C)
        }
        match &mut self.engine {
            Engine::Riscv(cpu) => cpu.raise_irq(line),
            Engine::Native(_) => self.inner.native_irqs |= 1 << line,
            Engine::Empty => {}
        }
    }

    /// Begins the drain phase before partial reconfiguration: the system has
    /// already told the LB to stop sending here; the RPU finishes in-flight
    /// work. Also raises the eviction interrupt (A.8).
    pub fn start_drain(&mut self) {
        self.state = RpuState::Draining;
        self.raise_irq(crate::types::irq::EVICT);
    }

    /// `true` when all queues are empty and the accelerator is idle.
    pub fn is_drained(&self) -> bool {
        let fw_idle = match &self.engine {
            Engine::Native(fw) => fw.is_idle(),
            Engine::Riscv(_) => true, // assembled firmware drains its slots
            Engine::Empty => true,
        };
        self.inner.rx_queue.is_empty()
            && self.inner.tx_queue.is_empty()
            && fw_idle
            && self.inner.accel.as_ref().is_none_or(|a| !a.is_busy())
    }

    /// Enters the reconfiguring state until cycle `until`; the region is
    /// inert and the old engine is discarded.
    pub fn begin_reconfigure(&mut self, until: u64) {
        self.state = RpuState::Reconfiguring { until };
        self.engine = Engine::Empty;
        self.stall = 0;
        // The PR bitstream wipes the region: injected wedges go with it,
        // and the fresh region starts with a clean watchdog history.
        self.hung = false;
        self.crashed = false;
        self.watchdog_fires = 0;
        // The next firmware load re-predecodes; drop stale entries now so a
        // host that pokes instruction memory mid-reconfigure cannot race a
        // live cache.
        if let Some(ic) = &mut self.inner.icache {
            ic.clear();
        }
        if let Some(accel) = &mut self.inner.accel {
            accel.reset();
        }
    }

    /// Total firmware cycles consumed (for cycles-per-packet accounting).
    pub fn sw_cycles(&self) -> u64 {
        self.sw_cycles
    }

    /// Snapshot of the host-visible hardware performance counters (§4.3).
    pub fn perf(&self) -> PerfCounters {
        let c = self.inner.counters();
        let (instret, mem_wait_cycles) = match &self.engine {
            Engine::Riscv(cpu) => (cpu.instret(), cpu.mem_wait_cycles()),
            Engine::Native(_) => (self.sw_cycles - self.stalled_cycles, 0),
            Engine::Empty => (0, 0),
        };
        PerfCounters {
            sw_cycles: self.sw_cycles,
            instret,
            stall_cycles: self.stalled_cycles,
            mem_wait_cycles,
            backpressure_stalls: c.stall_cycles,
            rx_frames: c.rx_frames,
            tx_frames: c.tx_frames,
            drops: c.drops,
        }
    }

    /// Turns on per-PC cycle attribution for the RV32 engine. Idempotent;
    /// the accumulated profile survives reloads (it is host-side state).
    pub fn enable_profiling(&mut self) {
        if self.profile.is_none() {
            self.profile = Some(std::collections::BTreeMap::new());
        }
    }

    /// The per-PC cycle profile: cycles charged at each program counter.
    /// `None` until [`Rpu::enable_profiling`]; empty for native firmware
    /// (which has no PCs to attribute).
    pub fn pc_profile(&self) -> Option<&std::collections::BTreeMap<u32, u64>> {
        self.profile.as_ref()
    }

    /// Whether the core halted on `ebreak` or a fault.
    pub fn is_halted(&self) -> bool {
        if self.crashed {
            return true;
        }
        match &self.engine {
            Engine::Riscv(cpu) => cpu.is_halted(),
            _ => false,
        }
    }

    /// Whether an injected hang has wedged the firmware. This is a
    /// diagnostic oracle for tests and snapshots; the supervisor must not
    /// use it — it *infers* hangs from the watchdog counter and frozen
    /// progress, which is the point of the exercise.
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// Count of watchdog expirations since boot — part of the host-visible
    /// counter block the supervisor polls (§3.4).
    pub fn watchdog_fires(&self) -> u64 {
        self.watchdog_fires
    }

    /// Fault injection: wedge the firmware. The core keeps "executing" (from
    /// the outside it looks busy) but never again retires useful work, pops
    /// a descriptor, or re-arms its watchdog.
    pub(crate) fn force_hang(&mut self) {
        if matches!(self.state, RpuState::Running | RpuState::Draining) {
            self.hung = true;
        }
    }

    /// Fault injection: crash the firmware as if it trapped on an illegal
    /// instruction — the region halts and the halt flag goes host-visible.
    pub(crate) fn force_crash(&mut self) {
        if matches!(self.state, RpuState::Running | RpuState::Draining) {
            self.crashed = true;
            self.state = RpuState::Stopped;
        }
    }

    /// Forced eviction (A.8 failure path): destroys every in-flight
    /// descriptor and slot binding inside the region. Returns the number of
    /// packets destroyed. Only meaningful right before `begin_reconfigure`
    /// on a region that will not drain on its own.
    pub(crate) fn purge(&mut self) -> usize {
        let mut n = self.inner.rx_queue.flush();
        n += self.inner.tx_queue.flush();
        for slot in &mut self.inner.slot_meta {
            *slot = None;
        }
        n
    }

    /// Read access to the RV32 core, when this RPU runs assembled firmware
    /// (host debugger register inspection, §3.4).
    pub fn cpu(&self) -> Option<&Cpu> {
        match &self.engine {
            Engine::Riscv(cpu) => Some(cpu),
            _ => None,
        }
    }

    /// The first cycle at which a [`Rpu::tick`] could change any state,
    /// assuming no external event (raised interrupt, ingress delivery, host
    /// access, fault injection) arrives first — or `0` when the RPU must
    /// tick every cycle. The parallel kernel uses this to elide ticks of
    /// provably inert lanes; every external event re-wakes the lane, so a
    /// conservative `0` is always safe while a too-large horizon is a
    /// determinism bug the differential suite exists to catch.
    ///
    /// The armed watchdog caps every horizon: its expiry is the one
    /// self-generated event an otherwise-inert RPU can produce.
    pub(crate) fn quiet_horizon(&self) -> u64 {
        // An accelerator streams every cycle regardless of the core.
        if self.inner.accel.is_some() {
            return 0;
        }
        let wd = if self.inner.timer_deadline != 0 {
            self.inner.timer_deadline
        } else {
            u64::MAX
        };
        // Inert-by-state regions: `tick` early-returns before touching the
        // core (the `now >= until` case also returns — the host completes
        // the boot via `finish_reconfigure`, which wakes the lane).
        if matches!(self.state, RpuState::Reconfiguring { .. }) || self.hung {
            return wd;
        }
        // A stall tail mutates the cycle counters every tick, and a queued
        // committed send keeps stage 6 busy.
        if self.stall != 0 || !self.inner.tx_queue.is_empty() {
            return 0;
        }
        match &self.engine {
            Engine::Empty => wd,
            Engine::Native(_) => 0, // native `tick` hooks are arbitrary
            Engine::Riscv(cpu) => {
                if cpu.is_parked() {
                    wd
                } else {
                    0
                }
            }
        }
    }

    /// Advances one clock cycle: core, then accelerator.
    pub(crate) fn tick(&mut self, now: u64) {
        self.inner.now = now;
        if self.inner.watchdog_fired() {
            self.watchdog_fires += 1;
            self.raise_irq(crate::types::irq::TIMER);
        }
        if let RpuState::Reconfiguring { until } = self.state {
            if now < until {
                return;
            }
            // The host completes the boot via `System::finish_reconfigure`;
            // until then the region stays inert.
            return;
        }
        if self.hung {
            // Wedged firmware: the core spins, the accelerator finishes what
            // it was already doing, nothing else happens. The armed watchdog
            // (checked above) is the escape hatch.
            if let Some(accel) = &mut self.inner.accel {
                accel.tick(&self.inner.pmem);
            }
            return;
        }

        // Core.
        if self.stall > 0 {
            self.stall -= 1;
            self.sw_cycles += 1;
            self.stalled_cycles += 1;
        } else {
            match &mut self.engine {
                Engine::Riscv(cpu) => {
                    // A TIMER_CMP write since the last step (host-side
                    // watchdog pet) acknowledges the pending timer line.
                    if self.inner.timer_ack {
                        self.inner.timer_ack = false;
                        cpu.clear_irq(crate::types::irq::TIMER);
                    }
                    let pc = cpu.pc();
                    let mut bus = InnerBus(&mut self.inner);
                    match cpu.step(&mut bus) {
                        StepResult::Executed { cycles } => {
                            self.stall += u64::from(cycles.saturating_sub(1));
                            self.sw_cycles += 1;
                            if let Some(profile) = &mut self.profile {
                                // Attribute the instruction's full cost here;
                                // the stall-consumption ticks that follow are
                                // this same instruction's tail.
                                *profile.entry(pc).or_insert(0) += u64::from(cycles);
                            }
                        }
                        StepResult::Ecall => {
                            self.sw_cycles += 1;
                        }
                        StepResult::WaitingForInterrupt => {}
                        StepResult::Break | StepResult::Fault(_) => {
                            self.state = RpuState::Stopped;
                        }
                    }
                    // The step itself may have re-armed the watchdog; the
                    // write acknowledges the pending line at write time.
                    if self.inner.timer_ack {
                        self.inner.timer_ack = false;
                        cpu.clear_irq(crate::types::irq::TIMER);
                    }
                }
                Engine::Native(fw) => {
                    let mut io = RpuIo {
                        inner: &mut self.inner,
                        stall: &mut self.stall,
                    };
                    // Deliver pending unmasked interrupts first.
                    let pending = io.inner.native_irqs;
                    if pending != 0 {
                        io.inner.native_irqs = 0;
                        for line in 0..32 {
                            if pending & (1 << line) != 0 {
                                fw.interrupt(line, &mut io);
                            }
                        }
                    }
                    fw.tick(&mut io);
                    self.sw_cycles += 1;
                    // Native interrupts are delivered eagerly above; the ack
                    // flag must still be consumed so it cannot leak into a
                    // later RV32 reload.
                    self.inner.timer_ack = false;
                }
                Engine::Empty => {}
            }
        }

        // Accelerator streams from its exclusive packet-memory port.
        if let Some(accel) = &mut self.inner.accel {
            accel.tick(&self.inner.pmem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::port;
    use rosebud_riscv::assemble;

    fn cfg() -> RosebudConfig {
        RosebudConfig::with_rpus(4)
    }

    fn meta(id: u64) -> SlotMeta {
        SlotMeta {
            packet_id: id,
            ts_gen: 0,
            ingress_port: 0,
            orig_len: 64,
        }
    }

    #[test]
    fn dma_places_packet_and_header() {
        let mut rpu = Rpu::new(0, &cfg());
        let frame: Vec<u8> = (0..200u32).map(|i| i as u8).collect();
        assert!(rpu.inner_mut().dma_deliver(2, &frame, meta(7)));
        let addr = (rpu.inner().slot_addr(2) - memmap::PMEM_BASE) as usize;
        assert_eq!(&rpu.inner().pmem()[addr..addr + 200], &frame[..]);
        // Header copy: first 128 bytes land in dmem.
        let h = (rpu.inner().header_slot_addr(2) - memmap::DMEM_BASE) as usize;
        assert_eq!(&rpu.inner().dmem()[h..h + 128], &frame[..128]);
    }

    /// The forwarder firmware of §6.1 in our assembly: poll for a packet,
    /// flip the port bit, send it back.
    fn forwarder_asm() -> String {
        "
            .equ IO, 0x02000000
                li t0, IO
                li t2, 0x01000000        # port field XOR mask (bit 24)
            poll:
                lw a0, 0x00(t0)          # RECV_READY
                beqz a0, poll
                lw a1, 0x04(t0)          # RECV_DESC_LO
                lw a2, 0x08(t0)          # RECV_DESC_DATA
                sw zero, 0x0c(t0)        # RECV_RELEASE
                xor a1, a1, t2           # swap egress port
                sw a1, 0x10(t0)          # SEND_DESC_LO
                sw a2, 0x14(t0)          # SEND_DESC_DATA (commit)
                j poll
            "
        .to_string()
    }

    #[test]
    fn riscv_forwarder_round_trips_a_packet() {
        let mut rpu = Rpu::new(0, &cfg());
        let image = assemble(&forwarder_asm()).unwrap();
        rpu.load_riscv(&image);
        let frame = vec![0xabu8; 64];
        rpu.inner_mut().dma_deliver(0, &frame, meta(1));
        for now in 0..100 {
            rpu.tick(now);
        }
        let (desc, bytes, m) = rpu.inner_mut().take_tx().expect("packet forwarded");
        assert_eq!(desc.port, 1, "port flipped 0 -> 1");
        assert_eq!(bytes, frame);
        assert_eq!(m.unwrap().packet_id, 1);
    }

    #[test]
    fn forwarder_loop_is_about_16_cycles_per_packet() {
        // §6.1: "the minimum time for our packet forwarder to read a
        // descriptor and send it back is 16 cycles".
        let mut rpu = Rpu::new(0, &cfg());
        rpu.load_riscv(&assemble(&forwarder_asm()).unwrap());
        // Warm up.
        for now in 0..200 {
            rpu.tick(now);
        }
        // Keep the RPU saturated and measure packets over a window.
        let frame = vec![0u8; 64];
        let mut sent = 0u64;
        let window = 1600;
        for now in 200..200 + window {
            // Top up the rx queue.
            for slot in 0..8 {
                if rpu.inner().rx_queue.iter().all(|d| d.tag != slot)
                    && rpu.inner().slot_meta[slot as usize].is_none()
                {
                    rpu.inner_mut().dma_deliver(slot, &frame, meta(0));
                }
            }
            rpu.tick(now);
            while rpu.inner_mut().take_tx().is_some() {
                sent += 1;
            }
        }
        let cycles_per_packet = window as f64 / sent as f64;
        assert!(
            (12.0..=20.0).contains(&cycles_per_packet),
            "forwarder took {cycles_per_packet} cycles/packet, expected ~16"
        );
    }

    #[test]
    fn native_firmware_charge_paces_execution() {
        struct Fw {
            handled: u64,
        }
        impl Firmware for Fw {
            fn tick(&mut self, io: &mut RpuIo<'_>) {
                if let Some(desc) = io.rx_pop() {
                    self.handled += 1;
                    io.send(Desc {
                        port: desc.port ^ 1,
                        ..desc
                    });
                    io.charge(15); // 1 (this tick) + 15 = 16 cycles/packet
                }
            }
        }
        let mut rpu = Rpu::new(0, &cfg());
        rpu.load_native(Box::new(Fw { handled: 0 }));
        let frame = vec![0u8; 64];
        let mut sent = 0;
        for now in 0..320 {
            for slot in 0..4 {
                if rpu.inner().slot_meta[slot as usize].is_none() {
                    rpu.inner_mut().dma_deliver(slot, &frame, meta(0));
                }
            }
            rpu.tick(now);
            while rpu.inner_mut().take_tx().is_some() {
                sent += 1;
            }
        }
        assert_eq!(sent, 320 / 16);
    }

    #[test]
    fn drop_by_zero_length() {
        let mut rpu = Rpu::new(0, &cfg());
        rpu.load_native(Box::new(DropAll));
        struct DropAll;
        impl Firmware for DropAll {
            fn tick(&mut self, io: &mut RpuIo<'_>) {
                if let Some(desc) = io.rx_pop() {
                    io.send(Desc { len: 0, ..desc });
                }
            }
        }
        rpu.inner_mut().dma_deliver(0, &[1u8; 64], meta(9));
        for now in 0..10 {
            rpu.tick(now);
        }
        let (desc, bytes, _) = rpu.inner_mut().take_tx().unwrap();
        assert_eq!(desc.len, 0);
        assert!(bytes.is_empty());
        assert_eq!(rpu.inner().counters().drops, 1);
    }

    #[test]
    fn status_register_and_debug_channel_visible() {
        let mut rpu = Rpu::new(0, &cfg());
        let image = assemble(
            "
            .equ IO, 0x02000000
                li t0, IO
                li a0, 0x1234
                sw a0, 0x18(t0)      # STATUS
                li a1, 0x55
                sw a1, 0x1c(t0)      # DEBUG_OUT_L
                li a2, 0xAA
                sw a2, 0x20(t0)      # DEBUG_OUT_H commits
                ebreak
            ",
        )
        .unwrap();
        rpu.load_riscv(&image);
        for now in 0..50 {
            rpu.tick(now);
        }
        assert_eq!(rpu.inner().status, 0x1234);
        assert_eq!(rpu.inner().debug_out, Some(0xAA_0000_0055));
        assert!(rpu.is_halted());
        assert_eq!(rpu.state(), RpuState::Stopped);
    }

    #[test]
    fn drain_and_reconfigure_lifecycle() {
        let mut rpu = Rpu::new(0, &cfg());
        struct Echo;
        impl Firmware for Echo {
            fn tick(&mut self, io: &mut RpuIo<'_>) {
                if let Some(desc) = io.rx_pop() {
                    io.send(Desc {
                        port: port::HOST,
                        ..desc
                    });
                }
            }
        }
        rpu.load_native(Box::new(Echo));
        rpu.inner_mut().dma_deliver(0, &[0u8; 64], meta(1));
        rpu.start_drain();
        assert!(!rpu.is_drained());
        for now in 0..10 {
            rpu.tick(now);
        }
        let _ = rpu.inner_mut().take_tx();
        assert!(rpu.is_drained());
        rpu.begin_reconfigure(100);
        assert!(matches!(
            rpu.state(),
            RpuState::Reconfiguring { until: 100 }
        ));
        rpu.tick(50); // inert
        rpu.load_native(Box::new(Echo));
        assert_eq!(rpu.state(), RpuState::Running);
    }

    #[test]
    fn timer_mmio_reads_synced_clock() {
        let mut rpu = Rpu::new(0, &cfg());
        let image = assemble(
            "
            .equ IO, 0x02000000
                li t0, IO
                lw a0, 0x24(t0)   # TIMER_L
                ebreak
            ",
        )
        .unwrap();
        rpu.load_riscv(&image);
        for now in 1000..1010 {
            rpu.tick(now);
        }
        let cpu = rpu.cpu().unwrap();
        let a0 = cpu.reg(rosebud_riscv::Reg::parse("a0").unwrap());
        assert!((1000..1010).contains(&u64::from(a0)), "timer read {a0}");
    }
}
