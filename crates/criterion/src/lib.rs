//! A minimal, offline stand-in for the `criterion` benchmark crate.
//!
//! The workspace builds without registry access, so the real `criterion`
//! cannot be downloaded. This crate keeps the same macro/builder surface the
//! benches use (`criterion_group!`, `criterion_main!`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`) and
//! measures with plain wall-clock loops: a short warm-up, then timed batches
//! until a fixed measurement budget elapses. No statistics, plots, or saved
//! baselines — just honest mean-per-iteration numbers on stdout.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// Units for reporting rate alongside time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measure: self.criterion.measure,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    fn report(&self, label: &str, b: &Bencher) {
        let time = humane_ns(b.ns_per_iter);
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if b.ns_per_iter > 0.0 => {
                let gbs = bytes as f64 / b.ns_per_iter;
                format!("  ({gbs:.3} GB/s)")
            }
            Some(Throughput::Elements(n)) if b.ns_per_iter > 0.0 => {
                let meps = n as f64 * 1e3 / b.ns_per_iter;
                format!("  ({meps:.3} Melem/s)")
            }
            _ => String::new(),
        };
        println!(
            "{group}/{label:<28} {time:>12}/iter{rate}  [{iters} iters]",
            group = self.name,
            iters = b.iters,
        );
    }

    /// Ends the group (parity with the real API).
    pub fn finish(&mut self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, called repeatedly; its return value is black-boxed.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: let caches/branch predictors settle and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        // Measure in batches sized to ~10 ms to amortize timer reads.
        let batch = ((10e6 / est.max(1.0)) as u64).clamp(1, 1_000_000);
        let mut total_ns = 0u128;
        let mut iters = 0u64;
        let budget = self.measure;
        let start = Instant::now();
        while start.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_ns += t0.elapsed().as_nanos();
            iters += batch;
        }
        self.ns_per_iter = total_ns as f64 / iters.max(1) as f64;
        self.iters = iters;
    }
}

fn humane_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collects benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        group.bench_function("add", |b| b.iter(|| black_box(2u64) + 2));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }
}
