//! The Pigasus multi-pattern string + port matching engine model.
//!
//! Reproduces the accelerator the paper ports in §7.1 / Appendix A: the
//! Pigasus string matcher (16 engines per RPU, each consuming one payload
//! byte per cycle) plus the port matcher, behind the exact MMIO register
//! protocol of the firmware in Appendix B:
//!
//! 1. firmware writes the payload's packet-memory address (`ACC_DMA_ADDR`),
//!    length (`ACC_DMA_LEN`), the TCP/UDP ports (`ACC_PIG_PORTS`), the
//!    matcher state mask (`ACC_PIG_STATE_*`), the slot (`ACC_PIG_SLOT`), and
//!    kicks the job with `ACC_PIG_CTRL = 1`;
//! 2. the engine streams the payload from packet memory at
//!    `bytes_per_cycle`; matches surface in a result FIFO in stream order;
//! 3. firmware polls `ACC_PIG_MATCH`, reads `ACC_PIG_RULE_ID` (non-zero =
//!    match, zero = end-of-packet) and `ACC_PIG_SLOT`, and releases each
//!    entry with `ACC_PIG_CTRL = 2`.

use rosebud_kernel::Fifo;

use crate::aho::{AhoCorasick, Pattern};
use crate::interface::{Accelerator, RegRead, ResourceUsage};

/// `ACC_PIG_CTRL` (write): 1 = start job, 2 = release result entry.
pub const PIG_CTRL_REG: u32 = 0x00;
/// `ACC_PIG_MATCH` (read): non-zero when a result entry is available.
pub const PIG_MATCH_REG: u32 = 0x00;
/// `ACC_DMA_LEN` (write): payload length in bytes.
pub const PIG_DMA_LEN_REG: u32 = 0x04;
/// `ACC_DMA_ADDR` (write): payload address in packet memory.
pub const PIG_DMA_ADDR_REG: u32 = 0x08;
/// `ACC_PIG_PORTS` (write): `src_port << 16 | dst_port`.
pub const PIG_PORTS_REG: u32 = 0x0c;
/// `ACC_PIG_STATE` low word (write).
pub const PIG_STATE_L_REG: u32 = 0x10;
/// `ACC_PIG_STATE` high word (write): `0x01FF_FFFF` for TCP, 0 for UDP.
pub const PIG_STATE_H_REG: u32 = 0x14;
/// `ACC_PIG_SLOT` (write: job's slot; read: slot of the head result).
pub const PIG_SLOT_REG: u32 = 0x18;
/// `ACC_PIG_RULE_ID` (read): head result's rule id, 0 for end-of-packet.
pub const PIG_RULE_ID_REG: u32 = 0x1c;
/// `ACC_DMA_STAT` (read): low byte = busy, next byte = done count.
pub const PIG_DMA_STAT_REG: u32 = 0x78;
/// `ACC_PIG_PORTS` raw form (write): the L4 ports word exactly as firmware
/// loads it with `lw` from the packet — big-endian wire bytes in a
/// little-endian word. The hardware normalizes; this matches the Appendix B
/// C code's `ACC_PIG_PORTS = *(unsigned int *)slot->l4_header.tcp_hdr`.
pub const PIG_PORTS_RAW_REG: u32 = 0x20;

/// One IDS rule: a fast pattern plus optional port constraints, the shape of
/// the Snort fast-pattern rules Pigasus compiles into its engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Rule identifier (non-zero).
    pub id: u32,
    /// The content fast pattern.
    pub pattern: Vec<u8>,
    /// Match only this source port, if set.
    pub src_port: Option<u16>,
    /// Match only this destination port, if set.
    pub dst_port: Option<u16>,
}

impl Rule {
    /// Creates a rule matching `pattern` on any port.
    ///
    /// # Panics
    ///
    /// Panics if `id` is 0 or `pattern` is empty (see [`Pattern::new`]).
    pub fn new(id: u32, pattern: &[u8]) -> Self {
        assert!(id != 0, "rule id 0 is reserved");
        assert!(!pattern.is_empty(), "empty rule pattern");
        Self {
            id,
            pattern: pattern.to_vec(),
            src_port: None,
            dst_port: None,
        }
    }

    /// Restricts the rule to a destination port (the common Snort shape,
    /// e.g. `-> any 80`).
    pub fn with_dst_port(mut self, port: u16) -> Self {
        self.dst_port = Some(port);
        self
    }

    /// Restricts the rule to a source port.
    pub fn with_src_port(mut self, port: u16) -> Self {
        self.src_port = Some(port);
        self
    }
}

/// A compiled rule set: the string automaton plus the port-matcher tables.
#[derive(Debug, Clone)]
pub struct RuleSet {
    rules: Vec<Rule>,
    automaton: AhoCorasick,
}

impl RuleSet {
    /// Compiles `rules` into the automaton + port tables.
    ///
    /// # Panics
    ///
    /// Panics if `rules` is empty or contains duplicate ids.
    pub fn compile(rules: Vec<Rule>) -> Self {
        assert!(!rules.is_empty(), "rule set must not be empty");
        let mut seen = std::collections::HashSet::new();
        for r in &rules {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
        }
        let patterns: Vec<Pattern> = rules
            .iter()
            .map(|r| Pattern::new(r.id, &r.pattern))
            .collect();
        let automaton = AhoCorasick::build(&patterns);
        Self { rules, automaton }
    }

    /// The rules, in compile order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The string automaton.
    pub fn automaton(&self) -> &AhoCorasick {
        &self.automaton
    }

    /// Whether `rule_id`'s port constraints accept the given ports — the
    /// port-matcher stage.
    pub fn ports_accept(&self, rule_id: u32, src_port: u16, dst_port: u16) -> bool {
        self.rules
            .iter()
            .find(|r| r.id == rule_id)
            .map(|r| {
                r.src_port.is_none_or(|p| p == src_port) && r.dst_port.is_none_or(|p| p == dst_port)
            })
            .unwrap_or(false)
    }

    /// All rule ids whose pattern occurs in `payload` and whose port
    /// constraints accept `(src_port, dst_port)` — the functional ground
    /// truth used by verification tests and by the CPU baseline.
    pub fn matches(&self, payload: &[u8], src_port: u16, dst_port: u16) -> Vec<u32> {
        let mut out = Vec::new();
        self.automaton.scan(payload, |m| {
            if self.ports_accept(m.id, src_port, dst_port) {
                out.push(m.id);
            }
        });
        out
    }
}

/// One entry in the matcher's result FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchEvent {
    /// Packet slot the job was tagged with.
    pub slot: u8,
    /// Matched rule id; 0 marks end-of-packet.
    pub rule_id: u32,
}

#[derive(Debug, Clone)]
struct Job {
    addr: u32,
    len: u32,
    ports: u32,
    slot: u8,
}

#[derive(Debug, Clone)]
struct ActiveJob {
    slot: u8,
    /// Matches (end positions in stream order) still to surface.
    pending: std::collections::VecDeque<crate::aho::Match>,
    len: u32,
    pos: u32,
}

/// The hardware model of the ported Pigasus engine.
///
/// `engines` matches the paper's parameterization: the original design used
/// 32 string-matching engines for the whole FPGA; the Rosebud port fits 16
/// per RPU (§7.1.2), each consuming one byte per cycle, so the model streams
/// `engines` bytes of payload per tick.
pub struct PigasusMatcher {
    rules: RuleSet,
    engines: u32,
    job_queue: Fifo<Job>,
    active: Option<ActiveJob>,
    results: Fifo<MatchEvent>,
    // Staged register writes.
    reg_addr: u32,
    reg_len: u32,
    reg_ports: u32,
    reg_state_l: u32,
    reg_state_h: u32,
    reg_slot: u32,
    done_count: u32,
    /// Total payload bytes streamed (throughput accounting).
    bytes_processed: u64,
    busy_cycles: u64,
    table_bytes_loaded: u64,
}

impl std::fmt::Debug for PigasusMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PigasusMatcher")
            .field("engines", &self.engines)
            .field("rules", &self.rules.rules().len())
            .field("queued_jobs", &self.job_queue.len())
            .field("results", &self.results.len())
            .finish()
    }
}

impl PigasusMatcher {
    /// Creates the engine with a compiled rule set and `engines` parallel
    /// string engines (bytes per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `engines` is 0.
    pub fn new(rules: RuleSet, engines: u32) -> Self {
        assert!(engines > 0, "need at least one engine");
        Self {
            rules,
            engines,
            job_queue: Fifo::new(8),
            active: None,
            results: Fifo::new(32),
            reg_addr: 0,
            reg_len: 0,
            reg_ports: 0,
            reg_state_l: 0,
            reg_state_h: 0,
            reg_slot: 0,
            done_count: 0,
            bytes_processed: 0,
            busy_cycles: 0,
            table_bytes_loaded: 0,
        }
    }

    /// The compiled rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Payload bytes streamed so far.
    pub fn bytes_processed(&self) -> u64 {
        self.bytes_processed
    }

    /// Cycles spent with a job active.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Bytes the host has pushed through the runtime table-load port
    /// (§7.1.2's URAM write path).
    pub fn table_bytes_loaded(&self) -> u64 {
        self.table_bytes_loaded
    }

    fn start_job(&mut self, job: Job, pmem: &[u8]) {
        let start = job.addr as usize;
        let end = (job.addr + job.len) as usize;
        let payload = pmem.get(start..end).unwrap_or(&[]);
        let src_port = (job.ports >> 16) as u16;
        let dst_port = job.ports as u16;
        let mut pending = std::collections::VecDeque::new();
        self.rules.automaton().scan(payload, |m| {
            if self.rules.ports_accept(m.id, src_port, dst_port) {
                pending.push_back(m);
            }
        });
        self.active = Some(ActiveJob {
            slot: job.slot,
            pending,
            len: job.len,
            pos: 0,
        });
    }
}

impl Accelerator for PigasusMatcher {
    fn name(&self) -> &str {
        "pigasus-mpse"
    }

    fn read_reg(&mut self, offset: u32) -> RegRead {
        match offset {
            PIG_MATCH_REG => RegRead::fast(u32::from(!self.results.is_empty())),
            PIG_RULE_ID_REG => RegRead::fast(self.results.front().map_or(0, |e| e.rule_id)),
            PIG_SLOT_REG => RegRead::fast(self.results.front().map_or(0, |e| u32::from(e.slot))),
            PIG_DMA_STAT_REG => {
                // Low byte: busy flag; byte 1: completed-job count; byte 2:
                // free entries in the wrapper's job FIFO (A.2: "we add basic
                // hardware queues (FIFOs) per accelerator in this wrapper").
                let busy = u32::from(self.is_busy());
                let free = self.job_queue.free() as u32;
                RegRead::fast(busy | (self.done_count.min(255) << 8) | (free << 16))
            }
            _ => RegRead::fast(0),
        }
    }

    fn write_reg(&mut self, offset: u32, value: u32) {
        match offset {
            PIG_CTRL_REG => match value & 0xff {
                1 => {
                    let job = Job {
                        addr: self.reg_addr,
                        len: self.reg_len,
                        ports: self.reg_ports,
                        slot: self.reg_slot as u8,
                    };
                    // A full queue drops the kick; firmware checks DMA_STAT
                    // before over-committing (the wrapper FIFOs of A.2).
                    let _ = self.job_queue.push(job);
                }
                2 => {
                    let _ = self.results.pop();
                }
                _ => {}
            },
            PIG_DMA_LEN_REG => self.reg_len = value,
            PIG_DMA_ADDR_REG => self.reg_addr = value,
            PIG_PORTS_REG => self.reg_ports = value,
            PIG_PORTS_RAW_REG => {
                // Raw lw of [src_hi, src_lo, dst_hi, dst_lo]: normalize to
                // src << 16 | dst in host order.
                let b = value.to_le_bytes();
                self.reg_ports = (u32::from(b[0]) << 24)
                    | (u32::from(b[1]) << 16)
                    | (u32::from(b[2]) << 8)
                    | u32::from(b[3]);
            }
            PIG_STATE_L_REG => self.reg_state_l = value,
            PIG_STATE_H_REG => self.reg_state_h = value,
            PIG_SLOT_REG => self.reg_slot = value,
            _ => {}
        }
    }

    fn tick(&mut self, pmem: &[u8]) {
        if self.active.is_none() {
            if let Some(job) = self.job_queue.pop() {
                self.start_job(job, pmem);
            }
        }
        let Some(active) = &mut self.active else {
            return;
        };
        self.busy_cycles += 1;
        let advance = self.engines.min(active.len - active.pos);
        active.pos += advance;
        self.bytes_processed += u64::from(advance);
        // Surface matches whose end position the stream has passed.
        while let Some(front) = active.pending.front() {
            if (front.end as u32) < active.pos {
                if self.results.is_full() {
                    // Result FIFO backpressure stalls the engine.
                    return;
                }
                let m = active.pending.pop_front().expect("front checked");
                let _ = self.results.push(MatchEvent {
                    slot: active.slot,
                    rule_id: m.id,
                });
            } else {
                break;
            }
        }
        if active.pos >= active.len && active.pending.is_empty() {
            if self.results.is_full() {
                return; // EoP waits for FIFO space too.
            }
            let slot = active.slot;
            let _ = self.results.push(MatchEvent { slot, rule_id: 0 });
            self.done_count += 1;
            self.active = None;
        }
    }

    fn is_busy(&self) -> bool {
        self.active.is_some() || !self.job_queue.is_empty()
    }

    fn load_table(&mut self, _offset: u32, data: &[u8]) {
        // The real engine's URAM rule tables are written at runtime through
        // the packet-distribution subsystem (§7.1.2). The model's automaton
        // is rebuilt via `PigasusMatcher::new` (or a PR swap) instead; the
        // hook records traffic so the A.6 host flow is observable.
        self.table_bytes_loaded += data.len() as u64;
    }

    fn reset(&mut self) {
        self.job_queue.flush();
        self.results.flush();
        self.active = None;
        self.done_count = 0;
    }

    fn resources(&self) -> ResourceUsage {
        // Calibrated to Table 3 (16 engines: 36012 LUTs, 49364 FFs, 56 BRAM,
        // 22 URAM, 80 DSP), scaling linearly in the engine count like the
        // parameterized Pigasus generator.
        let e = self.engines;
        ResourceUsage {
            luts: 2000 + e * 2126,
            regs: 3000 + e * 2898,
            bram: 8 + e * 3,
            uram: 6 + e, // rule tables + per-engine stream buffers
            dsp: e * 5,  // hash computation for table addressing (§7.1.2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_rules() -> RuleSet {
        RuleSet::compile(vec![
            Rule::new(100, b"attack"),
            Rule::new(200, b"evil").with_dst_port(80),
            Rule::new(300, b"worm").with_src_port(6666),
        ])
    }

    fn drain(m: &mut PigasusMatcher, pmem: &[u8], max_ticks: usize) -> Vec<MatchEvent> {
        let mut out = Vec::new();
        for _ in 0..max_ticks {
            m.tick(pmem);
            while m.read_reg(PIG_MATCH_REG).value != 0 {
                let rule_id = m.read_reg(PIG_RULE_ID_REG).value;
                let slot = m.read_reg(PIG_SLOT_REG).value as u8;
                m.write_reg(PIG_CTRL_REG, 2);
                out.push(MatchEvent { slot, rule_id });
                if rule_id == 0 {
                    return out;
                }
            }
        }
        out
    }

    fn kick(m: &mut PigasusMatcher, addr: u32, len: u32, ports: u32, slot: u32) {
        m.write_reg(PIG_DMA_ADDR_REG, addr);
        m.write_reg(PIG_DMA_LEN_REG, len);
        m.write_reg(PIG_PORTS_REG, ports);
        m.write_reg(PIG_STATE_H_REG, 0x01FF_FFFF);
        m.write_reg(PIG_SLOT_REG, slot);
        m.write_reg(PIG_CTRL_REG, 1);
    }

    #[test]
    fn raw_ports_register_normalizes_byte_order() {
        let mut m = PigasusMatcher::new(simple_rules(), 16);
        let mut pmem = vec![0u8; 256];
        pmem[0..4].copy_from_slice(b"evil");
        // Wire bytes for src 1234, dst 80, as lw would load them.
        let raw = u32::from_le_bytes([(1234u16 >> 8) as u8, (1234u16 & 0xff) as u8, 0, 80]);
        m.write_reg(PIG_DMA_ADDR_REG, 0);
        m.write_reg(PIG_DMA_LEN_REG, 4);
        m.write_reg(crate::mpse::PIG_PORTS_RAW_REG, raw);
        m.write_reg(PIG_SLOT_REG, 1);
        m.write_reg(PIG_CTRL_REG, 1);
        let events = drain(&mut m, &pmem, 50);
        assert_eq!(events[0].rule_id, 200, "dst-port-80 rule must fire");
    }

    #[test]
    fn finds_pattern_and_reports_eop() {
        let mut m = PigasusMatcher::new(simple_rules(), 16);
        let mut pmem = vec![0u8; 1024];
        pmem[100..117].copy_from_slice(b"here is an attack");
        kick(&mut m, 100, 17, (1234 << 16) | 80, 5);
        let events = drain(&mut m, &pmem, 100);
        assert_eq!(
            events,
            vec![
                MatchEvent {
                    slot: 5,
                    rule_id: 100
                },
                MatchEvent {
                    slot: 5,
                    rule_id: 0
                }
            ]
        );
    }

    #[test]
    fn port_constraints_filter_matches() {
        let mut m = PigasusMatcher::new(simple_rules(), 16);
        let mut pmem = vec![0u8; 256];
        pmem[0..4].copy_from_slice(b"evil");
        // dst port 443: rule 200 requires 80, so only EoP.
        kick(&mut m, 0, 4, (1234 << 16) | 443, 1);
        let events = drain(&mut m, &pmem, 50);
        assert_eq!(
            events,
            vec![MatchEvent {
                slot: 1,
                rule_id: 0
            }]
        );
        // dst port 80 matches.
        kick(&mut m, 0, 4, (1234 << 16) | 80, 2);
        let events = drain(&mut m, &pmem, 50);
        assert_eq!(events[0].rule_id, 200);
    }

    #[test]
    fn streaming_rate_sets_completion_time() {
        let mut m = PigasusMatcher::new(simple_rules(), 16);
        let pmem = vec![0u8; 4096];
        kick(&mut m, 0, 1600, 0, 0);
        // 1600 bytes at 16 B/cycle = 100 ticks; EoP must not surface before.
        let mut done_at = None;
        for t in 1..=200 {
            m.tick(&pmem);
            if m.read_reg(PIG_MATCH_REG).value != 0 {
                done_at = Some(t);
                break;
            }
        }
        assert_eq!(done_at, Some(100));
    }

    #[test]
    fn match_surfaces_when_stream_reaches_it() {
        let mut m = PigasusMatcher::new(simple_rules(), 16);
        let mut pmem = vec![0u8; 2048];
        pmem[1000..1006].copy_from_slice(b"attack");
        kick(&mut m, 0, 1600, 0, 3);
        // The match ends at offset 1005 → surfaces on tick 63 (pos 1008).
        let mut seen_at = None;
        for t in 1..=200 {
            m.tick(&pmem);
            if m.read_reg(PIG_MATCH_REG).value != 0 {
                seen_at = Some(t);
                break;
            }
        }
        assert_eq!(seen_at, Some(1008 / 16));
        assert_eq!(m.read_reg(PIG_RULE_ID_REG).value, 100);
    }

    #[test]
    fn jobs_queue_behind_active_one() {
        let mut m = PigasusMatcher::new(simple_rules(), 16);
        let mut pmem = vec![0u8; 512];
        pmem[0..6].copy_from_slice(b"attack");
        kick(&mut m, 0, 160, 0, 1);
        kick(&mut m, 0, 160, 0, 2);
        assert!(m.is_busy());
        let first = drain(&mut m, &pmem, 100);
        let second = drain(&mut m, &pmem, 100);
        assert_eq!(first.last().unwrap().slot, 1);
        assert_eq!(second.last().unwrap().slot, 2);
        assert_eq!(first[0].rule_id, 100);
        assert_eq!(second[0].rule_id, 100);
        assert!(!m.is_busy());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = PigasusMatcher::new(simple_rules(), 16);
        let pmem = vec![0u8; 512];
        kick(&mut m, 0, 100, 0, 1);
        m.tick(&pmem);
        m.reset();
        assert!(!m.is_busy());
        assert_eq!(m.read_reg(PIG_MATCH_REG).value, 0);
    }

    #[test]
    fn ruleset_functional_matches() {
        let rules = simple_rules();
        let ids = rules.matches(b"an evil attack worm", 6666, 80);
        assert_eq!(ids, vec![200, 100, 300]);
        let ids = rules.matches(b"an evil attack worm", 1, 1);
        assert_eq!(ids, vec![100]);
    }

    #[test]
    fn resources_match_table3_at_16_engines() {
        let m = PigasusMatcher::new(simple_rules(), 16);
        let r = m.resources();
        assert!((r.luts as i64 - 36012).abs() < 100, "luts {}", r.luts);
        assert!((r.regs as i64 - 49364).abs() < 100, "regs {}", r.regs);
        assert_eq!(r.bram, 56);
        assert_eq!(r.uram, 22);
        assert_eq!(r.dsp, 80);
    }
}
