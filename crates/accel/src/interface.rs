//! The accelerator interface: MMIO registers plus a per-cycle tick.

/// FPGA resources a component occupies, for regenerating the paper's
/// utilization tables (Tables 1–4). Units match Vivado's report: LUTs,
/// flip-flop registers, BRAM36 blocks, URAM blocks, DSP slices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flop registers.
    pub regs: u32,
    /// 36 Kb block RAMs.
    pub bram: u32,
    /// 288 Kb UltraRAMs.
    pub uram: u32,
    /// DSP48 slices.
    pub dsp: u32,
}

impl ResourceUsage {
    /// Component-wise sum.
    pub fn plus(self, other: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts + other.luts,
            regs: self.regs + other.regs,
            bram: self.bram + other.bram,
            uram: self.uram + other.uram,
            dsp: self.dsp + other.dsp,
        }
    }

    /// Component-wise scaling by an integer count.
    pub fn times(self, n: u32) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts * n,
            regs: self.regs * n,
            bram: self.bram * n,
            uram: self.uram * n,
            dsp: self.dsp * n,
        }
    }
}

/// Result of an MMIO register read: the value plus wait-states charged to
/// the core (non-blocking reads return 0 wait; blocking reads on a busy
/// accelerator stall, paper A.2: "we provide examples for both blocking or
/// non-blocking read and writes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegRead {
    /// The register value.
    pub value: u32,
    /// Extra cycles the core stalls for this access.
    pub wait_cycles: u32,
}

impl RegRead {
    /// A read with no wait-states.
    pub fn fast(value: u32) -> Self {
        Self {
            value,
            wait_cycles: 0,
        }
    }
}

/// A hardware accelerator hosted inside an RPU.
///
/// The RISC-V core talks to accelerators through memory-mapped registers
/// (paper §3.3: "the memory interface between the core and the
/// accelerators"); the accelerator additionally gets one exclusive port to
/// the RPU's shared packet memory, modelled by the `pmem` slice passed to
/// [`tick`](Accelerator::tick).
///
/// Accelerators are `Send`: the simulation kernel may migrate a whole RPU
/// (core, memories, and its accelerator) to a worker thread between cycle
/// barriers. They are never shared — exactly one thread touches an RPU at a
/// time — so `Sync` is not required.
pub trait Accelerator: Send {
    /// A short name for debug output and resource tables.
    fn name(&self) -> &str;

    /// Reads the register at byte `offset` within the accelerator's MMIO
    /// window (the paper maps these at `IO_EXT_BASE`).
    fn read_reg(&mut self, offset: u32) -> RegRead;

    /// Writes the register at byte `offset`.
    fn write_reg(&mut self, offset: u32, value: u32);

    /// Advances one clock cycle. `pmem` is the RPU's shared packet memory,
    /// read through the accelerator's dedicated URAM port (§4.1).
    fn tick(&mut self, pmem: &[u8]);

    /// `true` while the accelerator is processing (used by the eviction
    /// drain before partial reconfiguration, Appendix A.8).
    fn is_busy(&self) -> bool;

    /// Loads `data` into accelerator-local table memory at `offset` — the
    /// runtime-writable lookup tables Rosebud added to Pigasus (§7.1.2).
    fn load_table(&mut self, offset: u32, data: &[u8]);

    /// Resets all state (RPU reboot after partial reconfiguration).
    fn reset(&mut self);

    /// FPGA resources this accelerator would occupy.
    fn resources(&self) -> ResourceUsage;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_arithmetic() {
        let a = ResourceUsage {
            luts: 10,
            regs: 20,
            bram: 1,
            uram: 2,
            dsp: 0,
        };
        let b = a.times(3).plus(a);
        assert_eq!(b.luts, 40);
        assert_eq!(b.uram, 8);
    }
}
