//! The blacklist firewall IP matcher (paper §7.2).
//!
//! "This accelerator first checks for the first 9 bits of the IP prefix, if
//! they match, then it checks for the remaining 15 bits in the next cycle,
//! and if there was a match it raises a flag in a register. This lookup can
//! be performed in only two clock cycles."
//!
//! The paper generates the accelerator's Verilog from the emerging-threats
//! blacklist with a Python script; [`FirewallMatcher::from_prefixes`] is the
//! equivalent generator here, building the two-stage structure from a prefix
//! list at construction time.

use std::collections::HashSet;

use crate::interface::{Accelerator, RegRead, ResourceUsage};

/// `ACC_SRC_IP` (write): loads the IP to check and starts the 2-cycle
/// lookup. The register takes the word exactly as firmware loads it from the
/// packet with `lw` — i.e. the big-endian wire field in little-endian word
/// order — matching how the paper's generated Verilog consumes the raw C
/// load (Appendix C: `ACC_SRC_IP = src_ip;`).
pub const FW_SRC_IP_REG: u32 = 0x00;
/// `ACC_FW_MATCH` (read): 1 when the last checked IP is blacklisted.
pub const FW_MATCH_REG: u32 = 0x04;

/// Number of bits resolved by the matcher (9 in the first cycle + 15 in the
/// second): the accelerator matches /24 prefixes.
pub const FW_PREFIX_BITS: u32 = 24;

/// The two-stage blacklist matcher.
///
/// # Examples
///
/// ```
/// use rosebud_accel::{Accelerator, FirewallMatcher, FW_SRC_IP_REG, FW_MATCH_REG};
///
/// let mut fw = FirewallMatcher::from_prefixes(&[[203, 0, 113, 0]]);
/// fw.write_reg(FW_SRC_IP_REG, u32::from_le_bytes([203, 0, 113, 77]));
/// fw.tick(&[]);
/// fw.tick(&[]); // the lookup takes two cycles
/// assert_eq!(fw.read_reg(FW_MATCH_REG).value, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FirewallMatcher {
    /// Stage 1: which 9-bit prefixes appear in the blacklist.
    stage1: Box<[bool; 512]>,
    /// Stage 2: the full 24-bit prefixes.
    stage2: HashSet<u32>,
    rule_count: u32,
    /// In-flight lookup: (ip, completes_at_tick).
    pending: Option<(u32, u64)>,
    /// Result of the last completed lookup.
    flag: bool,
    now: u64,
    lookups: u64,
    hits: u64,
}

impl FirewallMatcher {
    /// Builds the matcher from a list of IPv4 addresses/prefixes; only the
    /// top 24 bits of each entry participate in matching.
    pub fn from_prefixes(prefixes: &[[u8; 4]]) -> Self {
        let mut stage1 = Box::new([false; 512]);
        let mut stage2 = HashSet::with_capacity(prefixes.len());
        for p in prefixes {
            let ip = u32::from_be_bytes(*p);
            let prefix24 = ip >> (32 - FW_PREFIX_BITS);
            stage1[(prefix24 >> 15) as usize] = true;
            stage2.insert(prefix24);
        }
        Self {
            stage1,
            stage2,
            rule_count: prefixes.len() as u32,
            pending: None,
            flag: false,
            now: 0,
            lookups: 0,
            hits: 0,
        }
    }

    /// Number of blacklist entries compiled in.
    pub fn rule_count(&self) -> u32 {
        self.rule_count
    }

    /// Functional check, bypassing the cycle model (ground truth for tests
    /// and for drop-count verification).
    pub fn is_blacklisted(&self, ip: u32) -> bool {
        let prefix24 = ip >> (32 - FW_PREFIX_BITS);
        self.stage1[(prefix24 >> 15) as usize] && self.stage2.contains(&prefix24)
    }

    /// Total lookups started.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total lookups that matched the blacklist.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

impl Accelerator for FirewallMatcher {
    fn name(&self) -> &str {
        "firewall-ip-matcher"
    }

    fn read_reg(&mut self, offset: u32) -> RegRead {
        match offset {
            FW_MATCH_REG => {
                // Reading before the two cycles elapse stalls the core for
                // the remainder (the blocking-read variant of A.2).
                let wait = match self.pending {
                    Some((ip, done_at)) => {
                        let wait = done_at.saturating_sub(self.now) as u32;
                        self.flag = self.is_blacklisted(ip);
                        if self.flag {
                            self.hits += 1;
                        }
                        self.pending = None;
                        wait
                    }
                    None => 0,
                };
                RegRead {
                    value: u32::from(self.flag),
                    wait_cycles: wait,
                }
            }
            _ => RegRead::fast(0),
        }
    }

    fn write_reg(&mut self, offset: u32, value: u32) {
        if offset == FW_SRC_IP_REG {
            // Resolve any lookup the firmware abandoned without reading.
            if let Some((ip, _)) = self.pending.take() {
                self.flag = self.is_blacklisted(ip);
                if self.flag {
                    self.hits += 1;
                }
            }
            // The raw `lw` word has the wire bytes reversed; normalize to a
            // host-order (big-endian-value) address.
            self.pending = Some((value.swap_bytes(), self.now + 2));
            self.lookups += 1;
        }
    }

    fn tick(&mut self, _pmem: &[u8]) {
        self.now += 1;
        if let Some((ip, done_at)) = self.pending {
            if self.now >= done_at {
                self.flag = self.is_blacklisted(ip);
                if self.flag {
                    self.hits += 1;
                }
                self.pending = None;
            }
        }
    }

    fn is_busy(&self) -> bool {
        self.pending.is_some()
    }

    fn load_table(&mut self, _offset: u32, _data: &[u8]) {
        // The generated matcher's tables are baked into LUT logic; updating
        // the blacklist rebuilds the RPU via partial reconfiguration.
    }

    fn reset(&mut self) {
        self.pending = None;
        self.flag = false;
    }

    fn resources(&self) -> ResourceUsage {
        // Calibrated to Table 4: 835 LUTs / 197 FFs for the 1050-rule
        // emerging-threats list; LUT cost scales with rule count.
        ResourceUsage {
            luts: 50 + (self.rule_count * 3) / 4,
            regs: 160 + self.rule_count / 32,
            bram: 0,
            uram: 0,
            dsp: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(fw: &mut FirewallMatcher, ip: [u8; 4]) -> (u32, u32) {
        fw.write_reg(FW_SRC_IP_REG, u32::from_le_bytes(ip));
        fw.tick(&[]);
        fw.tick(&[]);
        let r = fw.read_reg(FW_MATCH_REG);
        (r.value, r.wait_cycles)
    }

    #[test]
    fn matches_exact_prefix() {
        let mut fw = FirewallMatcher::from_prefixes(&[[192, 0, 2, 0], [198, 51, 100, 0]]);
        assert_eq!(check(&mut fw, [192, 0, 2, 55]).0, 1);
        assert_eq!(check(&mut fw, [198, 51, 100, 1]).0, 1);
        assert_eq!(check(&mut fw, [192, 0, 3, 55]).0, 0);
        assert_eq!(check(&mut fw, [10, 0, 2, 55]).0, 0);
    }

    #[test]
    fn early_read_charges_wait_cycles() {
        let mut fw = FirewallMatcher::from_prefixes(&[[1, 2, 3, 0]]);
        fw.write_reg(FW_SRC_IP_REG, u32::from_le_bytes([1, 2, 3, 4]));
        // No ticks yet: the 2-cycle lookup stalls the reader.
        let r = fw.read_reg(FW_MATCH_REG);
        assert_eq!(r.wait_cycles, 2);
        assert_eq!(r.value, 1);
    }

    #[test]
    fn completed_read_is_free() {
        let mut fw = FirewallMatcher::from_prefixes(&[[1, 2, 3, 0]]);
        let (_, wait) = check(&mut fw, [9, 9, 9, 9]);
        assert_eq!(wait, 0);
    }

    #[test]
    fn hit_and_lookup_counters() {
        let mut fw = FirewallMatcher::from_prefixes(&[[5, 5, 5, 0]]);
        check(&mut fw, [5, 5, 5, 1]);
        check(&mut fw, [5, 5, 6, 1]);
        check(&mut fw, [5, 5, 5, 200]);
        assert_eq!(fw.lookups(), 3);
        assert_eq!(fw.hits(), 2);
    }

    #[test]
    fn stage1_prunes_whole_9bit_groups() {
        let fw = FirewallMatcher::from_prefixes(&[[203, 0, 113, 0]]);
        // 10.x.y.z has top 9 bits 0000_1010_0 — absent from stage 1.
        assert!(!fw.is_blacklisted(u32::from_be_bytes([10, 0, 113, 5])));
        assert!(fw.is_blacklisted(u32::from_be_bytes([203, 0, 113, 5])));
    }

    #[test]
    fn resources_match_table4_scale() {
        let prefixes: Vec<[u8; 4]> = (0..1050u32)
            .map(|i| [(i >> 8) as u8, i as u8, 7, 0])
            .collect();
        let fw = FirewallMatcher::from_prefixes(&prefixes);
        let r = fw.resources();
        assert!((r.luts as i64 - 835).abs() < 60, "luts {}", r.luts);
        assert!((r.regs as i64 - 197).abs() < 40, "regs {}", r.regs);
        assert_eq!(r.bram + r.uram + r.dsp, 0);
    }
}
