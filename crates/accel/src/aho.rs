//! An Aho–Corasick multi-pattern automaton.
//!
//! This is the algorithmic heart of both the Pigasus string-matching
//! accelerator model and the Snort CPU baseline: given a rule set's "fast
//! patterns", it finds every occurrence of every pattern in a byte stream in
//! a single pass. Built from scratch (goto/fail/output construction) — no
//! external matching crates.

use std::collections::VecDeque;

/// A pattern to search for, tagged with its rule identifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    /// Rule identifier reported on match (non-zero; 0 is the EoP sentinel in
    /// the accelerator register protocol, Appendix B).
    pub id: u32,
    /// The literal bytes to find.
    pub bytes: Vec<u8>,
}

impl Pattern {
    /// Creates a pattern.
    ///
    /// # Panics
    ///
    /// Panics if `id` is zero (reserved for end-of-processing) or `bytes` is
    /// empty.
    pub fn new(id: u32, bytes: &[u8]) -> Self {
        assert!(id != 0, "pattern id 0 is reserved for the EoP sentinel");
        assert!(!bytes.is_empty(), "empty patterns match everywhere");
        Self {
            id,
            bytes: bytes.to_vec(),
        }
    }

    /// Pattern length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Always `false`; patterns cannot be empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A match: which pattern ended at which byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Match {
    /// The matched pattern's rule id.
    pub id: u32,
    /// Byte offset of the *last* byte of the match (the cycle the hardware
    /// engine reports the hit).
    pub end: usize,
}

#[derive(Debug, Clone)]
struct Node {
    /// Dense transition table (256-way). u32::MAX means "no edge" before
    /// fail-link compilation; after compilation every slot is a state.
    next: Box<[u32; 256]>,
    /// Pattern ids ending at this node (own + inherited via fail links).
    outputs: Vec<u32>,
}

impl Node {
    fn new() -> Self {
        Self {
            next: Box::new([u32::MAX; 256]),
            outputs: Vec::new(),
        }
    }
}

/// The compiled automaton.
///
/// # Examples
///
/// ```
/// use rosebud_accel::{AhoCorasick, Pattern};
/// let ac = AhoCorasick::build(&[Pattern::new(7, b"abc")]);
/// assert_eq!(ac.find_all(b"xxabcxx")[0].id, 7);
/// assert_eq!(ac.find_all(b"xxabcxx")[0].end, 4);
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    pattern_count: usize,
    table_bytes: usize,
}

impl AhoCorasick {
    /// Builds the automaton from `patterns` using the classic
    /// goto/fail/output construction, then compiles fail links into dense
    /// next-state tables so matching is one table lookup per byte — the
    /// access pattern the hardware engines implement in URAM.
    pub fn build(patterns: &[Pattern]) -> Self {
        let mut nodes = vec![Node::new()];

        // Goto function: a trie of all patterns.
        for pattern in patterns {
            let mut state = 0usize;
            for &byte in &pattern.bytes {
                let slot = nodes[state].next[byte as usize];
                state = if slot == u32::MAX {
                    nodes.push(Node::new());
                    let new_state = (nodes.len() - 1) as u32;
                    nodes[state].next[byte as usize] = new_state;
                    new_state as usize
                } else {
                    slot as usize
                };
            }
            nodes[state].outputs.push(pattern.id);
        }

        // Fail links via BFS, immediately compiled into the dense tables:
        // after this loop, next[b] is total (never u32::MAX).
        let mut fail = vec![0u32; nodes.len()];
        let mut queue = VecDeque::new();
        for byte in 0..256 {
            let slot = nodes[0].next[byte];
            if slot == u32::MAX {
                nodes[0].next[byte] = 0;
            } else {
                fail[slot as usize] = 0;
                queue.push_back(slot);
            }
        }
        while let Some(state) = queue.pop_front() {
            let state = state as usize;
            let f = fail[state] as usize;
            // Inherit outputs from the fail target.
            let inherited: Vec<u32> = nodes[f].outputs.clone();
            nodes[state].outputs.extend(inherited);
            for byte in 0..256 {
                let slot = nodes[state].next[byte];
                let via_fail = nodes[f].next[byte];
                if slot == u32::MAX {
                    nodes[state].next[byte] = via_fail;
                } else {
                    fail[slot as usize] = via_fail;
                    queue.push_back(slot);
                }
            }
        }

        let table_bytes = nodes.len() * (256 * 4);
        Self {
            nodes,
            pattern_count: patterns.len(),
            table_bytes,
        }
    }

    /// Number of automaton states.
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.pattern_count
    }

    /// Size of the dense transition tables in bytes — what the hardware
    /// model maps onto URAM blocks (§7.1.2: the large lookup tables that
    /// would not fit without URAM).
    pub fn table_bytes(&self) -> usize {
        self.table_bytes
    }

    /// Finds all matches in `haystack`, in end-position order.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        self.scan(haystack, |m| out.push(m));
        out
    }

    /// Streaming scan calling `on_match` for each hit, in end-position
    /// order. This is what both the hardware model and the CPU baseline use.
    pub fn scan<F: FnMut(Match)>(&self, haystack: &[u8], mut on_match: F) {
        let mut state = 0usize;
        for (pos, &byte) in haystack.iter().enumerate() {
            state = self.nodes[state].next[byte as usize] as usize;
            for &id in &self.nodes[state].outputs {
                on_match(Match { id, end: pos });
            }
        }
    }

    /// Resumable scan for cross-packet matching: feeds `haystack` starting
    /// from automaton state `state`, returns the final state.
    pub fn scan_from<F: FnMut(Match)>(&self, state: u32, haystack: &[u8], mut on_match: F) -> u32 {
        let mut state = state as usize;
        for (pos, &byte) in haystack.iter().enumerate() {
            state = self.nodes[state].next[byte as usize] as usize;
            for &id in &self.nodes[state].outputs {
                on_match(Match { id, end: pos });
            }
        }
        state as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(patterns: &[Pattern], haystack: &[u8]) -> Vec<Match> {
        let mut out = Vec::new();
        for pos in 0..haystack.len() {
            for p in patterns {
                if pos + 1 >= p.bytes.len() {
                    let start = pos + 1 - p.bytes.len();
                    if haystack[start..=pos] == p.bytes[..] {
                        out.push(Match { id: p.id, end: pos });
                    }
                }
            }
        }
        out
    }

    fn sorted(mut v: Vec<Match>) -> Vec<Match> {
        v.sort_by_key(|m| (m.end, m.id));
        v
    }

    #[test]
    fn single_pattern() {
        let ac = AhoCorasick::build(&[Pattern::new(1, b"needle")]);
        let hits = ac.find_all(b"hay needle hay needle");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].end, 9);
        assert_eq!(hits[1].end, 20);
    }

    #[test]
    fn overlapping_patterns() {
        let patterns = [
            Pattern::new(1, b"he"),
            Pattern::new(2, b"she"),
            Pattern::new(3, b"his"),
            Pattern::new(4, b"hers"),
        ];
        let ac = AhoCorasick::build(&patterns);
        let hits = sorted(ac.find_all(b"ushers"));
        // Classic example: "she" and "he" end at 3, "hers" at 5.
        assert_eq!(
            hits,
            vec![
                Match { id: 1, end: 3 },
                Match { id: 2, end: 3 },
                Match { id: 4, end: 5 }
            ]
        );
    }

    #[test]
    fn matches_equal_naive_on_fixed_cases() {
        let patterns = [
            Pattern::new(1, b"ab"),
            Pattern::new(2, b"abab"),
            Pattern::new(3, b"b"),
            Pattern::new(4, b"aaa"),
        ];
        let ac = AhoCorasick::build(&patterns);
        for haystack in [
            &b"abababab"[..],
            b"aaaa",
            b"",
            b"xyz",
            b"bbbbab",
            b"abaabab",
        ] {
            assert_eq!(
                sorted(ac.find_all(haystack)),
                sorted(naive(&patterns, haystack)),
                "haystack {haystack:?}"
            );
        }
    }

    #[test]
    fn duplicate_pattern_ids_both_fire() {
        let ac = AhoCorasick::build(&[Pattern::new(1, b"x"), Pattern::new(2, b"x")]);
        let hits = ac.find_all(b"x");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn resumable_scan_matches_across_chunks() {
        let ac = AhoCorasick::build(&[Pattern::new(9, b"split")]);
        let mut hits = Vec::new();
        let state = ac.scan_from(0, b"this is spl", |m| hits.push(m));
        assert!(hits.is_empty());
        ac.scan_from(state, b"it across packets", |m| hits.push(m));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 9);
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::build(&[Pattern::new(1, &[0x00, 0xff, 0x00])]);
        let haystack = [0xde, 0x00, 0xff, 0x00, 0xad];
        assert_eq!(ac.find_all(&haystack).len(), 1);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_id_rejected() {
        let _ = Pattern::new(0, b"x");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_pattern_rejected() {
        let _ = Pattern::new(1, b"");
    }
}
