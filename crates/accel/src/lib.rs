//! Hardware accelerator models for the Rosebud reproduction.
//!
//! Accelerators are the custom hardware an RPU hosts next to its RISC-V core
//! (paper §3.1). This crate provides the models the case studies use:
//!
//! * [`PigasusMatcher`] — the ported Pigasus multi-pattern string + port
//!   matching engine (§7.1): a real Aho–Corasick automaton wrapped in a
//!   hardware model that streams payload bytes from packet memory at a
//!   configurable rate (16 engines × 1 B/cycle in the paper's port) and
//!   exposes the exact MMIO register map of Appendix B,
//! * [`FirewallMatcher`] — the blacklist IP matcher of §7.2: a two-stage
//!   (9-bit, then 15-bit) prefix lookup that resolves in two cycles, built
//!   from a rule list the way the paper's Python script generates Verilog,
//! * [`AhoCorasick`] — the underlying automaton, usable standalone (it also
//!   powers the Snort CPU baseline in `rosebud-apps`),
//! * [`Accelerator`] — the trait every accelerator implements: an MMIO
//!   register file plus a per-cycle `tick`, mirroring the RPU's
//!   memory-mapped accelerator interface (§3.3).
//!
//! # Examples
//!
//! ```
//! use rosebud_accel::{AhoCorasick, Pattern};
//!
//! let ac = AhoCorasick::build(&[
//!     Pattern::new(1, b"attack"),
//!     Pattern::new(2, b"tac"),
//! ]);
//! let hits = ac.find_all(b"an attack payload");
//! assert_eq!(hits.len(), 2); // "tac" inside "attack", then "attack"
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aho;
mod codegen;
mod interface;
mod ipmatch;
mod mpse;

pub use aho::{AhoCorasick, Match, Pattern};
pub use codegen::generate_firewall_verilog;
pub use interface::{Accelerator, RegRead, ResourceUsage};
pub use ipmatch::{FirewallMatcher, FW_MATCH_REG, FW_SRC_IP_REG};
pub use mpse::{
    MatchEvent, PigasusMatcher, Rule, RuleSet, PIG_CTRL_REG, PIG_DMA_ADDR_REG, PIG_DMA_LEN_REG,
    PIG_DMA_STAT_REG, PIG_MATCH_REG, PIG_PORTS_RAW_REG, PIG_PORTS_REG, PIG_RULE_ID_REG,
    PIG_SLOT_REG, PIG_STATE_H_REG, PIG_STATE_L_REG,
};
