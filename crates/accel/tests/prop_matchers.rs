//! Property tests on the accelerator models: the Aho–Corasick automaton
//! agrees with a naive matcher on arbitrary inputs; the cycle-level MPSE
//! model produces exactly the functional match set; the firewall matcher
//! agrees with direct prefix comparison.

use proptest::prelude::*;
use rosebud_accel::{
    Accelerator, AhoCorasick, FirewallMatcher, Match, Pattern, PigasusMatcher, Rule, RuleSet,
    FW_MATCH_REG, FW_SRC_IP_REG, PIG_CTRL_REG, PIG_DMA_ADDR_REG, PIG_DMA_LEN_REG, PIG_MATCH_REG,
    PIG_RULE_ID_REG, PIG_SLOT_REG,
};

fn naive(patterns: &[Pattern], haystack: &[u8]) -> Vec<Match> {
    let mut out = Vec::new();
    for pos in 0..haystack.len() {
        for p in patterns {
            if pos + 1 >= p.bytes.len() {
                let start = pos + 1 - p.bytes.len();
                if haystack[start..=pos] == p.bytes[..] {
                    out.push(Match { id: p.id, end: pos });
                }
            }
        }
    }
    out.sort_by_key(|m| (m.end, m.id));
    out
}

fn pattern_set() -> impl Strategy<Value = Vec<Pattern>> {
    proptest::collection::vec(
        proptest::collection::vec(0u8..4, 1..6), // tiny alphabet: overlaps likely
        1..8,
    )
    .prop_map(|patterns| {
        patterns
            .into_iter()
            .enumerate()
            .map(|(i, bytes)| Pattern::new(i as u32 + 1, &bytes))
            .collect()
    })
}

proptest! {
    #[test]
    fn automaton_agrees_with_naive_matcher(
        patterns in pattern_set(),
        haystack in proptest::collection::vec(0u8..4, 0..200),
    ) {
        let ac = AhoCorasick::build(&patterns);
        let mut got = ac.find_all(&haystack);
        got.sort_by_key(|m| (m.end, m.id));
        prop_assert_eq!(got, naive(&patterns, &haystack));
    }

    #[test]
    fn chunked_scan_equals_whole_scan(
        patterns in pattern_set(),
        haystack in proptest::collection::vec(0u8..4, 1..200),
        split in 0usize..200,
    ) {
        let split = split % haystack.len();
        let ac = AhoCorasick::build(&patterns);
        let whole: Vec<u32> = ac.find_all(&haystack).iter().map(|m| m.id).collect();
        let mut chunked = Vec::new();
        let state = ac.scan_from(0, &haystack[..split], |m| chunked.push(m.id));
        ac.scan_from(state, &haystack[split..], |m| chunked.push(m.id));
        prop_assert_eq!(whole, chunked);
    }

    #[test]
    fn mpse_model_finds_exactly_the_functional_matches(
        patterns in pattern_set(),
        payload in proptest::collection::vec(0u8..4, 1..300),
        engines in 1u32..32,
    ) {
        let rules: Vec<Rule> = patterns
            .iter()
            .map(|p| Rule::new(p.id, &p.bytes))
            .collect();
        let set = RuleSet::compile(rules);
        let expected = set.matches(&payload, 1000, 80);
        let mut m = PigasusMatcher::new(set, engines);
        let mut pmem = vec![0u8; 4096];
        pmem[64..64 + payload.len()].copy_from_slice(&payload);
        m.write_reg(PIG_DMA_ADDR_REG, 64);
        m.write_reg(PIG_DMA_LEN_REG, payload.len() as u32);
        m.write_reg(PIG_SLOT_REG, 3);
        m.write_reg(PIG_CTRL_REG, 1);
        let mut got = Vec::new();
        for _ in 0..10_000 {
            m.tick(&pmem);
            while m.read_reg(PIG_MATCH_REG).value != 0 {
                let id = m.read_reg(PIG_RULE_ID_REG).value;
                m.write_reg(PIG_CTRL_REG, 2);
                if id == 0 {
                    prop_assert_eq!(&got, &expected);
                    return Ok(());
                }
                got.push(id);
            }
        }
        prop_assert!(false, "matcher never produced EoP");
    }

    #[test]
    fn firewall_agrees_with_prefix_comparison(
        prefixes in proptest::collection::vec(any::<[u8; 4]>(), 1..64),
        probe in any::<[u8; 4]>(),
    ) {
        let mut fw = FirewallMatcher::from_prefixes(&prefixes);
        let expected = prefixes
            .iter()
            .any(|p| p[..3] == probe[..3]); // 24-bit prefix match
        fw.write_reg(FW_SRC_IP_REG, u32::from_le_bytes(probe));
        fw.tick(&[]);
        fw.tick(&[]);
        prop_assert_eq!(fw.read_reg(FW_MATCH_REG).value == 1, expected);
    }

    #[test]
    fn port_constraints_are_respected(
        dst_port in any::<u16>(),
        probe_port in any::<u16>(),
    ) {
        let set = RuleSet::compile(vec![Rule::new(5, b"zz").with_dst_port(dst_port)]);
        let ids = set.matches(b"azza", 1, probe_port);
        prop_assert_eq!(!ids.is_empty(), probe_port == dst_port);
    }
}
