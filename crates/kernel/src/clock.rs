//! The simulation clock.

/// A cycle index. The whole Rosebud design runs in a single 250 MHz domain
/// (paper §5: "We are able to meet timing at 250 MHz for all designs"), so a
/// single monotone counter suffices.
pub type Cycle = u64;

/// Default clock frequency: 250 MHz, the frequency all Rosebud bitstreams
/// close timing at (paper §5).
pub const DEFAULT_CLOCK_HZ: u64 = 250_000_000;

/// A monotone cycle counter with frequency-aware time conversion.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::Clock;
/// let mut clock = Clock::new(250_000_000);
/// clock.advance(250_000); // 1 ms
/// assert_eq!(clock.micros(), 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clock {
    freq_hz: u64,
    cycle: Cycle,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new(DEFAULT_CLOCK_HZ)
    }
}

impl Clock {
    /// Creates a clock at `freq_hz`, starting at cycle zero.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn new(freq_hz: u64) -> Self {
        assert!(freq_hz > 0, "clock frequency must be non-zero");
        Self { freq_hz, cycle: 0 }
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// The configured frequency in hertz.
    pub fn freq_hz(&self) -> u64 {
        self.freq_hz
    }

    /// Nanoseconds per cycle (4.0 at the default 250 MHz).
    pub fn ns_per_cycle(&self) -> f64 {
        1e9 / self.freq_hz as f64
    }

    /// Advances the clock by one cycle.
    pub fn tick(&mut self) {
        self.cycle += 1;
    }

    /// Advances the clock by `cycles`.
    pub fn advance(&mut self, cycles: Cycle) {
        self.cycle += cycles;
    }

    /// Elapsed time in nanoseconds.
    pub fn ns(&self) -> f64 {
        super::cycles_to_ns(self.cycle, self.freq_hz)
    }

    /// Elapsed time in microseconds.
    pub fn micros(&self) -> f64 {
        self.ns() / 1e3
    }

    /// Elapsed time in seconds.
    pub fn secs(&self) -> f64 {
        self.ns() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_250mhz() {
        let clock = Clock::default();
        assert_eq!(clock.freq_hz(), 250_000_000);
        assert_eq!(clock.ns_per_cycle(), 4.0);
    }

    #[test]
    fn advance_accumulates() {
        let mut clock = Clock::default();
        clock.tick();
        clock.advance(3);
        assert_eq!(clock.cycle(), 4);
        assert_eq!(clock.ns(), 16.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = Clock::new(0);
    }
}
