//! A small deterministic PRNG.
//!
//! Workload generation must be reproducible from a seed so every experiment
//! run prints the same table. We embed a tiny xoshiro256** generator rather
//! than pulling `rand` into the substrate crate; higher layers that need
//! distributions use `rand` directly.

/// Deterministic xoshiro256** pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed, expanded with SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        Self { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift rejection-free mapping (slight bias is irrelevant
        // for workload generation).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn unit_in_range_and_well_spread() {
        let mut rng = SimRng::seed_from(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut rng = SimRng::seed_from(3);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "hits {hits} out of range");
    }
}
