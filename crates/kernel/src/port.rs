//! The packet-port abstraction: how traffic enters and leaves a simulated
//! device.
//!
//! The simulation core is deterministic and cycle-driven; everything outside
//! it — traffic generators, pcap replays, inter-box links, live sockets — is
//! a *port*. A port delivers (or accepts) cycle-stamped items with bounded
//! capacity and an explicit backpressure signal, so the core never needs to
//! know what is actually on the far side. This is the ZynqParrot-style
//! split: a pure core behind host-driven edges.
//!
//! Three contracts make the layer safe to drive from anything:
//!
//! * **Cycle stamps** — [`IngressPort::poll`] only surfaces items whose
//!   stamp has been reached; the consumer passes its current cycle and the
//!   port decides what is due.
//! * **Backpressure, not drops** — a refused item goes back through
//!   [`IngressPort::give_back`] and *must* be re-offered before anything
//!   later; [`EgressPort::offer`] hands the item back when capacity is
//!   exhausted. Nothing in the port layer silently discards traffic, which
//!   is what lets the conservation ledger balance end to end.
//! * **[`PortClock`]** — "when may the core advance?" is explicit: a
//!   driver holding only replay/scheduled sources can fast-forward to the
//!   next due cycle; a driver holding a live source must keep polling.

use crate::delay::DelayLine;
use crate::serializer::Serializer;
use crate::Cycle;
use std::collections::VecDeque;

/// When an ingress port can next produce an item — the contract that makes
/// "may the core advance without consulting this port again?" explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortClock {
    /// An item is deliverable at the current cycle; poll before advancing.
    Ready,
    /// Nothing before this cycle; the core may advance to it unpolled.
    NotBefore(Cycle),
    /// Nothing scheduled, but external arrivals may appear at any cycle
    /// (a live socket); the driver must keep polling as it advances.
    Idle,
    /// The source is finished; it will never produce another item.
    Exhausted,
}

/// A source of cycle-stamped items feeding a device edge.
///
/// The driving loop is always the same shape:
///
/// ```text
/// while let Some(item) = port.poll(now) {
///     match device.accept(item) {
///         Ok(()) => {}
///         Err(item) => { port.give_back(item); break-or-continue }
///     }
/// }
/// ```
///
/// `give_back` is the backpressure edge: only the most recently polled item
/// may be handed back, and the port must re-deliver it before any later
/// item so arrival order is preserved under retry.
pub trait IngressPort<T> {
    /// The next item due at `now`, if any. Items are delivered in stamp
    /// order; an item is only offered once its stamp is reached.
    fn poll(&mut self, now: Cycle) -> Option<T>;

    /// Returns the most recently polled item after the consumer refused it.
    /// The port re-offers it before anything later (possibly not until a
    /// later cycle, modelling a paced source moving on).
    fn give_back(&mut self, item: T);

    /// When the port can next produce an item, viewed at `now`.
    fn clock(&self, now: Cycle) -> PortClock;

    /// Items queued behind the edge — the backpressure signal an upstream
    /// stage (or an operator's dashboard) reads to see congestion.
    fn backlog(&self) -> usize;

    /// A short label for diagnostics.
    fn name(&self) -> &'static str {
        "ingress"
    }
}

/// A sink accepting delivered items at a device edge, with bounded capacity.
pub trait EgressPort<T> {
    /// Whether an item of `len_bytes` would be accepted right now. A
    /// `false` here is the wire-side backpressure signal: the device holds
    /// the item in its MAC instead of dropping it.
    fn can_accept(&self, len_bytes: u64) -> bool;

    /// Delivers an item at `now`. `Err` hands it back (capacity exhausted);
    /// after `can_accept` returned `true` with no intervening offer, this
    /// must succeed.
    fn offer(&mut self, item: T, len_bytes: u64, now: Cycle) -> Result<(), T>;

    /// Items queued inside the port awaiting the far side.
    fn backlog(&self) -> usize {
        0
    }

    /// A short label for diagnostics.
    fn name(&self) -> &'static str {
        "egress"
    }
}

/// A queue of explicitly cycle-stamped items — the building block for
/// replay sources and in-process rings. Stamps must be pushed in
/// non-decreasing order.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::{IngressPort, PortClock, StampedIngress};
///
/// let mut port = StampedIngress::new();
/// port.push_at(5, "early");
/// port.push_at(9, "late");
/// port.finish();
/// assert_eq!(port.clock(0), PortClock::NotBefore(5));
/// assert_eq!(port.poll(5), Some("early"));
/// port.give_back("early"); // refused: re-offered first
/// assert_eq!(port.poll(9), Some("early"));
/// assert_eq!(port.poll(9), Some("late"));
/// assert_eq!(port.clock(9), PortClock::Exhausted);
/// ```
#[derive(Debug, Clone)]
pub struct StampedIngress<T> {
    queue: VecDeque<(Cycle, T)>,
    /// The refused item, re-offered before the queue.
    held: Option<T>,
    finished: bool,
}

impl<T> Default for StampedIngress<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> StampedIngress<T> {
    /// An empty, still-open queue.
    pub fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            held: None,
            finished: false,
        }
    }

    /// Schedules `item` for delivery at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is below the last pushed stamp (stamp order is the
    /// delivery order).
    pub fn push_at(&mut self, cycle: Cycle, item: T) {
        if let Some(&(last, _)) = self.queue.back() {
            assert!(cycle >= last, "stamps must be non-decreasing");
        }
        self.queue.push_back((cycle, item));
    }

    /// Marks the source complete: once drained it reports
    /// [`PortClock::Exhausted`] instead of [`PortClock::Idle`].
    pub fn finish(&mut self) {
        self.finished = true;
    }

    /// `true` once finished and fully drained.
    pub fn is_exhausted(&self) -> bool {
        self.finished && self.queue.is_empty() && self.held.is_none()
    }

    /// The stamp of the next deliverable item, if any.
    pub fn next_due(&self) -> Option<Cycle> {
        self.queue.front().map(|&(at, _)| at)
    }
}

impl<T> IngressPort<T> for StampedIngress<T> {
    fn poll(&mut self, now: Cycle) -> Option<T> {
        if let Some(item) = self.held.take() {
            return Some(item);
        }
        if self.queue.front().is_some_and(|&(at, _)| at <= now) {
            return self.queue.pop_front().map(|(_, item)| item);
        }
        None
    }

    fn give_back(&mut self, item: T) {
        debug_assert!(self.held.is_none(), "only the last polled item returns");
        self.held = Some(item);
    }

    fn clock(&self, now: Cycle) -> PortClock {
        if self.held.is_some() {
            return PortClock::Ready;
        }
        match self.queue.front() {
            Some(&(at, _)) if at <= now => PortClock::Ready,
            Some(&(at, _)) => PortClock::NotBefore(at),
            None if self.finished => PortClock::Exhausted,
            None => PortClock::Idle,
        }
    }

    fn backlog(&self) -> usize {
        self.queue.len() + usize::from(self.held.is_some())
    }

    fn name(&self) -> &'static str {
        "stamped"
    }
}

/// A point-to-point link: a serialization stage into a propagation stage,
/// with a single retry slot on the far side — the shape of every inter-box
/// front link in the fleet (switch egress → cable → DUT MAC).
///
/// Upstream offers items with [`LinkPort::push`]; a full serializer hands
/// the item back *and counts the refusal*, so capacity backpressure is a
/// visible signal rather than a silent drop. Downstream consumes through
/// the [`IngressPort`] trait; a refused item parks in the hold slot and is
/// re-offered before the wire is popped again, preserving order.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::{IngressPort, LinkPort};
///
/// // 50 B/cycle serializer, 2-deep, 10-cycle propagation.
/// let mut link: LinkPort<&str> = LinkPort::new(50, 2, 10);
/// link.push("frame", 100, 0).unwrap();
/// for now in 0..=12 {
///     link.advance(now);
///     if let Some(item) = link.poll(now) {
///         assert_eq!(item, "frame");
///         assert_eq!(now, 12); // 2 cycles serialization + 10 propagation
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct LinkPort<T> {
    ser: Serializer<T>,
    wire: DelayLine<T>,
    hold: Option<T>,
    refused: u64,
}

impl<T> LinkPort<T> {
    /// A link serializing at `bytes_per_cycle` with `capacity` queued items
    /// and `latency` cycles of propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` or `capacity` is zero.
    pub fn new(bytes_per_cycle: u64, capacity: usize, latency: Cycle) -> Self {
        Self {
            ser: Serializer::new(bytes_per_cycle, capacity),
            wire: DelayLine::new(latency),
            hold: None,
            refused: 0,
        }
    }

    /// Offers `item` of `len_bytes` to the link at `now`. A full serializer
    /// returns the item and increments [`LinkPort::refused`] — the
    /// backpressure the upstream stage must honor by retrying.
    pub fn push(&mut self, item: T, len_bytes: u64, now: Cycle) -> Result<(), T> {
        self.ser.push(item, len_bytes, now).inspect_err(|_| {
            self.refused += 1;
        })
    }

    /// `true` when another push would be refused.
    pub fn is_full(&self) -> bool {
        self.ser.is_full()
    }

    /// Moves fully-serialized items onto the propagation stage. Call once
    /// per cycle; skipping a cycle models a flapped (dark) link.
    pub fn advance(&mut self, now: Cycle) {
        while let Some(item) = self.ser.pop_ready(now) {
            self.wire.push(item, now);
        }
    }

    /// How many pushes the link has refused for capacity so far.
    pub fn refused(&self) -> u64 {
        self.refused
    }

    /// `true` when no item is serializing, propagating, or held.
    pub fn is_empty(&self) -> bool {
        self.ser.is_empty() && self.wire.is_empty() && self.hold.is_none()
    }

    /// Discards everything in flight, returning the count.
    pub fn flush(&mut self) -> usize {
        self.ser.flush() + self.wire.flush() + usize::from(self.hold.take().is_some())
    }
}

impl<T> IngressPort<T> for LinkPort<T> {
    fn poll(&mut self, now: Cycle) -> Option<T> {
        if let Some(item) = self.hold.take() {
            return Some(item);
        }
        self.wire.pop_ready(now)
    }

    fn give_back(&mut self, item: T) {
        debug_assert!(self.hold.is_none(), "only the last polled item returns");
        self.hold = Some(item);
    }

    fn clock(&self, now: Cycle) -> PortClock {
        if self.hold.is_some() {
            return PortClock::Ready;
        }
        if let Some(at) = self.wire.head_at() {
            return if at <= now {
                PortClock::Ready
            } else {
                PortClock::NotBefore(at)
            };
        }
        match self.ser.head_ready_at() {
            // Serialization finish + propagation, assuming advance() runs
            // every cycle.
            Some(at) => PortClock::NotBefore(at.max(now) + self.wire.delay()),
            None => PortClock::Idle,
        }
    }

    fn backlog(&self) -> usize {
        self.ser.len() + self.wire.len() + usize::from(self.hold.is_some())
    }

    fn name(&self) -> &'static str {
        "link"
    }
}

/// An unbounded collecting sink — the default egress when nothing real is
/// attached, and the capture side of tests.
#[derive(Debug, Clone)]
pub struct CollectEgress<T> {
    items: Vec<T>,
}

impl<T> Default for CollectEgress<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CollectEgress<T> {
    /// An empty sink.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// Takes everything delivered so far.
    pub fn drain(&mut self) -> Vec<T> {
        std::mem::take(&mut self.items)
    }

    /// Delivered items, in order.
    pub fn items(&self) -> &[T] {
        &self.items
    }
}

impl<T> EgressPort<T> for CollectEgress<T> {
    fn can_accept(&self, _len_bytes: u64) -> bool {
        true
    }

    fn offer(&mut self, item: T, _len_bytes: u64, _now: Cycle) -> Result<(), T> {
        self.items.push(item);
        Ok(())
    }

    fn backlog(&self) -> usize {
        self.items.len()
    }

    fn name(&self) -> &'static str {
        "collect"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamped_ingress_delivers_in_stamp_order() {
        let mut port = StampedIngress::new();
        port.push_at(2, 'a');
        port.push_at(2, 'b');
        port.push_at(7, 'c');
        assert_eq!(port.clock(0), PortClock::NotBefore(2));
        assert_eq!(port.poll(1), None);
        assert_eq!(port.poll(2), Some('a'));
        assert_eq!(port.poll(2), Some('b'));
        assert_eq!(port.clock(2), PortClock::NotBefore(7));
        assert_eq!(port.poll(7), Some('c'));
        assert_eq!(port.clock(7), PortClock::Idle);
        port.finish();
        assert_eq!(port.clock(7), PortClock::Exhausted);
        assert!(port.is_exhausted());
    }

    #[test]
    fn give_back_re_offers_before_later_items() {
        let mut port = StampedIngress::new();
        port.push_at(0, 1);
        port.push_at(0, 2);
        assert_eq!(port.poll(0), Some(1));
        port.give_back(1);
        assert_eq!(port.clock(0), PortClock::Ready);
        assert_eq!(port.backlog(), 2);
        assert_eq!(port.poll(0), Some(1));
        assert_eq!(port.poll(0), Some(2));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn stamps_must_be_monotone() {
        let mut port = StampedIngress::new();
        port.push_at(5, 'x');
        port.push_at(4, 'y');
    }

    #[test]
    fn link_port_charges_both_stages_and_counts_refusals() {
        let mut link: LinkPort<u32> = LinkPort::new(16, 1, 8);
        link.push(1, 32, 0).unwrap(); // 2 cycles serialization
        assert_eq!(link.push(2, 32, 0), Err(2)); // capacity 1
        assert_eq!(link.refused(), 1);
        assert_eq!(link.backlog(), 1);
        let mut got = None;
        for now in 0..=16 {
            link.advance(now);
            if let Some(item) = link.poll(now) {
                got = Some((item, now));
                break;
            }
        }
        assert_eq!(got, Some((1, 10))); // 2 + 8 cycles
        assert!(link.is_empty());
    }

    #[test]
    fn link_port_hold_preserves_order_under_refusal() {
        let mut link: LinkPort<u32> = LinkPort::new(64, 4, 0);
        link.push(1, 64, 0).unwrap();
        link.push(2, 64, 0).unwrap();
        for now in 0..4 {
            link.advance(now);
        }
        let first = link.poll(3).unwrap();
        link.give_back(first);
        assert_eq!(link.clock(3), PortClock::Ready);
        assert_eq!(link.poll(3), Some(first));
        assert_eq!(link.poll(3), Some(2));
    }

    #[test]
    fn link_port_clock_sees_through_the_serializer() {
        let mut link: LinkPort<u32> = LinkPort::new(16, 4, 5);
        assert_eq!(link.clock(0), PortClock::Idle);
        link.push(9, 16, 0).unwrap(); // serialized at 1, surfaces at 6
        assert_eq!(link.clock(0), PortClock::NotBefore(6));
        link.advance(1);
        assert_eq!(link.clock(1), PortClock::NotBefore(6));
        assert_eq!(link.poll(5), None);
        assert_eq!(link.poll(6), Some(9));
    }

    #[test]
    fn link_flush_counts_every_stage() {
        let mut link: LinkPort<u32> = LinkPort::new(64, 4, 2);
        link.push(1, 64, 0).unwrap();
        link.push(2, 64, 0).unwrap();
        link.advance(1);
        link.push(3, 64, 1).unwrap();
        let held = link.poll(3).unwrap();
        link.give_back(held);
        assert_eq!(link.flush(), 3);
        assert!(link.is_empty());
    }

    #[test]
    fn collect_egress_takes_everything() {
        let mut sink: CollectEgress<u8> = CollectEgress::new();
        assert!(sink.can_accept(u64::MAX));
        sink.offer(1, 10, 0).unwrap();
        sink.offer(2, 10, 1).unwrap();
        assert_eq!(sink.backlog(), 2);
        assert_eq!(sink.drain(), vec![1, 2]);
        assert!(sink.items().is_empty());
    }
}
