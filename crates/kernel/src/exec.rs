//! Execution-kernel selection and deterministic work partitioning.
//!
//! The simulator has two cycle-advancement kernels with identical
//! architectural semantics:
//!
//! * **Sequential** — the reference kernel: every pipeline stage iterates the
//!   RPUs in index order, exactly as the stages are written. Simple, slow,
//!   and the oracle the differential suite compares against.
//! * **Parallel** — the barrier-synchronized kernel: the per-RPU *lane
//!   phase* (ISS execution, DMA delivery, descriptor commit — the dominant
//!   cost) runs fused per lane, optionally spread over a worker pool, and
//!   every shared-resource side effect (slot tracker, conservation ledger,
//!   tracer) is resolved at the cycle barrier in fixed stage-major,
//!   lane-ascending order. Traces are byte-identical to the sequential
//!   kernel for every seed; `tests/kernel_equivalence.rs` and the golden
//!   suite enforce this.
//!
//! The mode is chosen by [`KernelMode::from_env`] (the `ROSEBUD_KERNEL`
//! environment variable) so an unmodified test suite can be matrixed over
//! both kernels, or programmatically through the system builder.

use std::ops::Range;

/// Which simulation kernel advances the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// The stage-sliced reference kernel (the differential-testing oracle).
    Sequential,
    /// The fused-lane barrier kernel.
    Parallel {
        /// Worker threads for the lane phase. `0` runs the fused lane phase
        /// inline on the coordinator thread — the right choice on a
        /// single-core host, and still substantially faster than the
        /// sequential kernel because of the fused per-lane pass.
        workers: usize,
        /// Scheduling quantum in cycles: how often the partitioner may
        /// rebalance lanes across workers using observed per-lane cost.
        /// Shared-resource resolution happens at every cycle barrier
        /// regardless, so the quantum affects scheduling only — never
        /// simulation results (`tests/properties.rs` proves this for
        /// quanta 1..=64).
        quantum: u32,
    },
}

/// Default scheduling quantum: rebalance at most every 1024 cycles.
pub const DEFAULT_QUANTUM: u32 = 1024;

impl KernelMode {
    /// Reads the kernel selection from the environment:
    ///
    /// * `ROSEBUD_KERNEL` — `sequential` (default) or `parallel`,
    /// * `ROSEBUD_WORKERS` — worker-thread count for the parallel kernel
    ///   (default: available parallelism minus the coordinator),
    /// * `ROSEBUD_QUANTUM` — scheduling quantum in cycles (default 1024).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `ROSEBUD_KERNEL` value or unparsable
    /// numeric variable — a typo in a CI matrix should fail loudly, not
    /// silently fall back to the reference kernel.
    pub fn from_env() -> Self {
        let parse = |name: &str, default: usize| -> usize {
            match std::env::var(name) {
                Ok(v) => v
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
                Err(_) => default,
            }
        };
        match std::env::var("ROSEBUD_KERNEL").as_deref() {
            Err(_) | Ok("sequential") => KernelMode::Sequential,
            Ok("parallel") => {
                let default_workers = std::thread::available_parallelism()
                    .map(|n| n.get().saturating_sub(1))
                    .unwrap_or(0);
                KernelMode::Parallel {
                    workers: parse("ROSEBUD_WORKERS", default_workers),
                    quantum: parse("ROSEBUD_QUANTUM", DEFAULT_QUANTUM as usize).max(1) as u32,
                }
            }
            Ok(other) => {
                panic!("ROSEBUD_KERNEL must be \"sequential\" or \"parallel\", got {other:?}")
            }
        }
    }
}

/// Splits `n` lanes into at most `parts` contiguous, non-empty ranges whose
/// total `weights` are as balanced as a left-to-right greedy split can make
/// them. Weights are per-lane costs observed by the scheduler (e.g. firmware
/// cycles retired in the last quantum); they influence *scheduling only* —
/// results are independent of the partition because all cross-lane effects
/// are replayed in lane order at the barrier.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::partition;
/// let parts = partition(&[1, 1, 1, 1], 2);
/// assert_eq!(parts, vec![0..2, 2..4]);
/// // A heavy lane 0 gets its own worker.
/// let parts = partition(&[100, 1, 1, 1], 2);
/// assert_eq!(parts, vec![0..1, 1..4]);
/// ```
pub fn partition(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    let parts = parts.max(1).min(n.max(1));
    if n == 0 {
        return Vec::new();
    }
    let total: u64 = weights.iter().map(|w| w.max(&1)).sum();
    let target = total.div_ceil(parts as u64);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, w) in weights.iter().enumerate() {
        acc += (*w).max(1);
        // Close the range when the target is met, but always leave at least
        // one lane per remaining part.
        let remaining_parts = parts - out.len();
        let remaining_lanes = n - i - 1;
        if (acc >= target && remaining_parts > 1 && remaining_lanes >= remaining_parts - 1)
            || remaining_lanes + 1 == remaining_parts
        {
            out.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        out.push(start..n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_everything_exactly_once() {
        for n in 1..=20 {
            for parts in 1..=8 {
                let weights: Vec<u64> = (0..n).map(|i| (i * 7 % 13) as u64).collect();
                let ranges = partition(&weights, parts);
                assert!(ranges.len() <= parts.max(1));
                let mut covered = Vec::new();
                for r in &ranges {
                    assert!(!r.is_empty(), "empty range for n={n} parts={parts}");
                    covered.extend(r.clone());
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn partition_balances_uniform_weights() {
        let ranges = partition(&[1; 16], 4);
        assert_eq!(ranges, vec![0..4, 4..8, 8..12, 12..16]);
    }

    #[test]
    fn more_parts_than_lanes_degrades_to_one_lane_each() {
        let ranges = partition(&[5, 5], 8);
        assert_eq!(ranges, vec![0..1, 1..2]);
    }

    #[test]
    fn default_mode_is_sequential() {
        // The test runner may set ROSEBUD_KERNEL; only assert the default
        // when it is absent.
        if std::env::var("ROSEBUD_KERNEL").is_err() {
            assert_eq!(KernelMode::from_env(), KernelMode::Sequential);
        }
    }
}
