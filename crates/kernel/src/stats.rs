//! Interface counters and latency aggregation.

/// Per-interface counters readable by the host (paper §4.3: "These counters
/// contain the number of transferred bytes, frames, drops, or stalled
/// cycles").
///
/// # Examples
///
/// ```
/// use rosebud_kernel::Counters;
/// let mut c = Counters::default();
/// c.count_rx_frame(64);
/// c.count_tx_frame(64);
/// assert_eq!(c.rx_frames, 1);
/// assert_eq!(c.tx_bytes, 64);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Bytes received.
    pub rx_bytes: u64,
    /// Frames received.
    pub rx_frames: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Frames transmitted.
    pub tx_frames: u64,
    /// Frames dropped (overflow or policy).
    pub drops: u64,
    /// Cycles spent stalled on backpressure.
    pub stall_cycles: u64,
}

impl Counters {
    /// Records an ingress frame of `bytes` bytes.
    pub fn count_rx_frame(&mut self, bytes: u64) {
        self.rx_bytes += bytes;
        self.rx_frames += 1;
    }

    /// Records an egress frame of `bytes` bytes.
    pub fn count_tx_frame(&mut self, bytes: u64) {
        self.tx_bytes += bytes;
        self.tx_frames += 1;
    }

    /// Records a dropped frame.
    pub fn count_drop(&mut self) {
        self.drops += 1;
    }

    /// Records `cycles` of backpressure stall.
    pub fn count_stall(&mut self, cycles: u64) {
        self.stall_cycles += cycles;
    }

    /// Adds another counter set into this one (for aggregating interfaces).
    pub fn merge(&mut self, other: &Counters) {
        self.rx_bytes += other.rx_bytes;
        self.rx_frames += other.rx_frames;
        self.tx_bytes += other.tx_bytes;
        self.tx_frames += other.tx_frames;
        self.drops += other.drops;
        self.stall_cycles += other.stall_cycles;
    }

    /// The counter growth since an `earlier` snapshot. Saturating per field,
    /// so a counter reset between snapshots yields zero rather than a bogus
    /// huge delta.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            rx_bytes: self.rx_bytes.saturating_sub(earlier.rx_bytes),
            rx_frames: self.rx_frames.saturating_sub(earlier.rx_frames),
            tx_bytes: self.tx_bytes.saturating_sub(earlier.tx_bytes),
            tx_frames: self.tx_frames.saturating_sub(earlier.tx_frames),
            drops: self.drops.saturating_sub(earlier.drops),
            stall_cycles: self.stall_cycles.saturating_sub(earlier.stall_cycles),
        }
    }
}

/// One sampling interval produced by [`RateWindow::sample`]: the cycle span
/// and the counter growth inside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateSample {
    /// Cycles elapsed since the previous sample (full 64-bit — windows that
    /// straddle the 2^32 cycle mark, ~17 s of simulated time at 250 MHz,
    /// must not wrap).
    pub cycles: u64,
    /// Counter deltas over the window.
    pub delta: Counters,
}

impl RateSample {
    /// Received bits per cycle over the window; 0.0 for an empty window.
    pub fn rx_bits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.delta.rx_bytes as f64 * 8.0 / self.cycles as f64
    }

    /// Transmitted bits per cycle over the window; 0.0 for an empty window.
    pub fn tx_bits_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.delta.tx_bytes as f64 * 8.0 / self.cycles as f64
    }
}

/// Windowed rate sampler over [`Counters`], keyed on the 64-bit simulation
/// cycle.
///
/// All arithmetic is u64 end to end: cycle deltas are *not* narrowed to u32
/// anywhere, so long-running simulations (past 2^32 cycles) keep producing
/// correct rates instead of silently wrapping.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::{Counters, RateWindow};
/// let mut c = Counters::default();
/// let mut w = RateWindow::new(0, c);
/// c.count_rx_frame(1000);
/// let s = w.sample(4000, c);
/// assert_eq!(s.cycles, 4000);
/// assert_eq!(s.rx_bits_per_cycle(), 2.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RateWindow {
    last_cycle: u64,
    last: Counters,
}

impl RateWindow {
    /// Opens a window at `now` with baseline `counters`.
    pub fn new(now: u64, counters: Counters) -> Self {
        Self {
            last_cycle: now,
            last: counters,
        }
    }

    /// Closes the current window at `now`, returning the sample, and opens
    /// the next one.
    pub fn sample(&mut self, now: u64, counters: Counters) -> RateSample {
        let sample = RateSample {
            cycles: now.saturating_sub(self.last_cycle),
            delta: counters.since(&self.last),
        };
        self.last_cycle = now;
        self.last = counters;
        sample
    }
}

/// Online aggregation of latency samples in nanoseconds.
///
/// Keeps every sample so exact percentiles can be reported, like the paper's
/// RTT experiment which post-processes captured timestamps (§6.2, Appendix D).
///
/// # Examples
///
/// ```
/// use rosebud_kernel::LatencyStats;
/// let mut stats = LatencyStats::new();
/// for ns in [100.0, 200.0, 300.0] {
///     stats.record(ns);
/// }
/// assert_eq!(stats.mean(), 200.0);
/// assert_eq!(stats.min(), 100.0);
/// assert_eq!(stats.max(), 300.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<f64>,
    sorted: bool,
}

impl LatencyStats {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample in nanoseconds.
    pub fn record(&mut self, ns: f64) {
        self.samples.push(ns);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The `p`-th percentile (0.0–100.0); 0.0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
            self.sorted = true;
        }
        let rank = (p / 100.0 * (self.samples.len() - 1) as f64).round() as usize;
        self.samples[rank.min(self.samples.len() - 1)]
    }

    /// All samples recorded so far, in insertion or sorted order depending on
    /// whether a percentile has been queried.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A fixed-bucket histogram for cycle-granularity distributions (e.g. cycles
/// spent per packet, Fig. 9).
///
/// # Examples
///
/// ```
/// use rosebud_kernel::Histogram;
/// let mut h = Histogram::new(10, 8); // 8 buckets of width 10
/// h.record(5);
/// h.record(25);
/// h.record(1_000); // clamps to the last bucket
/// assert_eq!(h.bucket_counts()[0], 1);
/// assert_eq!(h.bucket_counts()[2], 1);
/// assert_eq!(h.bucket_counts()[7], 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` buckets, each `bucket_width` wide.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be non-zero");
        assert!(buckets > 0, "bucket count must be non-zero");
        Self {
            bucket_width,
            counts: vec![0; buckets],
            total: 0,
            sum: 0,
        }
    }

    /// Records one value; out-of-range values clamp to the last bucket.
    pub fn record(&mut self, value: u64) {
        let idx = ((value / self.bucket_width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge() {
        let mut a = Counters::default();
        a.count_rx_frame(100);
        a.count_drop();
        let mut b = Counters::default();
        b.count_tx_frame(50);
        b.count_stall(7);
        a.merge(&b);
        assert_eq!(a.rx_bytes, 100);
        assert_eq!(a.tx_frames, 1);
        assert_eq!(a.drops, 1);
        assert_eq!(a.stall_cycles, 7);
    }

    #[test]
    fn counters_since() {
        let mut a = Counters::default();
        a.count_rx_frame(100);
        a.count_rx_frame(100);
        let snap = a;
        a.count_rx_frame(50);
        a.count_drop();
        let d = a.since(&snap);
        assert_eq!(d.rx_frames, 1);
        assert_eq!(d.rx_bytes, 50);
        assert_eq!(d.drops, 1);
        // A reset (smaller) counter saturates to zero instead of wrapping.
        assert_eq!(Counters::default().since(&a).rx_bytes, 0);
    }

    #[test]
    fn rate_window_survives_the_u32_cycle_boundary() {
        // 2^32 cycles is only ~17 s of simulated time at 250 MHz; a window
        // that straddles it must report the true span, not a wrapped u32.
        let boundary = 1u64 << 32;
        let mut c = Counters::default();
        let mut w = RateWindow::new(boundary - 1_000, c);
        c.count_rx_frame(64_000);
        c.count_tx_frame(64_000);
        let s = w.sample(boundary + 1_000, c);
        assert_eq!(s.cycles, 2_000, "cycle delta wrapped at 2^32");
        assert_eq!(s.rx_bits_per_cycle(), 64_000.0 * 8.0 / 2_000.0);
        // And the next window continues from the far side of the boundary.
        c.count_tx_frame(500);
        let s2 = w.sample(boundary + 2_000, c);
        assert_eq!(s2.cycles, 1_000);
        assert_eq!(s2.delta.tx_frames, 1);
        assert_eq!(s2.delta.tx_bytes, 500);
    }

    #[test]
    fn rate_window_empty_span_is_zero_rate() {
        let c = Counters::default();
        let mut w = RateWindow::new(42, c);
        let s = w.sample(42, c);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.rx_bits_per_cycle(), 0.0);
        assert_eq!(s.tx_bits_per_cycle(), 0.0);
    }

    #[test]
    fn latency_percentiles() {
        let mut stats = LatencyStats::new();
        for i in 1..=100 {
            stats.record(i as f64);
        }
        assert_eq!(stats.percentile(0.0), 1.0);
        assert_eq!(stats.percentile(50.0), 51.0);
        assert_eq!(stats.percentile(100.0), 100.0);
        assert_eq!(stats.count(), 100);
    }

    #[test]
    fn latency_empty_is_zero() {
        let mut stats = LatencyStats::new();
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.min(), 0.0);
        assert_eq!(stats.max(), 0.0);
        assert_eq!(stats.percentile(50.0), 0.0);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(1, 200);
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), 15.0);
    }
}
