//! Cycle-driven simulation substrate for the Rosebud reproduction.
//!
//! The Rosebud paper evaluates a hardware framework clocked at 250 MHz. This
//! crate provides the building blocks every simulated hardware component is
//! made of:
//!
//! * [`Clock`] — the cycle counter and cycle/wall-time conversions,
//! * [`Fifo`] — a bounded queue with backpressure and occupancy statistics,
//!   modelling the register/BRAM FIFOs used throughout the design,
//! * [`Serializer`] — a width-limited link that charges serialization delay
//!   (bytes-per-cycle), modelling MAC interfaces and the distribution
//!   switches' 512-bit/128-bit datapaths,
//! * [`Counters`] — the per-interface byte/frame/drop/stall counters the host
//!   can read back (paper §4.3),
//! * [`LatencyStats`] — latency sample aggregation for round-trip-time
//!   experiments (paper §6.2),
//! * [`SimRng`] — a small deterministic PRNG so that every experiment is
//!   reproducible from a seed,
//! * [`IngressPort`]/[`EgressPort`] and [`PortClock`] — the packet-port
//!   contract every traffic producer/consumer at a device edge implements
//!   (cycle-stamped delivery, bounded capacity, explicit backpressure),
//!   with [`StampedIngress`], [`LinkPort`], and [`CollectEgress`] as the
//!   reusable implementations.
//!
//! # Examples
//!
//! ```
//! use rosebud_kernel::{Clock, Fifo};
//!
//! let mut clock = Clock::default(); // 250 MHz, like the paper's FPGA designs
//! let mut fifo: Fifo<u32> = Fifo::new(4);
//! fifo.push(7).unwrap();
//! clock.advance(16);
//! assert_eq!(clock.ns(), 64.0); // 16 cycles at 4 ns per cycle
//! assert_eq!(fifo.pop(), Some(7));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod delay;
mod exec;
mod fifo;
mod port;
mod rng;
mod serializer;
mod stats;

pub use clock::{Clock, Cycle, DEFAULT_CLOCK_HZ};
pub use delay::DelayLine;
pub use exec::{partition, KernelMode, DEFAULT_QUANTUM};
pub use fifo::Fifo;
pub use port::{CollectEgress, EgressPort, IngressPort, LinkPort, PortClock, StampedIngress};
pub use rng::SimRng;
pub use serializer::Serializer;
pub use stats::{Counters, Histogram, LatencyStats, RateSample, RateWindow};

/// Converts a cycle count at `freq_hz` into nanoseconds.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::{cycles_to_ns, DEFAULT_CLOCK_HZ};
/// assert_eq!(cycles_to_ns(250, DEFAULT_CLOCK_HZ), 1000.0);
/// ```
pub fn cycles_to_ns(cycles: Cycle, freq_hz: u64) -> f64 {
    cycles as f64 * 1e9 / freq_hz as f64
}

/// Converts nanoseconds into a (rounded-up) cycle count at `freq_hz`.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::{ns_to_cycles, DEFAULT_CLOCK_HZ};
/// assert_eq!(ns_to_cycles(1000.0, DEFAULT_CLOCK_HZ), 250);
/// assert_eq!(ns_to_cycles(4.1, DEFAULT_CLOCK_HZ), 2);
/// ```
pub fn ns_to_cycles(ns: f64, freq_hz: u64) -> Cycle {
    (ns * freq_hz as f64 / 1e9).ceil() as Cycle
}

/// Number of cycles a transfer of `bytes` occupies on a link moving
/// `bytes_per_cycle` bytes each cycle (always at least one cycle).
///
/// # Examples
///
/// ```
/// // A 64-byte frame on a 128-bit (16 B/cycle) RPU link takes 4 cycles.
/// assert_eq!(rosebud_kernel::serialize_cycles(64, 16), 4);
/// // Even a zero-length transfer occupies the link for one cycle.
/// assert_eq!(rosebud_kernel::serialize_cycles(0, 16), 1);
/// ```
pub fn serialize_cycles(bytes: u64, bytes_per_cycle: u64) -> Cycle {
    debug_assert!(bytes_per_cycle > 0, "link width must be non-zero");
    bytes.div_ceil(bytes_per_cycle).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_cycles_rounds_up() {
        assert_eq!(serialize_cycles(1, 16), 1);
        assert_eq!(serialize_cycles(16, 16), 1);
        assert_eq!(serialize_cycles(17, 16), 2);
        assert_eq!(serialize_cycles(1500, 50), 30);
    }

    #[test]
    fn ns_cycle_round_trip() {
        for c in [0u64, 1, 16, 250, 10_000] {
            let ns = cycles_to_ns(c, DEFAULT_CLOCK_HZ);
            assert_eq!(ns_to_cycles(ns, DEFAULT_CLOCK_HZ), c);
        }
    }
}
