//! Width-limited links that charge serialization delay.

use std::collections::VecDeque;

use crate::Cycle;

/// A link moving `bytes_per_cycle` bytes each cycle.
///
/// This models the serialization stages the paper's latency equation (Eq. 1)
/// is built from: a packet entering a 100 Gbps MAC (50 B/cycle at 250 MHz) or
/// a 32 Gbps RPU link (16 B/cycle) only becomes visible downstream after its
/// full length has crossed the link. Items carry an explicit byte length so
/// descriptors, frames, and DMA bursts can all ride the same abstraction.
///
/// The wire is *continuous*: byte-times accumulate fractionally, so
/// back-to-back 88-byte wire frames on a 50 B/cycle MAC average 1.76 cycles
/// each rather than rounding each frame up to 2 cycles — the difference
/// between 284 Mpps and 250 Mpps of 64-byte frames on 2×100 G. Items are
/// released in order once fully serialized; a downstream stall lets the wire
/// run on into the link's internal buffer (bounded by `capacity`).
///
/// # Examples
///
/// ```
/// use rosebud_kernel::Serializer;
///
/// // A 32 Gbps RPU link at 250 MHz moves 16 bytes per cycle.
/// let mut link: Serializer<&str> = Serializer::new(16, 4);
/// link.push("frame", 64, 100).unwrap();
/// assert!(link.pop_ready(103).is_none()); // 64 B needs 4 cycles
/// assert_eq!(link.pop_ready(104), Some("frame"));
/// ```
#[derive(Debug, Clone)]
pub struct Serializer<T> {
    bytes_per_cycle: u64,
    queue: VecDeque<Entry<T>>,
    capacity: usize,
    /// Fractional cycle at which the wire finishes its last scheduled byte.
    wire_free: f64,
    busy_bytes: u64,
    transferred_items: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    item: T,
    /// Cycle at which the item has fully crossed the wire.
    ready_at: Cycle,
}

impl<T> Serializer<T> {
    /// Creates a link of the given width holding at most `capacity` queued
    /// items (including those in flight).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` or `capacity` is zero.
    pub fn new(bytes_per_cycle: u64, capacity: usize) -> Self {
        assert!(bytes_per_cycle > 0, "link width must be non-zero");
        assert!(capacity > 0, "link capacity must be non-zero");
        Self {
            bytes_per_cycle,
            queue: VecDeque::new(),
            capacity,
            wire_free: 0.0,
            busy_bytes: 0,
            transferred_items: 0,
        }
    }

    /// Bytes moved per cycle.
    pub fn bytes_per_cycle(&self) -> u64 {
        self.bytes_per_cycle
    }

    /// Offers `item` of `len_bytes` to the link at cycle `now`. Returns the
    /// item back if the link queue is full.
    pub fn push(&mut self, item: T, len_bytes: u64, now: Cycle) -> Result<(), T> {
        if self.queue.len() >= self.capacity {
            return Err(item);
        }
        let start = self.wire_free.max(now as f64);
        let finish = start + len_bytes as f64 / self.bytes_per_cycle as f64;
        self.wire_free = finish;
        self.busy_bytes += len_bytes;
        // A zero-length transfer still occupies the wire for one cycle
        // (descriptor beat).
        let ready_at = (finish.ceil() as Cycle).max(now + 1);
        self.queue.push_back(Entry { item, ready_at });
        Ok(())
    }

    /// `true` when another push would be rejected.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// Number of queued (including in-flight) items.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is queued or in flight.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Returns the head item if its serialization has completed by `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.queue.front()?.ready_at > now {
            return None;
        }
        let entry = self.queue.pop_front().expect("front checked above");
        self.transferred_items += 1;
        Some(entry.item)
    }

    /// The cycle at which the head item becomes available, if any is in
    /// flight. Useful for event-skipping simulation loops.
    pub fn head_ready_at(&self) -> Option<Cycle> {
        self.queue.front().map(|e| e.ready_at)
    }

    /// A reference to the head item (whether or not its serialization has
    /// completed), for routing decisions that must precede the pop.
    pub fn front(&self) -> Option<&T> {
        self.queue.front().map(|e| &e.item)
    }

    /// `true` when the head item's serialization has completed by `now`.
    pub fn head_ready(&self, now: Cycle) -> bool {
        self.head_ready_at().is_some_and(|at| at <= now)
    }

    /// Total payload bytes scheduled onto the wire.
    pub fn transferred_bytes(&self) -> u64 {
        self.busy_bytes
    }

    /// Total items delivered downstream.
    pub fn transferred_items(&self) -> u64 {
        self.transferred_items
    }

    /// Drops everything queued, returning the number of items discarded.
    pub fn flush(&mut self) -> usize {
        let n = self.queue.len();
        self.queue.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_serialization_delay() {
        let mut link: Serializer<u32> = Serializer::new(50, 8); // 100G MAC
        link.push(1, 1500, 0).unwrap();
        // 1500 B at 50 B/cycle = 30 cycles.
        assert!(link.pop_ready(29).is_none());
        assert_eq!(link.pop_ready(30), Some(1));
    }

    #[test]
    fn back_to_back_items_release_in_order() {
        let mut link: Serializer<u32> = Serializer::new(16, 8);
        link.push(1, 64, 0).unwrap(); // ready at 4
        link.push(2, 64, 0).unwrap(); // ready at 8
        assert!(link.pop_ready(3).is_none());
        assert_eq!(link.pop_ready(4), Some(1));
        assert!(link.pop_ready(7).is_none());
        assert_eq!(link.pop_ready(8), Some(2));
    }

    #[test]
    fn fractional_wire_sustains_line_rate() {
        // 88-byte wire frames at 50 B/cycle: 1.76 cycles each. Over 100
        // frames the wire must finish at cycle 176, not 200.
        let mut link: Serializer<u32> = Serializer::new(50, 256);
        for i in 0..100 {
            link.push(i, 88, 0).unwrap();
        }
        let mut last_ready = 0;
        for now in 0..300 {
            while link.pop_ready(now).is_some() {
                last_ready = now;
            }
        }
        assert_eq!(last_ready, 176);
    }

    #[test]
    fn wire_runs_on_while_downstream_stalls() {
        let mut link: Serializer<u32> = Serializer::new(16, 8);
        link.push(1, 16, 0).unwrap();
        link.push(2, 16, 0).unwrap();
        // Nobody pops until cycle 10; both frames have crossed by then and
        // drain back-to-back.
        assert_eq!(link.pop_ready(10), Some(1));
        assert_eq!(link.pop_ready(10), Some(2));
    }

    #[test]
    fn idle_gap_resets_wire_time() {
        let mut link: Serializer<u32> = Serializer::new(16, 8);
        link.push(1, 16, 0).unwrap();
        assert_eq!(link.pop_ready(1), Some(1));
        // Pushing long after the wire idled starts from `now`, not from the
        // stale wire_free.
        link.push(2, 16, 100).unwrap();
        assert!(link.pop_ready(100).is_none());
        assert_eq!(link.pop_ready(101), Some(2));
    }

    #[test]
    fn respects_capacity() {
        let mut link: Serializer<u32> = Serializer::new(16, 2);
        link.push(1, 16, 0).unwrap();
        link.push(2, 16, 0).unwrap();
        assert_eq!(link.push(3, 16, 0), Err(3));
    }

    #[test]
    fn zero_length_takes_one_cycle() {
        let mut link: Serializer<u32> = Serializer::new(16, 2);
        link.push(9, 0, 5).unwrap();
        assert!(link.pop_ready(5).is_none());
        assert_eq!(link.pop_ready(6), Some(9));
    }
}
