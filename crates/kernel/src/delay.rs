//! Fixed-latency pipeline stages.

use std::collections::VecDeque;

use crate::Cycle;

/// A fixed-latency, order-preserving pipeline stage: items become visible
/// `delay` cycles after insertion. Models the pipeline registers and
/// die-crossing stages of the packet distribution subsystem (paper §4.3/§5:
/// "the switching infrastructure uses 54.7 % of the FPGA's die crossing
/// registers").
///
/// # Examples
///
/// ```
/// use rosebud_kernel::DelayLine;
/// let mut dl = DelayLine::new(10);
/// dl.push('x', 100);
/// assert_eq!(dl.pop_ready(109), None);
/// assert_eq!(dl.pop_ready(110), Some('x'));
/// ```
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    delay: Cycle,
    items: VecDeque<(Cycle, T)>,
}

impl<T> DelayLine<T> {
    /// Creates a stage with the given latency in cycles.
    pub fn new(delay: Cycle) -> Self {
        Self {
            delay,
            items: VecDeque::new(),
        }
    }

    /// The configured latency.
    pub fn delay(&self) -> Cycle {
        self.delay
    }

    /// Inserts `item` at cycle `now`; it surfaces at `now + delay`.
    pub fn push(&mut self, item: T, now: Cycle) {
        self.items.push_back((now + self.delay, item));
    }

    /// Pops the oldest item if it has surfaced by `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.items.front().is_some_and(|(at, _)| *at <= now) {
            self.items.pop_front().map(|(_, item)| item)
        } else {
            None
        }
    }

    /// A reference to the oldest item if it has surfaced by `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        match self.items.front() {
            Some((at, item)) if *at <= now => Some(item),
            _ => None,
        }
    }

    /// The cycle at which the oldest item surfaces, if any is in flight.
    /// Useful for event-skipping drivers and port-clock queries.
    pub fn head_at(&self) -> Option<Cycle> {
        self.items.front().map(|(at, _)| *at)
    }

    /// Number of items in flight.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Discards everything in flight, returning the count.
    pub fn flush(&mut self) -> usize {
        let n = self.items.len();
        self.items.clear();
        n
    }

    /// Keeps only items satisfying `pred`, returning how many were
    /// discarded. Used by forced-eviction paths that must destroy in-flight
    /// work bound for a region being reloaded.
    pub fn retain(&mut self, mut pred: impl FnMut(&T) -> bool) -> usize {
        let before = self.items.len();
        self.items.retain(|(_, item)| pred(item));
        before - self.items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_preserved_across_delay() {
        let mut dl = DelayLine::new(5);
        dl.push(1, 0);
        dl.push(2, 1);
        assert_eq!(dl.pop_ready(4), None);
        assert_eq!(dl.pop_ready(5), Some(1));
        assert_eq!(dl.pop_ready(5), None);
        assert_eq!(dl.pop_ready(6), Some(2));
    }

    #[test]
    fn zero_delay_is_immediate() {
        let mut dl = DelayLine::new(0);
        dl.push('a', 7);
        assert_eq!(dl.pop_ready(7), Some('a'));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut dl = DelayLine::new(1);
        dl.push(9, 0);
        assert_eq!(dl.peek_ready(1), Some(&9));
        assert_eq!(dl.len(), 1);
        assert_eq!(dl.pop_ready(1), Some(9));
        assert!(dl.is_empty());
    }
}
