//! Bounded FIFOs with backpressure and occupancy accounting.

use std::collections::VecDeque;

/// A bounded first-in first-out queue with backpressure.
///
/// Every hardware queue in the Rosebud design — the per-input switch FIFOs
/// that provide non-blocking width conversion (paper §4.3), the MAC FIFOs,
/// the 18-slot broadcast-message FIFOs (paper §6.3) — is an instance of this
/// type. A full FIFO refuses pushes, which is how backpressure propagates
/// through the simulated datapath.
///
/// # Examples
///
/// ```
/// use rosebud_kernel::Fifo;
///
/// let mut fifo = Fifo::new(2);
/// assert!(fifo.push('a').is_ok());
/// assert!(fifo.push('b').is_ok());
/// assert_eq!(fifo.push('c'), Err('c')); // full: the item bounces back
/// assert_eq!(fifo.pop(), Some('a'));
/// assert_eq!(fifo.peak_occupancy(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    pushes: u64,
    pops: u64,
    rejected: u64,
    peak: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-depth queue cannot exist in
    /// hardware and would deadlock the simulation.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be non-zero");
        Self {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            pushes: 0,
            pops: 0,
            rejected: 0,
            peak: 0,
        }
    }

    /// Attempts to enqueue `item`; returns it back if the FIFO is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.pushes += 1;
        self.peak = self.peak.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// A reference to the oldest item without dequeuing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when a push would be rejected.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total number of successful pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total number of successful pops.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Total number of rejected pushes (backpressure events).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Highest occupancy ever observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Removes all queued items, returning how many were dropped. Used when
    /// the host flushes load-balancer slots before a partial reconfiguration
    /// (paper §4.2).
    pub fn flush(&mut self) -> usize {
        let n = self.items.len();
        self.items.clear();
        n
    }

    /// Iterates over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut fifo = Fifo::new(8);
        for i in 0..5 {
            fifo.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(fifo.pop(), Some(i));
        }
        assert_eq!(fifo.pop(), None);
    }

    #[test]
    fn backpressure_counts_rejections() {
        let mut fifo = Fifo::new(1);
        fifo.push(1).unwrap();
        assert!(fifo.is_full());
        assert_eq!(fifo.push(2), Err(2));
        assert_eq!(fifo.push(3), Err(3));
        assert_eq!(fifo.rejected(), 2);
        assert_eq!(fifo.pushes(), 1);
    }

    #[test]
    fn flush_empties_and_reports() {
        let mut fifo = Fifo::new(4);
        fifo.push('x').unwrap();
        fifo.push('y').unwrap();
        assert_eq!(fifo.flush(), 2);
        assert!(fifo.is_empty());
        assert_eq!(fifo.peak_occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}
