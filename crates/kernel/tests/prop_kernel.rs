//! Property tests on the simulation substrate: FIFO conservation and order,
//! serializer timing monotonicity, and delay-line ordering.

use proptest::prelude::*;
use rosebud_kernel::{DelayLine, Fifo, Serializer};

proptest! {
    #[test]
    fn fifo_conserves_and_orders(
        ops in proptest::collection::vec(any::<bool>(), 1..300),
        capacity in 1usize..32,
    ) {
        let mut fifo = Fifo::new(capacity);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        let mut next = 0u32;
        for push in ops {
            if push {
                match fifo.push(next) {
                    Ok(()) => {
                        prop_assert!(model.len() < capacity);
                        model.push_back(next);
                    }
                    Err(v) => {
                        prop_assert_eq!(v, next);
                        prop_assert_eq!(model.len(), capacity);
                    }
                }
                next += 1;
            } else {
                prop_assert_eq!(fifo.pop(), model.pop_front());
            }
            prop_assert_eq!(fifo.len(), model.len());
            prop_assert!(fifo.len() <= capacity);
        }
        prop_assert_eq!(fifo.pushes() - fifo.pops(), fifo.len() as u64);
    }

    #[test]
    fn serializer_release_times_are_causal_and_ordered(
        lens in proptest::collection::vec(1u64..4000, 1..50),
        width in 1u64..128,
    ) {
        let mut link: Serializer<usize> = Serializer::new(width, lens.len());
        for (i, &len) in lens.iter().enumerate() {
            link.push(i, len, 0).unwrap();
        }
        // Drain, recording release cycles.
        let mut releases = Vec::new();
        let mut now = 0u64;
        while releases.len() < lens.len() {
            if let Some(item) = link.pop_ready(now) {
                releases.push((item, now));
            } else {
                now += 1;
            }
            prop_assert!(now < 10_000_000, "serializer wedged");
        }
        // In-order delivery.
        for (expect, (item, _)) in releases.iter().enumerate() {
            prop_assert_eq!(*item, expect);
        }
        // Total wire time is at least total_bytes / width.
        let total: u64 = lens.iter().sum();
        let last = releases.last().unwrap().1;
        prop_assert!(last >= total / width);
        // And never slower than per-item ceils summed.
        let worst: u64 = lens.iter().map(|l| l.div_ceil(width) + 1).sum();
        prop_assert!(last <= worst + 1);
    }

    #[test]
    fn delay_line_preserves_order_and_latency(
        delays in 0u64..100,
        items in proptest::collection::vec(0u64..50, 1..50),
    ) {
        let mut dl = DelayLine::new(delays);
        let mut t = 0;
        for (i, gap) in items.iter().enumerate() {
            t += gap;
            dl.push(i, t);
        }
        let mut now = 0;
        let mut seen = 0usize;
        while seen < items.len() {
            if let Some(item) = dl.pop_ready(now) {
                prop_assert_eq!(item, seen);
                seen += 1;
            } else {
                now += 1;
            }
            prop_assert!(now < 100_000, "delay line wedged");
        }
    }
}
