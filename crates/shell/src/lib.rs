//! The async I/O shell around the deterministic Rosebud simulation core.
//!
//! The core (`rosebud-core`) is a pure, cycle-deterministic function of its
//! injected traffic; this crate is everything impure around it, split along
//! that line on purpose:
//!
//! * [`ShellBackend`] — transports carrying raw frames to and from real
//!   endpoints: an in-process ring ([`RingBackend`], the CI workhorse),
//!   Unix-domain datagrams ([`UdsBackend`]), UDP ([`UdpBackend`]), and —
//!   behind the `tun` feature — a pre-opened TUN/TAP device.
//! * [`Shell`] — the event loop: drain the backend, stamp each accepted
//!   frame with its injection cycle into an event log, tick the core, push
//!   deliveries back out. The log replays bit-exactly through the
//!   sequential kernel oracle (`rosebud_core::ports::replay`), so any live
//!   run is also a reproducible testcase.
//! * [`ControlServer`] — a minimal HTTP-over-Unix-socket control plane:
//!   stats, ledger, counters, event-log export, Perfetto trace export, RPU
//!   enable/disable, gated partial reconfiguration, and hot firmware loads.
//!
//! This crate is deliberately *outside* the determinism lint wall that
//! covers the core crates: sockets, wall-clock timeouts, and (under `tun`)
//! fd adoption live here so they can never leak into the simulation.
//!
//! # Examples
//!
//! A live two-port forwarder over an in-process ring:
//!
//! ```
//! use rosebud_core::{Rosebud, RosebudConfig, RpuProgram};
//! use rosebud_shell::{RingBackend, Shell};
//!
//! let image = rosebud_riscv::assemble("
//!     .equ IO, 0x02000000
//!         li t0, IO
//!         li t2, 0x01000000
//!     poll:
//!         lw a0, 0x00(t0)
//!         beqz a0, poll
//!         lw a1, 0x04(t0)
//!         lw a2, 0x08(t0)
//!         sw zero, 0x0c(t0)
//!         xor a1, a1, t2
//!         sw a1, 0x10(t0)
//!         sw a2, 0x14(t0)
//!         j poll
//! ").unwrap();
//! let sys = Rosebud::builder(RosebudConfig::with_rpus(2))
//!     .firmware(move |_| RpuProgram::Riscv(image.clone()))
//!     .build()
//!     .unwrap();
//!
//! let (backend, peer) = RingBackend::pair();
//! let mut shell = Shell::new(sys, backend);
//! peer.send(0, vec![0u8; 64]);
//! shell.pump(5_000);
//! assert_eq!(peer.recv().len(), 1);
//! ```

#![warn(missing_docs)]

mod backend;
mod control;
mod shell;
#[cfg(feature = "tun")]
mod tun;

pub use backend::{RingBackend, RingPeer, ShellBackend, UdpBackend, UdsBackend, MAX_FRAME};
pub use control::ControlServer;
pub use shell::Shell;
#[cfg(feature = "tun")]
pub use tun::{TunBackend, TUN_FD_ENV};
