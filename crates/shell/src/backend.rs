//! Frame transports between the shell and the outside world.
//!
//! A backend is deliberately dumb: it moves raw Ethernet frames tagged with
//! a physical-port index, with no notion of cycles. The [`Shell`]
//! (crate::Shell) owns the cycle domain; the backend owns the bytes.

use std::collections::VecDeque;
use std::io;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::os::unix::net::UnixDatagram;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Largest frame a backend will accept from the outside (jumbo + slack).
pub const MAX_FRAME: usize = 16 * 1024;

/// A transport carrying raw frames between the shell and real endpoints.
///
/// Both directions are non-blocking: `recv_frames` returns whatever has
/// arrived since the last call (possibly nothing), `send_frame` hands a
/// delivered frame to the far side and never waits.
pub trait ShellBackend {
    /// Drains every frame that arrived since the last call, as
    /// `(port, bytes)` pairs in arrival order.
    fn recv_frames(&mut self) -> Vec<(u8, Vec<u8>)>;

    /// Emits one delivered frame on `port`. Errors are the backend's to
    /// swallow (a live sink with no receiver is not the simulation's
    /// problem).
    fn send_frame(&mut self, port: u8, frame: &[u8]);

    /// A short label for diagnostics.
    fn name(&self) -> &'static str;
}

type FrameQueue = Arc<Mutex<VecDeque<(u8, Vec<u8>)>>>;

fn drain(q: &FrameQueue) -> Vec<(u8, Vec<u8>)> {
    q.lock().expect("ring poisoned").drain(..).collect()
}

fn push(q: &FrameQueue, port: u8, frame: Vec<u8>) {
    q.lock().expect("ring poisoned").push_back((port, frame));
}

/// An in-process ring-buffer transport — the CI backend. [`RingBackend::pair`]
/// returns the shell side and a [`RingPeer`] the test (or another thread)
/// drives like a cable cross-connect.
///
/// # Examples
///
/// ```
/// use rosebud_shell::{RingBackend, ShellBackend};
///
/// let (mut shell_side, peer) = RingBackend::pair();
/// peer.send(0, vec![0xAA; 64]);
/// let got = shell_side.recv_frames();
/// assert_eq!(got, vec![(0, vec![0xAA; 64])]);
/// shell_side.send_frame(1, &[0xBB; 64]);
/// assert_eq!(peer.recv().len(), 1);
/// ```
pub struct RingBackend {
    /// Frames from the peer toward the shell.
    rx: FrameQueue,
    /// Frames from the shell toward the peer.
    tx: FrameQueue,
}

/// The far end of a [`RingBackend`] pair.
#[derive(Clone)]
pub struct RingPeer {
    /// Frames toward the shell.
    tx: FrameQueue,
    /// Frames from the shell.
    rx: FrameQueue,
}

impl RingBackend {
    /// A connected (shell side, peer side) pair.
    pub fn pair() -> (Self, RingPeer) {
        let a: FrameQueue = Arc::default();
        let b: FrameQueue = Arc::default();
        (
            Self {
                rx: a.clone(),
                tx: b.clone(),
            },
            RingPeer { tx: a, rx: b },
        )
    }
}

impl ShellBackend for RingBackend {
    fn recv_frames(&mut self) -> Vec<(u8, Vec<u8>)> {
        drain(&self.rx)
    }

    fn send_frame(&mut self, port: u8, frame: &[u8]) {
        push(&self.tx, port, frame.to_vec());
    }

    fn name(&self) -> &'static str {
        "ring"
    }
}

impl RingPeer {
    /// Offers a frame to the shell on `port`.
    pub fn send(&self, port: u8, frame: Vec<u8>) {
        push(&self.tx, port, frame);
    }

    /// Drains frames the shell has emitted since the last call.
    pub fn recv(&self) -> Vec<(u8, Vec<u8>)> {
        drain(&self.rx)
    }

    /// Frames queued toward the shell but not yet drained.
    pub fn backlog(&self) -> usize {
        self.tx.lock().expect("ring poisoned").len()
    }
}

/// A Unix-domain-datagram transport: one socket per physical port. Clients
/// bind their own path and send datagrams (one frame each) to the port's
/// path; the shell learns each port's peer from the first datagram it
/// receives and emits deliveries back to it.
pub struct UdsBackend {
    socks: Vec<UnixDatagram>,
    /// Last-seen peer per port (datagram sends need an explicit address).
    peers: Vec<Option<PathBuf>>,
}

impl UdsBackend {
    /// Binds one datagram socket per path in `paths` (port `i` ↔
    /// `paths[i]`), all non-blocking. Existing socket files are removed
    /// first.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<P: AsRef<Path>>(paths: &[P]) -> io::Result<Self> {
        let mut socks = Vec::with_capacity(paths.len());
        for p in paths {
            let p = p.as_ref();
            let _ = std::fs::remove_file(p);
            let s = UnixDatagram::bind(p)?;
            s.set_nonblocking(true)?;
            socks.push(s);
        }
        let peers = vec![None; socks.len()];
        Ok(Self { socks, peers })
    }

    /// Number of ports (sockets) bound.
    pub fn ports(&self) -> usize {
        self.socks.len()
    }
}

impl ShellBackend for UdsBackend {
    fn recv_frames(&mut self) -> Vec<(u8, Vec<u8>)> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; MAX_FRAME];
        for (port, sock) in self.socks.iter().enumerate() {
            loop {
                match sock.recv_from(&mut buf) {
                    Ok((n, addr)) => {
                        if let Some(path) = addr.as_pathname() {
                            self.peers[port] = Some(path.to_path_buf());
                        }
                        out.push((port as u8, buf[..n].to_vec()));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        out
    }

    fn send_frame(&mut self, port: u8, frame: &[u8]) {
        let p = port as usize;
        if let Some(Some(peer)) = self.peers.get(p) {
            // A vanished receiver is the receiver's problem.
            let _ = self.socks[p].send_to(frame, peer);
        }
    }

    fn name(&self) -> &'static str {
        "uds"
    }
}

/// A UDP transport: one socket per physical port, same peer-learning rule
/// as [`UdsBackend`]. Useful for cross-host play; frames are unencapsulated
/// (one frame per datagram).
pub struct UdpBackend {
    socks: Vec<UdpSocket>,
    peers: Vec<Option<SocketAddr>>,
}

impl UdpBackend {
    /// Binds one UDP socket per address (port `i` ↔ `addrs[i]`), all
    /// non-blocking.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addrs: &[SocketAddr]) -> io::Result<Self> {
        let mut socks = Vec::with_capacity(addrs.len());
        for a in addrs {
            let s = UdpSocket::bind(a)?;
            s.set_nonblocking(true)?;
            socks.push(s);
        }
        let peers = vec![None; socks.len()];
        Ok(Self { socks, peers })
    }

    /// The local address of port `p`'s socket (useful after binding port 0).
    ///
    /// # Errors
    ///
    /// Propagates the lookup failure.
    pub fn local_addr(&self, p: usize) -> io::Result<SocketAddr> {
        self.socks[p].local_addr()
    }
}

impl ShellBackend for UdpBackend {
    fn recv_frames(&mut self) -> Vec<(u8, Vec<u8>)> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; MAX_FRAME];
        for (port, sock) in self.socks.iter().enumerate() {
            loop {
                match sock.recv_from(&mut buf) {
                    Ok((n, addr)) => {
                        self.peers[port] = Some(addr);
                        out.push((port as u8, buf[..n].to_vec()));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        out
    }

    fn send_frame(&mut self, port: u8, frame: &[u8]) {
        let p = port as usize;
        if let Some(Some(peer)) = self.peers.get(p) {
            let _ = self.socks[p].send_to(frame, *peer);
        }
    }

    fn name(&self) -> &'static str {
        "udp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pair_crosses_frames() {
        let (mut shell, peer) = RingBackend::pair();
        assert!(shell.recv_frames().is_empty());
        peer.send(1, vec![1, 2, 3]);
        peer.send(0, vec![4]);
        assert_eq!(shell.recv_frames(), vec![(1, vec![1, 2, 3]), (0, vec![4])]);
        shell.send_frame(0, &[9; 10]);
        let back = peer.recv();
        assert_eq!(back, vec![(0, vec![9; 10])]);
        assert_eq!(peer.backlog(), 0);
    }

    #[test]
    fn uds_backend_learns_peers_and_echoes() {
        let dir = std::env::temp_dir().join(format!("rbshell-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p0 = dir.join("port0.sock");
        let mut be = UdsBackend::bind(&[&p0]).unwrap();
        assert_eq!(be.ports(), 1);

        // Sends with no learned peer go nowhere, without erroring.
        be.send_frame(0, &[0xFF; 32]);

        let client_path = dir.join("client.sock");
        let _ = std::fs::remove_file(&client_path);
        let client = UnixDatagram::bind(&client_path).unwrap();
        client.send_to(&[7; 60], &p0).unwrap();

        let got = be.recv_frames();
        assert_eq!(got, vec![(0, vec![7; 60])]);

        be.send_frame(0, &[8; 64]);
        let mut buf = [0u8; 128];
        let (n, _) = client.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], &[8; 64][..]);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn udp_backend_learns_peers_and_echoes() {
        let mut be = UdpBackend::bind(&["127.0.0.1:0".parse().unwrap()]).unwrap();
        let shell_addr = be.local_addr(0).unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        client.send_to(&[5; 60], shell_addr).unwrap();
        // UDP delivery over loopback is fast but not instant.
        let mut got = Vec::new();
        for _ in 0..200 {
            got = be.recv_frames();
            if !got.is_empty() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, vec![(0, vec![5; 60])]);
        be.send_frame(0, &[6; 64]);
        let mut buf = [0u8; 128];
        client
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let (n, _) = client.recv_from(&mut buf).unwrap();
        assert_eq!(&buf[..n], &[6; 64][..]);
    }
}
