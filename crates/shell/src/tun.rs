//! TUN/TAP attachment (feature `tun`): a backend over a pre-opened device
//! file descriptor.
//!
//! Opening `/dev/net/tun` and wiring the interface needs root, so this
//! module does neither: a supervisor (script, systemd unit, test harness)
//! opens the device, sets it `O_NONBLOCK`, and hands the raw fd down via
//! the `ROSEBUD_TUN_FD` environment variable. CI never exercises this path
//! — the contract-level behavior is covered by the ring and socket
//! backends, which share the [`ShellBackend`] surface.

use std::fs::File;
use std::io::{ErrorKind, Read, Write};
use std::os::unix::io::FromRawFd;

use crate::backend::{ShellBackend, MAX_FRAME};

/// Environment variable carrying the pre-opened TUN/TAP fd.
pub const TUN_FD_ENV: &str = "ROSEBUD_TUN_FD";

/// A single-port backend over a pre-opened TUN/TAP file descriptor. All
/// frames arrive on (and are sent as) port 0.
pub struct TunBackend {
    dev: File,
}

impl TunBackend {
    /// Adopts the fd named by `ROSEBUD_TUN_FD`. The fd must already be
    /// non-blocking; this process takes ownership of it.
    ///
    /// # Errors
    ///
    /// Reports a missing or malformed environment variable.
    pub fn from_env() -> Result<Self, String> {
        let raw = std::env::var(TUN_FD_ENV)
            .map_err(|_| format!("{TUN_FD_ENV} is not set"))?
            .parse::<i32>()
            .map_err(|e| format!("{TUN_FD_ENV} is not an fd number: {e}"))?;
        if raw < 0 {
            return Err(format!("{TUN_FD_ENV} is negative"));
        }
        // SAFETY: the supervisor contract is that this fd is a live, owned,
        // non-blocking TUN/TAP descriptor passed down for exactly this
        // adoption; nothing else in the process holds it.
        let dev = unsafe { File::from_raw_fd(raw) };
        Ok(Self { dev })
    }
}

impl ShellBackend for TunBackend {
    fn recv_frames(&mut self) -> Vec<(u8, Vec<u8>)> {
        let mut out = Vec::new();
        let mut buf = vec![0u8; MAX_FRAME];
        loop {
            match self.dev.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => out.push((0, buf[..n].to_vec())),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        out
    }

    fn send_frame(&mut self, _port: u8, frame: &[u8]) {
        let _ = self.dev.write(frame);
    }

    fn name(&self) -> &'static str {
        "tun"
    }
}
