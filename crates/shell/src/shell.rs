//! The shell proper: a live event loop around the deterministic core.
//!
//! Real frames arrive whenever the backend produces them; the shell stamps
//! each one with the cycle at which its injection is *accepted* and records
//! it in an [`EventLog`]. Because the core is a pure function of its
//! accepted injections, that log plus the firmware factory reproduces the
//! entire live run bit-exactly through [`rosebud_core::ports::replay`] —
//! including the trace, the conservation ledger, and the diagnostics.

use std::collections::VecDeque;

use rosebud_core::ports::EventLog;
use rosebud_core::{Rosebud, SharedEgress};
use rosebud_net::Packet;

use crate::backend::ShellBackend;

/// A live middlebox: frames in from a [`ShellBackend`], through the
/// cycle-accurate [`Rosebud`] core, and back out — with every arrival
/// recorded for bit-exact replay.
///
/// # Examples
///
/// ```
/// use rosebud_core::{Rosebud, RosebudConfig, RpuProgram};
/// use rosebud_shell::{RingBackend, Shell};
///
/// let image = rosebud_riscv::assemble("
///     .equ IO, 0x02000000
///         li t0, IO
///         li t2, 0x01000000
///     poll:
///         lw a0, 0x00(t0)
///         beqz a0, poll
///         lw a1, 0x04(t0)
///         lw a2, 0x08(t0)
///         sw zero, 0x0c(t0)
///         xor a1, a1, t2
///         sw a1, 0x10(t0)
///         sw a2, 0x14(t0)
///         j poll
/// ").unwrap();
/// let sys = Rosebud::builder(RosebudConfig::with_rpus(2))
///     .firmware(move |_| RpuProgram::Riscv(image.clone()))
///     .build()
///     .unwrap();
///
/// let (backend, peer) = RingBackend::pair();
/// let mut shell = Shell::new(sys, backend);
/// peer.send(0, vec![0u8; 64]);
/// shell.pump(5_000);
/// assert_eq!(shell.forwarded(), 1);
/// assert_eq!(peer.recv().len(), 1);
/// assert_eq!(shell.log().events.len(), 1);
/// ```
pub struct Shell<B: ShellBackend> {
    sys: Rosebud,
    backend: B,
    log: EventLog,
    /// Frames received from the backend but not yet accepted by a MAC.
    pending: VecDeque<Packet>,
    egress: SharedEgress,
    host_rx: Vec<Packet>,
    next_id: u64,
    forwarded: u64,
    rejected: u64,
}

impl<B: ShellBackend> Shell<B> {
    /// Wraps `sys` in a live shell over `backend`, binding a shared egress
    /// sink to every physical port so deliveries become backend sends.
    pub fn new(mut sys: Rosebud, backend: B) -> Self {
        let egress = SharedEgress::new();
        for p in 0..sys.config().num_ports {
            sys.bind_egress(p, Box::new(egress.clone()));
        }
        Self {
            sys,
            backend,
            log: EventLog::new(),
            pending: VecDeque::new(),
            egress,
            host_rx: Vec::new(),
            next_id: 0,
            forwarded: 0,
            rejected: 0,
        }
    }

    /// One shell iteration: drain the backend, inject what the MACs will
    /// take (recording each accepted frame at the current cycle), tick the
    /// core once, and push deliveries back out. Returns how many frames
    /// were injected this cycle.
    pub fn step(&mut self) -> u64 {
        let now = self.sys.now();

        for (port, bytes) in self.backend.recv_frames() {
            if (port as usize) >= self.sys.config().num_ports {
                self.rejected += 1;
                continue;
            }
            let pkt = Packet::new(self.next_id, bytes, port, now);
            self.next_id += 1;
            self.pending.push_back(pkt);
        }

        let mut accepted = 0;
        while let Some(pkt) = self.pending.pop_front() {
            let copy = pkt.clone();
            match self.sys.inject(pkt) {
                Ok(()) => {
                    // Only *accepted* injections are logged: replaying them
                    // at the same cycles is guaranteed to succeed, because
                    // the core's state is a pure function of this log.
                    self.log.push(now, copy);
                    accepted += 1;
                }
                Err(p) => {
                    // MAC busy: real-wire backpressure. The frame waits in
                    // the shell's queue, not silently dropped.
                    self.pending.push_front(p);
                    break;
                }
            }
        }

        self.sys.tick();
        self.log.cycles = self.sys.now();

        for pkt in self.egress.drain() {
            self.backend.send_frame(pkt.port, pkt.bytes());
            self.forwarded += 1;
        }
        self.host_rx.extend(self.sys.take_host_packets());

        accepted
    }

    /// Runs `cycles` shell iterations.
    pub fn pump(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// The core under the shell.
    pub fn sys(&self) -> &Rosebud {
        &self.sys
    }

    /// Mutable core access — the control service drives RPU enable/disable,
    /// partial reconfiguration, and firmware loads through this.
    pub fn sys_mut(&mut self) -> &mut Rosebud {
        &mut self.sys
    }

    /// The backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The cycle-stamped record of every accepted arrival so far.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Frames delivered back to the backend so far.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    /// Frames refused at the shell edge (unknown port index).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Frames received from the backend but not yet accepted by a MAC.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Drains frames the firmware sent to the host over PCIe.
    pub fn take_host_packets(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.host_rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RingBackend;
    use rosebud_core::{RosebudConfig, RpuProgram};
    use rosebud_riscv::assemble;

    fn forwarder_sys(rpus: usize) -> Rosebud {
        let image = assemble(
            "
            .equ IO, 0x02000000
                li t0, IO
                li t2, 0x01000000
            poll:
                lw a0, 0x00(t0)
                beqz a0, poll
                lw a1, 0x04(t0)
                lw a2, 0x08(t0)
                sw zero, 0x0c(t0)
                xor a1, a1, t2
                sw a1, 0x10(t0)
                sw a2, 0x14(t0)
                j poll
            ",
        )
        .unwrap();
        Rosebud::builder(RosebudConfig::with_rpus(rpus))
            .firmware(move |_| RpuProgram::Riscv(image.clone()))
            .build()
            .unwrap()
    }

    #[test]
    fn live_frames_flow_and_are_logged() {
        let (backend, peer) = RingBackend::pair();
        let mut shell = Shell::new(forwarder_sys(2), backend);
        peer.send(0, vec![0xAB; 64]);
        peer.send(1, vec![0xCD; 128]);
        shell.pump(5_000);
        assert_eq!(shell.forwarded(), 2);
        assert_eq!(shell.log().events.len(), 2);
        assert_eq!(shell.backlog(), 0);
        let out = peer.recv();
        assert_eq!(out.len(), 2);
        // The forwarder flips output port parity (port ^ 1).
        let mut ports: Vec<u8> = out.iter().map(|(p, _)| *p).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![0, 1]);
        shell.sys().assert_conservation();
    }

    #[test]
    fn unknown_port_is_rejected_not_injected() {
        let (backend, peer) = RingBackend::pair();
        let mut shell = Shell::new(forwarder_sys(2), backend);
        let ports = shell.sys().config().num_ports as u8;
        peer.send(ports, vec![0u8; 64]); // one past the last valid port
        shell.pump(100);
        assert_eq!(shell.rejected(), 1);
        assert_eq!(shell.log().events.len(), 0);
    }

    #[test]
    fn ring_run_replays_bit_exactly() {
        let (backend, peer) = RingBackend::pair();
        let mut shell = Shell::new(forwarder_sys(2), backend);
        for i in 0..20u8 {
            peer.send(i % 2, vec![i; 64 + i as usize]);
            shell.pump(37); // stagger arrivals across cycles
        }
        shell.pump(5_000);
        let live_ledger = shell.sys().ledger();
        let live_diag = shell.sys().diagnostics().render();
        let log = shell.log().clone();
        assert_eq!(log.events.len(), 20);

        let mut oracle = forwarder_sys(2);
        let delivered = rosebud_core::ports::replay(&log, &mut oracle);
        assert_eq!(delivered.len(), 20);
        assert_eq!(oracle.ledger(), live_ledger);
        assert_eq!(oracle.diagnostics().render(), live_diag);
    }
}
