//! The line-protocol control service: a minimal HTTP/1.0 endpoint on a
//! Unix-domain socket, speakable with `curl --unix-socket`.
//!
//! The service is polled from the shell's own event loop — no threads touch
//! the simulation, so control actions land at a well-defined cycle and the
//! run stays replayable.
//!
//! | Request                     | Effect                                             |
//! |-----------------------------|----------------------------------------------------|
//! | `GET /stats`                | cycle, injected/forwarded/rejected, backlog        |
//! | `GET /ledger`               | the packet-conservation ledger                     |
//! | `GET /counters`             | full diagnostics render                            |
//! | `GET /events`               | the event log in its versioned text format         |
//! | `GET /perfetto`             | Perfetto JSON trace (one-shot: drains the tracer)  |
//! | `POST /rpu/{r}/enable`      | re-enable RPU `r`                                  |
//! | `POST /rpu/{r}/disable`     | drain and disable RPU `r`                          |
//! | `POST /rpu/{r}/reload`      | gated partial reconfiguration of RPU `r`           |
//! | `POST /firmware/{r}`        | assemble the body and hot-load it into RPU `r`     |

use std::io::{self, ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::time::Duration;

use rosebud_riscv::assemble;

use crate::backend::ShellBackend;
use crate::shell::Shell;

/// Longest request (headers + body) the service will read.
const MAX_REQUEST: usize = 1 << 20;

/// A control endpoint bound to a Unix socket, polled between shell steps.
pub struct ControlServer {
    listener: UnixListener,
}

impl ControlServer {
    /// Binds the control socket at `path` (an existing socket file is
    /// replaced) and sets it non-blocking.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let path = path.as_ref();
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        Ok(Self { listener })
    }

    /// Accepts and serves every pending connection, returning how many
    /// requests were handled. Each connection carries one request and is
    /// closed after the response (HTTP/1.0 semantics).
    pub fn poll<B: ShellBackend>(&mut self, shell: &mut Shell<B>) -> usize {
        let mut handled = 0;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // Ignore per-connection failures: a client that hung up
                    // mid-request must not take the middlebox down.
                    if Self::serve_one(stream, shell).is_ok() {
                        handled += 1;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        handled
    }

    fn serve_one<B: ShellBackend>(mut stream: UnixStream, shell: &mut Shell<B>) -> io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let request = read_request(&mut stream)?;
        let (status, content_type, body) = dispatch(&request, shell);
        let response = format!(
            "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(response.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()
    }
}

/// A parsed request: method, path, body.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Reads one HTTP request: headers to the blank line, then exactly
/// `Content-Length` body bytes.
fn read_request(stream: &mut UnixStream) -> io::Result<Request> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_REQUEST {
            return Err(io::Error::new(ErrorKind::InvalidData, "request too large"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                ErrorKind::UnexpectedEof,
                "truncated request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| io::Error::new(ErrorKind::InvalidData, "empty request"))?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            if k.trim().eq_ignore_ascii_case("content-length") {
                content_length = v.trim().parse().unwrap_or(0);
            }
        }
    }
    if content_length > MAX_REQUEST {
        return Err(io::Error::new(ErrorKind::InvalidData, "body too large"));
    }

    let mut body: Vec<u8> = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Routes a request to its handler. Returns (status, content type, body).
fn dispatch<B: ShellBackend>(
    req: &Request,
    shell: &mut Shell<B>,
) -> (&'static str, &'static str, String) {
    const TEXT: &str = "text/plain";
    const JSON: &str = "application/json";
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/stats") => {
            let body = format!(
                "cycle={} injected={} forwarded={} rejected={} backlog={} backend={}\n",
                shell.sys().now(),
                shell.log().events.len(),
                shell.forwarded(),
                shell.rejected(),
                shell.backlog(),
                shell.backend().name(),
            );
            ("200 OK", TEXT, body)
        }
        ("GET", "/ledger") => {
            let l = shell.sys().ledger();
            let body = format!(
                "injected={} originated={} delivered={} dropped={} corrupted={} purged={} in_flight={}\n",
                l.injected,
                l.originated,
                l.delivered,
                l.dropped,
                l.corrupted,
                l.purged,
                shell.sys().ledger_in_flight(),
            );
            ("200 OK", TEXT, body)
        }
        ("GET", "/counters") => ("200 OK", TEXT, shell.sys().diagnostics().render()),
        ("GET", "/events") => ("200 OK", TEXT, shell.log().to_text()),
        ("GET", "/perfetto") => {
            // `take_tracer` consumes the tracer: this endpoint drains the
            // trace accumulated so far, exactly once per enable_tracing.
            let ns = shell.sys().config().ns_per_cycle();
            match shell.sys_mut().take_tracer() {
                Some(tracer) => ("200 OK", JSON, tracer.perfetto_json(ns)),
                None => ("404 Not Found", TEXT, "tracing not enabled\n".to_string()),
            }
        }
        ("POST", path) => {
            if let Some(rest) = path.strip_prefix("/rpu/") {
                return rpu_action(rest, shell);
            }
            if let Some(r) = path.strip_prefix("/firmware/") {
                return load_firmware(r, &req.body, shell);
            }
            ("404 Not Found", TEXT, format!("no such endpoint: {path}\n"))
        }
        (_, path) => ("404 Not Found", TEXT, format!("no such endpoint: {path}\n")),
    }
}

/// Handles `POST /rpu/{r}/{enable|disable|reload}`.
fn rpu_action<B: ShellBackend>(
    rest: &str,
    shell: &mut Shell<B>,
) -> (&'static str, &'static str, String) {
    let Some((rpu, action)) = rest.split_once('/') else {
        return (
            "400 Bad Request",
            "text/plain",
            "want /rpu/{r}/{action}\n".to_string(),
        );
    };
    let Ok(rpu) = rpu.parse::<usize>() else {
        return (
            "400 Bad Request",
            "text/plain",
            format!("bad rpu index: {rpu}\n"),
        );
    };
    if rpu >= shell.sys().config().num_rpus {
        return (
            "400 Bad Request",
            "text/plain",
            format!("rpu {rpu} out of range\n"),
        );
    }
    let sys = shell.sys_mut();
    match action {
        "enable" => {
            sys.enable_rpu(rpu);
            ("200 OK", "text/plain", format!("rpu {rpu} enabled\n"))
        }
        "disable" => {
            sys.disable_rpu(rpu);
            ("200 OK", "text/plain", format!("rpu {rpu} disabled\n"))
        }
        "reload" => {
            sys.reconfigure_rpu_gated(rpu);
            ("200 OK", "text/plain", format!("rpu {rpu} reconfiguring\n"))
        }
        other => (
            "400 Bad Request",
            "text/plain",
            format!("unknown action: {other}\n"),
        ),
    }
}

/// Handles `POST /firmware/{r}`: the body is RV32 assembly, assembled and
/// hot-loaded through the gated reload path.
fn load_firmware<B: ShellBackend>(
    rpu: &str,
    body: &[u8],
    shell: &mut Shell<B>,
) -> (&'static str, &'static str, String) {
    let Ok(rpu) = rpu.parse::<usize>() else {
        return (
            "400 Bad Request",
            "text/plain",
            format!("bad rpu index: {rpu}\n"),
        );
    };
    let Ok(source) = std::str::from_utf8(body) else {
        return (
            "400 Bad Request",
            "text/plain",
            "body is not UTF-8\n".to_string(),
        );
    };
    let image = match assemble(source) {
        Ok(image) => image,
        Err(e) => {
            return (
                "400 Bad Request",
                "text/plain",
                format!("assembly error: {e}\n"),
            )
        }
    };
    match shell.sys_mut().load_rpu_firmware(rpu, &image) {
        Ok(()) => (
            "200 OK",
            "text/plain",
            format!("rpu {rpu} firmware loaded\n"),
        ),
        Err(e) => ("400 Bad Request", "text/plain", format!("{e}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::RingBackend;
    use rosebud_core::{Rosebud, RosebudConfig, RpuProgram};

    fn shell() -> Shell<RingBackend> {
        let image = assemble("spin: j spin").unwrap();
        let sys = Rosebud::builder(RosebudConfig::with_rpus(2))
            .firmware(move |_| RpuProgram::Riscv(image.clone()))
            .build()
            .unwrap();
        let (backend, _peer) = RingBackend::pair();
        Shell::new(sys, backend)
    }

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            body: body.to_vec(),
        }
    }

    #[test]
    fn dispatch_covers_the_surface() {
        let mut sh = shell();
        let (s, _, body) = dispatch(&request("GET", "/stats", b""), &mut sh);
        assert_eq!(s, "200 OK");
        assert!(body.contains("cycle=0"));
        let (s, _, body) = dispatch(&request("GET", "/ledger", b""), &mut sh);
        assert_eq!(s, "200 OK");
        assert!(body.contains("injected=0"));
        let (s, _, _) = dispatch(&request("GET", "/counters", b""), &mut sh);
        assert_eq!(s, "200 OK");
        let (s, _, body) = dispatch(&request("GET", "/events", b""), &mut sh);
        assert_eq!(s, "200 OK");
        assert!(body.starts_with("rosebud-events v1"));
        let (s, _, _) = dispatch(&request("GET", "/perfetto", b""), &mut sh);
        assert_eq!(s, "404 Not Found"); // tracing not enabled
        let (s, _, _) = dispatch(&request("GET", "/nope", b""), &mut sh);
        assert_eq!(s, "404 Not Found");
    }

    #[test]
    fn rpu_actions_round_trip() {
        let mut sh = shell();
        let (s, _, _) = dispatch(&request("POST", "/rpu/1/disable", b""), &mut sh);
        assert_eq!(s, "200 OK");
        assert_eq!(sh.sys().enabled_mask() & 0b10, 0);
        let (s, _, _) = dispatch(&request("POST", "/rpu/1/enable", b""), &mut sh);
        assert_eq!(s, "200 OK");
        assert_ne!(sh.sys().enabled_mask() & 0b10, 0);
        let (s, _, _) = dispatch(&request("POST", "/rpu/99/enable", b""), &mut sh);
        assert_eq!(s, "400 Bad Request");
        let (s, _, _) = dispatch(&request("POST", "/rpu/1/frob", b""), &mut sh);
        assert_eq!(s, "400 Bad Request");
    }

    #[test]
    fn firmware_post_assembles_and_loads() {
        let mut sh = shell();
        let (s, _, body) = dispatch(&request("POST", "/firmware/0", b"spin: j spin"), &mut sh);
        assert_eq!(s, "200 OK", "{body}");
        let (s, _, _) = dispatch(&request("POST", "/firmware/0", b"bogus ??"), &mut sh);
        assert_eq!(s, "400 Bad Request");
    }

    #[test]
    fn perfetto_is_a_one_shot_drain() {
        let mut sh = shell();
        sh.sys_mut()
            .enable_tracing(rosebud_core::TraceConfig::default());
        let (s, ct, _) = dispatch(&request("GET", "/perfetto", b""), &mut sh);
        assert_eq!(s, "200 OK");
        assert_eq!(ct, "application/json");
        let (s, _, _) = dispatch(&request("GET", "/perfetto", b""), &mut sh);
        assert_eq!(s, "404 Not Found");
    }

    #[test]
    fn end_to_end_over_the_socket() {
        let dir = std::env::temp_dir().join(format!("rbctl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("control.sock");
        let mut server = ControlServer::bind(&sock).unwrap();
        let mut sh = shell();
        assert_eq!(server.poll(&mut sh), 0);

        let mut client = UnixStream::connect(&sock).unwrap();
        client.write_all(b"GET /stats HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(server.poll(&mut sh), 1);
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        assert!(response.contains("cycle=0"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
