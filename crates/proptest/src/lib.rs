//! A minimal, offline stand-in for the `proptest` crate.
//!
//! This workspace builds without network access, so the real `proptest`
//! cannot be downloaded. This crate implements the subset of its API that
//! the repository's property tests use — `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_oneof!`, `any`, `Just`, ranges, tuples,
//! `collection::vec`, and `Strategy::prop_map` — on top of a deterministic
//! splitmix/xoshiro-style RNG seeded from the test's name.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its case index and seed; the
//!   failure reproduces exactly by re-running the test (sampling is a pure
//!   function of the test name and case index).
//! * **Uniform `prop_oneof!` arms** (no weights — none are used here).
//! * Sampling distributions are simple uniform draws, not the real crate's
//!   size-biased distributions.

#![forbid(unsafe_code)]

use std::rc::Rc;

/// Deterministic generator state for one test case (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded draw; bias is irrelevant for testing.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// FNV-1a hash of a test's path, the per-test base seed.
pub fn seed_for_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Error and config types, under the real crate's module path.
pub mod test_runner {
    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failed assertion / rejected case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result of one test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// A source of random values of one type.
///
/// Unlike the real crate there is no value tree: `sample` draws directly
/// and nothing shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// A strategy over every value of `T` — the target of [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary + Default + Copy, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.sample(rng),)*)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Internal machinery used by [`prop_oneof!`].
pub mod strategy {
    use super::{Rc, Strategy, TestRng};

    /// One boxed arm of a [`Union`]: a sampler producing `T`.
    pub type Arm<T> = Rc<dyn Fn(&mut TestRng) -> T>;

    /// A uniform choice between heterogeneous strategies of one value type.
    pub struct Union<T> {
        arms: Vec<Arm<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Self {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T> Union<T> {
        /// Builds a union from pre-boxed arms (see [`arm`]).
        pub fn new(arms: Vec<Arm<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    /// Boxes one strategy as a union arm.
    pub fn arm<S>(s: S) -> Arm<S::Value>
    where
        S: Strategy + 'static,
    {
        Rc::new(move |rng| s.sample(rng))
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable size arguments for [`vec`]: a fixed length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                min: r.start,
                max_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    /// A strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min).max(1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, Any, Arbitrary, Just, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset of the real macro's grammar used in this repository:
/// an optional `#![proptest_config(...)]` header followed by test functions
/// with `name in strategy` parameters.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let base = $crate::seed_for_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::seed_from(base ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D));
                $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)*
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {case}/{total} failed (test seed {base:#x}): {e}",
                        total = config.cases,
                    );
                }
            }
        }
    )*};
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
}

/// Uniform choice among strategies yielding one common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::arm($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from(7);
        let mut b = TestRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from(1);
        for _ in 0..1000 {
            let v = (-2048i32..2048).sample(&mut rng);
            assert!((-2048..2048).contains(&v));
            let u = (1u8..=255).sample(&mut rng);
            assert!(u >= 1);
            let f = (1.0f64..200.0).sample(&mut rng);
            assert!((1.0..200.0).contains(&f));
        }
    }

    proptest! {
        #[test]
        fn macro_draws_and_asserts(
            x in 0u32..100,
            v in crate::collection::vec(any::<u8>(), 0..8),
            pick in prop_oneof![Just(1usize), 5usize..9],
        ) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
            prop_assert!(pick == 1 || (5..9).contains(&pick));
            prop_assert_eq!(x + 1, 1 + x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
