//! The decoded-instruction cache: a dense predecoded mirror of instruction
//! memory.
//!
//! The interpreter's hot path re-decodes the same instruction words every
//! time the core revisits a PC, even though firmware images are tiny and
//! almost never change. This cache predecodes instruction memory into the
//! internal [`Instr`] IR, indexed directly by word address, so a fetch
//! becomes one bounds check and one array read. It is a pure host-side
//! optimisation: cycle accounting, fault behaviour, and architectural state
//! are byte-identical with the cache on or off.
//!
//! Correctness rests on strict invalidation: any store that overlaps
//! instruction memory — from the core itself, the host debug interface, or
//! a firmware reload after partial reconfiguration — clears the overlapped
//! word slots, and a reload clears everything before re-predecoding the new
//! image. Words that fail to decode are never cached, so an illegal fetch
//! always re-reads the raw word and faults with the exact `pc`/`word` pair
//! the uncached path reports.

use crate::isa::{decode, Instr};

/// Hit/miss/invalidation counters for the cache (host-visible diagnostics;
/// they have no architectural effect).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Fetches answered from a predecoded slot.
    pub hits: u64,
    /// Fetches that had to decode (and, when legal, fill a slot).
    pub misses: u64,
    /// Word slots cleared by stores or reloads.
    pub invalidations: u64,
}

/// A decoded-instruction cache covering one instruction memory starting at
/// address 0, one slot per 32-bit word.
#[derive(Debug, Clone)]
pub struct DecodeCache {
    slots: Vec<Option<Instr>>,
    stats: DecodeCacheStats,
}

impl DecodeCache {
    /// A cache covering `imem_bytes` of instruction memory at address 0.
    pub fn new(imem_bytes: usize) -> Self {
        Self {
            slots: vec![None; imem_bytes / 4],
            stats: DecodeCacheStats::default(),
        }
    }

    /// `true` when `pc` is a word-aligned address inside the covered range.
    /// Misaligned fetches (`jalr` only clears bit 0, so `pc % 4 == 2` is
    /// architecturally reachable) take the uncached path.
    #[inline]
    pub fn covers(&self, pc: u32) -> bool {
        pc & 3 == 0 && ((pc >> 2) as usize) < self.slots.len()
    }

    /// Looks up the slot for `pc` (which must satisfy [`covers`]).
    ///
    /// [`covers`]: DecodeCache::covers
    #[inline]
    pub fn get(&mut self, pc: u32) -> Option<Instr> {
        let slot = self.slots[(pc >> 2) as usize];
        if slot.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        slot
    }

    /// Records the decoded form of the word at `pc`.
    #[inline]
    pub fn fill(&mut self, pc: u32, instr: Instr) {
        self.slots[(pc >> 2) as usize] = Some(instr);
    }

    /// Invalidates every word slot overlapped by a store of `len` bytes at
    /// `addr` (sub-word stores clear the whole containing word).
    pub fn invalidate_bytes(&mut self, addr: u32, len: usize) {
        let first = (addr >> 2) as usize;
        let last = ((addr as usize + len.max(1) - 1) >> 2).min(self.slots.len().saturating_sub(1));
        for slot in first..=last {
            if let Some(s) = self.slots.get_mut(slot) {
                if s.take().is_some() {
                    self.stats.invalidations += 1;
                }
            }
        }
    }

    /// Drops every cached entry (firmware reload, partial reconfiguration).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            if s.take().is_some() {
                self.stats.invalidations += 1;
            }
        }
    }

    /// Eagerly decodes an image of `words` loaded at byte address `base`,
    /// filling every legal word's slot so the first pass over fresh firmware
    /// already hits.
    pub fn predecode(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            let pc = base + (i as u32) * 4;
            if self.covers(pc) {
                if let Ok(instr) = decode(w) {
                    self.fill(pc, instr);
                }
            }
        }
    }

    /// Hit/miss/invalidation counts so far.
    pub fn stats(&self) -> DecodeCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn predecode_then_hit() {
        let image = assemble("addi a0, zero, 1\nebreak").unwrap();
        let mut c = DecodeCache::new(1024);
        c.predecode(0, image.words());
        assert!(c.get(0).is_some());
        assert!(c.get(4).is_some());
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn store_invalidates_containing_word() {
        let image = assemble("addi a0, zero, 1\nebreak").unwrap();
        let mut c = DecodeCache::new(1024);
        c.predecode(0, image.words());
        c.invalidate_bytes(5, 1); // byte store into the second word
        assert!(c.get(0).is_some());
        assert!(c.get(4).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn straddling_store_invalidates_both_words() {
        let image = assemble("addi a0, zero, 1\naddi a0, a0, 1\nebreak").unwrap();
        let mut c = DecodeCache::new(1024);
        c.predecode(0, image.words());
        // A 4-byte store at offset 2 touches words 0 and 1.
        c.invalidate_bytes(2, 4);
        assert!(c.get(0).is_none());
        assert!(c.get(4).is_none());
        assert!(c.get(8).is_some());
    }

    #[test]
    fn misaligned_pc_is_not_covered() {
        let c = DecodeCache::new(1024);
        assert!(c.covers(0));
        assert!(!c.covers(2));
        assert!(!c.covers(1024));
    }

    #[test]
    fn illegal_words_are_never_cached() {
        let mut c = DecodeCache::new(64);
        c.predecode(0, &[0x0000_0000, 0xffff_ffff]);
        assert!(c.get(0).is_none());
        assert!(c.get(4).is_none());
    }
}
