//! Disassembly of decoded instructions, for debug dumps and round-trip tests.

use crate::isa::{AluOp, BranchOp, CsrOp, CsrSrc, Instr, LoadOp, MulOp, StoreOp};

/// Renders `instr` as assembly text (ABI register names, decimal immediates).
///
/// The output parses back through the assembler to the same instruction, a
/// property the test suite verifies for randomly generated instructions.
///
/// # Examples
///
/// ```
/// use rosebud_riscv::{decode, disassemble};
/// let text = disassemble(decode(0x02a0_0513).unwrap());
/// assert_eq!(text, "addi a0, zero, 42");
/// ```
pub fn disassemble(instr: Instr) -> String {
    match instr {
        Instr::Lui { rd, imm } => format!("lui {rd}, {imm}"),
        Instr::Auipc { rd, imm } => format!("auipc {rd}, {imm}"),
        Instr::Jal { rd, imm } => format!("jal {rd}, {imm}"),
        Instr::Jalr { rd, rs1, imm } => format!("jalr {rd}, {rs1}, {imm}"),
        Instr::Branch { op, rs1, rs2, imm } => {
            let name = match op {
                BranchOp::Eq => "beq",
                BranchOp::Ne => "bne",
                BranchOp::Lt => "blt",
                BranchOp::Ge => "bge",
                BranchOp::Ltu => "bltu",
                BranchOp::Geu => "bgeu",
            };
            format!("{name} {rs1}, {rs2}, {imm}")
        }
        Instr::Load { op, rd, rs1, imm } => {
            let name = match op {
                LoadOp::Lb => "lb",
                LoadOp::Lh => "lh",
                LoadOp::Lw => "lw",
                LoadOp::Lbu => "lbu",
                LoadOp::Lhu => "lhu",
            };
            format!("{name} {rd}, {imm}({rs1})")
        }
        Instr::Store { op, rs1, rs2, imm } => {
            let name = match op {
                StoreOp::Sb => "sb",
                StoreOp::Sh => "sh",
                StoreOp::Sw => "sw",
            };
            format!("{name} {rs2}, {imm}({rs1})")
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            let name = match op {
                AluOp::Add => "addi",
                AluOp::Slt => "slti",
                AluOp::Sltu => "sltiu",
                AluOp::Xor => "xori",
                AluOp::Or => "ori",
                AluOp::And => "andi",
                AluOp::Sll => "slli",
                AluOp::Srl => "srli",
                AluOp::Sra => "srai",
                AluOp::Sub => unreachable!("no subi"),
            };
            format!("{name} {rd}, {rs1}, {imm}")
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let name = match op {
                AluOp::Add => "add",
                AluOp::Sub => "sub",
                AluOp::Sll => "sll",
                AluOp::Slt => "slt",
                AluOp::Sltu => "sltu",
                AluOp::Xor => "xor",
                AluOp::Srl => "srl",
                AluOp::Sra => "sra",
                AluOp::Or => "or",
                AluOp::And => "and",
            };
            format!("{name} {rd}, {rs1}, {rs2}")
        }
        Instr::MulDiv { op, rd, rs1, rs2 } => {
            let name = match op {
                MulOp::Mul => "mul",
                MulOp::Mulh => "mulh",
                MulOp::Mulhsu => "mulhsu",
                MulOp::Mulhu => "mulhu",
                MulOp::Div => "div",
                MulOp::Divu => "divu",
                MulOp::Rem => "rem",
                MulOp::Remu => "remu",
            };
            format!("{name} {rd}, {rs1}, {rs2}")
        }
        Instr::Fence => "fence".to_string(),
        Instr::Ecall => "ecall".to_string(),
        Instr::Ebreak => "ebreak".to_string(),
        Instr::Mret => "mret".to_string(),
        Instr::Wfi => "wfi".to_string(),
        Instr::Csr { op, rd, csr, src } => {
            let (name, operand) = match (op, src) {
                (CsrOp::Rw, CsrSrc::Reg(r)) => ("csrrw", r.to_string()),
                (CsrOp::Rs, CsrSrc::Reg(r)) => ("csrrs", r.to_string()),
                (CsrOp::Rc, CsrSrc::Reg(r)) => ("csrrc", r.to_string()),
                (CsrOp::Rw, CsrSrc::Imm(v)) => ("csrrwi", v.to_string()),
                (CsrOp::Rs, CsrSrc::Imm(v)) => ("csrrsi", v.to_string()),
                (CsrOp::Rc, CsrSrc::Imm(v)) => ("csrrci", v.to_string()),
            };
            format!("{name} {rd}, {csr}, {operand}")
        }
    }
}

/// Disassembles a word image into `(address, word, text)` rows — the debug
/// dump the host-side tooling prints when inspecting a halted RPU (§3.4).
pub fn disassemble_image(base: u32, words: &[u32]) -> Vec<(u32, u32, String)> {
    words
        .iter()
        .enumerate()
        .map(|(i, &word)| {
            let addr = base + (i as u32) * 4;
            let text = match crate::isa::decode(word) {
                Ok(instr) => disassemble(instr),
                Err(_) => format!(".word 0x{word:08x}"),
            };
            (addr, word, text)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::{decode, Reg};

    #[test]
    fn disassembly_reassembles_identically() {
        let source = "
            lui t0, 16
            auipc t1, 0
            addi a0, zero, -7
            slti a1, a0, 3
            srai a2, a1, 4
            add a3, a1, a2
            sub a4, a3, a0
            mulhu a5, a4, a3
            lw s0, 8(sp)
            sb s1, -1(gp)
            jalr ra, t0, 4
            fence
            ecall
            wfi
        ";
        let image = assemble(source).unwrap();
        for &word in image.words() {
            let instr = decode(word).unwrap();
            let text = disassemble(instr);
            let re = assemble(&text).unwrap();
            assert_eq!(re.words().len(), 1, "{text}");
            assert_eq!(decode(re.words()[0]).unwrap(), instr, "{text}");
        }
    }

    #[test]
    fn image_dump_marks_data_words() {
        let image = assemble(".word 0xffffffff\nnop").unwrap();
        let dump = disassemble_image(0x100, image.words());
        assert_eq!(dump[0].2, ".word 0xffffffff");
        assert_eq!(dump[1].0, 0x104);
        assert_eq!(dump[1].2, "addi zero, zero, 0");
        let _ = Reg::ZERO;
    }
}
