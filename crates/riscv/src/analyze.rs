//! `rosebud-verify`: static firmware analysis over assembled images.
//!
//! The paper's pitch is that middlebox development gets pleasant when
//! firmware bugs are caught *before* they hit hardware; until now the only
//! way to learn that an image touches a bogus MMIO address, never pets the
//! watchdog, or blows its cycle budget was to simulate it and watch the
//! supervisor evict it. This module closes that gap: it reconstructs a
//! control-flow graph from an assembled [`Image`] (reusing the
//! [`DecodeCache`] predecoder), runs an abstract interpretation over
//! registers, and reports structured diagnostics plus a per-entry-point
//! worst-case execution time bound derived from the same [`CostModel`] the
//! simulator charges.
//!
//! The checks:
//!
//! 1. **MMIO validity** — every load/store whose abstract address resolves
//!    into the device window must hit a register the machine map defines,
//!    with the read/write direction checked.
//! 2. **Watchdog liveness** — every cycle in the CFG's loop nest must
//!    contain a watchdog-pet store or a `wfi`, else the firmware is a
//!    supervisor-eviction hazard under a watchdog policy.
//! 3. **Uninitialized registers and stack bounds** — reads of registers no
//!    path has written, and `sp`-relative accesses outside the configured
//!    stack region.
//! 4. **Illegal/unreachable code** — reachable words that do not decode
//!    (or fall off the image), and decodable but dead blocks.
//! 5. **Per-path WCET** — a cycle bound per entry point: the longest
//!    acyclic path plus a worst-case bound per loop iteration.
//!
//! Known-imprecise cases are documented on [`Analyzer::check`].
//!
//! # Examples
//!
//! ```
//! use rosebud_riscv::{assemble, Analyzer, MachineSpec};
//!
//! let image = assemble("
//!         li a0, 5
//!     loop:
//!         addi a0, a0, -1
//!         bnez a0, loop
//!         ebreak
//! ").unwrap();
//! let report = Analyzer::new(MachineSpec::bare(4096, 65536)).check(&image);
//! assert!(!report.has_errors());
//! assert_eq!(report.wcet.len(), 1);
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;

use crate::asm::Image;
use crate::cpu::{alu, CostModel};
use crate::icache::DecodeCache;
use crate::isa::{AluOp, BranchOp, Instr, LoadOp, MulOp, Reg, StoreOp};

/// A half-open memory region `[base, base + bytes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address.
    pub base: u32,
    /// Length in bytes (0 = the region does not exist).
    pub bytes: u32,
}

impl Region {
    /// The empty region.
    pub const NONE: Region = Region { base: 0, bytes: 0 };

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        self.bytes > 0 && addr.wrapping_sub(self.base) < self.bytes
    }
}

/// One memory-mapped device register, with its access direction.
#[derive(Debug, Clone, Copy)]
pub struct MmioReg {
    /// Byte offset of the (word-sized) register from the device window base.
    pub offset: u32,
    /// Human-readable name used in diagnostics.
    pub name: &'static str,
    /// Whether firmware loads from this register are meaningful.
    pub readable: bool,
    /// Whether firmware stores to this register are meaningful.
    pub writable: bool,
}

/// Word-aligned offsets (from [`MachineSpec::io_base`]) of the registers
/// that participate in the descriptor/DMA lifecycle protocol.
///
/// The analyzer derives three typestate automata from this table and checks
/// every firmware path against their product:
///
/// * **RX descriptor**: `poll recv_ready` → `read recv_desc[..]` →
///   `store recv_release`. Reading a descriptor field with nothing held is
///   use-after-release; releasing twice frees a slot the scheduler still
///   owns.
/// * **TX descriptor**: `store send_stage` → `store send_commit`.
///   Committing with nothing staged emits a garbage descriptor
///   (double-commit); restaging over an uncommitted descriptor drops it.
/// * **DMA engine**: program `dma_host_addr`/`dma_local_addr`/`dma_len` →
///   kick `dma_ctrl` → poll `dma_status` to completion. Reprogramming the
///   registers or rekicking while a transfer may still be in flight is a
///   buffer reuse before completion.
///
/// Loads of `recv_desc` registers are also **taint sources** for the
/// packet-byte taint analysis, and stores to the four DMA registers are
/// taint **sinks**.
#[derive(Debug, Clone)]
pub struct ProtocolSpec {
    /// Read: returns nonzero when a receive descriptor is pending.
    pub recv_ready: u32,
    /// Read: descriptor fields; only meaningful while a descriptor is held.
    pub recv_desc: Vec<u32>,
    /// Write: releases the held descriptor slot back to the scheduler.
    pub recv_release: u32,
    /// Write: stages the first half of a send descriptor.
    pub send_stage: u32,
    /// Write: commits the staged send descriptor to the scheduler.
    pub send_commit: u32,
    /// Write: DMA host (ring) address parameter.
    pub dma_host_addr: u32,
    /// Write: DMA local (pmem/dmem) address parameter.
    pub dma_local_addr: u32,
    /// Write: DMA transfer length parameter.
    pub dma_len: u32,
    /// Write: kicks the programmed transfer off.
    pub dma_ctrl: u32,
    /// Read: nonzero while the transfer is still in flight (completion poll).
    pub dma_status: u32,
}

/// The machine the firmware will run on, as the analyzer sees it.
///
/// `rosebud-riscv` deliberately knows nothing about the Rosebud framework;
/// the framework side constructs this from its own memory map (see
/// `rosebud_core::machine_spec`), and tests can build reduced ones.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Instruction memory size; code lives at `[image.base, imem_bytes)`.
    pub imem_bytes: u32,
    /// Scratch data memory.
    pub dmem: Region,
    /// Packet memory (loads/stores pay `pmem_wait_cycles` extra).
    pub pmem: Region,
    /// Device window base; `[io_base, io_base + io_window_bytes)` must hit
    /// a defined [`MmioReg`].
    pub io_base: u32,
    /// Size of the strict device window.
    pub io_window_bytes: u32,
    /// The device registers inside the window.
    pub io_regs: Vec<MmioReg>,
    /// Accelerator register window (any offset allowed; reads may block).
    pub accel: Region,
    /// Broadcast-receive window (read-only mailbox memory).
    pub bcast: Region,
    /// Offset (from `io_base`) of the watchdog-pet register, if the machine
    /// has a watchdog. A store here, or a `wfi`, counts as liveness.
    pub watchdog_pet_offset: Option<u32>,
    /// The region `sp`-relative accesses must stay inside, if configured.
    pub stack: Option<Region>,
    /// Descriptor/DMA lifecycle registers, if the machine has them; enables
    /// the typestate-protocol and packet-taint checks.
    pub protocol: Option<ProtocolSpec>,
    /// The pipeline timing model used for WCET bounds.
    pub cost: CostModel,
    /// Extra wait-states on packet-memory accesses.
    pub pmem_wait_cycles: u32,
    /// Worst-case extra wait-states on accelerator reads (blocking reads).
    pub accel_read_wait_cycles: u32,
}

impl MachineSpec {
    /// A bare flat-RAM machine (the [`crate::RamBus`] shape): code at 0,
    /// all of `[0, ram_bytes)` writable data, no devices, no watchdog.
    pub fn bare(imem_bytes: u32, ram_bytes: u32) -> Self {
        MachineSpec {
            imem_bytes,
            dmem: Region {
                base: 0,
                bytes: ram_bytes,
            },
            pmem: Region::NONE,
            io_base: 0,
            io_window_bytes: 0,
            io_regs: Vec::new(),
            accel: Region::NONE,
            bcast: Region::NONE,
            watchdog_pet_offset: None,
            stack: None,
            protocol: None,
            cost: CostModel::default(),
            pmem_wait_cycles: 0,
            accel_read_wait_cycles: 0,
        }
    }

    /// Worst-case extra wait-states for a load whose address is unknown.
    fn worst_load_wait(&self) -> u32 {
        self.pmem_wait_cycles.max(self.accel_read_wait_cycles)
    }

    /// Worst-case extra wait-states for a store whose address is unknown.
    fn worst_store_wait(&self) -> u32 {
        self.pmem_wait_cycles
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly intentional; never blocks a load.
    Warning,
    /// A definite bug; blocks the load under `LoadPolicy::Deny`.
    Error,
}

/// Which static check produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// MMIO validity (unknown register / wrong direction / out of window).
    Mmio,
    /// A memory access outside every mapped region.
    Region,
    /// Watchdog liveness (a loop that neither pets nor sleeps).
    Watchdog,
    /// Use of a register no path has initialized.
    Uninit,
    /// `sp`-relative access outside the configured stack region.
    Stack,
    /// Reachable code that does not decode or falls off the image.
    Illegal,
    /// Decodable but unreachable code.
    Dead,
    /// Control flow the analysis cannot follow (indirect jumps, `mret`).
    Flow,
    /// Descriptor/DMA lifecycle violation (typestate automata over the
    /// [`ProtocolSpec`] registers).
    Protocol,
    /// Unsanitized packet bytes reaching a trusted sink (DMA registers,
    /// indirect jump targets, loop bounds).
    Taint,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Check::Mmio => "mmio",
            Check::Region => "region",
            Check::Watchdog => "watchdog",
            Check::Uninit => "uninit",
            Check::Stack => "stack",
            Check::Illegal => "illegal",
            Check::Dead => "dead-code",
            Check::Flow => "flow",
            Check::Protocol => "protocol",
            Check::Taint => "taint",
        };
        f.write_str(s)
    }
}

/// One structured finding: severity, check class, the PC at fault, and a
/// CFG path witness from the entry point to the offending block.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Which check fired.
    pub check: Check,
    /// The program counter at fault.
    pub pc: u32,
    /// Human-readable description.
    pub message: String,
    /// Block-start PCs of one path from an entry point to the fault
    /// (empty for findings with no meaningful path, e.g. dead code).
    pub path: Vec<u32>,
}

/// Worst-case bound for one loop (identified by its header block).
#[derive(Debug, Clone)]
pub struct LoopBound {
    /// Loop-header block start PC.
    pub header: u32,
    /// Nearest label at the header, if the image has one.
    pub label: Option<String>,
    /// Worst-case cycles for one iteration (header back to header).
    pub cycles_per_iter: u64,
}

/// WCET summary for one entry point.
#[derive(Debug, Clone)]
pub struct EntryWcet {
    /// Entry PC.
    pub entry: u32,
    /// Label at the entry, if any.
    pub label: Option<String>,
    /// Longest acyclic path from the entry, in cycles (loop back edges
    /// excluded; multiply by iteration bounds for loop-carried budgets).
    pub acyclic_cycles: u64,
    /// Per-loop iteration bounds, in header-PC order.
    pub loops: Vec<LoopBound>,
}

/// The analyzer's full output: diagnostics plus WCET bounds.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, sorted by (pc, check) for stable output.
    pub diagnostics: Vec<Diagnostic>,
    /// One WCET summary per entry point.
    pub wcet: Vec<EntryWcet>,
}

impl LintReport {
    /// Whether any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Count of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Count of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Renders the report as stable, diffable text (used for golden lint
    /// snapshots and the `lint` example).
    pub fn render(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "lint report: {name}");
        for w in &self.wcet {
            let label = w
                .label
                .as_deref()
                .map(|l| format!(" <{l}>"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "entry 0x{:08x}{label}: longest acyclic path {} cycles",
                w.entry, w.acyclic_cycles
            );
            for l in &w.loops {
                let label = l
                    .label
                    .as_deref()
                    .map(|l| format!(" <{l}>"))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  loop 0x{:08x}{label}: <= {} cycles/iteration",
                    l.header, l.cycles_per_iter
                );
            }
        }
        for d in &self.diagnostics {
            let sev = match d.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            let _ = writeln!(out, "{sev}[{}]: pc 0x{:08x}: {}", d.check, d.pc, d.message);
            if !d.path.is_empty() {
                let path = d
                    .path
                    .iter()
                    .map(|p| format!("0x{p:08x}"))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                let _ = writeln!(out, "  path: {path}");
            }
        }
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        );
        out
    }

    /// Renders the report as a single JSON object (no trailing newline) for
    /// machine consumers: one object per diagnostic with check id, severity,
    /// PC, and the CFG-path witness, plus the WCET summaries. The field
    /// order and diagnostic order are stable, so the output is diffable.
    pub fn render_json(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"name\":");
        out.push_str(&json_string(name));
        let _ = write!(
            out,
            ",\"errors\":{},\"warnings\":{},\"wcet\":[",
            self.error_count(),
            self.warning_count()
        );
        for (i, w) in self.wcet.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"entry\":{},\"label\":{},\"acyclic_cycles\":{},\"loops\":[",
                w.entry,
                json_opt_string(w.label.as_deref()),
                w.acyclic_cycles
            );
            for (j, l) in w.loops.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"header\":{},\"label\":{},\"cycles_per_iter\":{}}}",
                    l.header,
                    json_opt_string(l.label.as_deref()),
                    l.cycles_per_iter
                );
            }
            out.push_str("]}");
        }
        out.push_str("],\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let sev = match d.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            let _ = write!(
                out,
                "{{\"check\":{},\"severity\":\"{sev}\",\"pc\":{},\"message\":{},\"path\":[",
                json_string(&d.check.to_string()),
                d.pc,
                json_string(&d.message)
            );
            for (j, p) in d.path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{p}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Escapes `s` as a JSON string literal (with the surrounding quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_opt_string(s: Option<&str>) -> String {
    s.map(json_string).unwrap_or_else(|| "null".to_string())
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// Abstract register value: an unsigned interval `[lo, hi]` (inclusive).
/// Constants are singleton intervals; `TOP` is `[0, u32::MAX]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: u32,
    hi: u32,
}

impl Interval {
    const TOP: Interval = Interval {
        lo: 0,
        hi: u32::MAX,
    };

    fn constant(c: u32) -> Self {
        Interval { lo: c, hi: c }
    }

    fn as_const(self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether the interval is bounded away from the full u32 range — the
    /// property a sanitizing mask or guard must establish.
    fn bounded(self) -> bool {
        self.hi < u32::MAX
    }

    fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard interval widening: any bound still moving after the join
    /// threshold jumps straight to the lattice extreme, guaranteeing the
    /// fixpoint terminates.
    fn widen_to(self, next: Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { 0 } else { next.lo },
            hi: if next.hi > self.hi { u32::MAX } else { next.hi },
        }
    }
}

/// Smallest all-ones mask covering `m` (e.g. `0x1234` -> `0x1fff`).
fn ones_cover(m: u32) -> u32 {
    if m == 0 {
        0
    } else {
        u32::MAX >> m.leading_zeros()
    }
}

/// Interval transfer function for the ALU. Constant-constant operands fold
/// exactly through the simulator's own [`alu`], so the abstract and
/// concrete semantics cannot drift for singletons.
fn alu_interval(op: AluOp, a: Interval, b: Interval) -> Interval {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return Interval::constant(alu(op, x, y));
    }
    match op {
        AluOp::Add => {
            let lo = u64::from(a.lo) + u64::from(b.lo);
            let hi = u64::from(a.hi) + u64::from(b.hi);
            if hi <= u64::from(u32::MAX) {
                Interval {
                    lo: lo as u32,
                    hi: hi as u32,
                }
            } else {
                Interval::TOP
            }
        }
        AluOp::Sub => {
            if a.lo >= b.hi {
                Interval {
                    lo: a.lo - b.hi,
                    hi: a.hi - b.lo,
                }
            } else {
                Interval::TOP
            }
        }
        AluOp::And => Interval {
            lo: 0,
            hi: a.hi.min(b.hi),
        },
        AluOp::Or => Interval {
            lo: a.lo.max(b.lo),
            hi: ones_cover(a.hi | b.hi),
        },
        AluOp::Xor => Interval {
            lo: 0,
            hi: ones_cover(a.hi | b.hi),
        },
        AluOp::Sll => match b.as_const() {
            Some(s) => {
                let s = s & 31;
                let hi = u64::from(a.hi) << s;
                if hi <= u64::from(u32::MAX) {
                    Interval {
                        lo: a.lo << s,
                        hi: hi as u32,
                    }
                } else {
                    Interval::TOP
                }
            }
            None => Interval::TOP,
        },
        AluOp::Srl => match b.as_const() {
            Some(s) => {
                let s = s & 31;
                Interval {
                    lo: a.lo >> s,
                    hi: a.hi >> s,
                }
            }
            None => Interval { lo: 0, hi: a.hi },
        },
        AluOp::Sra => {
            // Non-negative values shift like SRL; a possibly-negative value
            // smears sign bits and goes to TOP.
            if a.hi < 0x8000_0000 {
                match b.as_const() {
                    Some(s) => {
                        let s = s & 31;
                        Interval {
                            lo: a.lo >> s,
                            hi: a.hi >> s,
                        }
                    }
                    None => Interval { lo: 0, hi: a.hi },
                }
            } else {
                Interval::TOP
            }
        }
        AluOp::Slt | AluOp::Sltu => Interval { lo: 0, hi: 1 },
    }
}

/// Taint transfer for an ALU op: AND with a clean bounded mask sanitizes,
/// comparison results are bounded booleans, everything else unions.
fn alu_taint(op: AluOp, a: Interval, ta: bool, b: Interval, tb: bool) -> bool {
    match op {
        AluOp::Slt | AluOp::Sltu => false,
        AluOp::And => {
            let a_masks = !ta && a.bounded();
            let b_masks = !tb && b.bounded();
            if a_masks || b_masks {
                false
            } else {
                ta || tb
            }
        }
        _ => ta || tb,
    }
}

/// Whether a register has been written on no / some / all paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Init {
    No,
    Maybe,
    Yes,
}

impl Init {
    fn join(self, other: Init) -> Init {
        match (self, other) {
            (Init::Yes, Init::Yes) => Init::Yes,
            (Init::No, Init::No) => Init::No,
            _ => Init::Maybe,
        }
    }
}

// RX descriptor automaton states (powerset bitmask: the abstract state
// tracks every protocol state some path may be in).
const RX_UNPOLLED: u8 = 1; // no descriptor pending or held
const RX_POLLED: u8 = 2; // RECV_READY observed, fields not yet read
const RX_HELD: u8 = 4; // descriptor fields read, slot not released

// TX descriptor automaton states.
const TX_EMPTY: u8 = 1;
const TX_STAGED: u8 = 2;

// DMA engine automaton states.
const DMA_IDLE: u8 = 1;
const DMA_BUSY: u8 = 2;

/// Cap on the tracked set of tainted data-memory words; stores past the cap
/// are simply not recorded (a sound under-approximation for a *linter*:
/// fewer taint findings, never a spurious one).
const MEM_TAINT_CAP: usize = 64;

#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    regs: [Interval; 32],
    init: [Init; 32],
    /// Bit `r` set = register `r` holds unsanitized packet bytes.
    taint: u32,
    /// RX/TX/DMA typestate automata (powerset bitmasks, joined by OR).
    rx: u8,
    tx: u8,
    dma: u8,
    /// Whether DMA_HOST_ADDR / DMA_LOCAL_ADDR / DMA_LEN have been
    /// programmed (the engine latches them across kicks).
    dma_params: [Init; 3],
    /// Word addresses in data memory holding tainted packet bytes
    /// (constant-address stores only; see [`MEM_TAINT_CAP`]).
    mem_taint: BTreeSet<u32>,
}

impl AbsState {
    /// Boot entry: only `x0` is defined; every automaton is at rest.
    fn boot() -> Self {
        let mut s = AbsState {
            regs: [Interval::TOP; 32],
            init: [Init::No; 32],
            taint: 0,
            rx: RX_UNPOLLED,
            tx: TX_EMPTY,
            dma: DMA_IDLE,
            dma_params: [Init::No; 3],
            mem_taint: BTreeSet::new(),
        };
        s.regs[0] = Interval::constant(0);
        s.init[0] = Init::Yes;
        s
    }

    /// Trap entry: the interrupted context's registers are all live, and
    /// the interrupt may fire at any point of the protocol — every
    /// automaton state is possible.
    fn trap() -> Self {
        let mut s = AbsState {
            regs: [Interval::TOP; 32],
            init: [Init::Yes; 32],
            taint: 0,
            rx: RX_UNPOLLED | RX_POLLED | RX_HELD,
            tx: TX_EMPTY | TX_STAGED,
            dma: DMA_IDLE | DMA_BUSY,
            dma_params: [Init::Maybe; 3],
            mem_taint: BTreeSet::new(),
        };
        s.regs[0] = Interval::constant(0);
        s
    }

    fn join_from(&mut self, other: &AbsState, widen: bool) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let j = self.regs[i].join(other.regs[i]);
            let v = if widen { self.regs[i].widen_to(j) } else { j };
            let t = self.init[i].join(other.init[i]);
            if v != self.regs[i] || t != self.init[i] {
                self.regs[i] = v;
                self.init[i] = t;
                changed = true;
            }
        }
        let taint = self.taint | other.taint;
        if taint != self.taint {
            self.taint = taint;
            changed = true;
        }
        let (rx, tx, dma) = (self.rx | other.rx, self.tx | other.tx, self.dma | other.dma);
        if (rx, tx, dma) != (self.rx, self.tx, self.dma) {
            self.rx = rx;
            self.tx = tx;
            self.dma = dma;
            changed = true;
        }
        for i in 0..3 {
            let p = self.dma_params[i].join(other.dma_params[i]);
            if p != self.dma_params[i] {
                self.dma_params[i] = p;
                changed = true;
            }
        }
        for &a in &other.mem_taint {
            if self.mem_taint.insert(a) {
                changed = true;
            }
        }
        changed
    }

    fn get(&self, r: Reg) -> Interval {
        self.regs[r.0 as usize]
    }

    fn set(&mut self, r: Reg, v: Interval) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
            self.init[r.0 as usize] = Init::Yes;
        }
    }

    fn tainted(&self, r: Reg) -> bool {
        self.taint & (1u32 << r.0) != 0
    }

    fn set_taint(&mut self, r: Reg, t: bool) {
        if r.0 != 0 {
            if t {
                self.taint |= 1u32 << r.0;
            } else {
                self.taint &= !(1u32 << r.0);
            }
        }
    }
}

/// Refines `state` along one branch edge: unsigned comparisons narrow the
/// operand intervals, and a comparison against a clean bounded value
/// sanitizes the compared register (`bltu`/`bgeu` guard idiom).
fn refine_branch(s: &mut AbsState, op: BranchOp, rs1: Reg, rs2: Reg, taken: bool) {
    let i1 = s.get(rs1);
    let i2 = s.get(rs2);
    let t1 = s.tainted(rs1);
    let t2 = s.tainted(rs2);
    fn assign(s: &mut AbsState, r: Reg, v: Interval) {
        // Value-only refinement: init state is untouched, and x0 stays 0.
        if r.0 != 0 {
            s.regs[r.0 as usize] = v;
        }
    }
    match (op, taken) {
        (BranchOp::Eq, true) | (BranchOp::Ne, false) => {
            // rs1 == rs2: both collapse to the meet.
            let lo = i1.lo.max(i2.lo);
            let hi = i1.hi.min(i2.hi);
            if lo <= hi {
                assign(s, rs1, Interval { lo, hi });
                assign(s, rs2, Interval { lo, hi });
            }
            // Equal to a clean value => the value is not attacker-chosen.
            if !t1 {
                s.set_taint(rs2, false);
            }
            if !t2 {
                s.set_taint(rs1, false);
            }
        }
        (BranchOp::Ltu, true) | (BranchOp::Geu, false) => {
            // rs1 < rs2 (unsigned).
            if i2.hi > 0 {
                let hi = i1.hi.min(i2.hi - 1);
                assign(
                    s,
                    rs1,
                    Interval {
                        lo: i1.lo.min(hi),
                        hi,
                    },
                );
                if !t2 && i2.bounded() {
                    s.set_taint(rs1, false);
                }
            }
            if i1.lo < u32::MAX {
                let lo = i2.lo.max(i1.lo + 1);
                assign(
                    s,
                    rs2,
                    Interval {
                        lo,
                        hi: i2.hi.max(lo),
                    },
                );
            }
        }
        (BranchOp::Ltu, false) | (BranchOp::Geu, true) => {
            // rs1 >= rs2 (unsigned).
            let lo = i1.lo.max(i2.lo);
            assign(
                s,
                rs1,
                Interval {
                    lo,
                    hi: i1.hi.max(lo),
                },
            );
            let hi = i2.hi.min(i1.hi);
            assign(
                s,
                rs2,
                Interval {
                    lo: i2.lo.min(hi),
                    hi,
                },
            );
        }
        // Signed comparisons carry no unsigned-interval refinement.
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Block {
    start: u32,
    instrs: Vec<(u32, Instr)>,
    /// Successor block starts with the cycle cost of taking that edge
    /// (terminator cost; body cost is separate).
    succs: Vec<(u32, u32)>,
    /// Whether a reachable decode failure terminates this block.
    illegal_at: Option<u32>,
    /// Whether the block ends in the assembler's `ret` idiom
    /// (`jalr zero, ra, 0`); resolved return edges are added to `succs`.
    is_ret: bool,
}

/// What region a constant address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Where {
    Imem,
    Dmem,
    Pmem,
    Io(u32),
    Accel,
    Bcast,
    Nowhere,
}

/// The static firmware analyzer. Construct with a [`MachineSpec`], then
/// [`Analyzer::check`] any number of images.
#[derive(Debug, Clone)]
pub struct Analyzer {
    spec: MachineSpec,
}

impl Analyzer {
    /// Creates an analyzer for the given machine.
    pub fn new(spec: MachineSpec) -> Self {
        Analyzer { spec }
    }

    /// The spec this analyzer checks against.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Runs every check over `image` and returns the report.
    ///
    /// Known-imprecise cases (documented deliberately — the analyzer is a
    /// linter, not a verifier):
    ///
    /// * Indirect jumps (`jalr`, `mret`) are not followed; they end their
    ///   block with a `flow` warning, so code only reachable through them
    ///   may additionally be reported as dead.
    /// * Memory checks fire only when the address is a compile-time
    ///   constant after abstract interpretation; accesses through
    ///   data-dependent pointers (e.g. descriptor-carried slot addresses)
    ///   are charged worst-case wait-states but not range-checked.
    /// * `.word`/`.byte` data inside the text section is indistinguishable
    ///   from code: unreachable data that happens to decode is reported as
    ///   dead code.
    /// * WCET assumes no interrupt service (asynchronous traps are charged
    ///   to the handler's own entry, not the interrupted path) and charges
    ///   every unknown-address access worst-case wait-states.
    pub fn check(&self, image: &Image) -> LintReport {
        // Predecode the whole image once; the same predecoder warms the
        // simulator's decode cache, so "decodes here" and "decodes there"
        // cannot drift apart.
        let mut dc = DecodeCache::new(self.spec.imem_bytes as usize);
        dc.predecode(image.base(), image.words());

        // Entry points: the boot PC, plus any trap vector installed via a
        // constant `csrw mtvec`. Trap vectors are discovered by the
        // abstract interpretation, so iterate until the entry set is
        // stable (bounded: each pass can only add vectors).
        let mut entries: BTreeMap<u32, bool> = BTreeMap::new(); // pc -> is_trap
        entries.insert(image.base(), false);
        let mut report;
        loop {
            report = self.check_with_entries(image, &mut dc, &entries);
            let mut grew = false;
            for &v in &report.trap_vectors {
                if dc.covers(v) && !entries.contains_key(&v) {
                    entries.insert(v, true);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }

        let mut diagnostics = report.diagnostics;
        diagnostics.sort_by_key(|d| (d.pc, d.path.len(), d.message.clone()));
        LintReport {
            diagnostics,
            wcet: report.wcet,
        }
    }

    fn check_with_entries(
        &self,
        image: &Image,
        dc: &mut DecodeCache,
        entries: &BTreeMap<u32, bool>,
    ) -> RawReport {
        let spec = &self.spec;
        let base = image.base();
        let image_end = base + image.size_bytes();
        let labels = label_map(image);
        let mut diags: Vec<Diagnostic> = Vec::new();

        // ---- Phase A: discover reachable PCs and block leaders. ----
        let mut leaders: BTreeSet<u32> = entries.keys().copied().collect();
        let mut reachable: BTreeSet<u32> = BTreeSet::new();
        let mut queue: VecDeque<u32> = leaders.iter().copied().collect();
        let mut scanned: BTreeSet<u32> = BTreeSet::new();
        while let Some(leader) = queue.pop_front() {
            if !scanned.insert(leader) {
                continue;
            }
            let mut pc = leader;
            loop {
                if pc != leader && reachable.contains(&pc) {
                    // Join point: a second path falls into an already
                    // scanned run, so the target must start its own block.
                    if leaders.insert(pc) {
                        queue.push_back(pc);
                    }
                    break;
                }
                reachable.insert(pc);
                let Some(instr) = decode_at(dc, pc) else {
                    break; // illegal or off the image; diagnosed in phase B
                };
                let mut done = true;
                match instr {
                    Instr::Branch { imm, .. } => {
                        for t in [pc.wrapping_add(imm as u32), pc.wrapping_add(4)] {
                            if target_ok(dc, t) && leaders.insert(t) {
                                queue.push_back(t);
                            }
                        }
                    }
                    Instr::Jal { rd, imm } => {
                        let t = pc.wrapping_add(imm as u32);
                        if target_ok(dc, t) && leaders.insert(t) {
                            queue.push_back(t);
                        }
                        // `jal ra, f` is the assembler's call idiom: the
                        // continuation after the call is reachable through
                        // the callee's `ret`.
                        if rd == Reg::RA {
                            let cont = pc.wrapping_add(4);
                            if target_ok(dc, cont) && leaders.insert(cont) {
                                queue.push_back(cont);
                            }
                        }
                    }
                    Instr::Jalr { .. } | Instr::Mret | Instr::Ebreak => {}
                    _ => done = false,
                }
                if done {
                    break;
                }
                pc = pc.wrapping_add(4);
            }
        }

        // ---- Phase B: materialize blocks with per-edge costs. ----
        let mut blocks: BTreeMap<u32, Block> = BTreeMap::new();
        // Call-site table: call block start -> (callee entry, continuation).
        let mut call_conts: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
        for &leader in &leaders {
            if !reachable.contains(&leader) {
                continue;
            }
            let mut block = Block {
                start: leader,
                instrs: Vec::new(),
                succs: Vec::new(),
                illegal_at: None,
                is_ret: false,
            };
            let mut pc = leader;
            loop {
                let Some(instr) = decode_at(dc, pc) else {
                    block.illegal_at = Some(pc);
                    break;
                };
                block.instrs.push((pc, instr));
                let jump = spec.cost.jump;
                match instr {
                    Instr::Branch { imm, .. } => {
                        let taken = pc.wrapping_add(imm as u32);
                        let fall = pc.wrapping_add(4);
                        if target_ok(dc, taken) {
                            block.succs.push((taken, spec.cost.branch_taken));
                        } else {
                            block.illegal_at = Some(pc);
                        }
                        if target_ok(dc, fall) {
                            block.succs.push((fall, spec.cost.branch_not_taken));
                        }
                        break;
                    }
                    Instr::Jal { rd, imm } => {
                        let t = pc.wrapping_add(imm as u32);
                        if target_ok(dc, t) {
                            block.succs.push((t, jump));
                            if rd == Reg::RA {
                                let cont = pc.wrapping_add(4);
                                if target_ok(dc, cont) {
                                    call_conts.insert(leader, (t, cont));
                                }
                            }
                        } else {
                            block.illegal_at = Some(pc);
                        }
                        break;
                    }
                    Instr::Jalr { rd, rs1, imm } => {
                        if rd == Reg::ZERO && rs1 == Reg::RA && imm == 0 {
                            block.is_ret = true;
                        }
                        break;
                    }
                    Instr::Mret | Instr::Ebreak => break,
                    _ => {}
                }
                pc = pc.wrapping_add(4);
                if leaders.contains(&pc) {
                    block.succs.push((pc, 0)); // plain fallthrough
                    break;
                }
            }
            blocks.insert(leader, block);
        }

        // ---- Resolve the call/return idiom (context-insensitive). ----
        // A `ret` returns to the continuation of every call site whose
        // callee body reaches it. The body walk steps *over* nested calls
        // (call block -> its own continuation) so helper code is attributed
        // to the helper, not inlined into the caller.
        let callees: BTreeSet<u32> = call_conts.values().map(|&(f, _)| f).collect();
        let mut bodies: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        let mut ret_edges: Vec<(u32, u32)> = Vec::new();
        for &f in &callees {
            let mut body: BTreeSet<u32> = BTreeSet::new();
            let mut q: VecDeque<u32> = VecDeque::new();
            q.push_back(f);
            while let Some(b) = q.pop_front() {
                if !blocks.contains_key(&b) || !body.insert(b) {
                    continue;
                }
                let blk = &blocks[&b];
                if blk.is_ret {
                    continue;
                }
                if let Some(&(_, cont)) = call_conts.get(&b) {
                    q.push_back(cont);
                } else {
                    for &(s, _) in &blk.succs {
                        q.push_back(s);
                    }
                }
            }
            let conts: Vec<u32> = call_conts
                .values()
                .filter(|&&(t, _)| t == f)
                .map(|&(_, c)| c)
                .collect();
            for &b in &body {
                if blocks[&b].is_ret {
                    for &c in &conts {
                        if blocks.contains_key(&c) {
                            ret_edges.push((b, c));
                        }
                    }
                }
            }
            bodies.insert(f, body);
        }
        for (b, c) in ret_edges {
            let blk = blocks.get_mut(&b).unwrap();
            if !blk.succs.iter().any(|&(s, _)| s == c) {
                // The `jalr` pipeline cost is charged in the ret block's
                // body, so the resolved return edge itself is free.
                blk.succs.push((c, 0));
            }
        }

        // ---- Illegal / dead code. ----
        let path_to = |blocks: &BTreeMap<u32, Block>, target: u32| -> Vec<u32> {
            bfs_path(blocks, entries.keys().copied(), target)
        };
        for block in blocks.values() {
            if let Some(pc) = block.illegal_at {
                let message = if dc.covers(pc) {
                    let word = word_at(image, pc);
                    match word {
                        Some(w) => format!("illegal instruction word 0x{w:08x}"),
                        None => "execution runs off the end of the image into zeroed \
                                 instruction memory"
                            .to_string(),
                    }
                } else {
                    "control flow leaves instruction memory".to_string()
                };
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    check: Check::Illegal,
                    pc,
                    message,
                    path: path_to(&blocks, block.start),
                });
            }
            if let Some(&(pc, instr)) = block.instrs.last() {
                if matches!(instr, Instr::Jalr { .. } | Instr::Mret) {
                    if block.is_ret && !block.succs.is_empty() {
                        // `ret` with resolved `jal ra` call sites: the
                        // return edges are followed, nothing to warn about.
                    } else {
                        let what = if matches!(instr, Instr::Mret) {
                            "mret returns to a runtime-dependent PC"
                        } else if block.is_ret {
                            "ret has no recognized `jal ra` call site"
                        } else {
                            "indirect jump target is runtime-dependent"
                        };
                        diags.push(Diagnostic {
                            severity: Severity::Warning,
                            check: Check::Flow,
                            pc,
                            message: format!("{what}; the analysis does not follow it"),
                            path: path_to(&blocks, block.start),
                        });
                    }
                }
            }
        }
        // Dead code: decodable words nothing reaches. Reported once per
        // maximal run to keep reports readable.
        let mut run_start: Option<u32> = None;
        let mut run_len = 0u32;
        let flush_dead = |diags: &mut Vec<Diagnostic>, start: Option<u32>, len: u32| {
            if let Some(s) = start {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    check: Check::Dead,
                    pc: s,
                    message: format!(
                        "unreachable code ({len} instruction(s) no path executes; \
                         data in the text section also looks like this)"
                    ),
                    path: Vec::new(),
                });
            }
        };
        let mut pc = base;
        while pc < image_end {
            let decodes = decode_at(dc, pc).is_some();
            if decodes && !reachable.contains(&pc) {
                run_start.get_or_insert(pc);
                run_len += 1;
            } else {
                flush_dead(&mut diags, run_start.take(), run_len);
                run_len = 0;
            }
            pc += 4;
        }
        flush_dead(&mut diags, run_start.take(), run_len);

        // ---- Abstract interpretation to a fixpoint. ----
        let mut in_states: BTreeMap<u32, AbsState> = BTreeMap::new();
        let mut work: VecDeque<u32> = VecDeque::new();
        for (&entry, &is_trap) in entries {
            let seed = if is_trap {
                AbsState::trap()
            } else {
                AbsState::boot()
            };
            match in_states.entry(entry) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(seed);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    o.get_mut().join_from(&seed, false);
                }
            }
            work.push_back(entry);
        }
        // Widening: after this many joins into the same block, any interval
        // bound still moving jumps to the lattice extreme so counted loops
        // keep small constants but the chain terminates.
        const WIDEN_AFTER: u32 = 16;
        let mut join_counts: BTreeMap<u32, u32> = BTreeMap::new();
        while let Some(at) = work.pop_front() {
            let Some(block) = blocks.get(&at) else {
                continue;
            };
            let mut state = in_states.get(&at).cloned().unwrap_or_else(AbsState::boot);
            let mut sink = NoSink;
            self.exec_block(block, &mut state, &mut sink);
            for &(succ, _) in &block.succs {
                let refined = refine_edge(block, &state, succ);
                match in_states.entry(succ) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(refined);
                        work.push_back(succ);
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        let n = join_counts.entry(succ).or_insert(0);
                        *n += 1;
                        let widen = *n > WIDEN_AFTER;
                        if o.get_mut().join_from(&refined, widen) {
                            work.push_back(succ);
                        }
                    }
                }
            }
        }

        // ---- Final pass: diagnostics, per-block facts, trap vectors. ----
        let mut facts: BTreeMap<u32, BlockFacts> = BTreeMap::new();
        let mut trap_vectors: Vec<u32> = Vec::new();
        for (&at, block) in &blocks {
            let mut state = in_states.get(&at).cloned().unwrap_or_else(AbsState::boot);
            let mut sink = DiagSink {
                diags: Vec::new(),
                facts: BlockFacts::default(),
            };
            self.exec_block(block, &mut state, &mut sink);
            // Exit-without-release: a halting path that may still hold a
            // descriptor slot (or an in-flight DMA) leaks that resource.
            if spec.protocol.is_some() {
                if let Some(&(tpc, Instr::Ebreak)) = block.instrs.last() {
                    if state.rx & RX_HELD != 0 {
                        sink.diags.push(Diagnostic {
                            severity: Severity::Warning,
                            check: Check::Protocol,
                            pc: tpc,
                            message: "halts while a receive descriptor slot may still be \
                                      held (never released; the scheduler cannot reuse \
                                      the slot)"
                                .to_string(),
                            path: Vec::new(),
                        });
                    }
                    if state.dma & DMA_BUSY != 0 {
                        sink.diags.push(Diagnostic {
                            severity: Severity::Warning,
                            check: Check::Protocol,
                            pc: tpc,
                            message: "halts while a DMA transfer may still be in flight \
                                      (completion was never polled)"
                                .to_string(),
                            path: Vec::new(),
                        });
                    }
                }
            }
            for mut d in sink.diags {
                d.path = path_to(&blocks, at);
                diags.push(d);
            }
            trap_vectors.extend(&sink.facts.trap_vectors);
            facts.insert(at, sink.facts);
        }

        // ---- Watchdog liveness over the loop nest (SCCs). ----
        if spec.watchdog_pet_offset.is_some() {
            for scc in sccs(&blocks) {
                let cyclic =
                    scc.len() > 1 || blocks[&scc[0]].succs.iter().any(|&(s, _)| s == scc[0]);
                if !cyclic {
                    continue;
                }
                // Remove every block that pets or sleeps; if a cycle
                // survives, that cycle can starve the watchdog forever.
                let residual: BTreeSet<u32> = scc
                    .iter()
                    .copied()
                    .filter(|b| !facts.get(b).map(|f| f.pets).unwrap_or(false))
                    .collect();
                if let Some(cycle) = find_cycle(&blocks, &residual) {
                    let at = cycle[0];
                    let label = labels
                        .get(&at)
                        .map(|l| format!(" <{l}>"))
                        .unwrap_or_default();
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        check: Check::Watchdog,
                        pc: at,
                        message: format!(
                            "loop at 0x{at:08x}{label} can spin forever without petting \
                             the watchdog or sleeping (wfi); a supervisor watchdog \
                             policy would evict this firmware"
                        ),
                        path: cycle,
                    });
                }
            }
        }

        // ---- WCET per entry point. ----
        // Calls are handled by summary: each callee gets a longest-acyclic-
        // path bound of its own, and the caller's WCET view steps straight
        // from the call block to the continuation charging that summary.
        // (Following call edges in a plain longest-path walk would let one
        // acyclic path visit a twice-called helper only once and
        // *under*-estimate.)
        let body_fn = |b: u32| facts.get(&b).map(|f| f.body_cycles).unwrap_or(0);
        let jump = u64::from(spec.cost.jump);
        let mut summaries: BTreeMap<u32, FnSummary> = BTreeMap::new();
        {
            // Summarize callees in dependency order; anything stuck in a
            // call-graph cycle cannot be bounded.
            let mut deps: BTreeMap<u32, BTreeSet<u32>> =
                callees.iter().map(|&f| (f, BTreeSet::new())).collect();
            let mut recursive: BTreeSet<u32> = BTreeSet::new();
            for &f in &callees {
                if let Some(body) = bodies.get(&f) {
                    for b in body {
                        if let Some(&(g, _)) = call_conts.get(b) {
                            if g == f {
                                recursive.insert(f);
                            } else if callees.contains(&g) {
                                deps.get_mut(&f).unwrap().insert(g);
                            }
                        }
                    }
                }
            }
            let mut order: Vec<u32> = Vec::new();
            let mut remaining: BTreeSet<u32> = callees.clone();
            loop {
                let ready: Vec<u32> = remaining
                    .iter()
                    .copied()
                    .filter(|f| deps[f].iter().all(|g| !remaining.contains(g)))
                    .collect();
                if ready.is_empty() {
                    break;
                }
                for f in ready {
                    remaining.remove(&f);
                    order.push(f);
                }
            }
            for f in remaining.iter().copied().chain(recursive.iter().copied()) {
                if summaries.contains_key(&f) {
                    continue;
                }
                summaries.insert(f, FnSummary::default());
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    check: Check::Flow,
                    pc: f,
                    message: format!(
                        "recursive call cycle through 0x{f:08x}; the WCET bound does \
                         not cover recursion depth"
                    ),
                    path: path_to(&blocks, f),
                });
            }
            for &f in &order {
                if summaries.contains_key(&f) {
                    continue; // self-recursive: placeholder already present
                }
                let view = build_wcet_view(&blocks, &call_conts, &summaries, jump);
                if let Some((acyclic, mut loops)) = longest_path_view(f, &view, &body_fn) {
                    if let Some(bodyset) = bodies.get(&f) {
                        for b in bodyset {
                            if let Some(&(g, _)) = call_conts.get(b) {
                                if let Some(s) = summaries.get(&g) {
                                    for (&h, &c) in &s.loops {
                                        let e = loops.entry(h).or_insert(c);
                                        *e = (*e).max(c);
                                    }
                                }
                            }
                        }
                    }
                    summaries.insert(f, FnSummary { acyclic, loops });
                }
            }
        }
        let view = build_wcet_view(&blocks, &call_conts, &summaries, jump);
        let mut wcet = Vec::new();
        for &entry in entries.keys() {
            let Some((best, mut loops)) = longest_path_view(entry, &view, &body_fn) else {
                continue;
            };
            // Loop bounds inside callees belong to this entry's budget too.
            let mut reach: BTreeSet<u32> = BTreeSet::new();
            let mut q: VecDeque<u32> = VecDeque::new();
            q.push_back(entry);
            while let Some(b) = q.pop_front() {
                if !view.contains_key(&b) || !reach.insert(b) {
                    continue;
                }
                for &(s, _) in &view[&b] {
                    q.push_back(s);
                }
            }
            for &b in &reach {
                if let Some(&(g, _)) = call_conts.get(&b) {
                    if let Some(s) = summaries.get(&g) {
                        for (&h, &c) in &s.loops {
                            let e = loops.entry(h).or_insert(c);
                            *e = (*e).max(c);
                        }
                    }
                }
            }
            wcet.push(EntryWcet {
                entry,
                label: labels.get(&entry).cloned(),
                acyclic_cycles: best,
                loops: loops
                    .into_iter()
                    .map(|(header, cycles_per_iter)| LoopBound {
                        header,
                        label: labels.get(&header).cloned(),
                        cycles_per_iter,
                    })
                    .collect(),
            });
        }

        RawReport {
            diagnostics: diags,
            wcet,
            trap_vectors,
        }
    }

    /// Classifies a constant address against the machine map. The order
    /// mirrors the RPU bus dispatch (broadcast window first, then the
    /// accelerator/IO/pmem/dmem bases, falling through to imem).
    fn locate(&self, addr: u32) -> Where {
        let spec = &self.spec;
        if spec.bcast.contains(addr) {
            Where::Bcast
        } else if spec.accel.contains(addr) {
            Where::Accel
        } else if spec.io_window_bytes > 0 && addr.wrapping_sub(spec.io_base) < spec.io_window_bytes
        {
            Where::Io(addr - spec.io_base)
        } else if spec.pmem.contains(addr) {
            Where::Pmem
        } else if spec.dmem.contains(addr) {
            Where::Dmem
        } else if addr < spec.imem_bytes {
            Where::Imem
        } else {
            Where::Nowhere
        }
    }

    /// Interprets one block from `state`, reporting reads of uninitialized
    /// registers, memory-map violations, protocol/taint findings, and
    /// per-instruction worst-case cost into `sink`.
    fn exec_block(&self, block: &Block, state: &mut AbsState, sink: &mut impl Sink) {
        let spec = &self.spec;
        let n = block.instrs.len();
        for (idx, &(pc, instr)) in block.instrs.iter().enumerate() {
            let is_term = idx + 1 == n;
            let read = |r: Reg, state: &AbsState, sink: &mut dyn SinkDyn| {
                match state.init[r.0 as usize] {
                    Init::Yes => {}
                    Init::No => sink.diag(Diagnostic {
                        severity: Severity::Error,
                        check: Check::Uninit,
                        pc,
                        message: format!("reads {} which no path has initialized", reg_name(r)),
                        path: Vec::new(),
                    }),
                    Init::Maybe => sink.diag(Diagnostic {
                        severity: Severity::Warning,
                        check: Check::Uninit,
                        pc,
                        message: format!(
                            "reads {} which some paths leave uninitialized",
                            reg_name(r)
                        ),
                        path: Vec::new(),
                    }),
                }
                state.get(r)
            };
            let mut cost = spec.cost.base;
            match instr {
                Instr::Lui { rd, imm } => {
                    state.set(rd, Interval::constant((imm << 12) as u32));
                    state.set_taint(rd, false);
                }
                Instr::Auipc { rd, imm } => {
                    state.set(rd, Interval::constant(pc.wrapping_add((imm << 12) as u32)));
                    state.set_taint(rd, false);
                }
                Instr::Jal { rd, .. } => {
                    state.set(rd, Interval::constant(pc.wrapping_add(4)));
                    state.set_taint(rd, false);
                    cost = 0; // charged on the edge
                }
                Instr::Jalr { rd, rs1, .. } => {
                    read(rs1, state, sink);
                    if state.tainted(rs1) {
                        sink.diag(Diagnostic {
                            severity: Severity::Error,
                            check: Check::Taint,
                            pc,
                            message: format!(
                                "indirect jump through {} whose target is derived from \
                                 unsanitized packet bytes (attacker-controlled control \
                                 flow)",
                                reg_name(rs1)
                            ),
                            path: Vec::new(),
                        });
                    }
                    state.set(rd, Interval::constant(pc.wrapping_add(4)));
                    state.set_taint(rd, false);
                    cost = spec.cost.jump;
                }
                Instr::Branch { rs1, rs2, imm, .. } => {
                    read(rs1, state, sink);
                    read(rs2, state, sink);
                    // A backward branch is a loop latch; letting packet
                    // bytes pick the trip count hands the attacker the
                    // cycle budget.
                    if is_term
                        && pc.wrapping_add(imm as u32) <= pc
                        && (state.tainted(rs1) || state.tainted(rs2))
                    {
                        sink.diag(Diagnostic {
                            severity: Severity::Warning,
                            check: Check::Taint,
                            pc,
                            message: "loop-controlling branch compares unsanitized packet \
                                      bytes; the iteration count is attacker-controlled"
                                .to_string(),
                            path: Vec::new(),
                        });
                    }
                    cost = 0; // charged on the edge
                }
                Instr::Load { op, rd, rs1, imm } => {
                    let addr = read(rs1, state, sink);
                    let target = self.resolve_target(addr, imm);
                    let wait = self.check_access(
                        pc,
                        rs1,
                        AccessDir::Load,
                        access_bytes_load(op),
                        &target,
                        sink,
                    );
                    let mut tainted = false;
                    match target {
                        // Packet buffers live in pmem: every load is a
                        // taint source.
                        Target::Const(_, Where::Pmem) | Target::Range(Where::Pmem) => {
                            tainted = true;
                        }
                        Target::Const(a, Where::Dmem) => {
                            tainted = state.mem_taint.contains(&(a & !3));
                        }
                        Target::Const(_, Where::Io(off)) => {
                            tainted = self.protocol_load(pc, off & !3, state, sink);
                        }
                        _ => {}
                    }
                    state.set(rd, Interval::TOP);
                    state.set_taint(rd, tainted);
                    cost = spec.cost.load + wait;
                }
                Instr::Store { op, rs1, rs2, imm } => {
                    let addr = read(rs1, state, sink);
                    read(rs2, state, sink);
                    let value_tainted = state.tainted(rs2);
                    let target = self.resolve_target(addr, imm);
                    let wait = self.check_access(
                        pc,
                        rs1,
                        AccessDir::Store,
                        access_bytes_store(op),
                        &target,
                        sink,
                    );
                    match target {
                        Target::Const(_, Where::Io(off)) => {
                            if spec.watchdog_pet_offset == Some(off) {
                                sink.pets();
                            }
                            self.protocol_store(pc, off & !3, value_tainted, state, sink);
                        }
                        Target::Const(a, Where::Dmem) => {
                            let word = a & !3;
                            if value_tainted {
                                if state.mem_taint.len() < MEM_TAINT_CAP
                                    || state.mem_taint.contains(&word)
                                {
                                    state.mem_taint.insert(word);
                                }
                            } else if access_bytes_store(op) == 4 {
                                // A full-word clean store is a strong
                                // update; partial stores leave the rest of
                                // the word tainted.
                                state.mem_taint.remove(&word);
                            }
                        }
                        _ => {}
                    }
                    cost = spec.cost.store + wait;
                }
                Instr::OpImm { op, rd, rs1, imm } => {
                    let a = read(rs1, state, sink);
                    let ta = state.tainted(rs1);
                    let b = Interval::constant(imm as u32);
                    state.set(rd, alu_interval(op, a, b));
                    state.set_taint(rd, alu_taint(op, a, ta, b, false));
                }
                Instr::Op { op, rd, rs1, rs2 } => {
                    let a = read(rs1, state, sink);
                    let b = read(rs2, state, sink);
                    let (ta, tb) = (state.tainted(rs1), state.tainted(rs2));
                    state.set(rd, alu_interval(op, a, b));
                    state.set_taint(rd, alu_taint(op, a, ta, b, tb));
                }
                Instr::MulDiv { op, rd, rs1, rs2 } => {
                    read(rs1, state, sink);
                    read(rs2, state, sink);
                    // Constant folding of M-ops buys nothing for firmware
                    // linting; stay conservative.
                    let t = state.tainted(rs1) || state.tainted(rs2);
                    state.set(rd, Interval::TOP);
                    state.set_taint(rd, t);
                    cost = match op {
                        MulOp::Mul | MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => spec.cost.mul,
                        _ => spec.cost.div,
                    };
                }
                Instr::Csr { rd, csr, src, .. } => {
                    let written = match src {
                        crate::isa::CsrSrc::Reg(rs) => read(rs, state, sink),
                        crate::isa::CsrSrc::Imm(v) => Interval::constant(u32::from(v)),
                    };
                    // `csrw mtvec, rX` with a constant installs a trap
                    // handler: that address becomes an entry point.
                    if csr == crate::cpu::csr::MTVEC {
                        if let Some(v) = written.as_const() {
                            sink.trap_vector(v & !3);
                        }
                    }
                    state.set(rd, Interval::TOP);
                    state.set_taint(rd, false);
                }
                Instr::Wfi => {
                    sink.pets();
                }
                Instr::Fence | Instr::Ecall | Instr::Ebreak => {}
                Instr::Mret => {
                    cost = spec.cost.jump;
                }
            }
            if !(is_term && matches!(instr, Instr::Branch { .. } | Instr::Jal { .. })) {
                sink.cost(u64::from(cost));
            } else {
                // Terminating branch/jal cost lives on the CFG edge.
                sink.cost(u64::from(cost.saturating_sub(spec.cost.base)));
            }
        }
    }

    /// RX/DMA automaton transitions for a load of IO word offset `woff`.
    /// Returns whether the loaded value is a taint source.
    fn protocol_load(
        &self,
        pc: u32,
        woff: u32,
        state: &mut AbsState,
        sink: &mut impl Sink,
    ) -> bool {
        let Some(p) = &self.spec.protocol else {
            return false;
        };
        if woff == p.recv_ready {
            // Poll: an unpolled or already-polled slot becomes polled; a
            // held descriptor stays held.
            let held = state.rx & RX_HELD;
            let polled = if state.rx & (RX_UNPOLLED | RX_POLLED) != 0 {
                RX_POLLED
            } else {
                0
            };
            state.rx = held | polled;
            false
        } else if p.recv_desc.contains(&woff) {
            if state.rx & (RX_POLLED | RX_HELD) == 0 {
                sink.diag(Diagnostic {
                    severity: Severity::Error,
                    check: Check::Protocol,
                    pc,
                    message: format!(
                        "reads {} with no receive descriptor held on any path \
                         (use-after-release, or a missing RECV_READY poll)",
                        self.io_name(woff)
                    ),
                    path: Vec::new(),
                });
            } else if state.rx & RX_UNPOLLED != 0 {
                sink.diag(Diagnostic {
                    severity: Severity::Warning,
                    check: Check::Protocol,
                    pc,
                    message: format!(
                        "on some paths, reads {} after the descriptor slot was \
                         released (use-after-release)",
                        self.io_name(woff)
                    ),
                    path: Vec::new(),
                });
            }
            state.rx = RX_HELD;
            true
        } else if woff == p.dma_status {
            // Reading the status register is the completion poll.
            state.dma = DMA_IDLE;
            false
        } else {
            false
        }
    }

    /// TX/DMA automaton transitions (and DMA taint-sink checks) for a store
    /// to IO word offset `woff`.
    fn protocol_store(
        &self,
        pc: u32,
        woff: u32,
        value_tainted: bool,
        state: &mut AbsState,
        sink: &mut impl Sink,
    ) {
        let Some(p) = &self.spec.protocol else {
            return;
        };
        let dma_params = [p.dma_host_addr, p.dma_local_addr, p.dma_len];
        if woff == p.recv_release {
            if state.rx & (RX_POLLED | RX_HELD) == 0 {
                sink.diag(Diagnostic {
                    severity: Severity::Error,
                    check: Check::Protocol,
                    pc,
                    message: format!(
                        "stores to {} with no receive descriptor held on any path \
                         (double release frees a slot the scheduler already owns)",
                        self.io_name(woff)
                    ),
                    path: Vec::new(),
                });
            } else if state.rx & RX_UNPOLLED != 0 {
                sink.diag(Diagnostic {
                    severity: Severity::Warning,
                    check: Check::Protocol,
                    pc,
                    message: format!(
                        "on some paths, stores to {} with no receive descriptor held \
                         (double release)",
                        self.io_name(woff)
                    ),
                    path: Vec::new(),
                });
            }
            state.rx = RX_UNPOLLED;
        } else if woff == p.send_stage {
            if state.tx & TX_STAGED != 0 {
                sink.diag(Diagnostic {
                    severity: Severity::Warning,
                    check: Check::Protocol,
                    pc,
                    message: format!(
                        "stores to {} over a send descriptor that was staged but never \
                         committed; the earlier descriptor is silently dropped",
                        self.io_name(woff)
                    ),
                    path: Vec::new(),
                });
            }
            state.tx = TX_STAGED;
        } else if woff == p.send_commit {
            if state.tx & TX_STAGED == 0 {
                sink.diag(Diagnostic {
                    severity: Severity::Error,
                    check: Check::Protocol,
                    pc,
                    message: format!(
                        "stores to {} with no send descriptor staged on any path \
                         (double commit emits a stale or garbage descriptor)",
                        self.io_name(woff)
                    ),
                    path: Vec::new(),
                });
            } else if state.tx & TX_EMPTY != 0 {
                sink.diag(Diagnostic {
                    severity: Severity::Warning,
                    check: Check::Protocol,
                    pc,
                    message: format!(
                        "on some paths, stores to {} with no send descriptor staged \
                         (double commit)",
                        self.io_name(woff)
                    ),
                    path: Vec::new(),
                });
            }
            state.tx = TX_EMPTY;
        } else if let Some(i) = dma_params.iter().position(|&o| o == woff) {
            if value_tainted {
                sink.diag(Diagnostic {
                    severity: Severity::Error,
                    check: Check::Taint,
                    pc,
                    message: format!(
                        "stores unsanitized packet bytes to {} (attacker-controlled \
                         DMA {}; mask or bounds-check the value first)",
                        self.io_name(woff),
                        ["host address", "local address", "transfer length"][i]
                    ),
                    path: Vec::new(),
                });
            }
            if state.dma & DMA_BUSY != 0 {
                let all = state.dma == DMA_BUSY;
                sink.diag(Diagnostic {
                    severity: if all {
                        Severity::Error
                    } else {
                        Severity::Warning
                    },
                    check: Check::Protocol,
                    pc,
                    message: format!(
                        "{}reprograms {} while a DMA transfer is still in flight \
                         (buffer reuse before completion; poll DMA_STATUS first)",
                        if all { "" } else { "on some paths, " },
                        self.io_name(woff)
                    ),
                    path: Vec::new(),
                });
            }
            state.dma_params[i] = Init::Yes;
        } else if woff == p.dma_ctrl {
            if value_tainted {
                sink.diag(Diagnostic {
                    severity: Severity::Error,
                    check: Check::Taint,
                    pc,
                    message: format!(
                        "stores unsanitized packet bytes to {} (attacker-controlled \
                         DMA command)",
                        self.io_name(woff)
                    ),
                    path: Vec::new(),
                });
            }
            for (i, &off) in dma_params.iter().enumerate() {
                match state.dma_params[i] {
                    Init::Yes => {}
                    Init::No => sink.diag(Diagnostic {
                        severity: Severity::Error,
                        check: Check::Protocol,
                        pc,
                        message: format!(
                            "starts a DMA transfer but {} was never programmed on any \
                             path (the engine would use a stale or zero parameter)",
                            self.io_name(off)
                        ),
                        path: Vec::new(),
                    }),
                    Init::Maybe => sink.diag(Diagnostic {
                        severity: Severity::Warning,
                        check: Check::Protocol,
                        pc,
                        message: format!(
                            "on some paths, starts a DMA transfer without programming {}",
                            self.io_name(off)
                        ),
                        path: Vec::new(),
                    }),
                }
            }
            if state.dma & DMA_BUSY != 0 {
                let all = state.dma == DMA_BUSY;
                sink.diag(Diagnostic {
                    severity: if all {
                        Severity::Error
                    } else {
                        Severity::Warning
                    },
                    check: Check::Protocol,
                    pc,
                    message: format!(
                        "{}starts a DMA transfer while the previous one was never \
                         polled to completion (missing DMA_STATUS completion poll)",
                        if all { "" } else { "on some paths, " }
                    ),
                    path: Vec::new(),
                });
            }
            state.dma = DMA_BUSY;
        }
    }

    /// The machine-map name of the IO register at word offset `woff`.
    fn io_name(&self, woff: u32) -> String {
        self.spec
            .io_regs
            .iter()
            .find(|r| r.offset == woff)
            .map(|r| r.name.to_string())
            .unwrap_or_else(|| format!("device offset 0x{woff:02x}"))
    }

    /// Resolves a `base + imm` access against the machine map using the
    /// full interval of the base register.
    fn resolve_target(&self, base: Interval, imm: i32) -> Target {
        if let Some(b) = base.as_const() {
            let a = b.wrapping_add(imm as u32);
            return Target::Const(a, self.locate(a));
        }
        let lo = base.lo.wrapping_add(imm as u32);
        let hi = base.hi.wrapping_add(imm as u32);
        if lo > hi {
            return Target::Unknown; // the offset wrapped the interval
        }
        let (wl, wh) = (self.locate(lo), self.locate(hi));
        // The mapped regions are contiguous, so both endpoints landing in
        // the same region means the whole range does. `Nowhere` is the
        // complement of the map and need not be contiguous; `Io` endpoints
        // only match when the range is a single (constant) address.
        if wl == wh && wl != Where::Nowhere && !matches!(wl, Where::Io(_)) {
            Target::Range(wl)
        } else {
            Target::Unknown
        }
    }

    /// Checks one memory access; returns its worst-case extra wait-states.
    ///
    /// Map/direction/stack diagnostics are only emitted for constant
    /// addresses; a bounded non-constant pointer still gets an exact wait
    /// classification when its whole range lands in one region.
    #[allow(clippy::too_many_arguments)]
    fn check_access(
        &self,
        pc: u32,
        rs1: Reg,
        dir: AccessDir,
        bytes: u32,
        target: &Target,
        sink: &mut impl Sink,
    ) -> u32 {
        let spec = &self.spec;
        let addr = match *target {
            Target::Const(a, _) => a,
            Target::Range(w) => {
                return match (w, dir) {
                    (Where::Pmem, _) => spec.pmem_wait_cycles,
                    (Where::Accel, AccessDir::Load) => spec.accel_read_wait_cycles,
                    _ => 0,
                };
            }
            Target::Unknown => {
                // Unknown pointer: charge the worst wait the bus can impose.
                return match dir {
                    AccessDir::Load => spec.worst_load_wait(),
                    AccessDir::Store => spec.worst_store_wait(),
                };
            }
        };
        let verb = match dir {
            AccessDir::Load => "load from",
            AccessDir::Store => "store to",
        };
        // Stack discipline: sp-relative constant accesses must stay inside
        // the configured stack region.
        if rs1 == Reg::SP {
            if let Some(stack) = spec.stack {
                if !stack.contains(addr) || !stack.contains(addr + bytes - 1) {
                    sink.diag(Diagnostic {
                        severity: Severity::Error,
                        check: Check::Stack,
                        pc,
                        message: format!(
                            "sp-relative {verb} 0x{addr:08x} is outside the stack \
                             region [0x{:08x}, 0x{:08x})",
                            stack.base,
                            stack.base + stack.bytes
                        ),
                        path: Vec::new(),
                    });
                    return 0;
                }
            }
        }
        match self.locate(addr) {
            Where::Dmem => 0,
            Where::Pmem => spec.pmem_wait_cycles,
            Where::Bcast => {
                if dir == AccessDir::Store {
                    sink.diag(Diagnostic {
                        severity: Severity::Error,
                        check: Check::Mmio,
                        pc,
                        message: format!("store to 0x{addr:08x} in the read-only broadcast window"),
                        path: Vec::new(),
                    });
                }
                0
            }
            Where::Accel => match dir {
                AccessDir::Load => spec.accel_read_wait_cycles,
                AccessDir::Store => 0,
            },
            Where::Io(off) => {
                let word_off = off & !3;
                match spec.io_regs.iter().find(|r| r.offset == word_off) {
                    None => {
                        sink.diag(Diagnostic {
                            severity: Severity::Error,
                            check: Check::Mmio,
                            pc,
                            message: format!(
                                "{verb} device offset 0x{off:02x}: no register is \
                                 mapped there (reads return 0, writes vanish)"
                            ),
                            path: Vec::new(),
                        });
                    }
                    Some(reg) => {
                        let ok = match dir {
                            AccessDir::Load => reg.readable,
                            AccessDir::Store => reg.writable,
                        };
                        if !ok {
                            let dirname = match dir {
                                AccessDir::Load => "write-only",
                                AccessDir::Store => "read-only",
                            };
                            sink.diag(Diagnostic {
                                severity: Severity::Error,
                                check: Check::Mmio,
                                pc,
                                message: format!(
                                    "{verb} {} (offset 0x{off:02x}), but that \
                                     register is {dirname}",
                                    reg.name
                                ),
                                path: Vec::new(),
                            });
                        }
                    }
                }
                0
            }
            Where::Imem => {
                if dir == AccessDir::Store {
                    sink.diag(Diagnostic {
                        severity: Severity::Warning,
                        check: Check::Region,
                        pc,
                        message: format!(
                            "{verb} 0x{addr:08x} rewrites instruction memory \
                             (self-modifying code invalidates the decode cache)"
                        ),
                        path: Vec::new(),
                    });
                }
                0
            }
            Where::Nowhere => {
                sink.diag(Diagnostic {
                    severity: Severity::Error,
                    check: Check::Region,
                    pc,
                    message: format!(
                        "{verb} 0x{addr:08x} hits no mapped region (bus fault at \
                         runtime)"
                    ),
                    path: Vec::new(),
                });
                0
            }
        }
    }
}

/// Where a resolved memory access lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    /// A single constant address in the given region.
    Const(u32, Where),
    /// A non-constant pointer whose whole interval stays inside one region.
    Range(Where),
    /// A pointer the interval domain cannot pin to one region.
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessDir {
    Load,
    Store,
}

fn access_bytes_load(op: LoadOp) -> u32 {
    match op {
        LoadOp::Lb | LoadOp::Lbu => 1,
        LoadOp::Lh | LoadOp::Lhu => 2,
        LoadOp::Lw => 4,
    }
}

fn access_bytes_store(op: StoreOp) -> u32 {
    match op {
        StoreOp::Sb => 1,
        StoreOp::Sh => 2,
        StoreOp::Sw => 4,
    }
}

/// Facts the final interpretation pass records per block.
#[derive(Debug, Clone, Default)]
struct BlockFacts {
    /// Worst-case cycles for the block body (terminator edges excluded).
    body_cycles: u64,
    /// Whether the block pets the watchdog or sleeps.
    pets: bool,
    /// Constant trap vectors installed in this block.
    trap_vectors: Vec<u32>,
}

/// Receives findings from [`Analyzer::exec_block`]. The fixpoint pass uses
/// [`NoSink`]; the reporting pass uses [`DiagSink`].
trait Sink: SinkDyn {
    fn cost(&mut self, cycles: u64);
    fn pets(&mut self);
    fn trap_vector(&mut self, pc: u32);
}

/// Object-safe subset for closures that only emit diagnostics.
trait SinkDyn {
    fn diag(&mut self, d: Diagnostic);
}

struct NoSink;
impl SinkDyn for NoSink {
    fn diag(&mut self, _d: Diagnostic) {}
}
impl Sink for NoSink {
    fn cost(&mut self, _cycles: u64) {}
    fn pets(&mut self) {}
    fn trap_vector(&mut self, _pc: u32) {}
}

struct DiagSink {
    diags: Vec<Diagnostic>,
    facts: BlockFacts,
}
impl SinkDyn for DiagSink {
    fn diag(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }
}
impl Sink for DiagSink {
    fn cost(&mut self, cycles: u64) {
        self.facts.body_cycles += cycles;
    }
    fn pets(&mut self) {
        self.facts.pets = true;
    }
    fn trap_vector(&mut self, pc: u32) {
        self.facts.trap_vectors.push(pc);
    }
}

struct RawReport {
    diagnostics: Vec<Diagnostic>,
    wcet: Vec<EntryWcet>,
    trap_vectors: Vec<u32>,
}

fn decode_at(dc: &mut DecodeCache, pc: u32) -> Option<Instr> {
    if dc.covers(pc) {
        dc.get(pc)
    } else {
        None
    }
}

fn target_ok(dc: &DecodeCache, t: u32) -> bool {
    t.is_multiple_of(4) && dc.covers(t)
}

fn word_at(image: &Image, pc: u32) -> Option<u32> {
    let off = pc.checked_sub(image.base())? / 4;
    image.words().get(off as usize).copied()
}

/// Lowest-named label per address, for stable human-readable reports.
fn label_map(image: &Image) -> BTreeMap<u32, String> {
    let mut map: BTreeMap<u32, String> = BTreeMap::new();
    for (name, addr) in image.symbols() {
        match map.entry(addr) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(name.to_string());
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                if name < o.get().as_str() {
                    o.insert(name.to_string());
                }
            }
        }
    }
    map
}

fn reg_name(r: Reg) -> String {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    NAMES
        .get(r.0 as usize)
        .map(|n| format!("{n} (x{})", r.0))
        .unwrap_or_else(|| format!("x{}", r.0))
}

/// Shortest path (by block count) from any entry to `target`, as a list of
/// block-start PCs. Used as the diagnostic path witness.
fn bfs_path(
    blocks: &BTreeMap<u32, Block>,
    entries: impl Iterator<Item = u32>,
    target: u32,
) -> Vec<u32> {
    let mut pred: BTreeMap<u32, u32> = BTreeMap::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for e in entries {
        if seen.insert(e) {
            queue.push_back(e);
        }
    }
    let roots = seen.clone();
    while let Some(at) = queue.pop_front() {
        if at == target {
            let mut path = vec![at];
            let mut cur = at;
            while let Some(&p) = pred.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return path;
        }
        let Some(block) = blocks.get(&at) else {
            continue;
        };
        for &(s, _) in &block.succs {
            if seen.insert(s) && !roots.contains(&s) {
                pred.insert(s, at);
                queue.push_back(s);
            } else if !pred.contains_key(&s) && seen.insert(s) {
                queue.push_back(s);
            }
        }
    }
    Vec::new()
}

/// Strongly connected components (iterative Tarjan), in discovery order.
fn sccs(blocks: &BTreeMap<u32, Block>) -> Vec<Vec<u32>> {
    #[derive(Default, Clone)]
    struct Node {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }
    let mut nodes: BTreeMap<u32, Node> = blocks.keys().map(|&k| (k, Node::default())).collect();
    let mut index = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    let mut out: Vec<Vec<u32>> = Vec::new();
    for &root in blocks.keys() {
        if nodes[&root].index.is_some() {
            continue;
        }
        // (block, next successor slot) call stack.
        let mut call: Vec<(u32, usize)> = vec![(root, 0)];
        while let Some(&mut (at, ref mut next)) = call.last_mut() {
            if *next == 0 {
                let n = nodes.get_mut(&at).unwrap();
                n.index = Some(index);
                n.lowlink = index;
                n.on_stack = true;
                index += 1;
                stack.push(at);
            }
            let succs = &blocks[&at].succs;
            if *next < succs.len() {
                let (s, _) = succs[*next];
                *next += 1;
                if !blocks.contains_key(&s) {
                    continue;
                }
                match nodes[&s].index {
                    None => call.push((s, 0)),
                    Some(si) => {
                        if nodes[&s].on_stack {
                            let low = nodes[&at].lowlink.min(si);
                            nodes.get_mut(&at).unwrap().lowlink = low;
                        }
                    }
                }
            } else {
                let at_low = nodes[&at].lowlink;
                if nodes[&at].index == Some(at_low) {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        nodes.get_mut(&w).unwrap().on_stack = false;
                        comp.push(w);
                        if w == at {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    let low = nodes[&parent].lowlink.min(at_low);
                    nodes.get_mut(&parent).unwrap().lowlink = low;
                }
            }
        }
    }
    out
}

/// Finds any cycle whose nodes all lie in `allowed`, returned as the cycle's
/// block PCs starting at its smallest member. `None` if the subgraph is
/// acyclic — i.e. every loop path contains a petting block.
fn find_cycle(blocks: &BTreeMap<u32, Block>, allowed: &BTreeSet<u32>) -> Option<Vec<u32>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        New,
        Active,
        Done,
    }
    let mut marks: BTreeMap<u32, Mark> = allowed.iter().map(|&b| (b, Mark::New)).collect();
    for &root in allowed {
        if marks[&root] != Mark::New {
            continue;
        }
        let mut path: Vec<(u32, usize)> = vec![(root, 0)];
        marks.insert(root, Mark::Active);
        while let Some(&mut (at, ref mut next)) = path.last_mut() {
            let succs = &blocks[&at].succs;
            if *next < succs.len() {
                let (s, _) = succs[*next];
                *next += 1;
                if !allowed.contains(&s) {
                    continue;
                }
                match marks[&s] {
                    Mark::Active => {
                        // Found: unwind the explicit stack back to `s`.
                        let mut cycle: Vec<u32> = path.iter().map(|&(b, _)| b).collect();
                        let start = cycle.iter().position(|&b| b == s).unwrap();
                        cycle.drain(..start);
                        let min = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, b)| b)
                            .map(|(i, _)| i)
                            .unwrap();
                        cycle.rotate_left(min);
                        return Some(cycle);
                    }
                    Mark::New => {
                        marks.insert(s, Mark::Active);
                        path.push((s, 0));
                    }
                    Mark::Done => {}
                }
            } else {
                marks.insert(at, Mark::Done);
                path.pop();
            }
        }
    }
    None
}

/// Propagates `state` along the edge `block -> succ`, narrowing intervals
/// (and clearing taint) through the terminating branch's comparison when the
/// edge direction is unambiguous.
fn refine_edge(block: &Block, state: &AbsState, succ: u32) -> AbsState {
    let mut out = state.clone();
    if let Some(&(pc, Instr::Branch { op, rs1, rs2, imm })) = block.instrs.last() {
        let taken = pc.wrapping_add(imm as u32);
        let fall = pc.wrapping_add(4);
        if taken != fall {
            if succ == taken {
                refine_branch(&mut out, op, rs1, rs2, true);
            } else if succ == fall {
                refine_branch(&mut out, op, rs1, rs2, false);
            }
        }
    }
    out
}

/// WCET summary of one called routine: longest acyclic path through its
/// body, and the per-iteration bound of each loop it contains.
#[derive(Debug, Clone, Default)]
struct FnSummary {
    acyclic: u64,
    loops: BTreeMap<u32, u64>,
}

/// Edge list used for WCET walks: successors with u64 edge costs.
type WcetView = BTreeMap<u32, Vec<(u32, u64)>>;

/// Builds the call-summarized WCET graph: a `jal ra` call block steps
/// straight to its continuation charging the jump plus the callee's acyclic
/// summary, and return blocks terminate (their cost is part of the callee
/// summary, charged at the call site).
fn build_wcet_view(
    blocks: &BTreeMap<u32, Block>,
    call_conts: &BTreeMap<u32, (u32, u32)>,
    summaries: &BTreeMap<u32, FnSummary>,
    jump: u64,
) -> WcetView {
    let mut view: WcetView = BTreeMap::new();
    for (&at, block) in blocks {
        let succs = if let Some(&(callee, cont)) = call_conts.get(&at) {
            let callee_cost = summaries.get(&callee).map(|s| s.acyclic).unwrap_or(0);
            vec![(cont, jump + callee_cost)]
        } else if block.is_ret {
            Vec::new()
        } else {
            block
                .succs
                .iter()
                .filter(|&&(s, _)| blocks.contains_key(&s))
                .map(|&(s, c)| (s, u64::from(c)))
                .collect()
        };
        view.insert(at, succs);
    }
    view
}

/// Longest acyclic path + per-loop iteration bounds from `entry` over a
/// WCET view. Returns `(acyclic_cycles, loop header -> cycles/iter)`.
fn longest_path_view(
    entry: u32,
    view: &WcetView,
    body: &dyn Fn(u32) -> u64,
) -> Option<(u64, BTreeMap<u32, u64>)> {
    view.get(&entry)?;
    // DFS from the entry classifying back edges (u -> v with v on the DFS
    // stack). Firmware CFGs here are reducible; anything stranger still
    // terminates because back edges are removed below.
    let mut on_stack: BTreeSet<u32> = BTreeSet::new();
    let mut visited: BTreeSet<u32> = BTreeSet::new();
    let mut back_edges: Vec<(u32, u32)> = Vec::new();
    let mut stack: Vec<(u32, usize)> = vec![(entry, 0)];
    visited.insert(entry);
    on_stack.insert(entry);
    while let Some(&mut (at, ref mut next)) = stack.last_mut() {
        let succs = &view[&at];
        if *next < succs.len() {
            let (s, _) = succs[*next];
            *next += 1;
            if !view.contains_key(&s) {
                continue;
            }
            if on_stack.contains(&s) {
                back_edges.push((at, s));
            } else if visited.insert(s) {
                on_stack.insert(s);
                stack.push((s, 0));
            }
        } else {
            on_stack.remove(&at);
            stack.pop();
        }
    }

    let is_back = |u: u32, v: u32| back_edges.iter().any(|&(a, b)| (a, b) == (u, v));

    // Longest path over the forward (acyclic) subgraph.
    let order = topo_order_view(view, &visited, &is_back);
    let mut dist: BTreeMap<u32, u64> = BTreeMap::new();
    dist.insert(entry, 0);
    let mut best = 0u64;
    for &at in &order {
        let Some(&d) = dist.get(&at) else { continue };
        let here = d + body(at);
        let term = view[&at].iter().map(|&(_, c)| c).max().unwrap_or(0);
        best = best.max(here + term);
        for &(s, c) in &view[&at] {
            if is_back(at, s) || !view.contains_key(&s) {
                continue;
            }
            let cand = here + c;
            let e = dist.entry(s).or_insert(cand);
            *e = (*e).max(cand);
        }
    }

    // Per-loop bound: for each back edge u -> h, the worst path from h to u
    // inside the natural loop, plus the back edge itself.
    let mut loop_bounds: BTreeMap<u32, u64> = BTreeMap::new();
    for &(u, h) in &back_edges {
        let members = natural_loop_view(view, u, h);
        let sub_order: Vec<u32> = order
            .iter()
            .copied()
            .filter(|b| members.contains(b))
            .collect();
        let mut d: BTreeMap<u32, u64> = BTreeMap::new();
        d.insert(h, 0);
        for &at in &sub_order {
            let Some(&da) = d.get(&at) else { continue };
            for &(s, c) in &view[&at] {
                if is_back(at, s) || !members.contains(&s) {
                    continue;
                }
                let cand = da + body(at) + c;
                let e = d.entry(s).or_insert(cand);
                *e = (*e).max(cand);
            }
        }
        let edge_cost = view[&u]
            .iter()
            .find(|&&(s, _)| s == h)
            .map(|&(_, c)| c)
            .unwrap_or(0);
        if let Some(&du) = d.get(&u) {
            let iter = du + body(u) + edge_cost;
            let e = loop_bounds.entry(h).or_insert(iter);
            *e = (*e).max(iter);
        }
    }

    Some((best, loop_bounds))
}

/// Topological order of `visited` nodes over forward view edges.
fn topo_order_view(
    view: &WcetView,
    visited: &BTreeSet<u32>,
    is_back: &dyn Fn(u32, u32) -> bool,
) -> Vec<u32> {
    let mut indeg: BTreeMap<u32, usize> = visited.iter().map(|&b| (b, 0)).collect();
    for &b in visited {
        for &(s, _) in &view[&b] {
            if visited.contains(&s) && !is_back(b, s) {
                *indeg.get_mut(&s).unwrap() += 1;
            }
        }
    }
    let mut queue: VecDeque<u32> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&b, _)| b)
        .collect();
    let mut order = Vec::with_capacity(visited.len());
    while let Some(at) = queue.pop_front() {
        order.push(at);
        for &(s, _) in &view[&at] {
            if visited.contains(&s) && !is_back(at, s) {
                let d = indeg.get_mut(&s).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push_back(s);
                }
            }
        }
    }
    order
}

/// Natural loop of back edge `u -> h`: `h` plus everything that reaches `u`
/// without passing through `h`.
fn natural_loop_view(view: &WcetView, u: u32, h: u32) -> BTreeSet<u32> {
    let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (&b, succs) in view {
        for &(s, _) in succs {
            preds.entry(s).or_default().push(b);
        }
    }
    let mut members: BTreeSet<u32> = BTreeSet::new();
    members.insert(h);
    members.insert(u);
    let mut queue: VecDeque<u32> = VecDeque::new();
    if u != h {
        queue.push_back(u);
    }
    while let Some(at) = queue.pop_front() {
        for &p in preds.get(&at).map(|v| v.as_slice()).unwrap_or(&[]) {
            if members.insert(p) {
                queue.push_back(p);
            }
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::{Cpu, RamBus, StepResult};

    fn bare() -> Analyzer {
        Analyzer::new(MachineSpec::bare(4096, 65536))
    }

    /// A miniature RPU-shaped spec for MMIO/watchdog/stack tests.
    fn devices() -> MachineSpec {
        MachineSpec {
            imem_bytes: 4096,
            dmem: Region {
                base: 0x0080_0000,
                bytes: 0x8000,
            },
            pmem: Region {
                base: 0x0100_0000,
                bytes: 0x10_0000,
            },
            io_base: 0x0200_0000,
            io_window_bytes: 0x100,
            io_regs: vec![
                MmioReg {
                    offset: 0x00,
                    name: "RECV_READY",
                    readable: true,
                    writable: false,
                },
                MmioReg {
                    offset: 0x0c,
                    name: "RECV_RELEASE",
                    readable: false,
                    writable: true,
                },
                MmioReg {
                    offset: 0x40,
                    name: "TIMER_CMP",
                    readable: false,
                    writable: true,
                },
            ],
            accel: Region {
                base: 0x0300_0000,
                bytes: 0x100,
            },
            bcast: Region {
                base: 0x0400_0000,
                bytes: 4096,
            },
            watchdog_pet_offset: Some(0x40),
            stack: Some(Region {
                base: 0x0080_7000,
                bytes: 0x1000,
            }),
            protocol: None,
            cost: CostModel::default(),
            pmem_wait_cycles: 1,
            accel_read_wait_cycles: 2,
        }
    }

    /// `devices()` plus the full descriptor/DMA protocol table, mirroring
    /// the real RPU IO map offsets.
    fn proto_devices() -> MachineSpec {
        let mut spec = devices();
        spec.io_regs = vec![
            MmioReg {
                offset: 0x00,
                name: "RECV_READY",
                readable: true,
                writable: false,
            },
            MmioReg {
                offset: 0x04,
                name: "RECV_DESC_LO",
                readable: true,
                writable: false,
            },
            MmioReg {
                offset: 0x08,
                name: "RECV_DESC_DATA",
                readable: true,
                writable: false,
            },
            MmioReg {
                offset: 0x0c,
                name: "RECV_RELEASE",
                readable: false,
                writable: true,
            },
            MmioReg {
                offset: 0x10,
                name: "SEND_DESC_LO",
                readable: false,
                writable: true,
            },
            MmioReg {
                offset: 0x14,
                name: "SEND_DESC_DATA",
                readable: false,
                writable: true,
            },
            MmioReg {
                offset: 0x40,
                name: "TIMER_CMP",
                readable: false,
                writable: true,
            },
            MmioReg {
                offset: 0x44,
                name: "DMA_HOST_ADDR",
                readable: false,
                writable: true,
            },
            MmioReg {
                offset: 0x48,
                name: "DMA_LOCAL_ADDR",
                readable: false,
                writable: true,
            },
            MmioReg {
                offset: 0x4c,
                name: "DMA_LEN",
                readable: false,
                writable: true,
            },
            MmioReg {
                offset: 0x50,
                name: "DMA_CTRL",
                readable: false,
                writable: true,
            },
            MmioReg {
                offset: 0x54,
                name: "DMA_STATUS",
                readable: true,
                writable: false,
            },
        ];
        spec.protocol = Some(ProtocolSpec {
            recv_ready: 0x00,
            recv_desc: vec![0x04, 0x08],
            recv_release: 0x0c,
            send_stage: 0x10,
            send_commit: 0x14,
            dma_host_addr: 0x44,
            dma_local_addr: 0x48,
            dma_len: 0x4c,
            dma_ctrl: 0x50,
            dma_status: 0x54,
        });
        spec
    }

    fn check(spec: MachineSpec, asm: &str) -> LintReport {
        Analyzer::new(spec).check(&assemble(asm).unwrap())
    }

    fn has(report: &LintReport, check: Check, sev: Severity) -> bool {
        report
            .diagnostics
            .iter()
            .any(|d| d.check == check && d.severity == sev)
    }

    #[test]
    fn clean_program_has_no_findings() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                li a0, 3
                li a1, 4
                add a2, a0, a1
                ebreak
            ",
        );
        assert!(r.diagnostics.is_empty(), "{:#?}", r.diagnostics);
        assert_eq!(r.wcet.len(), 1);
        // li+li+add+ebreak = 1+1+1+1 under the default cost model.
        assert_eq!(r.wcet[0].acyclic_cycles, 4);
    }

    #[test]
    fn mmio_unknown_register_is_error() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                sw zero, 0x64(t0)
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Mmio, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn mmio_direction_is_checked() {
        // RECV_READY is read-only; storing to it is an error.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                sw zero, 0x00(t0)
                ebreak
            ",
        );
        assert!(has(&r, Check::Mmio, Severity::Error));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.check == Check::Mmio)
            .unwrap();
        assert!(d.message.contains("RECV_READY"), "{}", d.message);
        assert!(d.message.contains("read-only"), "{}", d.message);
        // Reading a write-only register is the mirror error.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                lw a0, 0x0c(t0)
                ebreak
            ",
        );
        assert!(has(&r, Check::Mmio, Severity::Error));
        // The legal direction passes.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                lw a0, 0x00(t0)
                sw zero, 0x0c(t0)
                ebreak
            ",
        );
        assert!(!r.has_errors(), "{:#?}", r.diagnostics);
    }

    #[test]
    fn watchdog_starving_loop_is_flagged() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
            poll:
                lw a0, 0x00(t0)
                beqz a0, poll
                ebreak
            ",
        );
        assert!(has(&r, Check::Watchdog, Severity::Warning));
        // Petting inside the loop clears it.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                li t1, 1000
            poll:
                sw t1, 0x40(t0)
                lw a0, 0x00(t0)
                beqz a0, poll
                ebreak
            ",
        );
        assert!(!has(&r, Check::Watchdog, Severity::Warning));
        // Sleeping (wfi) also counts as liveness.
        let r = check(
            devices(),
            "
            park:
                wfi
                j park
            ",
        );
        assert!(!has(&r, Check::Watchdog, Severity::Warning));
    }

    #[test]
    fn watchdog_flags_inner_loop_that_never_pets() {
        // The outer loop pets, but the inner drain loop can spin forever.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                li t1, 1000
            outer:
                sw t1, 0x40(t0)
            inner:
                lw a0, 0x00(t0)
                bnez a0, inner
                j outer
            ",
        );
        assert!(has(&r, Check::Watchdog, Severity::Warning));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.check == Check::Watchdog)
            .unwrap();
        assert_eq!(d.pc, 16, "should point at the inner loop header");
    }

    #[test]
    fn uninitialized_read_is_error() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                add a0, a1, a2
                ebreak
            ",
        );
        assert!(has(&r, Check::Uninit, Severity::Error));
        // Initialized on only one path: a warning, not an error.
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                li a0, 1
                beqz a0, skip
                li a1, 2
            skip:
                add a2, a1, a0
                ebreak
            ",
        );
        assert!(has(&r, Check::Uninit, Severity::Warning));
        assert!(!has(&r, Check::Uninit, Severity::Error));
    }

    #[test]
    fn stack_bounds_are_checked() {
        // sp points at the stack top; pushing stays inside, an address
        // above the top (positive offset) is outside the region.
        let r = check(
            devices(),
            "
                li sp, 0x00808000
                addi sp, sp, -16
                sw a0, 0(sp)
                sw a0, 12(sp)
                ebreak
            ",
        );
        assert!(
            !r.diagnostics.iter().any(|d| d.check == Check::Stack),
            "{:#?}",
            r.diagnostics
        );
        let r = check(
            devices(),
            "
                li sp, 0x00808000
                sw a0, 0(sp)
                ebreak
            ",
        );
        assert!(has(&r, Check::Stack, Severity::Error));
        // Underflowing the 4 KiB region is also caught.
        let r = check(
            devices(),
            "
                li sp, 0x00807000
                sw a0, -4(sp)
                ebreak
            ",
        );
        assert!(has(&r, Check::Stack, Severity::Error));
    }

    #[test]
    fn illegal_and_dead_code_are_reported() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                j good
                .word 0x00000013    # decodes (nop) but nothing reaches it
            good:
                .word 0xffffffff    # reachable and does not decode
            ",
        );
        assert!(
            has(&r, Check::Illegal, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
        assert!(has(&r, Check::Dead, Severity::Warning));
        // Falling off the end of the image is also illegal.
        let r = check(MachineSpec::bare(4096, 65536), "nop");
        assert!(has(&r, Check::Illegal, Severity::Error));
    }

    #[test]
    fn region_violation_is_error() {
        let r = check(
            devices(),
            "
                li t0, 0x00700000   # below dmem, above imem: unmapped
                lw a0, 0(t0)
                ebreak
            ",
        );
        assert!(has(&r, Check::Region, Severity::Error));
    }

    #[test]
    fn diagnostics_carry_a_path_witness() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                li a0, 1
                beqz a0, other
                sw zero, 0x00(t0)   # read-only register
                ebreak
            other:
                ebreak
            ",
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.check == Check::Mmio)
            .expect("mmio error");
        assert!(!d.path.is_empty());
        assert_eq!(d.path[0], 0, "witness starts at the entry block");
    }

    #[test]
    fn trap_vector_becomes_an_entry_point() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                la t0, handler
                csrw mtvec, t0
            idle:
                j idle
            handler:
                mret
            ",
        );
        // The handler is not dead, and it gets its own WCET entry.
        assert!(
            !has(&r, Check::Dead, Severity::Warning),
            "{:#?}",
            r.diagnostics
        );
        assert_eq!(r.wcet.len(), 2);
    }

    #[test]
    fn wcet_bound_covers_simulated_straight_line() {
        let src = "
            li a0, 100
            li a1, 7
            add a2, a0, a1
            sw a2, 0x100(zero)
            lw a3, 0x100(zero)
            mul a4, a3, a1
            ebreak
        ";
        let image = assemble(src).unwrap();
        let report = bare().check(&image);
        assert!(!report.has_errors());
        let mut bus = RamBus::new(65536);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        while !matches!(cpu.step(&mut bus), StepResult::Break) {}
        assert!(
            report.wcet[0].acyclic_cycles >= cpu.cycles(),
            "bound {} < measured {}",
            report.wcet[0].acyclic_cycles,
            cpu.cycles()
        );
    }

    #[test]
    fn wcet_loop_bound_covers_simulated_loop() {
        let iters = 37u64;
        let src = format!(
            "
                li a0, 0
                li a1, {iters}
            loop:
                add a0, a0, a1
                addi a1, a1, -1
                bnez a1, loop
                ebreak
            "
        );
        let image = assemble(&src).unwrap();
        let report = bare().check(&image);
        let w = &report.wcet[0];
        assert_eq!(w.loops.len(), 1);
        let bound = w.acyclic_cycles + (iters - 1) * w.loops[0].cycles_per_iter;
        let mut bus = RamBus::new(65536);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        while !matches!(cpu.step(&mut bus), StepResult::Break) {}
        assert!(
            bound >= cpu.cycles(),
            "bound {bound} < measured {}",
            cpu.cycles()
        );
    }

    #[test]
    fn report_renders_stably() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
            poll:
                lw a0, 0x00(t0)
                beqz a0, poll
                ebreak
            ",
        );
        let text = r.render("spin");
        assert!(text.starts_with("lint report: spin\n"), "{text}");
        assert!(text.contains("loop 0x00000008 <poll>"), "{text}");
        assert!(text.contains("warning[watchdog]"), "{text}");
        assert!(text.trim_end().ends_with("warning(s)"), "{text}");
    }

    #[test]
    fn json_report_is_machine_readable() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                sw zero, 0x64(t0)
                ebreak
            ",
        );
        let json = r.render_json("bad");
        assert!(json.contains("\"name\":\"bad\""), "{json}");
        assert!(json.contains("\"check\":\"mmio\""), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(json.contains("\"path\":["), "{json}");
    }

    // ---- descriptor/DMA protocol automata ----

    /// The legal poll → read desc → stage → commit → release cycle is clean.
    #[test]
    fn protocol_legal_cycle_is_clean() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
            poll:
                lw a0, 0x00(t0)
                sw zero, 0x40(t0)      # pet the watchdog
                beqz a0, poll
                lw a1, 0x04(t0)        # take the descriptor
                lw a2, 0x08(t0)
                sw a1, 0x10(t0)        # stage
                sw a2, 0x14(t0)        # commit
                sw zero, 0x0c(t0)      # release
                j poll
            ",
        );
        assert!(!r.has_errors(), "{:#?}", r.diagnostics);
    }

    #[test]
    fn protocol_use_after_release_is_error() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                lw a0, 0x00(t0)
                lw a1, 0x04(t0)
                sw zero, 0x0c(t0)      # release
                lw a2, 0x08(t0)        # ...then read the released slot
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Protocol, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn protocol_desc_read_without_poll_is_error() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                lw a1, 0x04(t0)        # no RECV_READY poll first
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Protocol, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn protocol_double_commit_is_error() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                lw a0, 0x00(t0)
                lw a1, 0x04(t0)
                sw a1, 0x10(t0)        # stage
                sw a1, 0x14(t0)        # commit
                sw a1, 0x14(t0)        # commit again: nothing staged
                sw zero, 0x0c(t0)
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Protocol, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn protocol_double_release_is_error() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                lw a0, 0x00(t0)
                sw zero, 0x0c(t0)
                sw zero, 0x0c(t0)      # slot already back with the scheduler
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Protocol, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn protocol_missed_completion_poll_is_error() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li a0, 0x100
                sw a0, 0x44(t0)        # host addr
                sw a0, 0x48(t0)        # local addr
                sw a0, 0x4c(t0)        # len
                sw a0, 0x50(t0)        # kick
                sw a0, 0x50(t0)        # kick again without polling DMA_STATUS
                ebreak
            ",
        );
        let msgs: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.check == Check::Protocol && d.severity == Severity::Error)
            .collect();
        assert!(
            msgs.iter().any(|d| d.message.contains("completion poll")),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn protocol_completion_poll_resets_dma_state() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li a0, 0x100
                sw a0, 0x44(t0)
                sw a0, 0x48(t0)
                sw a0, 0x4c(t0)
                sw a0, 0x50(t0)        # kick
            wait:
                lw a1, 0x54(t0)        # completion poll
                sw zero, 0x40(t0)      # pet
                beqz a1, wait
                sw a0, 0x50(t0)        # second transfer is now legal
                lw a1, 0x54(t0)
                ebreak
            ",
        );
        assert!(!r.has_errors(), "{:#?}", r.diagnostics);
    }

    #[test]
    fn protocol_dma_kick_without_params_is_error() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li a0, 1
                sw a0, 0x50(t0)        # kick with nothing programmed
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Protocol, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn protocol_param_store_during_flight_is_error() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li a0, 0x100
                sw a0, 0x44(t0)
                sw a0, 0x48(t0)
                sw a0, 0x4c(t0)
                sw a0, 0x50(t0)        # kick
                sw a0, 0x48(t0)        # reprogram mid-flight (buffer reuse)
                ebreak
            ",
        );
        let msgs: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.check == Check::Protocol && d.severity == Severity::Error)
            .collect();
        assert!(
            msgs.iter().any(|d| d.message.contains("in flight")),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn protocol_halt_with_held_descriptor_warns() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                lw a0, 0x00(t0)
                lw a1, 0x04(t0)        # take the slot...
                ebreak                 # ...and never release it
            ",
        );
        assert!(
            has(&r, Check::Protocol, Severity::Warning),
            "{:#?}",
            r.diagnostics
        );
    }

    // ---- packet-byte taint ----

    #[test]
    fn tainted_dma_len_is_error() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li t1, 0x01000000
                lw a0, 0(t1)           # packet bytes
                sw a0, 0x4c(t0)        # straight into DMA_LEN
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Taint, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn masked_dma_len_is_clean() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li t1, 0x01000000
                lw a0, 0(t1)
                andi a0, a0, 0x3ff     # mask sanitizes the length
                sw a0, 0x4c(t0)
                ebreak
            ",
        );
        assert!(
            !has(&r, Check::Taint, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn bounds_guard_sanitizes_dma_len() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li t1, 0x01000000
                lw a0, 0(t1)
                li t2, 1024
                bltu a0, t2, ok        # guard proves a0 < 1024 on this edge
                ebreak
            ok:
                sw a0, 0x4c(t0)
                ebreak
            ",
        );
        assert!(
            !has(&r, Check::Taint, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn unguarded_twin_is_flagged() {
        // Same program as above minus the guard: the taint must survive.
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li t1, 0x01000000
                lw a0, 0(t1)
                sw a0, 0x4c(t0)
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Taint, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn tainted_indirect_jump_is_error() {
        let r = check(
            proto_devices(),
            "
                li t1, 0x01000000
                lw a0, 0(t1)
                jr a0                  # packet bytes pick the target
            ",
        );
        assert!(
            has(&r, Check::Taint, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn tainted_loop_bound_warns() {
        let r = check(
            proto_devices(),
            "
                li t1, 0x01000000
                lw a0, 0(t1)           # packet-controlled counter
                li a1, 0
            loop:
                addi a1, a1, 1
                sw zero, 0x40(t1)      # (pmem store: keeps watchdog quiet? no)
                bltu a1, a0, loop
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Taint, Severity::Warning),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn taint_flows_through_memory() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li t1, 0x01000000
                li t2, 0x00800000
                lw a0, 0(t1)           # packet bytes
                sw a0, 0(t2)           # spill to dmem
                lw a1, 0(t2)           # reload: still tainted
                sw a1, 0x4c(t0)
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Taint, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn clean_store_clears_memory_taint() {
        let r = check(
            proto_devices(),
            "
                li t0, 0x02000000
                li t1, 0x01000000
                li t2, 0x00800000
                lw a0, 0(t1)
                sw a0, 0(t2)           # taint the slot
                sw zero, 0(t2)         # strong update with a clean word
                lw a1, 0(t2)
                sw a1, 0x4c(t0)
                ebreak
            ",
        );
        assert!(
            !has(&r, Check::Taint, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    // ---- interval domain ----

    /// A bounded pointer sweep over dmem must not raise region errors even
    /// though the address is not a single constant.
    #[test]
    fn bounded_pointer_range_has_no_region_error() {
        let r = check(
            devices(),
            "
                li t0, 0x00800000
                li t1, 0x00800040
            loop:
                lw a0, 0(t0)
                addi t0, t0, 4
                bltu t0, t1, loop
                ebreak
            ",
        );
        assert!(
            !has(&r, Check::Region, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    /// Equality guards refine to constants: `beq` against a constant makes
    /// the value exact on the taken edge.
    #[test]
    fn equality_guard_refines_to_constant() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                lw a0, 0x00(t0)        # unknown value
                li t1, 0x02000040
                beq a0, t1, hit
                ebreak
            hit:
                sw zero, 0(a0)         # a0 == 0x02000040 == TIMER_CMP here
                ebreak
            ",
        );
        // The store hits TIMER_CMP (writable), so there must be no MMIO
        // error on the refined path.
        assert!(
            !has(&r, Check::Mmio, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    // ---- call/return idiom ----

    #[test]
    fn helper_call_and_return_are_followed() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                li sp, 0x8000
                li a0, 5
                call double
                call double
                ebreak
            double:
                add a0, a0, a0
                ret
            ",
        );
        // No unreachable-code or unresolved-flow noise for the helper.
        assert!(
            !has(&r, Check::Dead, Severity::Warning),
            "{:#?}",
            r.diagnostics
        );
        assert!(
            !has(&r, Check::Flow, Severity::Warning),
            "{:#?}",
            r.diagnostics
        );
        assert!(!r.has_errors(), "{:#?}", r.diagnostics);
    }

    /// A helper called twice must be charged twice in the caller's WCET.
    #[test]
    fn wcet_charges_each_call_site() {
        let image = assemble(
            "
                li a0, 5
                call double
                call double
                ebreak
            double:
                add a0, a0, a0
                ret
            ",
        )
        .unwrap();
        let report = bare().check(&image);
        let entry = report.wcet.iter().find(|w| w.entry == 0).unwrap();
        let mut bus = RamBus::new(65536);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        while !matches!(cpu.step(&mut bus), StepResult::Break) {}
        assert!(
            entry.acyclic_cycles >= cpu.cycles(),
            "bound {} < measured {} (helper under-charged?)",
            entry.acyclic_cycles,
            cpu.cycles()
        );
    }

    #[test]
    fn recursion_is_flagged_not_followed() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                li sp, 0x8000
                li a0, 5
                call spin
                ebreak
            spin:
                addi a0, a0, -1
                call spin
                ret
            ",
        );
        assert!(
            has(&r, Check::Flow, Severity::Warning),
            "{:#?}",
            r.diagnostics
        );
    }
}
