//! `rosebud-verify`: static firmware analysis over assembled images.
//!
//! The paper's pitch is that middlebox development gets pleasant when
//! firmware bugs are caught *before* they hit hardware; until now the only
//! way to learn that an image touches a bogus MMIO address, never pets the
//! watchdog, or blows its cycle budget was to simulate it and watch the
//! supervisor evict it. This module closes that gap: it reconstructs a
//! control-flow graph from an assembled [`Image`] (reusing the
//! [`DecodeCache`] predecoder), runs an abstract interpretation over
//! registers, and reports structured diagnostics plus a per-entry-point
//! worst-case execution time bound derived from the same [`CostModel`] the
//! simulator charges.
//!
//! The checks:
//!
//! 1. **MMIO validity** — every load/store whose abstract address resolves
//!    into the device window must hit a register the machine map defines,
//!    with the read/write direction checked.
//! 2. **Watchdog liveness** — every cycle in the CFG's loop nest must
//!    contain a watchdog-pet store or a `wfi`, else the firmware is a
//!    supervisor-eviction hazard under a watchdog policy.
//! 3. **Uninitialized registers and stack bounds** — reads of registers no
//!    path has written, and `sp`-relative accesses outside the configured
//!    stack region.
//! 4. **Illegal/unreachable code** — reachable words that do not decode
//!    (or fall off the image), and decodable but dead blocks.
//! 5. **Per-path WCET** — a cycle bound per entry point: the longest
//!    acyclic path plus a worst-case bound per loop iteration.
//!
//! Known-imprecise cases are documented on [`Analyzer::check`].
//!
//! # Examples
//!
//! ```
//! use rosebud_riscv::{assemble, Analyzer, MachineSpec};
//!
//! let image = assemble("
//!         li a0, 5
//!     loop:
//!         addi a0, a0, -1
//!         bnez a0, loop
//!         ebreak
//! ").unwrap();
//! let report = Analyzer::new(MachineSpec::bare(4096, 65536)).check(&image);
//! assert!(!report.has_errors());
//! assert_eq!(report.wcet.len(), 1);
//! ```

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;

use crate::asm::Image;
use crate::cpu::{alu, CostModel};
use crate::icache::DecodeCache;
use crate::isa::{Instr, LoadOp, MulOp, Reg, StoreOp};

/// A half-open memory region `[base, base + bytes)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte address.
    pub base: u32,
    /// Length in bytes (0 = the region does not exist).
    pub bytes: u32,
}

impl Region {
    /// The empty region.
    pub const NONE: Region = Region { base: 0, bytes: 0 };

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        self.bytes > 0 && addr.wrapping_sub(self.base) < self.bytes
    }
}

/// One memory-mapped device register, with its access direction.
#[derive(Debug, Clone, Copy)]
pub struct MmioReg {
    /// Byte offset of the (word-sized) register from the device window base.
    pub offset: u32,
    /// Human-readable name used in diagnostics.
    pub name: &'static str,
    /// Whether firmware loads from this register are meaningful.
    pub readable: bool,
    /// Whether firmware stores to this register are meaningful.
    pub writable: bool,
}

/// The machine the firmware will run on, as the analyzer sees it.
///
/// `rosebud-riscv` deliberately knows nothing about the Rosebud framework;
/// the framework side constructs this from its own memory map (see
/// `rosebud_core::machine_spec`), and tests can build reduced ones.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Instruction memory size; code lives at `[image.base, imem_bytes)`.
    pub imem_bytes: u32,
    /// Scratch data memory.
    pub dmem: Region,
    /// Packet memory (loads/stores pay `pmem_wait_cycles` extra).
    pub pmem: Region,
    /// Device window base; `[io_base, io_base + io_window_bytes)` must hit
    /// a defined [`MmioReg`].
    pub io_base: u32,
    /// Size of the strict device window.
    pub io_window_bytes: u32,
    /// The device registers inside the window.
    pub io_regs: Vec<MmioReg>,
    /// Accelerator register window (any offset allowed; reads may block).
    pub accel: Region,
    /// Broadcast-receive window (read-only mailbox memory).
    pub bcast: Region,
    /// Offset (from `io_base`) of the watchdog-pet register, if the machine
    /// has a watchdog. A store here, or a `wfi`, counts as liveness.
    pub watchdog_pet_offset: Option<u32>,
    /// The region `sp`-relative accesses must stay inside, if configured.
    pub stack: Option<Region>,
    /// The pipeline timing model used for WCET bounds.
    pub cost: CostModel,
    /// Extra wait-states on packet-memory accesses.
    pub pmem_wait_cycles: u32,
    /// Worst-case extra wait-states on accelerator reads (blocking reads).
    pub accel_read_wait_cycles: u32,
}

impl MachineSpec {
    /// A bare flat-RAM machine (the [`crate::RamBus`] shape): code at 0,
    /// all of `[0, ram_bytes)` writable data, no devices, no watchdog.
    pub fn bare(imem_bytes: u32, ram_bytes: u32) -> Self {
        MachineSpec {
            imem_bytes,
            dmem: Region {
                base: 0,
                bytes: ram_bytes,
            },
            pmem: Region::NONE,
            io_base: 0,
            io_window_bytes: 0,
            io_regs: Vec::new(),
            accel: Region::NONE,
            bcast: Region::NONE,
            watchdog_pet_offset: None,
            stack: None,
            cost: CostModel::default(),
            pmem_wait_cycles: 0,
            accel_read_wait_cycles: 0,
        }
    }

    /// Worst-case extra wait-states for a load whose address is unknown.
    fn worst_load_wait(&self) -> u32 {
        self.pmem_wait_cycles.max(self.accel_read_wait_cycles)
    }

    /// Worst-case extra wait-states for a store whose address is unknown.
    fn worst_store_wait(&self) -> u32 {
        self.pmem_wait_cycles
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly intentional; never blocks a load.
    Warning,
    /// A definite bug; blocks the load under `LoadPolicy::Deny`.
    Error,
}

/// Which static check produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// MMIO validity (unknown register / wrong direction / out of window).
    Mmio,
    /// A memory access outside every mapped region.
    Region,
    /// Watchdog liveness (a loop that neither pets nor sleeps).
    Watchdog,
    /// Use of a register no path has initialized.
    Uninit,
    /// `sp`-relative access outside the configured stack region.
    Stack,
    /// Reachable code that does not decode or falls off the image.
    Illegal,
    /// Decodable but unreachable code.
    Dead,
    /// Control flow the analysis cannot follow (indirect jumps, `mret`).
    Flow,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Check::Mmio => "mmio",
            Check::Region => "region",
            Check::Watchdog => "watchdog",
            Check::Uninit => "uninit",
            Check::Stack => "stack",
            Check::Illegal => "illegal",
            Check::Dead => "dead-code",
            Check::Flow => "flow",
        };
        f.write_str(s)
    }
}

/// One structured finding: severity, check class, the PC at fault, and a
/// CFG path witness from the entry point to the offending block.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Which check fired.
    pub check: Check,
    /// The program counter at fault.
    pub pc: u32,
    /// Human-readable description.
    pub message: String,
    /// Block-start PCs of one path from an entry point to the fault
    /// (empty for findings with no meaningful path, e.g. dead code).
    pub path: Vec<u32>,
}

/// Worst-case bound for one loop (identified by its header block).
#[derive(Debug, Clone)]
pub struct LoopBound {
    /// Loop-header block start PC.
    pub header: u32,
    /// Nearest label at the header, if the image has one.
    pub label: Option<String>,
    /// Worst-case cycles for one iteration (header back to header).
    pub cycles_per_iter: u64,
}

/// WCET summary for one entry point.
#[derive(Debug, Clone)]
pub struct EntryWcet {
    /// Entry PC.
    pub entry: u32,
    /// Label at the entry, if any.
    pub label: Option<String>,
    /// Longest acyclic path from the entry, in cycles (loop back edges
    /// excluded; multiply by iteration bounds for loop-carried budgets).
    pub acyclic_cycles: u64,
    /// Per-loop iteration bounds, in header-PC order.
    pub loops: Vec<LoopBound>,
}

/// The analyzer's full output: diagnostics plus WCET bounds.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings, sorted by (pc, check) for stable output.
    pub diagnostics: Vec<Diagnostic>,
    /// One WCET summary per entry point.
    pub wcet: Vec<EntryWcet>,
}

impl LintReport {
    /// Whether any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Count of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Count of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Renders the report as stable, diffable text (used for golden lint
    /// snapshots and the `lint` example).
    pub fn render(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "lint report: {name}");
        for w in &self.wcet {
            let label = w
                .label
                .as_deref()
                .map(|l| format!(" <{l}>"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "entry 0x{:08x}{label}: longest acyclic path {} cycles",
                w.entry, w.acyclic_cycles
            );
            for l in &w.loops {
                let label = l
                    .label
                    .as_deref()
                    .map(|l| format!(" <{l}>"))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  loop 0x{:08x}{label}: <= {} cycles/iteration",
                    l.header, l.cycles_per_iter
                );
            }
        }
        for d in &self.diagnostics {
            let sev = match d.severity {
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            let _ = writeln!(out, "{sev}[{}]: pc 0x{:08x}: {}", d.check, d.pc, d.message);
            if !d.path.is_empty() {
                let path = d
                    .path
                    .iter()
                    .map(|p| format!("0x{p:08x}"))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                let _ = writeln!(out, "  path: {path}");
            }
        }
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// Abstract register value: a known constant or anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    Const(u32),
    Any,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Const(a), AbsVal::Const(b)) if a == b => self,
            _ => AbsVal::Any,
        }
    }
}

/// Whether a register has been written on no / some / all paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Init {
    No,
    Maybe,
    Yes,
}

impl Init {
    fn join(self, other: Init) -> Init {
        match (self, other) {
            (Init::Yes, Init::Yes) => Init::Yes,
            (Init::No, Init::No) => Init::No,
            _ => Init::Maybe,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct AbsState {
    regs: [AbsVal; 32],
    init: [Init; 32],
}

impl AbsState {
    /// Boot entry: only `x0` is defined.
    fn boot() -> Self {
        let mut s = AbsState {
            regs: [AbsVal::Any; 32],
            init: [Init::No; 32],
        };
        s.regs[0] = AbsVal::Const(0);
        s.init[0] = Init::Yes;
        s
    }

    /// Trap entry: the interrupted context's registers are all live.
    fn trap() -> Self {
        let mut s = AbsState {
            regs: [AbsVal::Any; 32],
            init: [Init::Yes; 32],
        };
        s.regs[0] = AbsVal::Const(0);
        s
    }

    fn join_from(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let v = self.regs[i].join(other.regs[i]);
            let t = self.init[i].join(other.init[i]);
            if v != self.regs[i] || t != self.init[i] {
                self.regs[i] = v;
                self.init[i] = t;
                changed = true;
            }
        }
        changed
    }

    fn get(&self, r: Reg) -> AbsVal {
        self.regs[r.0 as usize]
    }

    fn set(&mut self, r: Reg, v: AbsVal) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
            self.init[r.0 as usize] = Init::Yes;
        }
    }
}

// ---------------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Block {
    start: u32,
    instrs: Vec<(u32, Instr)>,
    /// Successor block starts with the cycle cost of taking that edge
    /// (terminator cost; body cost is separate).
    succs: Vec<(u32, u32)>,
    /// Whether a reachable decode failure terminates this block.
    illegal_at: Option<u32>,
}

/// What region a constant address falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Where {
    Imem,
    Dmem,
    Pmem,
    Io(u32),
    Accel,
    Bcast,
    Nowhere,
}

/// The static firmware analyzer. Construct with a [`MachineSpec`], then
/// [`Analyzer::check`] any number of images.
#[derive(Debug, Clone)]
pub struct Analyzer {
    spec: MachineSpec,
}

impl Analyzer {
    /// Creates an analyzer for the given machine.
    pub fn new(spec: MachineSpec) -> Self {
        Analyzer { spec }
    }

    /// The spec this analyzer checks against.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Runs every check over `image` and returns the report.
    ///
    /// Known-imprecise cases (documented deliberately — the analyzer is a
    /// linter, not a verifier):
    ///
    /// * Indirect jumps (`jalr`, `mret`) are not followed; they end their
    ///   block with a `flow` warning, so code only reachable through them
    ///   may additionally be reported as dead.
    /// * Memory checks fire only when the address is a compile-time
    ///   constant after abstract interpretation; accesses through
    ///   data-dependent pointers (e.g. descriptor-carried slot addresses)
    ///   are charged worst-case wait-states but not range-checked.
    /// * `.word`/`.byte` data inside the text section is indistinguishable
    ///   from code: unreachable data that happens to decode is reported as
    ///   dead code.
    /// * WCET assumes no interrupt service (asynchronous traps are charged
    ///   to the handler's own entry, not the interrupted path) and charges
    ///   every unknown-address access worst-case wait-states.
    pub fn check(&self, image: &Image) -> LintReport {
        // Predecode the whole image once; the same predecoder warms the
        // simulator's decode cache, so "decodes here" and "decodes there"
        // cannot drift apart.
        let mut dc = DecodeCache::new(self.spec.imem_bytes as usize);
        dc.predecode(image.base(), image.words());

        // Entry points: the boot PC, plus any trap vector installed via a
        // constant `csrw mtvec`. Trap vectors are discovered by the
        // abstract interpretation, so iterate until the entry set is
        // stable (bounded: each pass can only add vectors).
        let mut entries: BTreeMap<u32, bool> = BTreeMap::new(); // pc -> is_trap
        entries.insert(image.base(), false);
        let mut report;
        loop {
            report = self.check_with_entries(image, &mut dc, &entries);
            let mut grew = false;
            for &v in &report.trap_vectors {
                if dc.covers(v) && !entries.contains_key(&v) {
                    entries.insert(v, true);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }

        let mut diagnostics = report.diagnostics;
        diagnostics.sort_by_key(|d| (d.pc, d.path.len(), d.message.clone()));
        LintReport {
            diagnostics,
            wcet: report.wcet,
        }
    }

    fn check_with_entries(
        &self,
        image: &Image,
        dc: &mut DecodeCache,
        entries: &BTreeMap<u32, bool>,
    ) -> RawReport {
        let spec = &self.spec;
        let base = image.base();
        let image_end = base + image.size_bytes();
        let labels = label_map(image);
        let mut diags: Vec<Diagnostic> = Vec::new();

        // ---- Phase A: discover reachable PCs and block leaders. ----
        let mut leaders: BTreeSet<u32> = entries.keys().copied().collect();
        let mut reachable: BTreeSet<u32> = BTreeSet::new();
        let mut queue: VecDeque<u32> = leaders.iter().copied().collect();
        let mut scanned: BTreeSet<u32> = BTreeSet::new();
        while let Some(leader) = queue.pop_front() {
            if !scanned.insert(leader) {
                continue;
            }
            let mut pc = leader;
            loop {
                if pc != leader && reachable.contains(&pc) {
                    // Join point: a second path falls into an already
                    // scanned run, so the target must start its own block.
                    if leaders.insert(pc) {
                        queue.push_back(pc);
                    }
                    break;
                }
                reachable.insert(pc);
                let Some(instr) = decode_at(dc, pc) else {
                    break; // illegal or off the image; diagnosed in phase B
                };
                let mut done = true;
                match instr {
                    Instr::Branch { imm, .. } => {
                        for t in [pc.wrapping_add(imm as u32), pc.wrapping_add(4)] {
                            if target_ok(dc, t) && leaders.insert(t) {
                                queue.push_back(t);
                            }
                        }
                    }
                    Instr::Jal { imm, .. } => {
                        let t = pc.wrapping_add(imm as u32);
                        if target_ok(dc, t) && leaders.insert(t) {
                            queue.push_back(t);
                        }
                    }
                    Instr::Jalr { .. } | Instr::Mret | Instr::Ebreak => {}
                    _ => done = false,
                }
                if done {
                    break;
                }
                pc = pc.wrapping_add(4);
            }
        }

        // ---- Phase B: materialize blocks with per-edge costs. ----
        let mut blocks: BTreeMap<u32, Block> = BTreeMap::new();
        for &leader in &leaders {
            if !reachable.contains(&leader) {
                continue;
            }
            let mut block = Block {
                start: leader,
                instrs: Vec::new(),
                succs: Vec::new(),
                illegal_at: None,
            };
            let mut pc = leader;
            loop {
                let Some(instr) = decode_at(dc, pc) else {
                    block.illegal_at = Some(pc);
                    break;
                };
                block.instrs.push((pc, instr));
                let jump = spec.cost.jump;
                match instr {
                    Instr::Branch { imm, .. } => {
                        let taken = pc.wrapping_add(imm as u32);
                        let fall = pc.wrapping_add(4);
                        if target_ok(dc, taken) {
                            block.succs.push((taken, spec.cost.branch_taken));
                        } else {
                            block.illegal_at = Some(pc);
                        }
                        if target_ok(dc, fall) {
                            block.succs.push((fall, spec.cost.branch_not_taken));
                        }
                        break;
                    }
                    Instr::Jal { imm, .. } => {
                        let t = pc.wrapping_add(imm as u32);
                        if target_ok(dc, t) {
                            block.succs.push((t, jump));
                        } else {
                            block.illegal_at = Some(pc);
                        }
                        break;
                    }
                    Instr::Jalr { .. } | Instr::Mret | Instr::Ebreak => break,
                    _ => {}
                }
                pc = pc.wrapping_add(4);
                if leaders.contains(&pc) {
                    block.succs.push((pc, 0)); // plain fallthrough
                    break;
                }
            }
            blocks.insert(leader, block);
        }

        // ---- Illegal / dead code. ----
        let path_to = |blocks: &BTreeMap<u32, Block>, target: u32| -> Vec<u32> {
            bfs_path(blocks, entries.keys().copied(), target)
        };
        for block in blocks.values() {
            if let Some(pc) = block.illegal_at {
                let message = if dc.covers(pc) {
                    let word = word_at(image, pc);
                    match word {
                        Some(w) => format!("illegal instruction word 0x{w:08x}"),
                        None => "execution runs off the end of the image into zeroed \
                                 instruction memory"
                            .to_string(),
                    }
                } else {
                    "control flow leaves instruction memory".to_string()
                };
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    check: Check::Illegal,
                    pc,
                    message,
                    path: path_to(&blocks, block.start),
                });
            }
            if let Some(&(pc, instr)) = block.instrs.last() {
                if matches!(instr, Instr::Jalr { .. } | Instr::Mret) {
                    let what = if matches!(instr, Instr::Mret) {
                        "mret returns to a runtime-dependent PC"
                    } else {
                        "indirect jump target is runtime-dependent"
                    };
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        check: Check::Flow,
                        pc,
                        message: format!("{what}; the analysis does not follow it"),
                        path: path_to(&blocks, block.start),
                    });
                }
            }
        }
        // Dead code: decodable words nothing reaches. Reported once per
        // maximal run to keep reports readable.
        let mut run_start: Option<u32> = None;
        let mut run_len = 0u32;
        let flush_dead = |diags: &mut Vec<Diagnostic>, start: Option<u32>, len: u32| {
            if let Some(s) = start {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    check: Check::Dead,
                    pc: s,
                    message: format!(
                        "unreachable code ({len} instruction(s) no path executes; \
                         data in the text section also looks like this)"
                    ),
                    path: Vec::new(),
                });
            }
        };
        let mut pc = base;
        while pc < image_end {
            let decodes = decode_at(dc, pc).is_some();
            if decodes && !reachable.contains(&pc) {
                run_start.get_or_insert(pc);
                run_len += 1;
            } else {
                flush_dead(&mut diags, run_start.take(), run_len);
                run_len = 0;
            }
            pc += 4;
        }
        flush_dead(&mut diags, run_start.take(), run_len);

        // ---- Abstract interpretation to a fixpoint. ----
        let mut in_states: BTreeMap<u32, AbsState> = BTreeMap::new();
        let mut work: VecDeque<u32> = VecDeque::new();
        for (&entry, &is_trap) in entries {
            let seed = if is_trap {
                AbsState::trap()
            } else {
                AbsState::boot()
            };
            match in_states.entry(entry) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(seed);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    o.get_mut().join_from(&seed);
                }
            }
            work.push_back(entry);
        }
        while let Some(at) = work.pop_front() {
            let Some(block) = blocks.get(&at) else {
                continue;
            };
            let mut state = in_states.get(&at).cloned().unwrap_or_else(AbsState::boot);
            let mut sink = NoSink;
            self.exec_block(block, &mut state, &mut sink);
            for &(succ, _) in &block.succs {
                match in_states.entry(succ) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(state.clone());
                        work.push_back(succ);
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        if o.get_mut().join_from(&state) {
                            work.push_back(succ);
                        }
                    }
                }
            }
        }

        // ---- Final pass: diagnostics, per-block facts, trap vectors. ----
        let mut facts: BTreeMap<u32, BlockFacts> = BTreeMap::new();
        let mut trap_vectors: Vec<u32> = Vec::new();
        for (&at, block) in &blocks {
            let mut state = in_states.get(&at).cloned().unwrap_or_else(AbsState::boot);
            let mut sink = DiagSink {
                diags: Vec::new(),
                facts: BlockFacts::default(),
            };
            self.exec_block(block, &mut state, &mut sink);
            for mut d in sink.diags {
                d.path = path_to(&blocks, at);
                diags.push(d);
            }
            trap_vectors.extend(&sink.facts.trap_vectors);
            facts.insert(at, sink.facts);
        }

        // ---- Watchdog liveness over the loop nest (SCCs). ----
        if spec.watchdog_pet_offset.is_some() {
            for scc in sccs(&blocks) {
                let cyclic =
                    scc.len() > 1 || blocks[&scc[0]].succs.iter().any(|&(s, _)| s == scc[0]);
                if !cyclic {
                    continue;
                }
                // Remove every block that pets or sleeps; if a cycle
                // survives, that cycle can starve the watchdog forever.
                let residual: BTreeSet<u32> = scc
                    .iter()
                    .copied()
                    .filter(|b| !facts.get(b).map(|f| f.pets).unwrap_or(false))
                    .collect();
                if let Some(cycle) = find_cycle(&blocks, &residual) {
                    let at = cycle[0];
                    let label = labels
                        .get(&at)
                        .map(|l| format!(" <{l}>"))
                        .unwrap_or_default();
                    diags.push(Diagnostic {
                        severity: Severity::Warning,
                        check: Check::Watchdog,
                        pc: at,
                        message: format!(
                            "loop at 0x{at:08x}{label} can spin forever without petting \
                             the watchdog or sleeping (wfi); a supervisor watchdog \
                             policy would evict this firmware"
                        ),
                        path: cycle,
                    });
                }
            }
        }

        // ---- WCET per entry point. ----
        let mut wcet = Vec::new();
        for &entry in entries.keys() {
            if let Some(w) = self.entry_wcet(entry, &blocks, &facts, &labels) {
                wcet.push(w);
            }
        }

        RawReport {
            diagnostics: diags,
            wcet,
            trap_vectors,
        }
    }

    /// Classifies a constant address against the machine map. The order
    /// mirrors the RPU bus dispatch (broadcast window first, then the
    /// accelerator/IO/pmem/dmem bases, falling through to imem).
    fn locate(&self, addr: u32) -> Where {
        let spec = &self.spec;
        if spec.bcast.contains(addr) {
            Where::Bcast
        } else if spec.accel.contains(addr) {
            Where::Accel
        } else if spec.io_window_bytes > 0 && addr.wrapping_sub(spec.io_base) < spec.io_window_bytes
        {
            Where::Io(addr - spec.io_base)
        } else if spec.pmem.contains(addr) {
            Where::Pmem
        } else if spec.dmem.contains(addr) {
            Where::Dmem
        } else if addr < spec.imem_bytes {
            Where::Imem
        } else {
            Where::Nowhere
        }
    }

    /// Interprets one block from `state`, reporting reads of uninitialized
    /// registers, memory-map violations, and per-instruction worst-case
    /// cost into `sink`.
    fn exec_block(&self, block: &Block, state: &mut AbsState, sink: &mut impl Sink) {
        let spec = &self.spec;
        let n = block.instrs.len();
        for (idx, &(pc, instr)) in block.instrs.iter().enumerate() {
            let is_term = idx + 1 == n;
            let read = |r: Reg, state: &AbsState, sink: &mut dyn SinkDyn| {
                match state.init[r.0 as usize] {
                    Init::Yes => {}
                    Init::No => sink.diag(Diagnostic {
                        severity: Severity::Error,
                        check: Check::Uninit,
                        pc,
                        message: format!("reads {} which no path has initialized", reg_name(r)),
                        path: Vec::new(),
                    }),
                    Init::Maybe => sink.diag(Diagnostic {
                        severity: Severity::Warning,
                        check: Check::Uninit,
                        pc,
                        message: format!(
                            "reads {} which some paths leave uninitialized",
                            reg_name(r)
                        ),
                        path: Vec::new(),
                    }),
                }
                state.get(r)
            };
            let mut cost = spec.cost.base;
            match instr {
                Instr::Lui { rd, imm } => {
                    state.set(rd, AbsVal::Const((imm << 12) as u32));
                }
                Instr::Auipc { rd, imm } => {
                    state.set(rd, AbsVal::Const(pc.wrapping_add((imm << 12) as u32)));
                }
                Instr::Jal { rd, .. } => {
                    state.set(rd, AbsVal::Const(pc.wrapping_add(4)));
                    cost = 0; // charged on the edge
                }
                Instr::Jalr { rd, rs1, .. } => {
                    read(rs1, state, sink);
                    state.set(rd, AbsVal::Const(pc.wrapping_add(4)));
                    cost = spec.cost.jump;
                }
                Instr::Branch { rs1, rs2, .. } => {
                    read(rs1, state, sink);
                    read(rs2, state, sink);
                    cost = 0; // charged on the edge
                }
                Instr::Load { op, rd, rs1, imm } => {
                    let addr = read(rs1, state, sink);
                    let wait = self.check_access(
                        pc,
                        rs1,
                        addr,
                        imm,
                        AccessDir::Load,
                        access_bytes_load(op),
                        sink,
                    );
                    state.set(rd, AbsVal::Any);
                    cost = spec.cost.load + wait;
                }
                Instr::Store { op, rs1, rs2, imm } => {
                    let addr = read(rs1, state, sink);
                    read(rs2, state, sink);
                    let wait = self.check_access(
                        pc,
                        rs1,
                        addr,
                        imm,
                        AccessDir::Store,
                        access_bytes_store(op),
                        sink,
                    );
                    if let (AbsVal::Const(a), Some(off)) = (addr, spec.watchdog_pet_offset) {
                        let a = a.wrapping_add(imm as u32);
                        if self.locate(a) == Where::Io(off) {
                            sink.pets();
                        }
                    }
                    cost = spec.cost.store + wait;
                }
                Instr::OpImm { op, rd, rs1, imm } => {
                    let a = read(rs1, state, sink);
                    let v = match a {
                        AbsVal::Const(a) => AbsVal::Const(alu(op, a, imm as u32)),
                        AbsVal::Any => AbsVal::Any,
                    };
                    state.set(rd, v);
                }
                Instr::Op { op, rd, rs1, rs2 } => {
                    let a = read(rs1, state, sink);
                    let b = read(rs2, state, sink);
                    let v = match (a, b) {
                        (AbsVal::Const(a), AbsVal::Const(b)) => AbsVal::Const(alu(op, a, b)),
                        _ => AbsVal::Any,
                    };
                    state.set(rd, v);
                }
                Instr::MulDiv { op, rd, rs1, rs2 } => {
                    read(rs1, state, sink);
                    read(rs2, state, sink);
                    // Constant folding of M-ops buys nothing for firmware
                    // linting; stay conservative.
                    state.set(rd, AbsVal::Any);
                    cost = match op {
                        MulOp::Mul | MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => spec.cost.mul,
                        _ => spec.cost.div,
                    };
                }
                Instr::Csr { rd, csr, src, .. } => {
                    let written = match src {
                        crate::isa::CsrSrc::Reg(rs) => read(rs, state, sink),
                        crate::isa::CsrSrc::Imm(v) => AbsVal::Const(u32::from(v)),
                    };
                    // `csrw mtvec, rX` with a constant installs a trap
                    // handler: that address becomes an entry point.
                    if csr == crate::cpu::csr::MTVEC {
                        if let AbsVal::Const(v) = written {
                            sink.trap_vector(v & !3);
                        }
                    }
                    state.set(rd, AbsVal::Any);
                }
                Instr::Wfi => {
                    sink.pets();
                }
                Instr::Fence | Instr::Ecall | Instr::Ebreak => {}
                Instr::Mret => {
                    cost = spec.cost.jump;
                }
            }
            if !(is_term && matches!(instr, Instr::Branch { .. } | Instr::Jal { .. })) {
                sink.cost(u64::from(cost));
            } else {
                // Terminating branch/jal cost lives on the CFG edge.
                sink.cost(u64::from(cost.saturating_sub(spec.cost.base)));
            }
        }
    }

    /// Checks one memory access; returns its worst-case extra wait-states.
    #[allow(clippy::too_many_arguments)]
    fn check_access(
        &self,
        pc: u32,
        rs1: Reg,
        base: AbsVal,
        imm: i32,
        dir: AccessDir,
        bytes: u32,
        sink: &mut impl Sink,
    ) -> u32 {
        let spec = &self.spec;
        let AbsVal::Const(base) = base else {
            // Unknown pointer: charge the worst wait the bus can impose.
            return match dir {
                AccessDir::Load => spec.worst_load_wait(),
                AccessDir::Store => spec.worst_store_wait(),
            };
        };
        let addr = base.wrapping_add(imm as u32);
        let verb = match dir {
            AccessDir::Load => "load from",
            AccessDir::Store => "store to",
        };
        // Stack discipline: sp-relative constant accesses must stay inside
        // the configured stack region.
        if rs1 == Reg::SP {
            if let Some(stack) = spec.stack {
                if !stack.contains(addr) || !stack.contains(addr + bytes - 1) {
                    sink.diag(Diagnostic {
                        severity: Severity::Error,
                        check: Check::Stack,
                        pc,
                        message: format!(
                            "sp-relative {verb} 0x{addr:08x} is outside the stack \
                             region [0x{:08x}, 0x{:08x})",
                            stack.base,
                            stack.base + stack.bytes
                        ),
                        path: Vec::new(),
                    });
                    return 0;
                }
            }
        }
        match self.locate(addr) {
            Where::Dmem => 0,
            Where::Pmem => spec.pmem_wait_cycles,
            Where::Bcast => {
                if dir == AccessDir::Store {
                    sink.diag(Diagnostic {
                        severity: Severity::Error,
                        check: Check::Mmio,
                        pc,
                        message: format!("store to 0x{addr:08x} in the read-only broadcast window"),
                        path: Vec::new(),
                    });
                }
                0
            }
            Where::Accel => match dir {
                AccessDir::Load => spec.accel_read_wait_cycles,
                AccessDir::Store => 0,
            },
            Where::Io(off) => {
                let word_off = off & !3;
                match spec.io_regs.iter().find(|r| r.offset == word_off) {
                    None => {
                        sink.diag(Diagnostic {
                            severity: Severity::Error,
                            check: Check::Mmio,
                            pc,
                            message: format!(
                                "{verb} device offset 0x{off:02x}: no register is \
                                 mapped there (reads return 0, writes vanish)"
                            ),
                            path: Vec::new(),
                        });
                    }
                    Some(reg) => {
                        let ok = match dir {
                            AccessDir::Load => reg.readable,
                            AccessDir::Store => reg.writable,
                        };
                        if !ok {
                            let dirname = match dir {
                                AccessDir::Load => "write-only",
                                AccessDir::Store => "read-only",
                            };
                            sink.diag(Diagnostic {
                                severity: Severity::Error,
                                check: Check::Mmio,
                                pc,
                                message: format!(
                                    "{verb} {} (offset 0x{off:02x}), but that \
                                     register is {dirname}",
                                    reg.name
                                ),
                                path: Vec::new(),
                            });
                        }
                    }
                }
                0
            }
            Where::Imem => {
                if dir == AccessDir::Store {
                    sink.diag(Diagnostic {
                        severity: Severity::Warning,
                        check: Check::Region,
                        pc,
                        message: format!(
                            "{verb} 0x{addr:08x} rewrites instruction memory \
                             (self-modifying code invalidates the decode cache)"
                        ),
                        path: Vec::new(),
                    });
                }
                0
            }
            Where::Nowhere => {
                sink.diag(Diagnostic {
                    severity: Severity::Error,
                    check: Check::Region,
                    pc,
                    message: format!(
                        "{verb} 0x{addr:08x} hits no mapped region (bus fault at \
                         runtime)"
                    ),
                    path: Vec::new(),
                });
                0
            }
        }
    }

    /// Longest acyclic path + per-loop iteration bounds from `entry`.
    fn entry_wcet(
        &self,
        entry: u32,
        blocks: &BTreeMap<u32, Block>,
        facts: &BTreeMap<u32, BlockFacts>,
        labels: &BTreeMap<u32, String>,
    ) -> Option<EntryWcet> {
        blocks.get(&entry)?;
        // DFS from the entry classifying back edges (u -> v with v on the
        // DFS stack). Firmware CFGs here are reducible; anything stranger
        // still terminates because back edges are removed below.
        let mut on_stack: BTreeSet<u32> = BTreeSet::new();
        let mut visited: BTreeSet<u32> = BTreeSet::new();
        let mut back_edges: Vec<(u32, u32)> = Vec::new();
        // Iterative DFS with explicit post-visit events.
        let mut stack: Vec<(u32, usize)> = vec![(entry, 0)];
        visited.insert(entry);
        on_stack.insert(entry);
        while let Some(&mut (at, ref mut next)) = stack.last_mut() {
            let succs = &blocks[&at].succs;
            if *next < succs.len() {
                let (s, _) = succs[*next];
                *next += 1;
                if !blocks.contains_key(&s) {
                    continue;
                }
                if on_stack.contains(&s) {
                    back_edges.push((at, s));
                } else if visited.insert(s) {
                    on_stack.insert(s);
                    stack.push((s, 0));
                }
            } else {
                on_stack.remove(&at);
                stack.pop();
            }
        }

        let body = |b: u32| facts.get(&b).map(|f| f.body_cycles).unwrap_or(0);
        let is_back = |u: u32, v: u32| back_edges.iter().any(|&(a, b)| (a, b) == (u, v));

        // Longest path over the forward (acyclic) subgraph.
        let order = topo_order(blocks, &visited, &is_back);
        let mut dist: BTreeMap<u32, u64> = BTreeMap::new();
        dist.insert(entry, 0);
        let mut best = 0u64;
        for &at in &order {
            let Some(&d) = dist.get(&at) else { continue };
            let here = d + body(at);
            let term = blocks[&at]
                .succs
                .iter()
                .map(|&(_, c)| u64::from(c))
                .max()
                .unwrap_or(0);
            best = best.max(here + term);
            for &(s, c) in &blocks[&at].succs {
                if is_back(at, s) || !blocks.contains_key(&s) {
                    continue;
                }
                let cand = here + u64::from(c);
                let e = dist.entry(s).or_insert(cand);
                *e = (*e).max(cand);
            }
        }

        // Per-loop bound: for each back edge u -> h, the worst path from h
        // to u inside the natural loop, plus the back edge itself.
        let mut loop_bounds: BTreeMap<u32, u64> = BTreeMap::new();
        for &(u, h) in &back_edges {
            let members = natural_loop(blocks, u, h);
            let sub_order: Vec<u32> = order
                .iter()
                .copied()
                .filter(|b| members.contains(b))
                .collect();
            let mut d: BTreeMap<u32, u64> = BTreeMap::new();
            d.insert(h, 0);
            for &at in &sub_order {
                let Some(&da) = d.get(&at) else { continue };
                for &(s, c) in &blocks[&at].succs {
                    if is_back(at, s) || !members.contains(&s) {
                        continue;
                    }
                    let cand = da + body(at) + u64::from(c);
                    let e = d.entry(s).or_insert(cand);
                    *e = (*e).max(cand);
                }
            }
            let edge_cost = blocks[&u]
                .succs
                .iter()
                .find(|&&(s, _)| s == h)
                .map(|&(_, c)| u64::from(c))
                .unwrap_or(0);
            if let Some(&du) = d.get(&u) {
                let iter = du + body(u) + edge_cost;
                let e = loop_bounds.entry(h).or_insert(iter);
                *e = (*e).max(iter);
            }
        }

        Some(EntryWcet {
            entry,
            label: labels.get(&entry).cloned(),
            acyclic_cycles: best,
            loops: loop_bounds
                .into_iter()
                .map(|(header, cycles_per_iter)| LoopBound {
                    header,
                    label: labels.get(&header).cloned(),
                    cycles_per_iter,
                })
                .collect(),
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AccessDir {
    Load,
    Store,
}

fn access_bytes_load(op: LoadOp) -> u32 {
    match op {
        LoadOp::Lb | LoadOp::Lbu => 1,
        LoadOp::Lh | LoadOp::Lhu => 2,
        LoadOp::Lw => 4,
    }
}

fn access_bytes_store(op: StoreOp) -> u32 {
    match op {
        StoreOp::Sb => 1,
        StoreOp::Sh => 2,
        StoreOp::Sw => 4,
    }
}

/// Facts the final interpretation pass records per block.
#[derive(Debug, Clone, Default)]
struct BlockFacts {
    /// Worst-case cycles for the block body (terminator edges excluded).
    body_cycles: u64,
    /// Whether the block pets the watchdog or sleeps.
    pets: bool,
    /// Constant trap vectors installed in this block.
    trap_vectors: Vec<u32>,
}

/// Receives findings from [`Analyzer::exec_block`]. The fixpoint pass uses
/// [`NoSink`]; the reporting pass uses [`DiagSink`].
trait Sink: SinkDyn {
    fn cost(&mut self, cycles: u64);
    fn pets(&mut self);
    fn trap_vector(&mut self, pc: u32);
}

/// Object-safe subset for closures that only emit diagnostics.
trait SinkDyn {
    fn diag(&mut self, d: Diagnostic);
}

struct NoSink;
impl SinkDyn for NoSink {
    fn diag(&mut self, _d: Diagnostic) {}
}
impl Sink for NoSink {
    fn cost(&mut self, _cycles: u64) {}
    fn pets(&mut self) {}
    fn trap_vector(&mut self, _pc: u32) {}
}

struct DiagSink {
    diags: Vec<Diagnostic>,
    facts: BlockFacts,
}
impl SinkDyn for DiagSink {
    fn diag(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }
}
impl Sink for DiagSink {
    fn cost(&mut self, cycles: u64) {
        self.facts.body_cycles += cycles;
    }
    fn pets(&mut self) {
        self.facts.pets = true;
    }
    fn trap_vector(&mut self, pc: u32) {
        self.facts.trap_vectors.push(pc);
    }
}

struct RawReport {
    diagnostics: Vec<Diagnostic>,
    wcet: Vec<EntryWcet>,
    trap_vectors: Vec<u32>,
}

fn decode_at(dc: &mut DecodeCache, pc: u32) -> Option<Instr> {
    if dc.covers(pc) {
        dc.get(pc)
    } else {
        None
    }
}

fn target_ok(dc: &DecodeCache, t: u32) -> bool {
    t.is_multiple_of(4) && dc.covers(t)
}

fn word_at(image: &Image, pc: u32) -> Option<u32> {
    let off = pc.checked_sub(image.base())? / 4;
    image.words().get(off as usize).copied()
}

/// Lowest-named label per address, for stable human-readable reports.
fn label_map(image: &Image) -> BTreeMap<u32, String> {
    let mut map: BTreeMap<u32, String> = BTreeMap::new();
    for (name, addr) in image.symbols() {
        match map.entry(addr) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(name.to_string());
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                if name < o.get().as_str() {
                    o.insert(name.to_string());
                }
            }
        }
    }
    map
}

fn reg_name(r: Reg) -> String {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    NAMES
        .get(r.0 as usize)
        .map(|n| format!("{n} (x{})", r.0))
        .unwrap_or_else(|| format!("x{}", r.0))
}

/// Shortest path (by block count) from any entry to `target`, as a list of
/// block-start PCs. Used as the diagnostic path witness.
fn bfs_path(
    blocks: &BTreeMap<u32, Block>,
    entries: impl Iterator<Item = u32>,
    target: u32,
) -> Vec<u32> {
    let mut pred: BTreeMap<u32, u32> = BTreeMap::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for e in entries {
        if seen.insert(e) {
            queue.push_back(e);
        }
    }
    let roots = seen.clone();
    while let Some(at) = queue.pop_front() {
        if at == target {
            let mut path = vec![at];
            let mut cur = at;
            while let Some(&p) = pred.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return path;
        }
        let Some(block) = blocks.get(&at) else {
            continue;
        };
        for &(s, _) in &block.succs {
            if seen.insert(s) && !roots.contains(&s) {
                pred.insert(s, at);
                queue.push_back(s);
            } else if !pred.contains_key(&s) && seen.insert(s) {
                queue.push_back(s);
            }
        }
    }
    Vec::new()
}

/// Strongly connected components (iterative Tarjan), in discovery order.
fn sccs(blocks: &BTreeMap<u32, Block>) -> Vec<Vec<u32>> {
    #[derive(Default, Clone)]
    struct Node {
        index: Option<u32>,
        lowlink: u32,
        on_stack: bool,
    }
    let mut nodes: BTreeMap<u32, Node> = blocks.keys().map(|&k| (k, Node::default())).collect();
    let mut index = 0u32;
    let mut stack: Vec<u32> = Vec::new();
    let mut out: Vec<Vec<u32>> = Vec::new();
    for &root in blocks.keys() {
        if nodes[&root].index.is_some() {
            continue;
        }
        // (block, next successor slot) call stack.
        let mut call: Vec<(u32, usize)> = vec![(root, 0)];
        while let Some(&mut (at, ref mut next)) = call.last_mut() {
            if *next == 0 {
                let n = nodes.get_mut(&at).unwrap();
                n.index = Some(index);
                n.lowlink = index;
                n.on_stack = true;
                index += 1;
                stack.push(at);
            }
            let succs = &blocks[&at].succs;
            if *next < succs.len() {
                let (s, _) = succs[*next];
                *next += 1;
                if !blocks.contains_key(&s) {
                    continue;
                }
                match nodes[&s].index {
                    None => call.push((s, 0)),
                    Some(si) => {
                        if nodes[&s].on_stack {
                            let low = nodes[&at].lowlink.min(si);
                            nodes.get_mut(&at).unwrap().lowlink = low;
                        }
                    }
                }
            } else {
                let at_low = nodes[&at].lowlink;
                if nodes[&at].index == Some(at_low) {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        nodes.get_mut(&w).unwrap().on_stack = false;
                        comp.push(w);
                        if w == at {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    out.push(comp);
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    let low = nodes[&parent].lowlink.min(at_low);
                    nodes.get_mut(&parent).unwrap().lowlink = low;
                }
            }
        }
    }
    out
}

/// Finds any cycle whose nodes all lie in `allowed`, returned as the cycle's
/// block PCs starting at its smallest member. `None` if the subgraph is
/// acyclic — i.e. every loop path contains a petting block.
fn find_cycle(blocks: &BTreeMap<u32, Block>, allowed: &BTreeSet<u32>) -> Option<Vec<u32>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        New,
        Active,
        Done,
    }
    let mut marks: BTreeMap<u32, Mark> = allowed.iter().map(|&b| (b, Mark::New)).collect();
    for &root in allowed {
        if marks[&root] != Mark::New {
            continue;
        }
        let mut path: Vec<(u32, usize)> = vec![(root, 0)];
        marks.insert(root, Mark::Active);
        while let Some(&mut (at, ref mut next)) = path.last_mut() {
            let succs = &blocks[&at].succs;
            if *next < succs.len() {
                let (s, _) = succs[*next];
                *next += 1;
                if !allowed.contains(&s) {
                    continue;
                }
                match marks[&s] {
                    Mark::Active => {
                        // Found: unwind the explicit stack back to `s`.
                        let mut cycle: Vec<u32> = path.iter().map(|&(b, _)| b).collect();
                        let start = cycle.iter().position(|&b| b == s).unwrap();
                        cycle.drain(..start);
                        let min = cycle
                            .iter()
                            .enumerate()
                            .min_by_key(|&(_, b)| b)
                            .map(|(i, _)| i)
                            .unwrap();
                        cycle.rotate_left(min);
                        return Some(cycle);
                    }
                    Mark::New => {
                        marks.insert(s, Mark::Active);
                        path.push((s, 0));
                    }
                    Mark::Done => {}
                }
            } else {
                marks.insert(at, Mark::Done);
                path.pop();
            }
        }
    }
    None
}

/// Topological order of `visited` blocks over forward edges.
fn topo_order(
    blocks: &BTreeMap<u32, Block>,
    visited: &BTreeSet<u32>,
    is_back: &dyn Fn(u32, u32) -> bool,
) -> Vec<u32> {
    let mut indeg: BTreeMap<u32, usize> = visited.iter().map(|&b| (b, 0)).collect();
    for &b in visited {
        for &(s, _) in &blocks[&b].succs {
            if visited.contains(&s) && !is_back(b, s) {
                *indeg.get_mut(&s).unwrap() += 1;
            }
        }
    }
    let mut queue: VecDeque<u32> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&b, _)| b)
        .collect();
    let mut order = Vec::with_capacity(visited.len());
    while let Some(at) = queue.pop_front() {
        order.push(at);
        for &(s, _) in &blocks[&at].succs {
            if visited.contains(&s) && !is_back(at, s) {
                let d = indeg.get_mut(&s).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push_back(s);
                }
            }
        }
    }
    order
}

/// Natural loop of back edge `u -> h`: `h` plus everything that reaches `u`
/// without passing through `h`.
fn natural_loop(blocks: &BTreeMap<u32, Block>, u: u32, h: u32) -> BTreeSet<u32> {
    let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (&b, block) in blocks {
        for &(s, _) in &block.succs {
            preds.entry(s).or_default().push(b);
        }
    }
    let mut members: BTreeSet<u32> = BTreeSet::new();
    members.insert(h);
    members.insert(u);
    let mut queue: VecDeque<u32> = VecDeque::new();
    if u != h {
        queue.push_back(u);
    }
    while let Some(at) = queue.pop_front() {
        for &p in preds.get(&at).map(|v| v.as_slice()).unwrap_or(&[]) {
            if members.insert(p) {
                queue.push_back(p);
            }
        }
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::{Cpu, RamBus, StepResult};

    fn bare() -> Analyzer {
        Analyzer::new(MachineSpec::bare(4096, 65536))
    }

    /// A miniature RPU-shaped spec for MMIO/watchdog/stack tests.
    fn devices() -> MachineSpec {
        MachineSpec {
            imem_bytes: 4096,
            dmem: Region {
                base: 0x0080_0000,
                bytes: 0x8000,
            },
            pmem: Region {
                base: 0x0100_0000,
                bytes: 0x10_0000,
            },
            io_base: 0x0200_0000,
            io_window_bytes: 0x100,
            io_regs: vec![
                MmioReg {
                    offset: 0x00,
                    name: "RECV_READY",
                    readable: true,
                    writable: false,
                },
                MmioReg {
                    offset: 0x0c,
                    name: "RECV_RELEASE",
                    readable: false,
                    writable: true,
                },
                MmioReg {
                    offset: 0x40,
                    name: "TIMER_CMP",
                    readable: false,
                    writable: true,
                },
            ],
            accel: Region {
                base: 0x0300_0000,
                bytes: 0x100,
            },
            bcast: Region {
                base: 0x0400_0000,
                bytes: 4096,
            },
            watchdog_pet_offset: Some(0x40),
            stack: Some(Region {
                base: 0x0080_7000,
                bytes: 0x1000,
            }),
            cost: CostModel::default(),
            pmem_wait_cycles: 1,
            accel_read_wait_cycles: 2,
        }
    }

    fn check(spec: MachineSpec, asm: &str) -> LintReport {
        Analyzer::new(spec).check(&assemble(asm).unwrap())
    }

    fn has(report: &LintReport, check: Check, sev: Severity) -> bool {
        report
            .diagnostics
            .iter()
            .any(|d| d.check == check && d.severity == sev)
    }

    #[test]
    fn clean_program_has_no_findings() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                li a0, 3
                li a1, 4
                add a2, a0, a1
                ebreak
            ",
        );
        assert!(r.diagnostics.is_empty(), "{:#?}", r.diagnostics);
        assert_eq!(r.wcet.len(), 1);
        // li+li+add+ebreak = 1+1+1+1 under the default cost model.
        assert_eq!(r.wcet[0].acyclic_cycles, 4);
    }

    #[test]
    fn mmio_unknown_register_is_error() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                sw zero, 0x64(t0)
                ebreak
            ",
        );
        assert!(
            has(&r, Check::Mmio, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
    }

    #[test]
    fn mmio_direction_is_checked() {
        // RECV_READY is read-only; storing to it is an error.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                sw zero, 0x00(t0)
                ebreak
            ",
        );
        assert!(has(&r, Check::Mmio, Severity::Error));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.check == Check::Mmio)
            .unwrap();
        assert!(d.message.contains("RECV_READY"), "{}", d.message);
        assert!(d.message.contains("read-only"), "{}", d.message);
        // Reading a write-only register is the mirror error.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                lw a0, 0x0c(t0)
                ebreak
            ",
        );
        assert!(has(&r, Check::Mmio, Severity::Error));
        // The legal direction passes.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                lw a0, 0x00(t0)
                sw zero, 0x0c(t0)
                ebreak
            ",
        );
        assert!(!r.has_errors(), "{:#?}", r.diagnostics);
    }

    #[test]
    fn watchdog_starving_loop_is_flagged() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
            poll:
                lw a0, 0x00(t0)
                beqz a0, poll
                ebreak
            ",
        );
        assert!(has(&r, Check::Watchdog, Severity::Warning));
        // Petting inside the loop clears it.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                li t1, 1000
            poll:
                sw t1, 0x40(t0)
                lw a0, 0x00(t0)
                beqz a0, poll
                ebreak
            ",
        );
        assert!(!has(&r, Check::Watchdog, Severity::Warning));
        // Sleeping (wfi) also counts as liveness.
        let r = check(
            devices(),
            "
            park:
                wfi
                j park
            ",
        );
        assert!(!has(&r, Check::Watchdog, Severity::Warning));
    }

    #[test]
    fn watchdog_flags_inner_loop_that_never_pets() {
        // The outer loop pets, but the inner drain loop can spin forever.
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                li t1, 1000
            outer:
                sw t1, 0x40(t0)
            inner:
                lw a0, 0x00(t0)
                bnez a0, inner
                j outer
            ",
        );
        assert!(has(&r, Check::Watchdog, Severity::Warning));
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.check == Check::Watchdog)
            .unwrap();
        assert_eq!(d.pc, 16, "should point at the inner loop header");
    }

    #[test]
    fn uninitialized_read_is_error() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                add a0, a1, a2
                ebreak
            ",
        );
        assert!(has(&r, Check::Uninit, Severity::Error));
        // Initialized on only one path: a warning, not an error.
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                li a0, 1
                beqz a0, skip
                li a1, 2
            skip:
                add a2, a1, a0
                ebreak
            ",
        );
        assert!(has(&r, Check::Uninit, Severity::Warning));
        assert!(!has(&r, Check::Uninit, Severity::Error));
    }

    #[test]
    fn stack_bounds_are_checked() {
        // sp points at the stack top; pushing stays inside, an address
        // above the top (positive offset) is outside the region.
        let r = check(
            devices(),
            "
                li sp, 0x00808000
                addi sp, sp, -16
                sw a0, 0(sp)
                sw a0, 12(sp)
                ebreak
            ",
        );
        assert!(
            !r.diagnostics.iter().any(|d| d.check == Check::Stack),
            "{:#?}",
            r.diagnostics
        );
        let r = check(
            devices(),
            "
                li sp, 0x00808000
                sw a0, 0(sp)
                ebreak
            ",
        );
        assert!(has(&r, Check::Stack, Severity::Error));
        // Underflowing the 4 KiB region is also caught.
        let r = check(
            devices(),
            "
                li sp, 0x00807000
                sw a0, -4(sp)
                ebreak
            ",
        );
        assert!(has(&r, Check::Stack, Severity::Error));
    }

    #[test]
    fn illegal_and_dead_code_are_reported() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                j good
                .word 0x00000013    # decodes (nop) but nothing reaches it
            good:
                .word 0xffffffff    # reachable and does not decode
            ",
        );
        assert!(
            has(&r, Check::Illegal, Severity::Error),
            "{:#?}",
            r.diagnostics
        );
        assert!(has(&r, Check::Dead, Severity::Warning));
        // Falling off the end of the image is also illegal.
        let r = check(MachineSpec::bare(4096, 65536), "nop");
        assert!(has(&r, Check::Illegal, Severity::Error));
    }

    #[test]
    fn region_violation_is_error() {
        let r = check(
            devices(),
            "
                li t0, 0x00700000   # below dmem, above imem: unmapped
                lw a0, 0(t0)
                ebreak
            ",
        );
        assert!(has(&r, Check::Region, Severity::Error));
    }

    #[test]
    fn diagnostics_carry_a_path_witness() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
                li a0, 1
                beqz a0, other
                sw zero, 0x00(t0)   # read-only register
                ebreak
            other:
                ebreak
            ",
        );
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.check == Check::Mmio)
            .expect("mmio error");
        assert!(!d.path.is_empty());
        assert_eq!(d.path[0], 0, "witness starts at the entry block");
    }

    #[test]
    fn trap_vector_becomes_an_entry_point() {
        let r = check(
            MachineSpec::bare(4096, 65536),
            "
                la t0, handler
                csrw mtvec, t0
            idle:
                j idle
            handler:
                mret
            ",
        );
        // The handler is not dead, and it gets its own WCET entry.
        assert!(
            !has(&r, Check::Dead, Severity::Warning),
            "{:#?}",
            r.diagnostics
        );
        assert_eq!(r.wcet.len(), 2);
    }

    #[test]
    fn wcet_bound_covers_simulated_straight_line() {
        let src = "
            li a0, 100
            li a1, 7
            add a2, a0, a1
            sw a2, 0x100(zero)
            lw a3, 0x100(zero)
            mul a4, a3, a1
            ebreak
        ";
        let image = assemble(src).unwrap();
        let report = bare().check(&image);
        assert!(!report.has_errors());
        let mut bus = RamBus::new(65536);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        while !matches!(cpu.step(&mut bus), StepResult::Break) {}
        assert!(
            report.wcet[0].acyclic_cycles >= cpu.cycles(),
            "bound {} < measured {}",
            report.wcet[0].acyclic_cycles,
            cpu.cycles()
        );
    }

    #[test]
    fn wcet_loop_bound_covers_simulated_loop() {
        let iters = 37u64;
        let src = format!(
            "
                li a0, 0
                li a1, {iters}
            loop:
                add a0, a0, a1
                addi a1, a1, -1
                bnez a1, loop
                ebreak
            "
        );
        let image = assemble(&src).unwrap();
        let report = bare().check(&image);
        let w = &report.wcet[0];
        assert_eq!(w.loops.len(), 1);
        let bound = w.acyclic_cycles + (iters - 1) * w.loops[0].cycles_per_iter;
        let mut bus = RamBus::new(65536);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        while !matches!(cpu.step(&mut bus), StepResult::Break) {}
        assert!(
            bound >= cpu.cycles(),
            "bound {bound} < measured {}",
            cpu.cycles()
        );
    }

    #[test]
    fn report_renders_stably() {
        let r = check(
            devices(),
            "
                li t0, 0x02000000
            poll:
                lw a0, 0x00(t0)
                beqz a0, poll
                ebreak
            ",
        );
        let text = r.render("spin");
        assert!(text.starts_with("lint report: spin\n"), "{text}");
        assert!(text.contains("loop 0x00000008 <poll>"), "{text}");
        assert!(text.contains("warning[watchdog]"), "{text}");
        assert!(text.trim_end().ends_with("warning(s)"), "{text}");
    }
}
