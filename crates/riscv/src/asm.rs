//! A two-pass RV32IM assembler.
//!
//! The paper's firmware is C compiled with riscv-gcc; in this reproduction
//! the hand-tuned firmware (forwarder, firewall) is written directly in
//! assembly — the paper itself notes that at these packet rates firmware is
//! hand-counted cycles anyway ("the minimum time for our packet forwarder to
//! read a descriptor and send it back is 16 cycles", §6.1).
//!
//! Supports the full RV32IM instruction set, the common pseudo-instructions
//! (`li`, `la`, `mv`, `j`, `call`, `ret`, `beqz`, `csrw`, …), labels,
//! `#`/`//` comments, and the directives `.word`, `.half`, `.byte`,
//! `.ascii`, `.asciz`, `.space`, `.align`, `.equ`, and `.org`. Sub-word
//! data directives pad their extent to a word boundary so code that follows
//! stays aligned.

use std::collections::BTreeMap;
use std::fmt;

use crate::isa::{encode, AluOp, BranchOp, CsrOp, CsrSrc, Instr, LoadOp, MulOp, Reg, StoreOp};

/// An assembled program image.
#[derive(Debug, Clone)]
pub struct Image {
    base: u32,
    words: Vec<u32>,
    symbols: BTreeMap<String, u32>,
}

impl Image {
    /// The load address of the first word.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The assembled 32-bit words, in memory order.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The image as little-endian bytes.
    pub fn bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Looks up a label's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Iterates over every symbol (labels and `.equ` constants) as
    /// `(name, value)` pairs, in unspecified order.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u32)> {
        self.symbols.iter().map(|(n, v)| (n.as_str(), *v))
    }
}

/// A 1-based source position (line and byte column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the statement, label, or directive at fault.
    pub col: usize,
}

/// An assembly error with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source.
    pub line: usize,
    /// 1-based byte column in the source line.
    pub col: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles `source` at base address 0.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any syntax error,
/// unknown mnemonic, undefined symbol, or out-of-range immediate.
///
/// # Examples
///
/// ```
/// let image = rosebud_riscv::assemble("
///     li a0, 1
///     ebreak
/// ").unwrap();
/// assert_eq!(image.words().len(), 2);
/// ```
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    assemble_at(source, 0)
}

/// Assembles `source` with the first word at `base`.
///
/// # Errors
///
/// See [`assemble`].
pub fn assemble_at(source: &str, base: u32) -> Result<Image, AsmError> {
    let statements = parse(source)?;

    // Pass 1: lay out addresses and collect symbols.
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut pc = base;
    let mut placed: Vec<(u32, &Statement)> = Vec::new();
    for stmt in &statements {
        for label in &stmt.labels {
            if symbols.insert(label.name.clone(), pc).is_some() {
                return Err(err(label.pos, format!("duplicate label `{}`", label.name)));
            }
        }
        match &stmt.body {
            Body::Equ(name, expr) => {
                // `.equ` values may only reference already-defined symbols.
                let value = eval(expr, &symbols, stmt.pos)?;
                if symbols.insert(name.clone(), value as u32).is_some() {
                    // A silent last-write-wins here once let two firmware
                    // constants shadow each other; reject it exactly like a
                    // duplicate label.
                    return Err(err(
                        stmt.pos,
                        format!("`.equ {name}` redefines an existing symbol"),
                    ));
                }
            }
            Body::Org(expr) => {
                let target = eval(expr, &symbols, stmt.pos)? as u32;
                if target < pc {
                    return Err(err(stmt.pos, format!(".org 0x{target:x} moves backwards")));
                }
                pc = target;
            }
            Body::None => {}
            body => {
                placed.push((pc, stmt));
                pc += body_size(body, stmt.pos)?;
            }
        }
    }

    // Pass 2: emit words.
    let mut words: Vec<u32> = Vec::new();
    let emit_at = |words: &mut Vec<u32>, addr: u32, word: u32| {
        let index = ((addr - base) / 4) as usize;
        if words.len() <= index {
            words.resize(index + 1, 0);
        }
        words[index] = word;
    };
    fn emit_bytes(words: &mut Vec<u32>, base: u32, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            let off = (addr - base) as usize + i;
            let index = off / 4;
            if words.len() <= index {
                words.resize(index + 1, 0);
            }
            let mut lanes = words[index].to_le_bytes();
            lanes[off % 4] = b;
            words[index] = u32::from_le_bytes(lanes);
        }
    }
    for (addr, stmt) in placed {
        match &stmt.body {
            Body::Instr(mnemonic, operands) => {
                let instrs = lower(mnemonic, operands, addr, &symbols, stmt.pos)?;
                for (i, instr) in instrs.iter().enumerate() {
                    let word = encode(*instr).map_err(|e| err(stmt.pos, e.to_string()))?;
                    emit_at(&mut words, addr + (i as u32) * 4, word);
                }
            }
            Body::Word(exprs) => {
                for (i, expr) in exprs.iter().enumerate() {
                    let value = eval(expr, &symbols, stmt.pos)? as u32;
                    emit_at(&mut words, addr + (i as u32) * 4, value);
                }
            }
            Body::Data(unit, exprs) => {
                let mut bytes = Vec::with_capacity(exprs.len() * *unit as usize);
                for expr in exprs {
                    let value = eval(expr, &symbols, stmt.pos)?;
                    match unit {
                        1 => {
                            if !(-128..256).contains(&value) {
                                return Err(err(
                                    stmt.pos,
                                    format!("byte value {value} out of range"),
                                ));
                            }
                            bytes.push(value as u8);
                        }
                        _ => {
                            if !(-32768..65536).contains(&value) {
                                return Err(err(
                                    stmt.pos,
                                    format!("half value {value} out of range"),
                                ));
                            }
                            bytes.extend_from_slice(&(value as u16).to_le_bytes());
                        }
                    }
                }
                emit_bytes(&mut words, base, addr, &bytes);
            }
            Body::Ascii(bytes) => {
                emit_bytes(&mut words, base, addr, bytes);
            }
            Body::Space(bytes) => {
                let end = addr + bytes;
                if end > base + (words.len() as u32) * 4 {
                    // Zero fill happens implicitly via resize on the next emit;
                    // force the vector to cover the space.
                    let index = ((end - base).div_ceil(4)) as usize;
                    if words.len() < index {
                        words.resize(index, 0);
                    }
                }
            }
            Body::Align(_) => {}
            Body::Equ(..) | Body::Org(..) | Body::None => unreachable!("not placed"),
        }
    }

    Ok(Image {
        base,
        words,
        symbols,
    })
}

fn err(pos: Pos, message: impl Into<String>) -> AsmError {
    AsmError {
        line: pos.line,
        col: pos.col,
        message: message.into(),
    }
}

#[derive(Debug, Clone)]
struct Label {
    name: String,
    pos: Pos,
}

#[derive(Debug, Clone)]
struct Statement {
    pos: Pos,
    labels: Vec<Label>,
    body: Body,
}

#[derive(Debug, Clone)]
enum Body {
    None,
    Instr(String, Vec<String>),
    Word(Vec<Expr>),
    /// Sub-word data: unit size in bytes (1 or 2) plus the values.
    Data(u32, Vec<Expr>),
    /// Raw string bytes (`.ascii` / `.asciz`).
    Ascii(Vec<u8>),
    Space(u32),
    Align(#[allow(dead_code)] u32),
    Equ(String, Expr),
    Org(Expr),
}

#[derive(Debug, Clone)]
enum Expr {
    Lit(i64),
    Sym(String, i64),
}

fn parse(source: &str) -> Result<Vec<Statement>, AsmError> {
    // Skips ASCII whitespace within `raw[from..to]`, returning the new start.
    fn eat_ws(raw: &str, mut from: usize, to: usize) -> usize {
        while from < to && raw.as_bytes()[from].is_ascii_whitespace() {
            from += 1;
        }
        from
    }

    let mut statements = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        // Byte range of the effective text once comments are stripped;
        // columns index into the *raw* line so diagnostics stay accurate.
        let mut end = raw.len();
        if let Some(at) = raw.find('#') {
            end = end.min(at);
        }
        if let Some(at) = raw.find("//") {
            end = end.min(at);
        }
        while end > 0 && raw.as_bytes()[end - 1].is_ascii_whitespace() {
            end -= 1;
        }
        let mut start = eat_ws(raw, 0, end);
        let mut labels = Vec::new();
        while let Some(colon) = raw[start..end].find(':') {
            let head = raw[start..start + colon].trim_end();
            if head.is_empty() || !is_ident(head) {
                break;
            }
            labels.push(Label {
                name: head.to_string(),
                pos: Pos {
                    line,
                    col: start + 1,
                },
            });
            start = eat_ws(raw, start + colon + 1, end);
        }
        let pos = Pos {
            line,
            col: start + 1,
        };
        let text = &raw[start..end];
        let body = if text.is_empty() {
            Body::None
        } else if let Some(rest) = text.strip_prefix('.') {
            parse_directive(rest, pos)?
        } else {
            let (mnemonic, rest) = match text.find(char::is_whitespace) {
                Some(at) => (&text[..at], text[at..].trim()),
                None => (text, ""),
            };
            let operands = split_operands(rest);
            Body::Instr(mnemonic.to_ascii_lowercase(), operands)
        };
        if !labels.is_empty() || !matches!(body, Body::None) {
            statements.push(Statement { pos, labels, body });
        }
    }
    Ok(statements)
}

fn parse_directive(rest: &str, pos: Pos) -> Result<Body, AsmError> {
    let (name, args) = match rest.find(char::is_whitespace) {
        Some(at) => (&rest[..at], rest[at..].trim()),
        None => (rest, ""),
    };
    match name {
        "word" => {
            let exprs = split_operands(args)
                .iter()
                .map(|a| parse_expr(a, pos))
                .collect::<Result<Vec<_>, _>>()?;
            if exprs.is_empty() {
                return Err(err(pos, ".word needs at least one value"));
            }
            Ok(Body::Word(exprs))
        }
        "byte" | "half" => {
            let unit = if name == "byte" { 1 } else { 2 };
            let exprs = split_operands(args)
                .iter()
                .map(|a| parse_expr(a, pos))
                .collect::<Result<Vec<_>, _>>()?;
            if exprs.is_empty() {
                return Err(err(pos, format!(".{name} needs at least one value")));
            }
            Ok(Body::Data(unit, exprs))
        }
        "ascii" | "asciz" => {
            let text = args.trim();
            let inner = text
                .strip_prefix('"')
                .and_then(|t| t.strip_suffix('"'))
                .ok_or_else(|| err(pos, format!(".{name} needs a quoted string")))?;
            let mut bytes = Vec::with_capacity(inner.len() + 1);
            let mut chars = inner.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    match chars.next() {
                        Some('n') => bytes.push(b'\n'),
                        Some('t') => bytes.push(b'\t'),
                        Some('0') => bytes.push(0),
                        Some('\\') => bytes.push(b'\\'),
                        Some('"') => bytes.push(b'"'),
                        other => {
                            return Err(err(pos, format!("bad escape \\{other:?}")));
                        }
                    }
                } else {
                    let mut buf = [0u8; 4];
                    bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                }
            }
            if name == "asciz" {
                bytes.push(0);
            }
            Ok(Body::Ascii(bytes))
        }
        "space" => {
            let n: u32 = args
                .parse()
                .map_err(|_| err(pos, format!("bad .space size `{args}`")))?;
            Ok(Body::Space(n.div_ceil(4) * 4))
        }
        "align" => {
            let n: u32 = args
                .parse()
                .map_err(|_| err(pos, format!("bad .align value `{args}`")))?;
            Ok(Body::Align(n))
        }
        "equ" => {
            let parts = split_operands(args);
            if parts.len() != 2 {
                return Err(err(pos, ".equ needs `name, value`"));
            }
            Ok(Body::Equ(parts[0].clone(), parse_expr(&parts[1], pos)?))
        }
        "org" => Ok(Body::Org(parse_expr(args, pos)?)),
        other => Err(err(pos, format!("unknown directive .{other}"))),
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !s.chars().next().unwrap().is_ascii_digit()
}

fn split_operands(s: &str) -> Vec<String> {
    if s.trim().is_empty() {
        return Vec::new();
    }
    s.split(',').map(|p| p.trim().to_string()).collect()
}

fn parse_expr(s: &str, pos: Pos) -> Result<Expr, AsmError> {
    let s = s.trim();
    if let Some(value) = parse_int(s) {
        return Ok(Expr::Lit(value));
    }
    // symbol, symbol+lit, symbol-lit
    for (at, sign) in s
        .char_indices()
        .skip(1)
        .filter(|(_, c)| *c == '+' || *c == '-')
    {
        let (sym, lit) = s.split_at(at);
        let sym = sym.trim();
        let lit = lit[1..].trim();
        if is_ident(sym) {
            if let Some(mut value) = parse_int(lit) {
                if sign == '-' {
                    value = -value;
                }
                return Ok(Expr::Sym(sym.to_string(), value));
            }
        }
    }
    if is_ident(s) {
        return Ok(Expr::Sym(s.to_string(), 0));
    }
    Err(err(pos, format!("cannot parse expression `{s}`")))
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else if let Some(bin) = s.strip_prefix("0b") {
        i64::from_str_radix(bin, 2).ok()?
    } else if s.chars().all(|c| c.is_ascii_digit()) && !s.is_empty() {
        s.parse().ok()?
    } else {
        return None;
    };
    Some(if neg { -value } else { value })
}

fn eval(expr: &Expr, symbols: &BTreeMap<String, u32>, pos: Pos) -> Result<i64, AsmError> {
    match expr {
        Expr::Lit(v) => Ok(*v),
        Expr::Sym(name, offset) => symbols
            .get(name)
            .map(|v| i64::from(*v) + offset)
            .ok_or_else(|| err(pos, format!("undefined symbol `{name}`"))),
    }
}

fn body_size(body: &Body, pos: Pos) -> Result<u32, AsmError> {
    Ok(match body {
        Body::Instr(mnemonic, operands) => instr_size(mnemonic, operands),
        Body::Word(exprs) => (exprs.len() * 4) as u32,
        Body::Data(unit, exprs) => ((exprs.len() as u32 * unit).div_ceil(4)) * 4,
        Body::Ascii(bytes) => (bytes.len() as u32).div_ceil(4) * 4,
        Body::Space(bytes) => *bytes,
        Body::Align(_) => 0, // everything is word aligned already
        Body::Equ(..) | Body::Org(..) | Body::None => {
            return Err(err(pos, "internal: unsized body"))
        }
    })
}

/// `li`/`la` may expand to two instructions; everything else is one.
fn instr_size(mnemonic: &str, operands: &[String]) -> u32 {
    match mnemonic {
        "li" | "la" => {
            if let Some(op) = operands.get(1) {
                if let Some(value) = parse_int(op) {
                    if (-2048..2048).contains(&value) {
                        return 4;
                    }
                }
            }
            8
        }
        _ => 4,
    }
}

fn reg_op(operands: &[String], idx: usize, pos: Pos) -> Result<Reg, AsmError> {
    let name = operands
        .get(idx)
        .ok_or_else(|| err(pos, format!("missing operand {idx}")))?;
    Reg::parse(name).ok_or_else(|| err(pos, format!("bad register `{name}`")))
}

fn imm_op(
    operands: &[String],
    idx: usize,
    symbols: &BTreeMap<String, u32>,
    pos: Pos,
) -> Result<i64, AsmError> {
    let text = operands
        .get(idx)
        .ok_or_else(|| err(pos, format!("missing operand {idx}")))?;
    eval(&parse_expr(text, pos)?, symbols, pos)
}

/// Parses `imm(rs)` memory-operand syntax.
fn mem_op(
    operands: &[String],
    idx: usize,
    symbols: &BTreeMap<String, u32>,
    pos: Pos,
) -> Result<(Reg, i32), AsmError> {
    let text = operands
        .get(idx)
        .ok_or_else(|| err(pos, format!("missing operand {idx}")))?;
    let open = text
        .find('(')
        .ok_or_else(|| err(pos, format!("expected `imm(reg)`, got `{text}`")))?;
    let close = text
        .rfind(')')
        .ok_or_else(|| err(pos, format!("unclosed `(` in `{text}`")))?;
    let imm_text = text[..open].trim();
    let imm = if imm_text.is_empty() {
        0
    } else {
        eval(&parse_expr(imm_text, pos)?, symbols, pos)?
    };
    if !(-2048..2048).contains(&imm) {
        return Err(err(pos, format!("memory offset {imm} out of range")));
    }
    let reg = Reg::parse(text[open + 1..close].trim())
        .ok_or_else(|| err(pos, format!("bad register in `{text}`")))?;
    Ok((reg, imm as i32))
}

fn branch_imm(target: i64, pc: u32, pos: Pos) -> Result<i32, AsmError> {
    let delta = target - i64::from(pc);
    if !(-4096..4096).contains(&delta) || delta % 2 != 0 {
        return Err(err(pos, format!("branch target out of range ({delta})")));
    }
    Ok(delta as i32)
}

fn jump_imm(target: i64, pc: u32, pos: Pos) -> Result<i32, AsmError> {
    let delta = target - i64::from(pc);
    if !(-(1 << 20)..(1 << 20)).contains(&delta) || delta % 2 != 0 {
        return Err(err(pos, format!("jump target out of range ({delta})")));
    }
    Ok(delta as i32)
}

fn csr_number(name: &str, pos: Pos) -> Result<u16, AsmError> {
    if let Some(v) = parse_int(name) {
        if (0..4096).contains(&v) {
            return Ok(v as u16);
        }
    }
    Ok(match name {
        "mstatus" => 0x300,
        "mie" => 0x304,
        "mtvec" => 0x305,
        "mscratch" => 0x340,
        "mepc" => 0x341,
        "mcause" => 0x342,
        "mip" => 0x344,
        "mcycle" => 0xb00,
        "mcycleh" => 0xb80,
        "minstret" => 0xb02,
        other => return Err(err(pos, format!("unknown CSR `{other}`"))),
    })
}

fn check_i_imm(imm: i64, pos: Pos) -> Result<i32, AsmError> {
    if !(-2048..2048).contains(&imm) {
        return Err(err(pos, format!("immediate {imm} out of 12-bit range")));
    }
    Ok(imm as i32)
}

fn lower(
    mnemonic: &str,
    operands: &[String],
    pc: u32,
    symbols: &BTreeMap<String, u32>,
    pos: Pos,
) -> Result<Vec<Instr>, AsmError> {
    use Instr::*;
    let ops = operands;

    let alu_imm = |op: AluOp| -> Result<Vec<Instr>, AsmError> {
        Ok(vec![OpImm {
            op,
            rd: reg_op(ops, 0, pos)?,
            rs1: reg_op(ops, 1, pos)?,
            imm: check_i_imm(imm_op(ops, 2, symbols, pos)?, pos)?,
        }])
    };
    let shift_imm = |op: AluOp| -> Result<Vec<Instr>, AsmError> {
        let amount = imm_op(ops, 2, symbols, pos)?;
        if !(0..32).contains(&amount) {
            return Err(err(pos, format!("shift amount {amount} out of range")));
        }
        Ok(vec![OpImm {
            op,
            rd: reg_op(ops, 0, pos)?,
            rs1: reg_op(ops, 1, pos)?,
            imm: amount as i32,
        }])
    };
    let alu_reg = |op: AluOp| -> Result<Vec<Instr>, AsmError> {
        Ok(vec![Op {
            op,
            rd: reg_op(ops, 0, pos)?,
            rs1: reg_op(ops, 1, pos)?,
            rs2: reg_op(ops, 2, pos)?,
        }])
    };
    let mul_reg = |op: MulOp| -> Result<Vec<Instr>, AsmError> {
        Ok(vec![MulDiv {
            op,
            rd: reg_op(ops, 0, pos)?,
            rs1: reg_op(ops, 1, pos)?,
            rs2: reg_op(ops, 2, pos)?,
        }])
    };
    let load = |op: LoadOp| -> Result<Vec<Instr>, AsmError> {
        let (rs1, imm) = mem_op(ops, 1, symbols, pos)?;
        Ok(vec![Load {
            op,
            rd: reg_op(ops, 0, pos)?,
            rs1,
            imm,
        }])
    };
    let store = |op: StoreOp| -> Result<Vec<Instr>, AsmError> {
        let (rs1, imm) = mem_op(ops, 1, symbols, pos)?;
        Ok(vec![Store {
            op,
            rs1,
            rs2: reg_op(ops, 0, pos)?,
            imm,
        }])
    };
    let branch = |op: BranchOp, swap: bool| -> Result<Vec<Instr>, AsmError> {
        let (a, b) = (reg_op(ops, 0, pos)?, reg_op(ops, 1, pos)?);
        let (rs1, rs2) = if swap { (b, a) } else { (a, b) };
        let target = imm_op(ops, 2, symbols, pos)?;
        Ok(vec![Branch {
            op,
            rs1,
            rs2,
            imm: branch_imm(target, pc, pos)?,
        }])
    };
    let branch_zero = |op: BranchOp, swap: bool| -> Result<Vec<Instr>, AsmError> {
        let r = reg_op(ops, 0, pos)?;
        let (rs1, rs2) = if swap { (Reg::ZERO, r) } else { (r, Reg::ZERO) };
        let target = imm_op(ops, 1, symbols, pos)?;
        Ok(vec![Branch {
            op,
            rs1,
            rs2,
            imm: branch_imm(target, pc, pos)?,
        }])
    };
    let li_expand = |rd: Reg, value: i64| -> Result<Vec<Instr>, AsmError> {
        let value = value as i32;
        if (-2048..2048).contains(&i64::from(value)) && instr_size(mnemonic, ops) == 4 {
            Ok(vec![OpImm {
                op: AluOp::Add,
                rd,
                rs1: Reg::ZERO,
                imm: value,
            }])
        } else {
            // lui + addi, with the +0x800 carry trick.
            let hi = (value.wrapping_add(0x800)) >> 12;
            let lo = value.wrapping_sub(hi << 12);
            Ok(vec![
                Lui { rd, imm: hi },
                OpImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: lo,
                },
            ])
        }
    };
    let csr_instr = |op: CsrOp,
                     rd: Reg,
                     csr_idx: usize,
                     src_idx: usize,
                     imm_form: bool|
     -> Result<Vec<Instr>, AsmError> {
        let csr = csr_number(
            ops.get(csr_idx)
                .ok_or_else(|| err(pos, "missing CSR operand"))?,
            pos,
        )?;
        let src = if imm_form {
            let v = imm_op(ops, src_idx, symbols, pos)?;
            if !(0..32).contains(&v) {
                return Err(err(pos, format!("CSR immediate {v} out of range")));
            }
            CsrSrc::Imm(v as u8)
        } else {
            CsrSrc::Reg(reg_op(ops, src_idx, pos)?)
        };
        Ok(vec![Csr { op, rd, csr, src }])
    };

    match mnemonic {
        // --- U/J/I-type primaries ---
        "lui" => Ok(vec![Lui {
            rd: reg_op(ops, 0, pos)?,
            imm: {
                let v = imm_op(ops, 1, symbols, pos)?;
                if !(0..(1 << 20)).contains(&v) && !(-(1 << 19)..0).contains(&v) {
                    return Err(err(pos, format!("lui immediate {v} out of range")));
                }
                v as i32
            },
        }]),
        "auipc" => Ok(vec![Auipc {
            rd: reg_op(ops, 0, pos)?,
            imm: imm_op(ops, 1, symbols, pos)? as i32,
        }]),
        "jal" => {
            // `jal label` or `jal rd, label`.
            let (rd, target) = if ops.len() == 1 {
                (Reg::RA, imm_op(ops, 0, symbols, pos)?)
            } else {
                (reg_op(ops, 0, pos)?, imm_op(ops, 1, symbols, pos)?)
            };
            Ok(vec![Jal {
                rd,
                imm: jump_imm(target, pc, pos)?,
            }])
        }
        "jalr" => {
            // `jalr rs`, `jalr rd, rs, imm`, or `jalr rd, imm(rs)`.
            if ops.len() == 1 {
                Ok(vec![Jalr {
                    rd: Reg::RA,
                    rs1: reg_op(ops, 0, pos)?,
                    imm: 0,
                }])
            } else if ops.len() == 2 && ops[1].contains('(') {
                let (rs1, imm) = mem_op(ops, 1, symbols, pos)?;
                Ok(vec![Jalr {
                    rd: reg_op(ops, 0, pos)?,
                    rs1,
                    imm,
                }])
            } else {
                Ok(vec![Jalr {
                    rd: reg_op(ops, 0, pos)?,
                    rs1: reg_op(ops, 1, pos)?,
                    imm: check_i_imm(imm_op(ops, 2, symbols, pos)?, pos)?,
                }])
            }
        }
        // --- branches ---
        "beq" => branch(BranchOp::Eq, false),
        "bne" => branch(BranchOp::Ne, false),
        "blt" => branch(BranchOp::Lt, false),
        "bge" => branch(BranchOp::Ge, false),
        "bltu" => branch(BranchOp::Ltu, false),
        "bgeu" => branch(BranchOp::Geu, false),
        "bgt" => branch(BranchOp::Lt, true),
        "ble" => branch(BranchOp::Ge, true),
        "bgtu" => branch(BranchOp::Ltu, true),
        "bleu" => branch(BranchOp::Geu, true),
        "beqz" => branch_zero(BranchOp::Eq, false),
        "bnez" => branch_zero(BranchOp::Ne, false),
        "bltz" => branch_zero(BranchOp::Lt, false),
        "bgez" => branch_zero(BranchOp::Ge, false),
        "bgtz" => branch_zero(BranchOp::Lt, true),
        "blez" => branch_zero(BranchOp::Ge, true),
        // --- loads/stores ---
        "lb" => load(LoadOp::Lb),
        "lh" => load(LoadOp::Lh),
        "lw" => load(LoadOp::Lw),
        "lbu" => load(LoadOp::Lbu),
        "lhu" => load(LoadOp::Lhu),
        "sb" => store(StoreOp::Sb),
        "sh" => store(StoreOp::Sh),
        "sw" => store(StoreOp::Sw),
        // --- ALU immediate ---
        "addi" => alu_imm(AluOp::Add),
        "slti" => alu_imm(AluOp::Slt),
        "sltiu" => alu_imm(AluOp::Sltu),
        "xori" => alu_imm(AluOp::Xor),
        "ori" => alu_imm(AluOp::Or),
        "andi" => alu_imm(AluOp::And),
        "subi" => Err(err(
            pos,
            "`subi` does not exist in RV32; use `addi` with a negated immediate".to_string(),
        )),
        "slli" => shift_imm(AluOp::Sll),
        "srli" => shift_imm(AluOp::Srl),
        "srai" => shift_imm(AluOp::Sra),
        // --- ALU register ---
        "add" => alu_reg(AluOp::Add),
        "sub" => alu_reg(AluOp::Sub),
        "sll" => alu_reg(AluOp::Sll),
        "slt" => alu_reg(AluOp::Slt),
        "sltu" => alu_reg(AluOp::Sltu),
        "xor" => alu_reg(AluOp::Xor),
        "srl" => alu_reg(AluOp::Srl),
        "sra" => alu_reg(AluOp::Sra),
        "or" => alu_reg(AluOp::Or),
        "and" => alu_reg(AluOp::And),
        // --- M extension ---
        "mul" => mul_reg(MulOp::Mul),
        "mulh" => mul_reg(MulOp::Mulh),
        "mulhsu" => mul_reg(MulOp::Mulhsu),
        "mulhu" => mul_reg(MulOp::Mulhu),
        "div" => mul_reg(MulOp::Div),
        "divu" => mul_reg(MulOp::Divu),
        "rem" => mul_reg(MulOp::Rem),
        "remu" => mul_reg(MulOp::Remu),
        // --- system ---
        "fence" => Ok(vec![Fence]),
        "ecall" => Ok(vec![Ecall]),
        "ebreak" => Ok(vec![Ebreak]),
        "mret" => Ok(vec![Mret]),
        "wfi" => Ok(vec![Wfi]),
        "csrrw" => csr_instr(CsrOp::Rw, reg_op(ops, 0, pos)?, 1, 2, false),
        "csrrs" => csr_instr(CsrOp::Rs, reg_op(ops, 0, pos)?, 1, 2, false),
        "csrrc" => csr_instr(CsrOp::Rc, reg_op(ops, 0, pos)?, 1, 2, false),
        "csrrwi" => csr_instr(CsrOp::Rw, reg_op(ops, 0, pos)?, 1, 2, true),
        "csrrsi" => csr_instr(CsrOp::Rs, reg_op(ops, 0, pos)?, 1, 2, true),
        "csrrci" => csr_instr(CsrOp::Rc, reg_op(ops, 0, pos)?, 1, 2, true),
        "csrr" => Ok(vec![Csr {
            op: CsrOp::Rs,
            rd: reg_op(ops, 0, pos)?,
            csr: csr_number(
                ops.get(1).ok_or_else(|| err(pos, "csrr needs `rd, csr`"))?,
                pos,
            )?,
            src: CsrSrc::Reg(Reg::ZERO),
        }]),
        "csrw" => csr_instr(CsrOp::Rw, Reg::ZERO, 0, 1, false),
        "csrs" => csr_instr(CsrOp::Rs, Reg::ZERO, 0, 1, false),
        "csrc" => csr_instr(CsrOp::Rc, Reg::ZERO, 0, 1, false),
        "csrwi" => csr_instr(CsrOp::Rw, Reg::ZERO, 0, 1, true),
        "csrsi" => csr_instr(CsrOp::Rs, Reg::ZERO, 0, 1, true),
        "csrci" => csr_instr(CsrOp::Rc, Reg::ZERO, 0, 1, true),
        // --- pseudo-instructions ---
        "nop" => Ok(vec![OpImm {
            op: AluOp::Add,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
        }]),
        "li" | "la" => {
            let rd = reg_op(ops, 0, pos)?;
            let value = imm_op(ops, 1, symbols, pos)?;
            if !(-(1i64 << 31)..(1i64 << 32)).contains(&value) {
                return Err(err(pos, format!("li value {value} does not fit 32 bits")));
            }
            li_expand(rd, value as u32 as i32 as i64)
        }
        "mv" => Ok(vec![OpImm {
            op: AluOp::Add,
            rd: reg_op(ops, 0, pos)?,
            rs1: reg_op(ops, 1, pos)?,
            imm: 0,
        }]),
        "not" => Ok(vec![OpImm {
            op: AluOp::Xor,
            rd: reg_op(ops, 0, pos)?,
            rs1: reg_op(ops, 1, pos)?,
            imm: -1,
        }]),
        "neg" => Ok(vec![Op {
            op: AluOp::Sub,
            rd: reg_op(ops, 0, pos)?,
            rs1: Reg::ZERO,
            rs2: reg_op(ops, 1, pos)?,
        }]),
        "seqz" => Ok(vec![OpImm {
            op: AluOp::Sltu,
            rd: reg_op(ops, 0, pos)?,
            rs1: reg_op(ops, 1, pos)?,
            imm: 1,
        }]),
        "snez" => Ok(vec![Op {
            op: AluOp::Sltu,
            rd: reg_op(ops, 0, pos)?,
            rs1: Reg::ZERO,
            rs2: reg_op(ops, 1, pos)?,
        }]),
        "j" => {
            let target = imm_op(ops, 0, symbols, pos)?;
            Ok(vec![Jal {
                rd: Reg::ZERO,
                imm: jump_imm(target, pc, pos)?,
            }])
        }
        "jr" => Ok(vec![Jalr {
            rd: Reg::ZERO,
            rs1: reg_op(ops, 0, pos)?,
            imm: 0,
        }]),
        "call" => {
            let target = imm_op(ops, 0, symbols, pos)?;
            Ok(vec![Jal {
                rd: Reg::RA,
                imm: jump_imm(target, pc, pos)?,
            }])
        }
        "ret" => Ok(vec![Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            imm: 0,
        }]),
        other => Err(err(pos, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subi_is_rejected_with_guidance() {
        let e = assemble("subi a0, a0, 4").unwrap_err();
        assert_eq!((e.line, e.col), (1, 1));
        assert!(
            e.message.contains("addi"),
            "error should point at the fix: {e}"
        );
        // The equivalent spelling assembles fine.
        assert!(assemble("addi a0, a0, -4").is_ok());
        // Indentation shifts the reported column to the mnemonic.
        let e = assemble("nop\n    subi a0, a0, 4").unwrap_err();
        assert_eq!((e.line, e.col), (2, 5));
    }

    #[test]
    fn li_small_is_one_instruction() {
        let image = assemble("li a0, 42").unwrap();
        assert_eq!(image.words().len(), 1);
    }

    #[test]
    fn li_large_is_lui_addi() {
        let image = assemble("li a0, 0x12345678").unwrap();
        assert_eq!(image.words().len(), 2);
        // Verify by executing.
        use crate::cpu::{Cpu, RamBus, StepResult};
        let mut bus = RamBus::new(256);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        cpu.step(&mut bus);
        cpu.step(&mut bus);
        assert_eq!(cpu.reg(Reg(10)), 0x12345678);
        let _ = StepResult::Break;
    }

    #[test]
    fn li_negative_carry_case() {
        // 0x7ffff800 has low-12 of 0x800 which sign-extends negative: the
        // carry trick must compensate.
        for value in [0x7fff_f800u32, 0xffff_f800, 0x0000_0800, 0xdead_beef] {
            let image = assemble(&format!("li a0, 0x{value:x}")).unwrap();
            use crate::cpu::{Cpu, RamBus};
            let mut bus = RamBus::new(256);
            bus.load_image(0, image.words());
            let mut cpu = Cpu::new(0);
            for _ in 0..image.words().len() {
                cpu.step(&mut bus);
            }
            assert_eq!(cpu.reg(Reg(10)), value, "li 0x{value:x}");
        }
    }

    #[test]
    fn labels_and_branches() {
        let image = assemble(
            "
            start:
                beq a0, a1, start
                bne a0, a1, end
                nop
            end:
                ebreak
            ",
        )
        .unwrap();
        assert_eq!(image.symbol("start"), Some(0));
        assert_eq!(image.symbol("end"), Some(12));
        assert_eq!(image.words().len(), 4);
    }

    #[test]
    fn equ_and_word_directives() {
        let image = assemble(
            "
            .equ MAGIC, 0xCAFE
                li a0, MAGIC
            data:
                .word 1, 2, MAGIC
            ",
        )
        .unwrap();
        let data_at = (image.symbol("data").unwrap() / 4) as usize;
        assert_eq!(image.words()[data_at], 1);
        assert_eq!(image.words()[data_at + 2], 0xCAFE);
    }

    #[test]
    fn org_places_code() {
        let image = assemble(
            "
                nop
            .org 0x20
            later:
                nop
            ",
        )
        .unwrap();
        assert_eq!(image.symbol("later"), Some(0x20));
        assert_eq!(image.words().len(), 9);
    }

    #[test]
    fn duplicate_label_is_error() {
        let error = assemble("x: nop\nx: nop").unwrap_err();
        assert!(error.message.contains("duplicate"));
        assert_eq!((error.line, error.col), (2, 1));
        // The column points at the label itself, not the statement body.
        let error = assemble("dup: nop\n  dup: nop").unwrap_err();
        assert_eq!((error.line, error.col), (2, 3));
    }

    #[test]
    fn equ_redefinition_is_error() {
        let error = assemble(".equ IO, 0x02000000\n.equ IO, 0x03000000").unwrap_err();
        assert!(
            error.message.contains("redefines"),
            "want a dedicated diagnostic, got: {error}"
        );
        assert_eq!((error.line, error.col), (2, 1));
        // Shadowing a label is just as silent a footgun as shadowing an
        // `.equ`; both directions are rejected.
        let error = assemble("start: nop\n.equ start, 4").unwrap_err();
        assert!(error.message.contains("redefines"), "{error}");
        let error = assemble(".equ start, 4\nstart: nop").unwrap_err();
        assert!(error.message.contains("duplicate"), "{error}");
    }

    #[test]
    fn display_renders_line_and_column() {
        let e = assemble("nop\n  j nowhere").unwrap_err();
        assert_eq!(e.to_string(), "line 2:3: undefined symbol `nowhere`");
    }

    #[test]
    fn image_symbols_iterates_labels_and_constants() {
        let image = assemble(".equ IO, 0x02000000\nstart: nop").unwrap();
        let mut syms: Vec<(&str, u32)> = image.symbols().collect();
        syms.sort();
        assert_eq!(syms, vec![("IO", 0x0200_0000), ("start", 0)]);
    }

    #[test]
    fn undefined_symbol_is_error() {
        let error = assemble("j nowhere").unwrap_err();
        assert!(error.message.contains("undefined"), "{error}");
    }

    #[test]
    fn out_of_range_branch_is_error() {
        let source = "start: nop\n.org 0x4000\nb: beq a0, a1, start".to_string();
        let error = assemble(&source).unwrap_err();
        assert!(error.message.contains("out of range"), "{error}");
    }

    #[test]
    fn bad_register_reports_line() {
        let error = assemble("nop\nadd a0, q7, a1").unwrap_err();
        assert_eq!(error.line, 2);
        assert!(error.message.contains("bad register"));
    }

    #[test]
    fn memory_operand_with_symbolic_offset() {
        let image = assemble(
            "
            .equ OFF, 16
            lw a0, OFF(t0)
            ",
        )
        .unwrap();
        let instr = crate::isa::decode(image.words()[0]).unwrap();
        assert!(matches!(instr, Instr::Load { imm: 16, .. }));
    }

    #[test]
    fn comments_are_stripped() {
        let image = assemble(
            "
            nop # trailing comment
            // whole-line comment
            nop
            ",
        )
        .unwrap();
        assert_eq!(image.words().len(), 2);
    }

    #[test]
    fn symbol_plus_offset() {
        let image = assemble(
            "
            base:
                .word 0, 0, 0
                li a0, base+8
            ",
        )
        .unwrap();
        // li expands to lui+addi (symbol form); executing yields 8.
        use crate::cpu::{Cpu, RamBus};
        let mut bus = RamBus::new(256);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(12);
        cpu.step(&mut bus);
        cpu.step(&mut bus);
        assert_eq!(cpu.reg(Reg(10)), 8);
    }
}

#[cfg(test)]
mod data_directive_tests {
    use super::*;

    #[test]
    fn byte_directive_packs_little_endian() {
        let image = assemble(
            "
            data:
                .byte 0x11, 0x22, 0x33, 0x44, 0x55
            after:
                nop
            ",
        )
        .unwrap();
        assert_eq!(image.words()[0], 0x4433_2211);
        assert_eq!(image.words()[1] & 0xff, 0x55);
        // 5 bytes pad to 8: `after` is word-aligned.
        assert_eq!(image.symbol("after"), Some(8));
    }

    #[test]
    fn half_directive_packs_pairs() {
        let image = assemble(".half 0x1234, 0xBEEF").unwrap();
        assert_eq!(image.words()[0], 0xBEEF_1234);
    }

    #[test]
    fn asciz_appends_nul_and_aligns() {
        let image = assemble(
            "
            msg:
                .asciz \"hi\\n\"
            code:
                nop
            ",
        )
        .unwrap();
        let bytes = image.bytes();
        assert_eq!(&bytes[0..4], b"hi\n\0");
        assert_eq!(image.symbol("code"), Some(4));
    }

    #[test]
    fn firmware_can_read_its_own_string_table() {
        use crate::cpu::{Cpu, RamBus, StepResult};
        let image = assemble(
            "
                j start
            table:
                .byte 10, 20, 30, 40
            start:
                li t0, table
                lbu a0, 0(t0)
                lbu a1, 3(t0)
                add a0, a0, a1
                ebreak
            ",
        )
        .unwrap();
        let mut bus = RamBus::new(4096);
        bus.load_image(0, image.words());
        let mut cpu = Cpu::new(0);
        while !matches!(cpu.step(&mut bus), StepResult::Break) {}
        assert_eq!(cpu.reg(Reg::parse("a0").unwrap()), 50);
    }

    #[test]
    fn out_of_range_byte_rejected() {
        let e = assemble(".byte 300").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn unquoted_ascii_rejected() {
        let e = assemble(".ascii hello").unwrap_err();
        assert!(e.message.contains("quoted"));
    }
}
